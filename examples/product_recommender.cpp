// The paper's motivating scenario (Section 1): a data scientist at an
// online retailer predicts product popularity from structured features
// (price, category embeddings, ...) and product images. She suspects image
// features will help, but which CNN layer transfers best is unknowable
// upfront — so she asks Vista to explore several layers of ResNet50 and
// compares against a structured-features-only baseline, for both logistic
// regression and a decision tree downstream.
//
// Build & run:  ./build/examples/product_recommender

#include <algorithm>
#include <cstdio>

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "ml/decision_tree.h"
#include "vista/vista.h"

namespace {

vista::Result<double> StructOnlyF1(vista::df::Engine* engine,
                                   const vista::df::Table& t_str) {
  using namespace vista;
  const auto extractor = MakeTransferExtractor(-1, 2);
  auto train = engine->MapPartitions(
      t_str, [](std::vector<df::Record> records)
                 -> Result<std::vector<df::Record>> {
        std::vector<df::Record> out;
        for (auto& r : records) {
          if (!feat::IsTestId(r.id, 0.2)) out.push_back(std::move(r));
        }
        return out;
      });
  VISTA_RETURN_IF_ERROR(train.status());
  ml::LogisticRegressionConfig lr;
  lr.iterations = 25;
  lr.learning_rate = 0.3;
  VISTA_ASSIGN_OR_RETURN(
      ml::LogisticRegressionModel model,
      ml::TrainLogisticRegression(engine, *train, extractor, lr));
  ml::BinaryMetrics metrics;
  VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> rows,
                         engine->Collect(t_str));
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    if (!feat::IsTestId(r.id, 0.2)) continue;
    VISTA_RETURN_IF_ERROR(extractor(r, &x, &label));
    metrics.Add(model.Predict(x.data()), label > 0.5f ? 1 : 0);
  }
  return metrics.F1();
}

}  // namespace

int main() {
  using namespace vista;

  // Product catalog: 1500 products, 24 structured features (price, title
  // embedding, categories), one image each. Label: popular or not.
  feat::MultimodalDatasetSpec spec;
  spec.name = "catalog";
  spec.num_records = 1500;
  spec.num_struct_features = 24;
  spec.num_informative_struct = 6;
  spec.image_size = 32;
  spec.struct_signal = 0.45;
  spec.seed = 5;
  auto data = feat::GenerateMultimodal(spec);
  if (!data.ok()) return 1;

  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 6;
  df::Engine engine(engine_config);
  auto t_str = engine.MakeTable(std::move(data->t_str), 6);
  auto t_img = engine.MakeTable(std::move(data->t_img), 6);

  // Baseline: structured features only.
  auto baseline = StructOnlyF1(&engine, *t_str);
  if (!baseline.ok()) {
    std::printf("baseline failed: %s\n",
                baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("Structured features only:        test F1 = %.1f%%\n",
              100 * *baseline);

  // Vista: explore the top 5 layers of ResNet50.
  Vista::Options options;
  options.cnn = dl::KnownCnn::kResNet50;
  options.num_layers = 5;
  options.training_iterations = 25;
  options.data.num_records = spec.num_records;
  options.data.num_struct_features = spec.num_struct_features + 1;
  auto vista = Vista::Create(options);
  if (!vista.ok()) return 1;

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kResNet50);
  auto model =
      dl::CnnModel::Instantiate(*arch, 99, dl::WeightInit::kGaborFirstConv);
  auto result = vista->ExecuteReal(&engine, &*model, *t_str, *t_img, 6);
  if (!result.ok()) {
    std::printf("Vista run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  const LayerRunResult* best = nullptr;
  for (const auto& layer : result->per_layer) {
    std::printf("Structured + ResNet50 %-10s test F1 = %.1f%%\n",
                layer.layer_name.c_str(), 100 * layer.test_f1);
    if (best == nullptr || layer.test_f1 > best->test_f1) best = &layer;
  }
  std::printf("\nBest transfer layer: %s (F1 %.1f%%, +%.1f points over "
              "structured-only)\n",
              best->layer_name.c_str(), 100 * best->test_f1,
              100 * (best->test_f1 - *baseline));
  std::printf("Note: the best layer is %s the topmost — exactly why the "
              "paper insists on exploring multiple layers.\n",
              best->layer_index ==
                      result->per_layer.back().layer_index
                  ? "(this time)"
                  : "NOT");
  return 0;
}
