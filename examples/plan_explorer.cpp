// Plan explorer: prints the compiled step sequences of all five logical
// execution plans from Figure 5 for one workload and simulates them on the
// same cluster, making the efficiency/reliability trade-off of Section 4.2
// tangible: Lazy wastes FLOPs, Eager gambles with memory, Staged does
// neither.
//
// Build & run:  ./build/examples/plan_explorer

#include <cstdio>

#include "vista/experiments.h"

int main() {
  using namespace vista;

  auto roster = Roster::Default();
  if (!roster.ok()) return 1;
  auto workload =
      TransferWorkload::TopLayers(*roster, dl::KnownCnn::kResNet50, 5);
  if (!workload.ok()) return 1;

  std::printf("Workload: ResNet50, layers");
  const RosterEntry* entry = roster->Lookup(dl::KnownCnn::kResNet50).value();
  for (int l : workload->layers) {
    std::printf(" %s", entry->arch.layer(l).name.c_str());
  }
  std::printf(" — Foods at 4X scale, 8 nodes, cpu=4.\n");

  const LogicalPlan plans[] = {
      LogicalPlan::kLazy,   LogicalPlan::kLazyReordered,
      LogicalPlan::kEager,  LogicalPlan::kEagerReordered,
      LogicalPlan::kStaged, LogicalPlan::kStagedReordered,
  };

  for (LogicalPlan logical : plans) {
    auto plan = CompilePlan(logical, *workload);
    if (!plan.ok()) continue;
    std::printf("\n%s", plan->ToString().c_str());

    ExperimentSetup setup;
    setup.cnn = dl::KnownCnn::kResNet50;
    setup.num_layers = 5;
    setup.data = FoodsDataStats(4.0);
    DrillDownConfig config;
    config.plan = logical;
    auto result = RunDrillDown(setup, config);
    if (!result.ok()) {
      std::printf("simulation error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    if (result->crashed()) {
      std::printf("=> CRASHES: %s\n",
                  sim::CrashScenarioToString(result->crash));
    } else {
      std::printf("=> %.1f min, spills %s\n", result->total_seconds / 60.0,
                  FormatBytes(result->spill_bytes_written).c_str());
    }
  }

  std::printf(
      "\nVista always picks Staged/AJ: no redundant inference, bounded\n"
      "memory footprint (Section 4.2.1).\n");
  return 0;
}
