// Bring-your-own CNN: parse an architecture from Vista's model-spec text
// format (the paper's Section 5.4 "arbitrary CNNs" extension), register it
// in the roster, persist the dataset to disk in Vista's table formats, and
// run feature transfer over the reloaded tables.
//
// Build & run:  ./build/examples/custom_cnn

#include <cstdio>

#include "common/bytes.h"
#include "dataflow/io.h"
#include "dl/model_parser.h"
#include "features/synthetic.h"
#include "vista/real_executor.h"
#include "vista/roster.h"

int main() {
  using namespace vista;

  // --- 1. A custom CNN, declared as text.
  const char* spec = R"(
# Compact VGG-flavored custom network.
cnn ShopNet input 3x32x32
layer stem
  conv filters=12 kernel=3 stride=1 pad=1
  maxpool window=2 stride=2
layer mid
  conv filters=24 kernel=3 stride=1 pad=1
  maxpool window=2 stride=2
layer block
  bottleneck mid=8 out=32 stride=2 project=true
layer embed
  gap
  fc units=24
layer logits
  fc units=8 relu=false
)";
  auto arch = dl::ParseCnnSpec(spec);
  if (!arch.ok()) {
    std::printf("parse failed: %s\n", arch.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed %s: %d logical layers, %lld params, %.1f MFLOPs\n",
              arch->name().c_str(), arch->num_layers(),
              static_cast<long long>(arch->total_params()),
              arch->total_flops() / 1e6);

  auto roster = Roster::Default();
  if (!roster.ok() || !roster->Register(*arch).ok()) return 1;
  const RosterEntry* entry = roster->LookupByName("ShopNet").value();
  std::printf("Registered in roster; derived runtime footprint: %s\n",
              FormatBytes(entry->memory.runtime_cpu_bytes).c_str());

  // --- 2. Generate data and round-trip it through the on-disk formats.
  feat::MultimodalDatasetSpec data_spec;
  data_spec.num_records = 500;
  data_spec.num_struct_features = 10;
  data_spec.image_size = 32;
  auto data = feat::GenerateMultimodal(data_spec);
  if (!data.ok()) return 1;

  df::Engine engine{df::EngineConfig{}};
  auto t_str = engine.MakeTable(std::move(data->t_str), 4).value();
  auto t_img = engine.MakeTable(std::move(data->t_img), 4).value();
  if (!df::WriteTableFile(t_str, "/tmp/shopnet_str.vtbl").ok() ||
      !df::WriteTableFile(t_img, "/tmp/shopnet_img.vtbl").ok()) {
    return 1;
  }
  auto str_back = df::ReadTableFile("/tmp/shopnet_str.vtbl").value();
  auto img_back = df::ReadTableFile("/tmp/shopnet_img.vtbl").value();
  std::printf("Round-tripped tables: %lld + %lld records\n",
              static_cast<long long>(str_back.num_records()),
              static_cast<long long>(img_back.num_records()));

  // --- 3. Feature transfer over the custom CNN: top 3 layers.
  auto model =
      dl::CnnModel::Instantiate(*arch, 7, dl::WeightInit::kGaborFirstConv);
  if (!model.ok()) return 1;
  TransferWorkload workload;
  workload.layers = arch->TopLayers(3).value();
  workload.training_iterations = 20;
  auto plan = CompilePlan(LogicalPlan::kStaged, workload).value();
  RealExecutor executor(&engine, &*model);
  RealExecutorConfig config;
  config.num_partitions = 4;
  auto result = executor.Run(plan, workload, str_back, img_back, config);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& layer : result->per_layer) {
    std::printf("  %-8s test F1 = %.1f%%\n", layer.layer_name.c_str(),
                100 * layer.test_f1);
  }
  std::remove("/tmp/shopnet_str.vtbl");
  std::remove("/tmp/shopnet_img.vtbl");
  return 0;
}
