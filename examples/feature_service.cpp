// Feature service: the multi-tenant serving plane over one shared engine.
//
//   1. Stand up a FeatureTransferService, register a model + dataset.
//   2. Tenant A runs a transfer query cold (base layer materialized from
//      raw images).
//   3. Tenant B runs the same query — the shared view cache supplies the
//      base layer, so B executes a fraction of A's CNN FLOPs.
//   4. Tenant C asks for deeper layers and resumes partial inference from
//      the cached view instead of starting over.
//   5. A burst against a tiny queue shows admission control shedding load
//      instead of queueing without bound.
//
// Build & run:  ./build/examples/feature_service

#include <cstdio>

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "serve/service.h"

int main() {
  using namespace vista;

  // --- 1. Engine, model, data, service.
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  df::Engine engine(engine_config);

  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  auto model =
      dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
  if (!model.ok()) {
    std::printf("model failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  feat::MultimodalDatasetSpec spec;
  spec.num_records = 300;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  auto data = feat::GenerateMultimodal(spec);
  if (!data.ok()) {
    std::printf("data failed: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto t_str = engine.MakeTable(std::move(data->t_str), 6).value();
  auto t_img = engine.MakeTable(std::move(data->t_img), 6).value();

  serve::ServiceConfig config;
  config.num_workers = 2;
  // Small bounds so the admission-control demo below visibly sheds load.
  config.max_queue_depth = 4;
  config.max_queued_per_tenant = 2;
  config.executor.num_partitions = 6;
  config.executor.lr.iterations = 10;
  auto service = serve::FeatureTransferService::Create(&engine, config);
  if (!service.ok()) {
    std::printf("service failed: %s\n", service.status().ToString().c_str());
    return 1;
  }
  (*service)->RegisterModel("alexnet", &*model);
  (*service)->RegisterDataset("foods", t_str, t_img);

  TransferWorkload workload;
  workload.cnn = dl::KnownCnn::kAlexNet;
  workload.layers = arch->TopLayers(3).value();
  workload.model = DownstreamModel::kLogisticRegression;
  workload.training_iterations = 10;

  auto describe = [](const char* who, const serve::ServeResult& r) {
    std::printf(
        "%-22s cache_hit=%d resumed_from_layer=%2d inference_flops=%lld "
        "exec=%.1f ms best_f1=%.3f\n",
        who, r.cache_hit, r.resumed_from_layer,
        static_cast<long long>(r.inference_flops), r.exec_seconds * 1e3,
        r.run.per_layer.empty() ? 0.0 : r.run.per_layer.back().test_f1);
  };

  // --- 2/3. Same query, two tenants: cold, then served from the cache.
  serve::ServeRequest request;
  request.model = "alexnet";
  request.dataset = "foods";
  request.workload = workload;

  request.tenant = "tenant_a";
  auto cold = (*service)->Execute(request);
  if (!cold.ok()) {
    std::printf("query failed: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  describe("tenant_a (cold):", *cold);

  request.tenant = "tenant_b";
  auto warm = (*service)->Execute(request);
  if (!warm.ok()) return 1;
  describe("tenant_b (reuse):", *warm);
  std::printf("  -> cross-query reuse skipped %.0f%% of tenant_a's FLOPs\n",
              100.0 * (1.0 - static_cast<double>(warm->inference_flops) /
                                 static_cast<double>(cold->inference_flops)));

  // --- 4. A deeper workload resumes partial inference from the view.
  request.tenant = "tenant_c";
  request.workload.layers = {workload.layers[1], workload.layers[2]};
  auto deeper = (*service)->Execute(request);
  if (!deeper.ok()) return 1;
  describe("tenant_c (resume):", *deeper);

  // --- 5. Admission control: async tickets against the bounded queue.
  int accepted = 0, shed = 0;
  std::vector<std::shared_ptr<serve::ServeTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    serve::ServeRequest burst = request;
    burst.tenant = "tenant_" + std::to_string(i % 3);
    burst.workload.layers = workload.layers;
    auto ticket = (*service)->Submit(burst);
    if (ticket.ok()) {
      tickets.push_back(std::move(ticket).value());
      ++accepted;
    } else {
      ++shed;
    }
  }
  for (auto& ticket : tickets) ticket->Wait();
  (*service)->Drain();

  const serve::ServiceStats stats = (*service)->stats();
  std::printf(
      "\nburst of 12: %d accepted, %d shed\n"
      "service totals: %lld queries, %lld completed, %lld cache hits, "
      "%lld admission rejects, p50 %.1f ms, p99 %.1f ms\n",
      accepted, shed, static_cast<long long>(stats.queries_submitted),
      static_cast<long long>(stats.queries_completed),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.admission_rejects), stats.p50_latency_ms,
      stats.p99_latency_ms);
  return 0;
}
