// Quickstart: declarative CNN feature transfer with Vista, end to end on
// real (in-process) execution.
//
//   1. Generate a small multimodal dataset (structured features + images).
//   2. Declare the workload: "explore the top 3 layers of AlexNet with
//      logistic regression downstream".
//   3. Vista's optimizer picks the configuration; the Staged plan runs
//      partial CNN inference, joins, and trains one model per layer.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/vista.h"

int main() {
  using namespace vista;

  // --- 1. Data: 800 records with 12 structured features and a 32x32
  // image each. The first structured feature is the binary label.
  feat::MultimodalDatasetSpec spec;
  spec.num_records = 800;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  auto data = feat::GenerateMultimodal(spec);
  if (!data.ok()) {
    std::printf("data generation failed: %s\n",
                data.status().ToString().c_str());
    return 1;
  }

  // A local dataflow engine stands in for the cluster.
  df::EngineConfig engine_config;
  engine_config.cpus_per_worker = 4;
  df::Engine engine(engine_config);
  auto t_str = engine.MakeTable(std::move(data->t_str), 4);
  auto t_img = engine.MakeTable(std::move(data->t_img), 4);

  // --- 2. Declare the workload. Vista resolves the CNN from its roster,
  // estimates intermediate sizes, and runs the optimizer (Algorithm 1).
  Vista::Options options;
  options.cnn = dl::KnownCnn::kAlexNet;
  options.num_layers = 4;  // Explore conv5, fc6, fc7, fc8.
  options.model = DownstreamModel::kLogisticRegression;
  options.training_iterations = 25;
  options.data.num_records = spec.num_records;
  options.data.num_struct_features = spec.num_struct_features + 1;
  auto vista = Vista::Create(options);
  if (!vista.ok()) {
    std::printf("Vista::Create failed: %s\n",
                vista.status().ToString().c_str());
    return 1;
  }
  std::printf("Optimizer decisions: %s\n",
              vista->decisions().ToString().c_str());
  std::printf("Plan:\n%s\n", vista->Plan()->ToString().c_str());

  // --- 3. Execute for real with a runnable micro CNN (the full-size
  // architectures drive the optimizer; the micro twin runs the numerics).
  auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
  auto model =
      dl::CnnModel::Instantiate(*arch, 42, dl::WeightInit::kGaborFirstConv);
  auto result = vista->ExecuteReal(&engine, &*model, *t_str, *t_img, 4);
  if (!result.ok()) {
    std::printf("execution failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained %zu downstream models:\n", result->per_layer.size());
  for (const auto& layer : result->per_layer) {
    std::printf("  layer %-6s test F1 = %.1f%%  (accuracy %.1f%%)\n",
                layer.layer_name.c_str(), 100 * layer.test_f1,
                100 * layer.test_metrics.Accuracy());
  }
  std::printf("Total inference FLOPs: %lld (no redundancy: staged reuse)\n",
              static_cast<long long>(result->inference_flops));
  return 0;
}
