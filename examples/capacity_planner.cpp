// Capacity planning with Vista's optimizer and cluster simulator: before
// buying cluster time, ask "will this feature-transfer workload even run,
// and how should the system be configured?" for different cluster shapes.
//
// This is the what-if face of Vista: the same optimizer that configures
// real runs (Algorithm 1) plus the discrete cluster simulator predict
// runtime and crash behaviour for naive versus optimized configurations.
//
// Build & run:  ./build/examples/capacity_planner

#include <cstdio>

#include "vista/experiments.h"

int main() {
  using namespace vista;

  std::printf("Workload: ResNet50, top 5 layers, Amazon-scale data "
              "(200k records, 200 structured features)\n\n");

  // --- Question 1: what does the naive configuration do on my cluster?
  std::printf("Naive Spark config (29 GB heap, 7 worker threads):\n");
  ExperimentSetup setup;
  setup.cnn = dl::KnownCnn::kResNet50;
  setup.num_layers = 5;
  setup.data = AmazonDataStats();
  auto naive = RunApproach(setup, "Lazy-7");
  if (naive.ok()) {
    if (naive->result.crashed()) {
      std::printf("  -> would CRASH: %s\n",
                  sim::CrashScenarioToString(naive->result.crash));
    } else {
      std::printf("  -> completes in %.0f min\n",
                  naive->result.total_seconds / 60.0);
    }
  }

  // --- Question 2: what does Vista configure, and what does it cost?
  for (int nodes : {2, 4, 8, 16}) {
    Vista::Options options;
    options.cnn = setup.cnn;
    options.num_layers = setup.num_layers;
    options.data = setup.data;
    options.env.num_nodes = nodes;
    auto vista = Vista::Create(options);
    if (!vista.ok()) {
      std::printf("%2d nodes: infeasible (%s)\n", nodes,
                  vista.status().message().c_str());
      continue;
    }
    auto result =
        vista->ExecuteSimulated(PdSystem::kSparkLike, sim::NodeResources{});
    if (!result.ok() || result->crashed()) {
      std::printf("%2d nodes: unexpected failure\n", nodes);
      continue;
    }
    std::printf("%2d nodes: %s -> %.0f min (spills %s)\n", nodes,
                vista->decisions().ToString().c_str(),
                result->total_seconds / 60.0,
                FormatBytes(result->spill_bytes_written).c_str());
  }

  // --- Question 3: is 32 GB per node enough for VGG16?
  std::printf("\nVGG16 on small-memory nodes:\n");
  for (int64_t gb : {8, 16, 32}) {
    Vista::Options options;
    options.cnn = dl::KnownCnn::kVgg16;
    options.num_layers = 3;
    options.data = FoodsDataStats();
    options.env.node_memory_bytes = GiB(static_cast<double>(gb));
    auto vista = Vista::Create(options);
    if (!vista.ok()) {
      std::printf("  %2lld GB/node: %s\n", static_cast<long long>(gb),
                  vista.status().message().c_str());
    } else {
      std::printf("  %2lld GB/node: feasible with cpu=%d\n",
                  static_cast<long long>(gb), vista->decisions().cpu);
    }
  }
  return 0;
}
