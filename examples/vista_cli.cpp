// vista_cli — command-line front-end for Vista's declarative API.
//
//   vista_cli explain  --cnn ResNet50 --layers 5 --records 20000
//                      --features 130 [--nodes 8] [--memory-gb 32]
//   vista_cli simulate --cnn VGG16 --layers 3 --records 200000
//                      --features 200 [--pd ignite] [--approach Lazy-7]
//   vista_cli optimize --cnn AlexNet --layers 4 --records 20000
//                      --features 130
//
// `explain` prints the full EXPLAIN report; `optimize` prints only the
// optimizer decisions; `simulate` runs one Figure-6 approach (default
// "Vista") on the cluster simulator and reports runtime or the crash.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "vista/experiments.h"

namespace {

using namespace vista;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoll(it->second);
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage: vista_cli <explain|optimize|simulate> --cnn "
               "<AlexNet|VGG16|ResNet50> --layers <k>\n"
               "       --records <n> --features <d> [--nodes <n>] "
               "[--memory-gb <g>] [--gpu-gb <g>]\n"
               "       [--pd <spark|ignite>] [--approach <Lazy-1|Lazy-5|"
               "Lazy-7|Lazy-5+Pre-mat|Eager|Vista>]\n");
  return 2;
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("expected flag, got ") +
                                     argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

Result<int> Run(const Args& args) {
  VISTA_ASSIGN_OR_RETURN(dl::KnownCnn cnn,
                         dl::KnownCnnFromString(args.Get("cnn", "ResNet50")));
  Vista::Options options;
  options.cnn = cnn;
  options.num_layers =
      static_cast<int>(args.GetInt("layers", PaperNumLayers(cnn)));
  options.data.num_records = args.GetInt("records", 20000);
  options.data.num_struct_features = args.GetInt("features", 130);
  options.env.num_nodes = static_cast<int>(args.GetInt("nodes", 8));
  options.env.node_memory_bytes =
      GiB(static_cast<double>(args.GetInt("memory-gb", 32)));
  options.env.gpu_memory_bytes =
      GiB(static_cast<double>(args.GetInt("gpu-gb", 0)));
  const std::string pd_name = args.Get("pd", "spark");
  const PdSystem pd =
      pd_name == "ignite" ? PdSystem::kIgniteLike : PdSystem::kSparkLike;

  if (args.command == "optimize" || args.command == "explain") {
    VISTA_ASSIGN_OR_RETURN(Vista vista, Vista::Create(options));
    if (args.command == "optimize") {
      std::printf("%s\n", vista.decisions().ToString().c_str());
    } else {
      VISTA_ASSIGN_OR_RETURN(std::string report, vista.Explain(pd));
      std::printf("%s", report.c_str());
    }
    return 0;
  }

  if (args.command == "simulate") {
    ExperimentSetup setup;
    setup.env = options.env;
    setup.pd = pd;
    setup.cnn = cnn;
    setup.num_layers = options.num_layers;
    setup.data = options.data;
    setup.use_gpu = options.env.gpu_memory_bytes > 0;
    setup.node.gpu_memory_bytes = options.env.gpu_memory_bytes;
    const std::string approach = args.Get("approach", "Vista");
    VISTA_ASSIGN_OR_RETURN(ApproachResult result,
                           RunApproach(setup, approach));
    if (result.result.crashed()) {
      std::printf("%s would CRASH: %s (stage '%s')\n", approach.c_str(),
                  sim::CrashScenarioToString(result.result.crash),
                  result.result.crashed_stage.c_str());
      return 1;
    }
    std::printf("%s completes in %s", approach.c_str(),
                FormatDuration(result.result.total_seconds +
                               result.pre_mat_seconds)
                    .c_str());
    if (result.result.spill_bytes_written > 0) {
      std::printf(" (spills %s)",
                  FormatBytes(result.result.spill_bytes_written).c_str());
    }
    std::printf("\n");
    return 0;
  }
  return Status::InvalidArgument("unknown command: " + args.command);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.ok()) return Usage();
  auto result = Run(*args);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
