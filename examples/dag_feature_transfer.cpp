// Feature transfer from a DAG-structured model — the paper's Section 5.4
// future-work case (DenseNet-style dense connectivity, BERT-style
// aggregated feature layers). Demonstrates the generalized staged
// materialization plan: explore several DAG feature nodes with no
// recomputation and a provably bounded frontier, then train a downstream
// model per node and report F1.
//
// Build & run:  ./build/examples/dag_feature_transfer

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/bytes.h"
#include "dl/dag.h"
#include "features/synthetic.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

int main() {
  using namespace vista;
  using dl::DagModel;

  auto arch = dl::MicroDenseNetDag();
  if (!arch.ok()) return 1;
  std::printf("DAG: %s, %d nodes, %lld params\n", arch->name().c_str(),
              arch->num_nodes(),
              static_cast<long long>(arch->total_params()));

  // Explore three feature nodes: dense2, the transition, and the head.
  const std::vector<int> targets = {2, 4, 5};
  auto plan = dl::PlanStagedDag(*arch, targets);
  if (!plan.ok()) return 1;
  std::printf("Generalized staged plan (%zu hops, peak frontier %s "
              "per record):\n",
              plan->hops.size(), FormatBytes(plan->peak_keep_bytes).c_str());
  for (const auto& hop : plan->hops) {
    std::printf("  materialize %-10s compute {",
                arch->node(hop.target).name.c_str());
    for (size_t i = 0; i < hop.compute_nodes.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  arch->node(hop.compute_nodes[i]).name.c_str());
    }
    std::printf("} keep {");
    for (size_t i = 0; i < hop.keep_after.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  arch->node(hop.keep_after[i]).name.c_str());
    }
    std::printf("} (%s)\n", FormatBytes(hop.keep_bytes).c_str());
  }

  // Data + model.
  feat::MultimodalDatasetSpec spec;
  spec.num_records = 1000;
  spec.num_struct_features = 12;
  spec.image_size = 32;
  auto data = feat::GenerateMultimodal(spec);
  if (!data.ok()) return 1;
  auto model =
      DagModel::Instantiate(*arch, 31, dl::WeightInit::kGaborFirstConv);
  if (!model.ok()) return 1;

  // Execute the staged plan: per record, walk the hops carrying only the
  // frontier; collect the pooled features of each target.
  std::map<int, std::vector<std::vector<float>>> features_per_target;
  for (size_t r = 0; r < data->t_img.size(); ++r) {
    std::map<int, Tensor> frontier;
    frontier.emplace(DagModel::kRawInput, data->t_img[r].image());
    for (const auto& hop : plan->hops) {
      std::vector<int> want = hop.keep_after;
      want.push_back(hop.target);
      auto values = model->Compute(frontier, want);
      if (!values.ok()) return 1;
      auto pooled = dl::TransferFeaturize(values->at(hop.target));
      if (!pooled.ok()) return 1;
      features_per_target[hop.target].emplace_back(
          pooled->data(), pooled->data() + pooled->num_elements());
      std::map<int, Tensor> next;
      for (int keep : hop.keep_after) next.emplace(keep, values->at(keep));
      // Keep the raw input only while the plan still charges for it.
      int64_t kept_bytes = 0;
      for (int keep : hop.keep_after) {
        kept_bytes += arch->node(keep).output_shape.num_bytes();
      }
      if (hop.keep_bytes > kept_bytes) {
        next.emplace(DagModel::kRawInput, data->t_img[r].image());
      }
      frontier = std::move(next);
    }
  }

  // Train one logistic regression per target on [X, g(features)].
  df::Engine engine{df::EngineConfig{}};
  for (int target : targets) {
    std::vector<df::Record> rows;
    for (size_t r = 0; r < data->t_str.size(); ++r) {
      df::Record row = data->t_str[r];
      const auto& f = features_per_target[target][r];
      Tensor t(Shape{static_cast<int64_t>(f.size())},
               std::vector<float>(f));
      row.features.Append(std::move(t));
      rows.push_back(std::move(row));
    }
    auto table = engine.MakeTable(std::move(rows), 4);
    if (!table.ok()) return 1;
    auto extract = [](const df::Record& rec, std::vector<float>* x,
                      float* label) -> Status {
      *label = rec.struct_features[0];
      x->assign(rec.struct_features.begin() + 1, rec.struct_features.end());
      const Tensor& f = rec.features.at(0);
      x->insert(x->end(), f.data(), f.data() + f.num_elements());
      return Status::OK();
    };
    ml::LogisticRegressionConfig lr;
    lr.iterations = 25;
    auto trained = ml::TrainLogisticRegression(&engine, *table, extract, lr);
    if (!trained.ok()) return 1;
    // Evaluate on the 20% held-out split.
    ml::BinaryMetrics metrics;
    auto all = engine.Collect(*table).value();
    std::vector<float> x;
    float label = 0;
    for (const df::Record& rec : all) {
      if (!feat::IsTestId(rec.id, 0.2)) continue;
      (void)extract(rec, &x, &label);
      metrics.Add(trained->Predict(x.data()), label > 0.5f ? 1 : 0);
    }
    std::printf("feature node %-10s test F1 = %.1f%%\n",
                arch->node(target).name.c_str(), 100 * metrics.F1());
  }
  return 0;
}
