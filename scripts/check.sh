#!/usr/bin/env bash
# Runs the tier-1 test suite under a sanitizer preset.
#
#   scripts/check.sh              # ASan/UBSan (default)
#   PRESET=tsan scripts/check.sh  # ThreadSanitizer instead
#   PRESET=default scripts/check.sh  # plain RelWithDebInfo
#
# Environment knobs:
#   PRESET     CMake preset from CMakePresets.json (default: asan)
#   JOBS       parallel build/test jobs (default: nproc)
#   CMAKE_ARGS extra arguments appended to the configure step, e.g.
#              "-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
#   CTEST_OUTPUT_ON_FAILURE  exported through to ctest (default: 1)
#
# Build trees land in build/ or build-<preset>/ and are gitignored.
set -euo pipefail

cd "$(dirname "$0")/.."
PRESET="${PRESET:-asan}"
JOBS="${JOBS:-$(nproc)}"
export CTEST_OUTPUT_ON_FAILURE="${CTEST_OUTPUT_ON_FAILURE:-1}"

echo "check.sh: preset=${PRESET} jobs=${JOBS} source=$PWD"

# Fail fast, with a clear message, when a tool the requested configuration
# depends on is not installed — instead of a confusing CMake error several
# screens into the configure step.
if [[ "${CMAKE_ARGS:-}" == *ccache* ]] && ! command -v ccache >/dev/null; then
  echo "check.sh: ERROR: CMAKE_ARGS requests ccache but 'ccache' is not" >&2
  echo "  installed. Install it (apt-get install ccache) or drop the" >&2
  echo "  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache argument." >&2
  exit 2
fi
if [[ "${CMAKE_GENERATOR:-}${CMAKE_ARGS:-}" == *Ninja* ]] \
    && ! command -v ninja >/dev/null; then
  echo "check.sh: ERROR: the Ninja generator was requested but 'ninja' is" >&2
  echo "  not installed. Install it (apt-get install ninja-build) or use" >&2
  echo "  the default generator." >&2
  exit 2
fi

case "$PRESET" in
  default) BINARY_DIR="build" ;;
  *)       BINARY_DIR="build-${PRESET}" ;;
esac

# A build tree configured from a different source checkout (a moved or
# copied repo, or a CI cache restored onto another path) makes CMake fail
# with confusing errors deep into the build. Detect it up front.
if [[ -f "${BINARY_DIR}/CMakeCache.txt" ]]; then
  cached_home="$(sed -n 's/^CMAKE_HOME_DIRECTORY:INTERNAL=//p' \
      "${BINARY_DIR}/CMakeCache.txt")"
  if [[ -n "$cached_home" && "$cached_home" != "$PWD" ]]; then
    echo "check.sh: ERROR: ${BINARY_DIR}/ was configured for" >&2
    echo "  ${cached_home}" >&2
    echo "but the source tree is now" >&2
    echo "  ${PWD}" >&2
    echo "Delete ${BINARY_DIR}/ (or restore the original path) and rerun." >&2
    exit 2
  fi
fi

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split.
cmake --preset "$PRESET" ${CMAKE_ARGS:-}
cmake --build --preset "$PRESET" -j "$JOBS"
# --timeout caps each test binary (sanitizer runs can wedge on deadlock
# bugs; better a killed test with logs than a 6-hour hung job).
ctest --preset "$PRESET" -j "$JOBS" --timeout 600

# Optional corruption-chaos matrix: re-runs the seeded end-to-end chaos
# test under each listed injector seed (CI runs seeds 1-5; locally e.g.
#   CHAOS_SEEDS="1 2 3 4 5" scripts/check.sh
# ). Each seed draws a different corruption schedule; the test asserts the
# integrity counters match the injected fault counts exactly.
if [[ -n "${CHAOS_SEEDS:-}" ]]; then
  for seed in $CHAOS_SEEDS; do
    echo "check.sh: corruption chaos seed=${seed}"
    VISTA_CHAOS_SEED="$seed" "${BINARY_DIR}/tests/integrity_test" \
      --gtest_filter='CorruptionChaosTest.*'
  done
fi
