#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer + UBSan.
#
#   scripts/check.sh            # ASan/UBSan (default)
#   PRESET=tsan scripts/check.sh  # ThreadSanitizer instead
#
# Uses the CMake presets in CMakePresets.json; build trees land in
# build-<preset>/ and are gitignored.
set -euo pipefail

cd "$(dirname "$0")/.."
PRESET="${PRESET:-asan}"
JOBS="${JOBS:-$(nproc)}"

cmake --preset "$PRESET"
cmake --build --preset "$PRESET" -j "$JOBS"
ctest --preset "$PRESET" -j "$JOBS"
