#!/usr/bin/env python3
"""Kernel bench regression gate.

Compares a fresh BENCH_smoke_kernels.json (bench_micro_kernels --smoke)
against the committed baseline and fails when a tracked metric regresses
by more than the tolerance (default 25%).

Only machine-independent *ratio* metrics are compared — speedup and
efficiency — never raw milliseconds: CI runners differ wildly in clock
speed and core count, so absolute timings would gate on the hardware
lottery instead of the code. Raw latencies from both files are printed
for humans.

Usage:
    scripts/bench_regression.py CURRENT.json [--baseline PATH]
                                [--tolerance 0.25] [--update]

On the first run (no baseline file) the current report is written as the
baseline and the gate passes; commit the generated file. `--update`
forces rewriting the baseline.
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
    "baselines", "bench_kernels_baseline.json")

# (section, key) pairs gated on: higher is better for all of them.
TRACKED = [
    ("gemm_256x1152x196", "speedup"),
    ("batched_inference", "efficiency_normalized"),
]

# Informational only (printed, never gated): machine-dependent.
INFORMATIONAL = [
    ("gemm_256x1152x196", "naive_ms"),
    ("gemm_256x1152x196", "packed_ms"),
    ("gemm_256x1152x196", "gflops"),
    ("batched_inference", "serial_ms"),
    ("batched_inference", "parallel_ms"),
    ("batched_inference", "efficiency_raw"),
]


def metric(report, section, key):
    try:
        return float(report["extras"][section][key])
    except (KeyError, TypeError, ValueError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh BENCH_smoke_kernels.json")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current report")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)

    if args.update or not os.path.exists(args.baseline):
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {args.baseline}; commit it")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)

    print(f"{'metric':45s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for section, key in INFORMATIONAL:
        base, cur = (metric(r, section, key) for r in (baseline, current))
        if base is None or cur is None:
            continue
        ratio = cur / base if base else float("inf")
        print(f"  [info] {section}.{key:30s} {base:10.3f} {cur:10.3f} "
              f"{ratio:6.2f}x")

    failures = []
    for section, key in TRACKED:
        name = f"{section}.{key}"
        base = metric(baseline, section, key)
        cur = metric(current, section, key)
        if base is None:
            print(f"  [skip] {name}: not in baseline")
            continue
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = base * (1.0 - args.tolerance)
        status = "ok" if cur >= floor else "REGRESSED"
        print(f"  [{status:>4s}] {name:36s} {base:10.3f} {cur:10.3f} "
              f"(floor {floor:.3f})")
        if cur < floor:
            failures.append(
                f"{name}: {cur:.3f} < {floor:.3f} "
                f"({args.tolerance:.0%} below baseline {base:.3f})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        print("(if intentional, refresh with --update and commit the "
              "new baseline)", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
