#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh smoke-bench report (BENCH_smoke_kernels.json,
BENCH_smoke_shuffle.json, ...) against its committed baseline and fails
when a tracked metric regresses by more than the tolerance (default 25%).
The report's "bench" id selects which metrics are gated and which
baseline file is used, so one script serves every bench.

Only machine-independent *ratio* metrics are compared — speedups,
efficiency, throughput ratios — never raw milliseconds: CI runners
differ wildly in clock speed and core count, so absolute timings would
gate on the hardware lottery instead of the code. Raw latencies from
both files are printed for humans.

Usage:
    scripts/bench_regression.py CURRENT.json [--baseline PATH]
                                [--tolerance 0.25] [--update]

On the first run (no baseline file) the current report is written as the
baseline and the gate passes; commit the generated file. `--update`
forces rewriting the baseline.
"""

import argparse
import json
import os
import sys

BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "bench",
    "baselines")

# Per-bench gate configuration, keyed on the report's "bench" id.
# "tracked" metrics gate the build (higher is better for all of them);
# "informational" metrics are printed but never gated (machine-dependent).
BENCHES = {
    "micro_kernels": {
        "baseline": "bench_kernels_baseline.json",
        "tracked": [
            ("gemm_256x1152x196", "speedup"),
            # Quantized kernel throughput relative to the fp32 packed
            # kernel on the same shape, and its accuracy bound (a 0/1
            # indicator: the dequantized product's relative L2 error
            # against the fp32 product must stay within the bound, so any
            # accuracy break fails the gate outright).
            ("gemm_int8_256x1152x196", "speedup_vs_fp32"),
            ("gemm_int8_256x1152x196", "accuracy_within_bound"),
            # Implicit-GEMM conv vs the explicit im2col path: the speedup
            # from never materializing the patch matrix, the bit-identity
            # indicator (0/1: the implicit packer must reproduce the
            # explicit path's output exactly, so any divergence fails the
            # gate outright), and the deterministic scratch-footprint
            # ratio (explicit arena peak / implicit arena peak — pure
            # Acquire accounting, identical on every machine).
            ("implicit_conv", "implicit_speedup_vs_im2col"),
            ("implicit_conv", "bit_identical"),
            ("implicit_conv", "conv_temp_bytes_ratio"),
            ("implicit_conv_int8", "implicit_speedup_vs_im2col"),
            ("implicit_conv_int8", "bit_identical"),
            ("batched_inference", "efficiency_normalized"),
        ],
        "informational": [
            ("gemm_256x1152x196", "naive_ms"),
            ("gemm_256x1152x196", "packed_ms"),
            ("gemm_256x1152x196", "gflops"),
            ("gemm_int8_256x1152x196", "int8_ms"),
            ("gemm_int8_256x1152x196", "gops"),
            ("gemm_int8_256x1152x196", "rel_l2_error"),
            ("implicit_conv", "im2col_ms"),
            ("implicit_conv", "implicit_ms"),
            ("implicit_conv_int8", "legacy_ms"),
            ("implicit_conv_int8", "implicit_ms"),
            ("batched_inference", "serial_ms"),
            ("batched_inference", "parallel_ms"),
            ("batched_inference", "efficiency_raw"),
        ],
    },
    "shuffle": {
        "baseline": "bench_shuffle_baseline.json",
        "tracked": [
            ("shuffle_join", "speedup"),
            ("serialize", "throughput_ratio"),
        ],
        "informational": [
            ("shuffle_join", "serial_ms"),
            ("shuffle_join", "parallel_ms"),
            ("persist_overlap", "sync_reference_ms"),
            ("persist_overlap", "async_persist_ms"),
            ("persist_overlap", "queue_depth_peak"),
            ("determinism", "bit_identical"),
        ],
    },
    "pipeline": {
        "baseline": "bench_pipeline_baseline.json",
        "tracked": [
            # Pipelined (prefetch depth > 0) vs serial wall-clock on one
            # compute thread with injected read stalls: pure overlap.
            ("pipeline", "overlap_ratio"),
            # The pipeline must never change results: 1 when the
            # materialized features are bit-identical at every depth.
            ("determinism", "bit_identical"),
        ],
        "informational": [
            ("pipeline", "serial_ms"),
            ("pipeline", "pipelined_ms"),
            ("pipeline", "delay_ms"),
            ("prefetch", "requests"),
            ("prefetch", "hits"),
            ("prefetch", "queue_depth_peak"),
        ],
    },
    "fig10_physical_plans": {
        "baseline": "bench_fig10_baseline.json",
        "tracked": [
            # The simulator's crash decisions are pure functions of the
            # sweep setup, so the fraction of physical configs that
            # complete is exactly reproducible.
            ("summary", "completed_fraction"),
        ],
        "informational": [
            ("summary", "configs"),
            ("summary", "completed"),
            ("summary", "crashed"),
            ("summary", "errors"),
        ],
    },
    "service": {
        "baseline": "bench_service_baseline.json",
        "tracked": [
            # Exact FLOP accounting: how much CNN work the warm query skips
            # by resuming from the shared view cache.
            ("cross_query", "flops_ratio"),
            # Deterministic after the warming query: every concurrent query
            # must hit the view cache.
            ("throughput", "cache_hit_rate"),
        ],
        "informational": [
            ("cross_query", "cold_ms"),
            ("cross_query", "warm_ms"),
            ("cross_query", "latency_speedup"),
            ("throughput", "qps"),
            ("throughput", "p50_ms"),
            ("throughput", "p99_ms"),
            ("admission", "shed"),
            ("admission", "completed"),
        ],
    },
}


def metric(report, section, key):
    try:
        return float(report["extras"][section][key])
    except (KeyError, TypeError, ValueError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh smoke-bench report")
    parser.add_argument("--baseline", default=None,
                        help="baseline path (default: per-bench file under "
                             "bench/baselines/)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current report")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)

    bench_id = current.get("bench")
    if bench_id not in BENCHES:
        print(f"unknown bench id {bench_id!r}; known: "
              f"{sorted(BENCHES)}", file=sys.stderr)
        return 1
    config = BENCHES[bench_id]
    baseline_path = args.baseline or os.path.join(BASELINE_DIR,
                                                  config["baseline"])

    if args.update or not os.path.exists(baseline_path):
        os.makedirs(os.path.dirname(baseline_path), exist_ok=True)
        with open(baseline_path, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {baseline_path}; commit it")
        return 0

    with open(baseline_path) as f:
        baseline = json.load(f)

    print(f"bench: {bench_id}")
    print(f"{'metric':45s} {'baseline':>10s} {'current':>10s} {'ratio':>7s}")
    for section, key in config["informational"]:
        base, cur = (metric(r, section, key) for r in (baseline, current))
        if base is None or cur is None:
            continue
        ratio = cur / base if base else float("inf")
        print(f"  [info] {section}.{key:30s} {base:10.3f} {cur:10.3f} "
              f"{ratio:6.2f}x")

    failures = []
    for section, key in config["tracked"]:
        name = f"{section}.{key}"
        base = metric(baseline, section, key)
        cur = metric(current, section, key)
        if base is None:
            print(f"  [skip] {name}: not in baseline")
            continue
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = base * (1.0 - args.tolerance)
        status = "ok" if cur >= floor else "REGRESSED"
        print(f"  [{status:>4s}] {name:36s} {base:10.3f} {cur:10.3f} "
              f"(floor {floor:.3f})")
        if cur < floor:
            failures.append(
                f"{name}: {cur:.3f} < {floor:.3f} "
                f"({args.tolerance:.0%} below baseline {base:.3f})")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  - {f_}", file=sys.stderr)
        print("(if intentional, refresh with --update and commit the "
              "new baseline)", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
