#ifndef VISTA_DATAFLOW_RECORD_H_
#define VISTA_DATAFLOW_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista::df {

/// One logical row moving through the dataflow engine.
///
/// The layout mirrors the paper's description of Spark's internal record
/// format (Appendix A / Figure 14): a fixed-length primary key plus
/// variable-length structured features, an optional raw image tensor, and a
/// TensorList holding materialized CNN feature layers. Unused fields are
/// simply empty, so the same type serves Tstr, Timg, and every intermediate
/// table T_i.
struct Record {
  int64_t id = 0;
  /// X: structured feature vector (first element may be the label by table
  /// convention; see features/synthetic.h).
  std::vector<float> struct_features;
  /// I: raw image tensors (CHW). One image per record is the paper's
  /// setting; multiple images per record (its future-work item) are
  /// supported — the executors aggregate their CNN features by
  /// element-wise mean.
  std::vector<Tensor> images;

  bool has_image() const { return !images.empty(); }
  /// First (usually only) image; requires has_image().
  const Tensor& image() const { return images.front(); }
  void set_image(Tensor t) { images.assign(1, std::move(t)); }
  /// Materialized feature layers g_l(f̂_l(I)), one entry per layer of
  /// interest that has been computed so far.
  TensorList features;
};

/// Estimated in-memory (deserialized) size of a record, following the
/// paper's Tungsten-style estimate (Eq. 16): 8 B key + 8 B header per
/// variable-length field + 4 B per float payload element.
int64_t EstimateRecordBytes(const Record& record);

/// Binary serialization of a record into `out` (appended). The feature
/// tensors use a sparse (index, value) encoding when more than half of the
/// entries are zero — this is the engine's "compressed serialized"
/// persistence format; CNN feature layers post-ReLU are often mostly zeros
/// (the paper measures 13%–36% non-zero).
void SerializeRecord(const Record& record, std::vector<uint8_t>* out);

/// Deserializes one record starting at `*offset` in `buffer`, advancing
/// `*offset`. Fails with InvalidArgument on malformed input.
Result<Record> DeserializeRecord(const std::vector<uint8_t>& buffer,
                                 size_t* offset);

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_RECORD_H_
