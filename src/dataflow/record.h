#ifndef VISTA_DATAFLOW_RECORD_H_
#define VISTA_DATAFLOW_RECORD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista::df {

/// One logical row moving through the dataflow engine.
///
/// The layout mirrors the paper's description of Spark's internal record
/// format (Appendix A / Figure 14): a fixed-length primary key plus
/// variable-length structured features, an optional raw image tensor, and a
/// TensorList holding materialized CNN feature layers. Unused fields are
/// simply empty, so the same type serves Tstr, Timg, and every intermediate
/// table T_i.
struct Record {
  int64_t id = 0;
  /// X: structured feature vector (first element may be the label by table
  /// convention; see features/synthetic.h).
  std::vector<float> struct_features;
  /// I: raw image tensors (CHW). One image per record is the paper's
  /// setting; multiple images per record (its future-work item) are
  /// supported — the executors aggregate their CNN features by
  /// element-wise mean.
  std::vector<Tensor> images;

  bool has_image() const { return !images.empty(); }
  /// First (usually only) image; requires has_image().
  const Tensor& image() const { return images.front(); }
  void set_image(Tensor t) { images.assign(1, std::move(t)); }
  /// Materialized feature layers g_l(f̂_l(I)), one entry per layer of
  /// interest that has been computed so far.
  TensorList features;
};

/// Estimated in-memory (deserialized) size of a record, following the
/// paper's Tungsten-style estimate (Eq. 16): 8 B key + 8 B header per
/// variable-length field + 4 B per float payload element. This is the
/// *deserialized* footprint — it intentionally ignores the sparse wire
/// encoding. Use SerializedRecordBytes when the wire format is what is
/// being metered.
int64_t EstimateRecordBytes(const Record& record);

/// Exact number of bytes SerializeRecord appends for `record`, accounting
/// for the sparse tensor encoding (an (index, value) pair per non-zero when
/// fewer than half the entries are non-zero). Costs one pass over the
/// tensor data (to count non-zeros) but allocates nothing; shuffle and
/// broadcast byte metering and the zero-realloc serializer both use it.
int64_t SerializedRecordBytes(const Record& record);

/// Binary serialization of a record into `out` (appended). The feature
/// tensors use a sparse (index, value) encoding when more than half of the
/// entries are zero — this is the engine's "compressed serialized"
/// persistence format; CNN feature layers post-ReLU are often mostly zeros
/// (the paper measures 13%–36% non-zero).
void SerializeRecord(const Record& record, std::vector<uint8_t>* out);

/// Deserializes one record starting at `*offset` in `buffer`, advancing
/// `*offset`. Fails with InvalidArgument on malformed input.
Result<Record> DeserializeRecord(const std::vector<uint8_t>& buffer,
                                 size_t* offset);

/// Byte-range map of one serialized record inside a blob, produced by
/// ScanRecord by walking headers only — no payload is decoded and nothing
/// is allocated. The late-materialization shuffle path moves and joins
/// records through these views at memcpy speed.
struct SerializedRecordView {
  int64_t id = 0;
  uint32_t num_struct = 0;
  uint32_t num_images = 0;
  uint32_t num_tensors = 0;
  /// Start of the record (its id field) in the scanned blob.
  size_t begin = 0;
  /// Half-open payload ranges into the scanned blob. `structs` covers the
  /// float payload only; `images` and `tensors` cover the serialized tensor
  /// bytes after their u32 counts. `tensors_end` is also the record's end.
  size_t structs_begin = 0, structs_end = 0;
  size_t images_begin = 0, images_end = 0;
  size_t tensors_begin = 0, tensors_end = 0;

  size_t wire_bytes() const { return tensors_end - begin; }
};

/// Scans one serialized record starting at `*offset`, advancing `*offset`
/// past it. Applies the same header validation as DeserializeRecord
/// (truncation, overflow-safe element counts, nnz bounds) but skips every
/// payload instead of materializing it.
Result<SerializedRecordView> ScanRecord(const std::vector<uint8_t>& buffer,
                                        size_t* offset);

/// Exact wire size of the record SpliceJoinedRecord produces for (l, r).
int64_t SplicedJoinBytes(const SerializedRecordView& l,
                         const SerializedRecordView& r);

/// Appends the serialized merge of two serialized records to `out` by
/// splicing their byte ranges — bit-identical to
/// SerializeRecord(MergeRecords(left, right)) without decoding either side:
/// left id, concatenated struct features, the image section of whichever
/// side has images (left wins), and both sides' feature tensors in (left,
/// right) order. Tensor payload bytes are copied verbatim, so the encoding
/// choice (sparse vs dense) is preserved exactly.
void SpliceJoinedRecord(const std::vector<uint8_t>& left_buf,
                        const SerializedRecordView& left,
                        const std::vector<uint8_t>& right_buf,
                        const SerializedRecordView& right,
                        std::vector<uint8_t>* out);

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_RECORD_H_
