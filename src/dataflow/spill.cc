#include "dataflow/spill.h"

#include <chrono>
#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define VISTA_SPILL_HAVE_FSYNC 1
#else
#define VISTA_SPILL_HAVE_FSYNC 0
#endif

#include "dataflow/block_format.h"

namespace vista::df {

namespace fs = std::filesystem;

namespace {

/// splitmix64 finalizer (repo-wide stable hash): picks deterministic
/// corruption offsets for the injected-mutation sites.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// fsyncs the directory so a just-renamed file's directory entry is
/// durable too (rename alone only orders the data, not the metadata).
Status SyncDir(const std::string& dir) {
#if VISTA_SPILL_HAVE_FSYNC
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open spill dir for fsync: " + dir);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return Status::IOError("fsync of spill dir failed: " + dir);
#else
  (void)dir;
#endif
  return Status::OK();
}

/// Flips one bit of the file at `path` (the injected bit-rot mutation).
void FlipFileBit(const std::string& path, uint64_t offset, int bit) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    const int c = std::fgetc(f);
    if (c != EOF && std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
      std::fputc(c ^ (1 << bit), f);
    }
  }
  std::fclose(f);
}

}  // namespace

SpillManager::SpillManager(std::string dir, int async_queue_capacity)
    : dir_(std::move(dir)),
      queue_capacity_(async_queue_capacity < 1
                          ? 1
                          : static_cast<size_t>(async_queue_capacity)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

SpillManager::~SpillManager() {
  // Reader first: a prefetch read may be waiting on the writer (WaitForKey),
  // which stays alive until the reader is joined; and no read may race the
  // directory removal below.
  {
    std::lock_guard<std::mutex> lock(pf_mu_);
    pf_shutdown_ = true;
    pf_queue_.clear();
  }
  pf_work_cv_.notify_all();
  if (reader_.joinable()) reader_.join();
  {
    // Unconsumed slots die with the manager; release their charges.
    std::lock_guard<std::mutex> lock(pf_mu_);
    while (!pf_slots_.empty()) {
      CountPrefetchDrop();
      EraseSlotLocked(pf_slots_.begin()->first);
    }
  }
  {
    std::lock_guard<std::mutex> lock(qmu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();  // Drains the queue first.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

void SpillManager::set_prefetch_capacity(int capacity) {
  std::lock_guard<std::mutex> lock(pf_mu_);
  pf_capacity_ = capacity < 1 ? 1 : static_cast<size_t>(capacity);
}

void SpillManager::set_prefetch_memory(MemoryManager* memory,
                                       MemoryRegion region) {
  std::lock_guard<std::mutex> lock(pf_mu_);
  pf_memory_ = memory;
  pf_region_ = region;
}

void SpillManager::set_metrics(obs::Registry* metrics) {
  if (metrics == nullptr) return;
  c_writes_ = metrics->counter("spill.writes");
  c_reads_ = metrics->counter("spill.reads");
  c_bytes_written_ = metrics->counter("spill.bytes_written");
  c_bytes_read_ = metrics->counter("spill.bytes_read");
  c_retries_ = metrics->counter("spill.io_retries");
  c_blocks_verified_ = metrics->counter("integrity.blocks_verified");
  c_checksum_failures_ = metrics->counter("integrity.checksum_failures");
  c_torn_writes_ = metrics->counter("integrity.torn_writes_detected");
  c_pf_requests_ = metrics->counter("prefetch.requests");
  c_pf_hits_ = metrics->counter("prefetch.hits");
  c_pf_claimed_ = metrics->counter("prefetch.claimed");
  c_pf_dropped_ = metrics->counter("prefetch.dropped");
  c_pf_corrupt_dropped_ = metrics->counter("prefetch.corrupt_dropped");
  h_write_ms_ = metrics->histogram("spill.write_ms");
  h_read_ms_ = metrics->histogram("spill.read_ms");
  g_queue_depth_ = metrics->gauge("spill.queue_depth");
  g_pf_queue_depth_ = metrics->gauge("prefetch.queue_depth");
}

std::string SpillManager::PathFor(int64_t key) const {
  return dir_ + "/part-" + std::to_string(key) + ".spill";
}

Status SpillManager::WriteOnce(const std::string& path,
                               const std::vector<uint8_t>& frame) {
  // Crash-consistency protocol: never touch the final path until the new
  // frame is durably complete in a temp file, then publish it with one
  // atomic rename. A crash at any instant leaves either the old complete
  // generation or the new complete generation — never a readable
  // half-block.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill temp file " + tmp);
  }
  const size_t written =
      frame.empty() ? 0 : std::fwrite(frame.data(), 1, frame.size(), f);
  // fflush surfaces short-write errors; fsync forces the data to the
  // device (the fsync-class failures: ENOSPC, EIO at writeback); fclose
  // reports anything deferred past both.
  const bool flushed = std::fflush(f) == 0;
#if VISTA_SPILL_HAVE_FSYNC
  const bool synced = flushed && ::fsync(fileno(f)) == 0;
#else
  const bool synced = flushed;
#endif
  const bool closed = std::fclose(f) == 0;
  if (written != frame.size() || !flushed || !synced || !closed) {
    std::error_code ec;
    fs::remove(tmp, ec);  // Never leave a truncated temp behind.
    return Status::IOError("short or failed write to spill file " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IOError("cannot publish spill file " + path + ": " +
                           ec.message());
  }
  return SyncDir(dir_);
}

Status SpillManager::WriteWithRetry(int64_t key,
                                    const std::vector<uint8_t>& blob) {
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_write_ms_);
  uint64_t seq = 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) seq = it->second.seq + 1;
  }
  // Integrity-fault decisions are drawn once per (key, generation), so the
  // corruption schedule is independent of transient-write retries.
  const uint64_t gen = FaultInjector::TaskKey(static_cast<uint64_t>(key),
                                              static_cast<int>(seq));
  const bool inject_flip =
      injector_ != nullptr &&
      injector_->ShouldInject(FaultSite::kSpillBitFlip, gen);
  const bool inject_torn =
      injector_ != nullptr &&
      injector_->ShouldInject(FaultSite::kSpillTornWrite, gen);
  // A stale read-back needs a previous generation to be stale relative to:
  // the frame is written under the old sequence number, modelling an
  // overwrite that never reached the device.
  const bool inject_stale =
      injector_ != nullptr && seq > 1 &&
      injector_->ShouldInject(FaultSite::kSpillStaleRead, gen);
  std::vector<uint8_t> frame;
  EncodeBlockFrame(blob, inject_stale ? seq - 1 : seq, &frame);

  for (int attempt = 0;; ++attempt) {
    Status st = Status::OK();
    if (injector_ != nullptr) {
      const uint64_t task = FaultInjector::TaskKey(
          static_cast<uint64_t>(key), attempt);
      st = injector_->MaybeFail(FaultSite::kSpillWrite, task,
                                "key " + std::to_string(key));
      if (st.ok()) {
        st = injector_->MaybeFail(FaultSite::kSpillNoSpace, task,
                                  "ENOSPC, key " + std::to_string(key));
      }
    }
    if (st.ok()) st = WriteOnce(path, frame);
    if (st.ok()) break;
    if (attempt + 1 >= retry_.max_attempts || !IsRetryable(retry_, st)) {
      return st;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }

  // Post-success mutations: the write was acknowledged durable, then the
  // bytes rotted (bit flip) or the tail was lost (torn write). Only
  // verify-on-read can catch these. Torn wins over flip — a truncated
  // frame has no payload left to flip.
  if (inject_torn) {
    std::error_code ec;
    fs::resize_file(path, frame.size() / 2, ec);
    if (!ec) injector_->CountInjected(FaultSite::kSpillTornWrite);
  } else if (inject_flip) {
    const uint64_t h = Mix64(static_cast<uint64_t>(key));
    const uint64_t payload_bytes = frame.size() - kBlockFrameOverhead;
    const uint64_t offset =
        payload_bytes > 0 ? kBlockHeaderBytes + h % payload_bytes
                          : h % kBlockHeaderBytes;  // Empty blob: hit header.
    FlipFileBit(path, offset, static_cast<int>(h >> 32) & 7);
    injector_->CountInjected(FaultSite::kSpillBitFlip);
  }
  if (inject_stale) injector_->CountInjected(FaultSite::kSpillStaleRead);

  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = SpillEntry{static_cast<int64_t>(blob.size()), seq};
  }
  {
    // A successful rewrite clears the key's sticky async error.
    std::lock_guard<std::mutex> lock(qmu_);
    failed_keys_.erase(key);
  }
  bytes_written_.fetch_add(static_cast<int64_t>(blob.size()));
  num_spills_.fetch_add(1);
  if (c_writes_ != nullptr) {
    c_writes_->Add(1);
    c_bytes_written_->Add(static_cast<int64_t>(blob.size()));
  }
  return Status::OK();
}

Status SpillManager::Write(int64_t key, const std::vector<uint8_t>& blob) {
  WaitForKey(key);  // Never race a pending async write of the same key.
  InvalidatePrefetch(key);  // A prefetched previous generation is stale now.
  return WriteWithRetry(key, blob);
}

Status SpillManager::WriteAsync(int64_t key, std::vector<uint8_t> blob) {
  // Invalidate before enqueueing: if the reader were still waiting for the
  // key after this write entered the queue, invalidation would deadlock
  // against its WaitForKey.
  InvalidatePrefetch(key);
  std::unique_lock<std::mutex> lock(qmu_);
  if (!writer_started_) {
    writer_started_ = true;
    writer_ = std::thread([this] { WriterLoop(); });
  }
  // Bounded queue = double buffering with backpressure: the caller can
  // serialize the next partition while the writer drains this one, but
  // cannot run unboundedly ahead of the disk.
  space_cv_.wait(lock, [&] { return queue_.size() < queue_capacity_; });
  queue_.push_back(PendingWrite{key, std::move(blob)});
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

void SpillManager::WriterLoop() {
  for (;;) {
    PendingWrite item;
    {
      std::unique_lock<std::mutex> lock(qmu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      item = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
      writing_key_ = item.key;
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
      space_cv_.notify_all();
    }
    Status st = WriteWithRetry(item.key, item.blob);
    {
      std::lock_guard<std::mutex> lock(qmu_);
      writing_ = false;
      if (!st.ok()) {
        // First error wins for Flush; the per-key latch keeps the error
        // sticky so a later Read of this key surfaces the real failure
        // instead of NotFound or the stale previous generation.
        if (async_error_.ok()) async_error_ = st;
        failed_keys_[item.key] = st;
      }
    }
    drained_cv_.notify_all();
  }
}

bool SpillManager::KeyPendingLocked(int64_t key) const {
  if (writing_ && writing_key_ == key) return true;
  for (const PendingWrite& w : queue_) {
    if (w.key == key) return true;
  }
  return false;
}

void SpillManager::WaitForKey(int64_t key) {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return !KeyPendingLocked(key); });
}

void SpillManager::WaitDrained() const {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
}

Status SpillManager::Flush() {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
  Status st = async_error_;
  async_error_ = Status::OK();
  return st;
}

int64_t SpillManager::bytes_written() const {
  WaitDrained();
  return bytes_written_.load();
}

int64_t SpillManager::bytes_read() const {
  WaitDrained();
  return bytes_read_.load();
}

int64_t SpillManager::num_spills() const {
  WaitDrained();
  return num_spills_.load();
}

int64_t SpillManager::io_retries() const {
  WaitDrained();
  return io_retries_.load();
}

int64_t SpillManager::blocks_verified() const {
  WaitDrained();
  return blocks_verified_.load();
}

int64_t SpillManager::checksum_failures() const {
  WaitDrained();
  return checksum_failures_.load();
}

int64_t SpillManager::torn_writes_detected() const {
  WaitDrained();
  return torn_writes_.load();
}

Result<std::vector<uint8_t>> SpillManager::ReadFileBytes(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  // Read whatever is actually there — a torn file is shorter than the
  // frame it should hold, and the decoder is what diagnoses that.
  std::error_code ec;
  const uint64_t size = fs::file_size(path, ec);
  if (ec) {
    std::fclose(f);
    return Status::IOError("cannot stat spill file " + path);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    return Status::IOError("short read from spill file " + path);
  }
  return bytes;
}

Result<std::vector<uint8_t>> SpillManager::Read(int64_t key) {
  WaitForKey(key);  // Read-after-write ordering for async spills.
  {
    // The sticky latch first: a failed overwrite must surface its own
    // error, never NotFound and never the intact previous generation (a
    // prefetched slot for the key necessarily predates the failed write,
    // so it is dropped, not served).
    std::lock_guard<std::mutex> lock(qmu_);
    auto failed = failed_keys_.find(key);
    if (failed != failed_keys_.end()) {
      Status latched = failed->second;
      {
        std::lock_guard<std::mutex> pf_lock(pf_mu_);
        auto slot = pf_slots_.find(key);
        if (slot != pf_slots_.end() &&
            slot->second.state != PrefetchSlot::kReading) {
          if (slot->second.state == PrefetchSlot::kQueued) {
            for (auto q = pf_queue_.begin(); q != pf_queue_.end(); ++q) {
              if (*q == key) {
                pf_queue_.erase(q);
                break;
              }
            }
          }
          CountPrefetchDrop();
          EraseSlotLocked(key);
        }
      }
      return latched;
    }
  }
  {
    // Consume the key's prefetch slot, if any: a ready outcome is the hit
    // path (no second read of the same bytes, no second fault draw); an
    // in-flight read is waited for on the per-key latch; a still-queued
    // hint is claimed back and the read runs synchronously below.
    std::unique_lock<std::mutex> lock(pf_mu_);
    auto it = pf_slots_.find(key);
    if (it != pf_slots_.end()) {
      if (it->second.state == PrefetchSlot::kQueued) {
        for (auto q = pf_queue_.begin(); q != pf_queue_.end(); ++q) {
          if (*q == key) {
            pf_queue_.erase(q);
            break;
          }
        }
        if (g_pf_queue_depth_ != nullptr) {
          g_pf_queue_depth_->Set(static_cast<int64_t>(pf_queue_.size()));
        }
        EraseSlotLocked(key);
        pf_claimed_.fetch_add(1);
        if (c_pf_claimed_ != nullptr) c_pf_claimed_->Add(1);
      } else {
        pf_state_cv_.wait(lock, [&] {
          auto s = pf_slots_.find(key);
          return s == pf_slots_.end() ||
                 s->second.state == PrefetchSlot::kReady;
        });
        auto s = pf_slots_.find(key);
        if (s != pf_slots_.end()) {
          Status st = s->second.status;
          std::vector<uint8_t> payload = std::move(s->second.payload);
          EraseSlotLocked(key);
          if (st.ok()) {
            pf_hits_.fetch_add(1);
            if (c_pf_hits_ != nullptr) c_pf_hits_->Add(1);
            return payload;
          }
          // The prefetched block was corrupt or unreadable: drop it and
          // surface the same error the sync path would have — kDataLoss
          // routes to lineage recomputation upstream, with integrity
          // counters already bumped exactly once by the reader.
          if (st.IsDataLoss()) {
            pf_corrupt_dropped_.fetch_add(1);
            if (c_pf_corrupt_dropped_ != nullptr) {
              c_pf_corrupt_dropped_->Add(1);
            }
          }
          return st;
        }
        // Slot vanished (invalidated mid-read): fall through to sync.
      }
    }
  }
  SpillEntry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound("no spill for partition key " +
                              std::to_string(key));
    }
    entry = it->second;
  }
  return ReadVerifiedWithRetry(key, entry);
}

Result<std::vector<uint8_t>> SpillManager::ReadVerifiedWithRetry(
    int64_t key, const SpillEntry& entry) {
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_read_ms_);
  for (int attempt = 0;; ++attempt) {
    const uint64_t task =
        FaultInjector::TaskKey(static_cast<uint64_t>(key), attempt);
    Status st = injector_ == nullptr
                    ? Status::OK()
                    : injector_->MaybeFail(FaultSite::kSpillRead, task,
                                           "key " + std::to_string(key));
    if (st.ok() && injector_ != nullptr &&
        injector_->ShouldInject(FaultSite::kSpillReadDelay, task)) {
      // Delayed I/O: the read succeeds but stalls first (slow device).
      // Wall-clock only — whether prefetch hides the stall is what the
      // overlap tests and bench_pipeline measure.
      injector_->CountInjected(FaultSite::kSpillReadDelay);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          injector_->config().spill_read_delay_ms));
    }
    Result<std::vector<uint8_t>> file = st.ok() ? ReadFileBytes(path) : st;
    if (file.ok()) {
      // Verify-on-read: the frame must decode, check out bit-for-bit, and
      // carry the generation this index expects. kDataLoss is final —
      // re-reading corrupt bytes cannot help — so it exits the retry loop
      // below via the non-retryable branch and routes to lineage
      // recomputation upstream.
      BlockDefect defect = BlockDefect::kNone;
      auto block = DecodeBlockFrame(file->data(), file->size(),
                                    static_cast<int64_t>(entry.seq), &defect);
      if (block.ok()) {
        blocks_verified_.fetch_add(1);
        if (c_blocks_verified_ != nullptr) c_blocks_verified_->Add(1);
        bytes_read_.fetch_add(entry.payload_bytes);
        if (c_reads_ != nullptr) {
          c_reads_->Add(1);
          c_bytes_read_->Add(entry.payload_bytes);
        }
        return std::move(block->payload);
      }
      checksum_failures_.fetch_add(1);
      if (c_checksum_failures_ != nullptr) c_checksum_failures_->Add(1);
      if (IsTornWriteDefect(defect)) {
        torn_writes_.fetch_add(1);
        if (c_torn_writes_ != nullptr) c_torn_writes_->Add(1);
      }
      st = Status::DataLoss("spill block for key " + std::to_string(key) +
                            " failed verification: " +
                            block.status().message());
    } else {
      st = file.status();
    }
    if (attempt + 1 >= retry_.max_attempts || !IsRetryable(retry_, st)) {
      return st;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }
}

void SpillManager::CountPrefetchDrop() {
  pf_dropped_.fetch_add(1);
  if (c_pf_dropped_ != nullptr) c_pf_dropped_->Add(1);
}

void SpillManager::EraseSlotLocked(int64_t key) {
  auto it = pf_slots_.find(key);
  if (it == pf_slots_.end()) return;
  if (it->second.charged_bytes > 0 && pf_memory_ != nullptr) {
    pf_memory_->Release(pf_region_, it->second.charged_bytes);
  }
  pf_slots_.erase(it);
}

void SpillManager::InvalidatePrefetch(int64_t key) {
  std::unique_lock<std::mutex> lock(pf_mu_);
  auto it = pf_slots_.find(key);
  if (it == pf_slots_.end()) return;
  if (it->second.state == PrefetchSlot::kReading) {
    // Never mutate the file under an in-flight read: wait for the reader
    // to latch its outcome (bounded — one read), then drop it.
    pf_state_cv_.wait(lock, [&] {
      auto s = pf_slots_.find(key);
      return s == pf_slots_.end() || s->second.state == PrefetchSlot::kReady;
    });
    it = pf_slots_.find(key);
    if (it == pf_slots_.end()) return;
  }
  if (it->second.state == PrefetchSlot::kQueued) {
    for (auto q = pf_queue_.begin(); q != pf_queue_.end(); ++q) {
      if (*q == key) {
        pf_queue_.erase(q);
        break;
      }
    }
    if (g_pf_queue_depth_ != nullptr) {
      g_pf_queue_depth_->Set(static_cast<int64_t>(pf_queue_.size()));
    }
  }
  CountPrefetchDrop();
  EraseSlotLocked(key);
}

void SpillManager::Prefetch(int64_t key) {
  {
    // A latched async-write error must surface on Read; prefetching the
    // intact previous generation would mask it.
    std::lock_guard<std::mutex> lock(qmu_);
    if (failed_keys_.count(key) > 0) {
      CountPrefetchDrop();
      return;
    }
  }
  int64_t payload_bytes = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) payload_bytes = it->second.payload_bytes;
  }
  if (payload_bytes < 0) {
    // Nothing durably spilled under the key (yet) — e.g. the write is
    // still queued. The sync read path handles it; the hint just drops.
    CountPrefetchDrop();
    return;
  }
  std::lock_guard<std::mutex> lock(pf_mu_);
  if (pf_shutdown_) return;
  if (pf_slots_.count(key) > 0) return;  // Already queued/reading/ready.
  if (pf_slots_.size() >= pf_capacity_) {
    CountPrefetchDrop();
    return;
  }
  int64_t charged = 0;
  if (pf_memory_ != nullptr && payload_bytes > 0) {
    if (!pf_memory_->TryReserve(pf_region_, payload_bytes).ok()) {
      CountPrefetchDrop();  // No headroom: never buffer past the budget.
      return;
    }
    charged = payload_bytes;
  }
  if (!reader_started_) {
    reader_started_ = true;
    reader_ = std::thread([this] { ReaderLoop(); });
  }
  PrefetchSlot slot;
  slot.state = PrefetchSlot::kQueued;
  slot.charged_bytes = charged;
  pf_slots_.emplace(key, std::move(slot));
  pf_queue_.push_back(key);
  pf_requests_.fetch_add(1);
  if (c_pf_requests_ != nullptr) c_pf_requests_->Add(1);
  if (g_pf_queue_depth_ != nullptr) {
    g_pf_queue_depth_->Set(static_cast<int64_t>(pf_queue_.size()));
  }
  pf_work_cv_.notify_one();
}

void SpillManager::ReaderLoop() {
  for (;;) {
    int64_t key = 0;
    {
      std::unique_lock<std::mutex> lock(pf_mu_);
      pf_work_cv_.wait(lock,
                       [&] { return pf_shutdown_ || !pf_queue_.empty(); });
      if (pf_queue_.empty()) return;  // Shutdown with a drained queue.
      key = pf_queue_.front();
      pf_queue_.pop_front();
      if (g_pf_queue_depth_ != nullptr) {
        g_pf_queue_depth_->Set(static_cast<int64_t>(pf_queue_.size()));
      }
      auto it = pf_slots_.find(key);
      if (it == pf_slots_.end()) continue;  // Claimed back meanwhile.
      it->second.state = PrefetchSlot::kReading;
    }
    // Order after any pending async write of the key, then run the exact
    // verified-read path Read would have run — same fault draws, same
    // integrity counters — so accounting is schedule-independent.
    WaitForKey(key);
    Status latched = Status::OK();
    {
      std::lock_guard<std::mutex> lock(qmu_);
      auto failed = failed_keys_.find(key);
      if (failed != failed_keys_.end()) latched = failed->second;
    }
    Result<std::vector<uint8_t>> outcome = std::vector<uint8_t>{};
    if (!latched.ok()) {
      outcome = latched;
    } else {
      SpillEntry entry;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          entry = it->second;
          found = true;
        }
      }
      outcome = found ? ReadVerifiedWithRetry(key, entry)
                      : Result<std::vector<uint8_t>>(Status::NotFound(
                            "no spill for partition key " +
                            std::to_string(key)));
    }
    {
      std::lock_guard<std::mutex> lock(pf_mu_);
      auto it = pf_slots_.find(key);
      if (it != pf_slots_.end()) {
        it->second.status = outcome.status();
        if (outcome.ok()) it->second.payload = std::move(outcome).value();
        it->second.state = PrefetchSlot::kReady;
      }
      // A slot invalidated mid-read was already counted dropped by its
      // invalidator; nothing to latch.
    }
    pf_state_cv_.notify_all();
  }
}

void SpillManager::Remove(int64_t key) {
  WaitForKey(key);  // Never delete out from under a pending async write.
  InvalidatePrefetch(key);  // Drop any latched/queued read-ahead of it.
  {
    std::lock_guard<std::mutex> lock(qmu_);
    failed_keys_.erase(key);
  }
  // Erase the size entry and delete the file under the same lock so a
  // concurrent Read cannot find the entry after the file is gone.
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(key);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
}

}  // namespace vista::df
