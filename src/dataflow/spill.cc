#include "dataflow/spill.h"

#include <cstdio>
#include <filesystem>

namespace vista::df {

namespace fs = std::filesystem;

SpillManager::SpillManager(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

SpillManager::~SpillManager() {
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

std::string SpillManager::PathFor(int64_t key) const {
  return dir_ + "/part-" + std::to_string(key) + ".spill";
}

Status SpillManager::Write(int64_t key, const std::vector<uint8_t>& blob) {
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  const size_t written = blob.empty()
                             ? 0
                             : std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (written != blob.size()) {
    return Status::IOError("short write to spill file " + path);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sizes_[key] = static_cast<int64_t>(blob.size());
  }
  bytes_written_.fetch_add(static_cast<int64_t>(blob.size()));
  num_spills_.fetch_add(1);
  return Status::OK();
}

Result<std::vector<uint8_t>> SpillManager::Read(int64_t key) {
  int64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sizes_.find(key);
    if (it == sizes_.end()) {
      return Status::NotFound("no spill for partition key " +
                              std::to_string(key));
    }
    size = it->second;
  }
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  const size_t read =
      blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (read != blob.size()) {
    return Status::IOError("short read from spill file " + path);
  }
  bytes_read_.fetch_add(size);
  return blob;
}

void SpillManager::Remove(int64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sizes_.erase(key);
  }
  std::error_code ec;
  fs::remove(PathFor(key), ec);
}

}  // namespace vista::df
