#include "dataflow/spill.h"

#include <cstdio>
#include <filesystem>

namespace vista::df {

namespace fs = std::filesystem;

SpillManager::SpillManager(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

SpillManager::~SpillManager() {
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

void SpillManager::set_metrics(obs::Registry* metrics) {
  if (metrics == nullptr) return;
  c_writes_ = metrics->counter("spill.writes");
  c_reads_ = metrics->counter("spill.reads");
  c_bytes_written_ = metrics->counter("spill.bytes_written");
  c_bytes_read_ = metrics->counter("spill.bytes_read");
  c_retries_ = metrics->counter("spill.io_retries");
  h_write_ms_ = metrics->histogram("spill.write_ms");
  h_read_ms_ = metrics->histogram("spill.read_ms");
}

std::string SpillManager::PathFor(int64_t key) const {
  return dir_ + "/part-" + std::to_string(key) + ".spill";
}

Status SpillManager::WriteOnce(const std::string& path,
                               const std::vector<uint8_t>& blob) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  const size_t written = blob.empty()
                             ? 0
                             : std::fwrite(blob.data(), 1, blob.size(), f);
  // fflush + fclose both report deferred errors (the fsync-class failures:
  // ENOSPC, EIO at writeback); a short fwrite reports an immediate one.
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != blob.size() || !flushed || !closed) {
    std::error_code ec;
    fs::remove(path, ec);  // Never leave a truncated spill behind.
    return Status::IOError("short or failed write to spill file " + path);
  }
  return Status::OK();
}

Status SpillManager::Write(int64_t key, const std::vector<uint8_t>& blob) {
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_write_ms_);
  for (int attempt = 0;; ++attempt) {
    Status st =
        injector_ == nullptr
            ? Status::OK()
            : injector_->MaybeFail(FaultSite::kSpillWrite,
                                   FaultInjector::TaskKey(
                                       static_cast<uint64_t>(key), attempt),
                                   "key " + std::to_string(key));
    if (st.ok()) st = WriteOnce(path, blob);
    if (st.ok()) break;
    if (attempt + 1 >= retry_.max_attempts || !IsRetryable(retry_, st)) {
      return st;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sizes_[key] = static_cast<int64_t>(blob.size());
  }
  bytes_written_.fetch_add(static_cast<int64_t>(blob.size()));
  num_spills_.fetch_add(1);
  if (c_writes_ != nullptr) {
    c_writes_->Add(1);
    c_bytes_written_->Add(static_cast<int64_t>(blob.size()));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SpillManager::ReadOnce(const std::string& path,
                                                    int64_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  const size_t read =
      blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (read != blob.size()) {
    return Status::IOError("short read from spill file " + path);
  }
  return blob;
}

Result<std::vector<uint8_t>> SpillManager::Read(int64_t key) {
  int64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sizes_.find(key);
    if (it == sizes_.end()) {
      return Status::NotFound("no spill for partition key " +
                              std::to_string(key));
    }
    size = it->second;
  }
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_read_ms_);
  for (int attempt = 0;; ++attempt) {
    Status st =
        injector_ == nullptr
            ? Status::OK()
            : injector_->MaybeFail(FaultSite::kSpillRead,
                                   FaultInjector::TaskKey(
                                       static_cast<uint64_t>(key), attempt),
                                   "key " + std::to_string(key));
    Result<std::vector<uint8_t>> blob = st.ok() ? ReadOnce(path, size) : st;
    if (blob.ok()) {
      bytes_read_.fetch_add(size);
      if (c_reads_ != nullptr) {
        c_reads_->Add(1);
        c_bytes_read_->Add(size);
      }
      return blob;
    }
    if (attempt + 1 >= retry_.max_attempts ||
        !IsRetryable(retry_, blob.status())) {
      return blob;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }
}

void SpillManager::Remove(int64_t key) {
  // Erase the size entry and delete the file under the same lock so a
  // concurrent Read cannot find the entry after the file is gone.
  std::lock_guard<std::mutex> lock(mu_);
  sizes_.erase(key);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
}

}  // namespace vista::df
