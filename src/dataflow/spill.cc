#include "dataflow/spill.h"

#include <cstdio>
#include <filesystem>

namespace vista::df {

namespace fs = std::filesystem;

SpillManager::SpillManager(std::string dir, int async_queue_capacity)
    : dir_(std::move(dir)),
      queue_capacity_(async_queue_capacity < 1
                          ? 1
                          : static_cast<size_t>(async_queue_capacity)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

SpillManager::~SpillManager() {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();  // Drains the queue first.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

void SpillManager::set_metrics(obs::Registry* metrics) {
  if (metrics == nullptr) return;
  c_writes_ = metrics->counter("spill.writes");
  c_reads_ = metrics->counter("spill.reads");
  c_bytes_written_ = metrics->counter("spill.bytes_written");
  c_bytes_read_ = metrics->counter("spill.bytes_read");
  c_retries_ = metrics->counter("spill.io_retries");
  h_write_ms_ = metrics->histogram("spill.write_ms");
  h_read_ms_ = metrics->histogram("spill.read_ms");
  g_queue_depth_ = metrics->gauge("spill.queue_depth");
}

std::string SpillManager::PathFor(int64_t key) const {
  return dir_ + "/part-" + std::to_string(key) + ".spill";
}

Status SpillManager::WriteOnce(const std::string& path,
                               const std::vector<uint8_t>& blob) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  const size_t written = blob.empty()
                             ? 0
                             : std::fwrite(blob.data(), 1, blob.size(), f);
  // fflush + fclose both report deferred errors (the fsync-class failures:
  // ENOSPC, EIO at writeback); a short fwrite reports an immediate one.
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != blob.size() || !flushed || !closed) {
    std::error_code ec;
    fs::remove(path, ec);  // Never leave a truncated spill behind.
    return Status::IOError("short or failed write to spill file " + path);
  }
  return Status::OK();
}

Status SpillManager::WriteWithRetry(int64_t key,
                                    const std::vector<uint8_t>& blob) {
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_write_ms_);
  for (int attempt = 0;; ++attempt) {
    Status st =
        injector_ == nullptr
            ? Status::OK()
            : injector_->MaybeFail(FaultSite::kSpillWrite,
                                   FaultInjector::TaskKey(
                                       static_cast<uint64_t>(key), attempt),
                                   "key " + std::to_string(key));
    if (st.ok()) st = WriteOnce(path, blob);
    if (st.ok()) break;
    if (attempt + 1 >= retry_.max_attempts || !IsRetryable(retry_, st)) {
      return st;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sizes_[key] = static_cast<int64_t>(blob.size());
  }
  bytes_written_.fetch_add(static_cast<int64_t>(blob.size()));
  num_spills_.fetch_add(1);
  if (c_writes_ != nullptr) {
    c_writes_->Add(1);
    c_bytes_written_->Add(static_cast<int64_t>(blob.size()));
  }
  return Status::OK();
}

Status SpillManager::Write(int64_t key, const std::vector<uint8_t>& blob) {
  WaitForKey(key);  // Never race a pending async write of the same key.
  return WriteWithRetry(key, blob);
}

Status SpillManager::WriteAsync(int64_t key, std::vector<uint8_t> blob) {
  std::unique_lock<std::mutex> lock(qmu_);
  if (!writer_started_) {
    writer_started_ = true;
    writer_ = std::thread([this] { WriterLoop(); });
  }
  // Bounded queue = double buffering with backpressure: the caller can
  // serialize the next partition while the writer drains this one, but
  // cannot run unboundedly ahead of the disk.
  space_cv_.wait(lock, [&] { return queue_.size() < queue_capacity_; });
  queue_.push_back(PendingWrite{key, std::move(blob)});
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
  return Status::OK();
}

void SpillManager::WriterLoop() {
  for (;;) {
    PendingWrite item;
    {
      std::unique_lock<std::mutex> lock(qmu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      item = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
      writing_key_ = item.key;
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
      space_cv_.notify_all();
    }
    Status st = WriteWithRetry(item.key, item.blob);
    {
      std::lock_guard<std::mutex> lock(qmu_);
      writing_ = false;
      // First error wins; a failed write leaves no size entry, so readers
      // see NotFound and lineage recomputation can take over.
      if (!st.ok() && async_error_.ok()) async_error_ = st;
    }
    drained_cv_.notify_all();
  }
}

bool SpillManager::KeyPendingLocked(int64_t key) const {
  if (writing_ && writing_key_ == key) return true;
  for (const PendingWrite& w : queue_) {
    if (w.key == key) return true;
  }
  return false;
}

void SpillManager::WaitForKey(int64_t key) {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return !KeyPendingLocked(key); });
}

void SpillManager::WaitDrained() const {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
}

Status SpillManager::Flush() {
  std::unique_lock<std::mutex> lock(qmu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && !writing_; });
  Status st = async_error_;
  async_error_ = Status::OK();
  return st;
}

int64_t SpillManager::bytes_written() const {
  WaitDrained();
  return bytes_written_.load();
}

int64_t SpillManager::bytes_read() const {
  WaitDrained();
  return bytes_read_.load();
}

int64_t SpillManager::num_spills() const {
  WaitDrained();
  return num_spills_.load();
}

int64_t SpillManager::io_retries() const {
  WaitDrained();
  return io_retries_.load();
}

Result<std::vector<uint8_t>> SpillManager::ReadOnce(const std::string& path,
                                                    int64_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file " + path);
  }
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  const size_t read =
      blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (read != blob.size()) {
    return Status::IOError("short read from spill file " + path);
  }
  return blob;
}

Result<std::vector<uint8_t>> SpillManager::Read(int64_t key) {
  WaitForKey(key);  // Read-after-write ordering for async spills.
  int64_t size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sizes_.find(key);
    if (it == sizes_.end()) {
      return Status::NotFound("no spill for partition key " +
                              std::to_string(key));
    }
    size = it->second;
  }
  const std::string path = PathFor(key);
  obs::ScopedLatency latency(h_read_ms_);
  for (int attempt = 0;; ++attempt) {
    Status st =
        injector_ == nullptr
            ? Status::OK()
            : injector_->MaybeFail(FaultSite::kSpillRead,
                                   FaultInjector::TaskKey(
                                       static_cast<uint64_t>(key), attempt),
                                   "key " + std::to_string(key));
    Result<std::vector<uint8_t>> blob = st.ok() ? ReadOnce(path, size) : st;
    if (blob.ok()) {
      bytes_read_.fetch_add(size);
      if (c_reads_ != nullptr) {
        c_reads_->Add(1);
        c_bytes_read_->Add(size);
      }
      return blob;
    }
    if (attempt + 1 >= retry_.max_attempts ||
        !IsRetryable(retry_, blob.status())) {
      return blob;
    }
    io_retries_.fetch_add(1);
    if (c_retries_ != nullptr) c_retries_->Add(1);
    SleepForBackoff(retry_, static_cast<uint64_t>(key), attempt);
  }
}

void SpillManager::Remove(int64_t key) {
  WaitForKey(key);  // Never delete out from under a pending async write.
  // Erase the size entry and delete the file under the same lock so a
  // concurrent Read cannot find the entry after the file is gone.
  std::lock_guard<std::mutex> lock(mu_);
  sizes_.erase(key);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
}

}  // namespace vista::df
