#ifndef VISTA_DATAFLOW_IO_H_
#define VISTA_DATAFLOW_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"

namespace vista::df {

/// Persistent table exchange: structured data as CSV, arbitrary tables
/// (including image and feature tensors) as Vista's binary table format.
/// This is how real datasets enter and leave the engine.

/// Writes the structured fields (id + struct_features) of `records` as CSV
/// with header "id,f0,f1,...". Image and feature fields are not
/// representable in CSV and must be absent (InvalidArgument otherwise).
Status WriteStructCsv(const std::vector<Record>& records,
                      const std::string& path);

/// Reads a CSV written by WriteStructCsv (or hand-made with the same
/// layout). All feature columns must parse as floats.
Result<std::vector<Record>> ReadStructCsv(const std::string& path);

/// Binary table file: magic + version + partition count, then each
/// partition's record count and serialized blob (sparse-encoded feature
/// tensors, see dataflow/record.h). Round-trips any table exactly.
Status WriteTableFile(const Table& table, const std::string& path);

/// Reads a binary table file, restoring the original partitioning.
Result<Table> ReadTableFile(const std::string& path);

/// Writes a CHW image tensor as a binary PPM (P6). Values are clamped to
/// [0, 1] and quantized to 8 bits; single-channel tensors are replicated
/// to gray RGB.
Status WriteImagePpm(const Tensor& image, const std::string& path);

/// Reads a binary PPM (P6) into a 3xHxW float tensor in [0, 1].
Result<Tensor> ReadImagePpm(const std::string& path);

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_IO_H_
