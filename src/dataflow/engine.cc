#include "dataflow/engine.h"

#include <algorithm>
#include <atomic>
#include <unistd.h>

#include "common/flat_map.h"
#include "common/logging.h"
#include "tensor/scratch.h"

namespace vista::df {
namespace {

/// Per-source destination buckets from the first shuffle phase:
/// buckets[source][destination] -> records. A source whose read failed
/// leaves its entry empty; the engine checks statuses before merging.
using SourceBuckets = std::vector<std::vector<std::vector<Record>>>;

/// Concatenates destination bucket `j` of every source, in source-index
/// order. Sources were filled left-to-right by the serial gather this
/// replaces, so fixing the merge order here makes the parallel shuffle's
/// output bit-identical to the serial one at any thread count.
std::vector<Record> MergeDestination(SourceBuckets* sources, int64_t j) {
  size_t total = 0;
  for (const auto& s : *sources) {
    if (!s.empty()) total += s[j].size();
  }
  std::vector<Record> out;
  out.reserve(total);
  for (auto& s : *sources) {
    if (s.empty()) continue;
    for (Record& r : s[j]) out.push_back(std::move(r));
    s[j].clear();
    s[j].shrink_to_fit();
  }
  return out;
}

std::vector<std::vector<Record>> BucketByHash(std::vector<Record> records,
                                              int num_partitions) {
  std::vector<std::vector<Record>> buckets(num_partitions);
  for (Record& r : records) {
    buckets[ShuffleHashId(r.id) % num_partitions].push_back(std::move(r));
  }
  return buckets;
}

// ---------------------------------------------------------------------------
// Late-materialization shuffle. When every input partition is resident in
// serialized form, the shuffle never decodes a record: sources are
// header-scanned into byte-range views (ScanRecord), views are bucketed and
// joined by id, and outputs are built by splicing the referenced byte
// ranges — bit-identical to decode + MergeRecords + re-encode, at memcpy
// speed and without materializing a single tensor.

/// One serialized record in place: the blob that holds it plus its
/// byte-range map. The blob pointer stays valid for the whole shuffle
/// because the input Table keeps its partitions (and their blobs) alive.
struct WireRef {
  const std::vector<uint8_t>* blob;
  SerializedRecordView view;
};

using WireSourceBuckets = std::vector<std::vector<std::vector<WireRef>>>;

/// Wire-view analog of MergeDestination: destination bucket `j` of every
/// source, concatenated in source-index order.
std::vector<WireRef> MergeWireDestination(WireSourceBuckets* sources,
                                          int64_t j) {
  size_t total = 0;
  for (const auto& s : *sources) {
    if (!s.empty()) total += s[j].size();
  }
  std::vector<WireRef> out;
  out.reserve(total);
  for (auto& s : *sources) {
    if (s.empty()) continue;
    out.insert(out.end(), s[j].begin(), s[j].end());
    s[j].clear();
    s[j].shrink_to_fit();
  }
  return out;
}

/// True when the zero-decode shuffle can run: every partition holds its
/// serialized blob in memory.
bool AllSerializedResident(const Table& table) {
  for (const auto& p : table.partitions) {
    if (!p->resident() || p->format() != PersistenceFormat::kSerialized) {
      return false;
    }
  }
  return !table.partitions.empty();
}

/// Wire-view analog of Engine::ShuffleSources: header-scans every source
/// blob in parallel (same retryable shuffle-send fault semantics, same task
/// keys) and buckets the record views by destination hash. Wire bytes are
/// the blob sizes — exact, and free to measure.
Status ScanWireSources(ThreadPool* pool, FaultInjector* injector,
                       const RetryPolicy& policy,
                       std::atomic<int64_t>* task_retries, const Table& table,
                       uint64_t op, int side, int num_destinations,
                       const char* what, WireSourceBuckets* buckets_out,
                       int64_t* wire_bytes_out,
                       obs::Counter* c_blocks_verified,
                       obs::Counter* c_checksum_failures) {
  WireSourceBuckets& buckets = *buckets_out;
  const int ns = table.num_partitions();
  buckets.assign(ns, {});
  std::vector<Status> statuses(ns);
  std::atomic<int64_t> wire_bytes{0};
  pool->ParallelFor(ns, [&](int64_t i) {
    const uint64_t unit = ShuffleTaskUnit(op, side, i);
    auto blob = table.partitions[i]->blob();
    if (!blob.ok()) {
      statuses[i] = blob.status();
      return;
    }
    // Verify the blob's CRC before the header scan walks it: a rotted
    // length field would otherwise let ScanRecord read out of bounds. A
    // mismatch aborts this zero-decode pass with kDataLoss; the caller
    // falls back to the record path, where lineage recomputation applies.
    Status verified = table.partitions[i]->VerifyBlob();
    if (!verified.ok()) {
      if (c_checksum_failures != nullptr) c_checksum_failures->Add(1);
      statuses[i] = verified;
      return;
    }
    if (c_blocks_verified != nullptr) c_blocks_verified->Add(1);
    // An injected shuffle fault models a lost block: the whole source is
    // re-scanned on retry, mirroring ReadPartitionWithRetry.
    std::vector<WireRef> refs;
    for (int attempt = 0;; ++attempt) {
      Status st = injector->MaybeFail(FaultSite::kShuffleSend,
                                      FaultInjector::TaskKey(unit, attempt),
                                      what);
      if (st.ok()) {
        refs.clear();
        refs.reserve(static_cast<size_t>(table.partitions[i]->num_records()));
        size_t offset = 0;
        while (st.ok() && offset < (*blob)->size()) {
          auto view = ScanRecord(**blob, &offset);
          if (view.ok()) {
            refs.push_back(WireRef{*blob, *view});
          } else {
            st = view.status();
          }
        }
        if (st.ok()) break;
      }
      if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
        statuses[i] = st;
        return;
      }
      task_retries->fetch_add(1);
      SleepForBackoff(policy, unit, attempt);
    }
    std::vector<std::vector<WireRef>>& dest = buckets[i];
    dest.resize(num_destinations);
    for (const WireRef& r : refs) {
      dest[ShuffleHashId(r.view.id) % num_destinations].push_back(r);
    }
    wire_bytes.fetch_add(static_cast<int64_t>((*blob)->size()),
                         std::memory_order_relaxed);
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  *wire_bytes_out += wire_bytes.load();
  return Status::OK();
}

}  // namespace

uint64_t ShuffleHashId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const char* JoinStrategyToString(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kShuffleHash:
      return "shuffle";
    case JoinStrategy::kBroadcast:
      return "broadcast";
  }
  return "?";
}

Record MergeRecords(const Record& left, const Record& right) {
  Record out;
  out.id = left.id;
  out.struct_features = left.struct_features;
  out.struct_features.insert(out.struct_features.end(),
                             right.struct_features.begin(),
                             right.struct_features.end());
  out.images = left.has_image() ? left.images : right.images;
  for (const Tensor& t : left.features.tensors()) out.features.Append(t);
  for (const Tensor& t : right.features.tensors()) out.features.Append(t);
  return out;
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  VISTA_CHECK_GE(config_.num_workers, 1);
  VISTA_CHECK_GE(config_.cpus_per_worker, 1);
  memory_ = std::make_unique<MemoryManager>(config_.budgets);
  injector_ = std::make_unique<FaultInjector>(config_.faults);
  if (config_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = config_.metrics;
  }
  if (config_.tracer == nullptr) {
    owned_tracer_ = std::make_unique<obs::TraceCollector>();
    tracer_ = owned_tracer_.get();
  } else {
    tracer_ = config_.tracer;
  }
  c_shuffle_bytes_ = metrics_->counter("engine.shuffle_bytes");
  c_broadcast_bytes_ = metrics_->counter("engine.broadcast_bytes");
  c_map_tasks_ = metrics_->counter("engine.map_tasks");
  c_partitions_read_ = metrics_->counter("engine.partitions_read");
  c_records_out_ = metrics_->counter("engine.records_out");
  c_join_ops_ = metrics_->counter("engine.join_ops");
  h_map_task_ms_ = metrics_->histogram("engine.map_task_ms");
  h_partition_read_ms_ = metrics_->histogram("engine.partition_read_ms");
  h_shuffle_ms_ = metrics_->histogram("engine.shuffle_ms");
  h_serialize_ms_ = metrics_->histogram("engine.serialize_ms");
  g_spill_queue_depth_ = metrics_->gauge("spill.queue_depth");
  c_blocks_verified_ = metrics_->counter("integrity.blocks_verified");
  c_checksum_failures_ = metrics_->counter("integrity.checksum_failures");
  c_recomputes_ = metrics_->counter("integrity.recomputes_triggered");
  if (config_.spill_dir.empty()) {
    config_.spill_dir =
        "/tmp/vista_spill_" + std::to_string(::getpid()) + "_" +
        std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  spill_ = std::make_unique<SpillManager>(config_.spill_dir);
  spill_->set_fault_injector(injector_.get());
  spill_->set_retry_policy(config_.retry);
  spill_->set_metrics(metrics_);
  spill_->set_prefetch_capacity(
      std::max(config_.prefetch_queue_capacity, config_.prefetch_depth));
  cache_ = std::make_unique<StorageCache>(memory_.get(), spill_.get(),
                                          config_.allow_spill,
                                          injector_.get(), metrics_);
  pool_ = std::make_unique<ThreadPool>(config_.num_workers *
                                       config_.cpus_per_worker);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.shuffle_bytes = c_shuffle_bytes_->value();
  s.broadcast_bytes = c_broadcast_bytes_->value();
  // The spill accessors drain any in-flight async writes first, so the
  // totals below are settled.
  s.spill_bytes_written = spill_->bytes_written();
  s.spill_bytes_read = spill_->bytes_read();
  s.num_spills = spill_->num_spills();
  s.spill_queue_depth_peak = g_spill_queue_depth_->max_value();
  s.cache_read_hits = metrics_->counter("cache.read_hits")->value();
  s.cache_read_misses = metrics_->counter("cache.read_misses")->value();
  s.cache_evictions = metrics_->counter("cache.evictions")->value();
  s.cache_inserts = metrics_->counter("cache.inserts")->value();
  s.cache_resident_bytes = metrics_->gauge("cache.resident_bytes")->value();
  s.prefetch_requests = metrics_->counter("prefetch.requests")->value();
  s.prefetch_hits = metrics_->counter("prefetch.hits")->value();
  s.prefetch_claimed = metrics_->counter("prefetch.claimed")->value();
  s.prefetch_dropped = metrics_->counter("prefetch.dropped")->value();
  s.prefetch_corrupt_dropped =
      metrics_->counter("prefetch.corrupt_dropped")->value();
  s.prefetch_queue_depth_peak =
      metrics_->gauge("prefetch.queue_depth")->max_value();
  // Inference-plane totals: models profiled into this registry meter each
  // forward into per-layer "dl.flops.<arch>.<layer>" / "dl.int8_ops.*"
  // counters; the engine-level stats are their prefix sums.
  for (const obs::Counter* c : metrics_->counters()) {
    if (c->name().rfind("dl.flops.", 0) == 0) {
      s.dl_flops += c->value();
    } else if (c->name().rfind("dl.int8_ops.", 0) == 0) {
      s.dl_int8_ops += c->value();
    }
  }
  // Kernel-scratch footprint: refresh the gauge from the process-wide
  // high-water mark so the registry and the stats snapshot agree.
  obs::Gauge* g_scratch = metrics_->gauge("scratch.peak_bytes");
  g_scratch->Set(KernelScratch::GlobalPeakBytes());
  s.scratch_peak_bytes = g_scratch->value();
  s.recovery.retries = task_retries_.load() + spill_->io_retries();
  s.recovery.recomputed_partitions = recomputed_partitions_.load();
  s.recovery.injected_faults = injector_->total_injected();
  s.integrity.blocks_verified = c_blocks_verified_->value();
  s.integrity.checksum_failures = c_checksum_failures_->value();
  s.integrity.torn_writes_detected =
      metrics_->counter("integrity.torn_writes_detected")->value();
  s.integrity.recomputes_triggered = c_recomputes_->value();
  return s;
}

Result<Table> Engine::MakeTable(std::vector<Record> records,
                                int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  auto buckets = BucketByHash(std::move(records), num_partitions);
  Table table;
  table.partitions.reserve(num_partitions);
  for (auto& bucket : buckets) {
    table.partitions.push_back(
        std::make_shared<Partition>(std::move(bucket)));
  }
  return table;
}

void Engine::PrefetchAhead(
    const std::vector<std::shared_ptr<Partition>>& parts, int64_t i,
    int depth) {
  if (depth <= 0) return;
  const int64_t target = i + depth;
  if (target < static_cast<int64_t>(parts.size())) {
    cache_->Prefetch(parts[target]);
  }
}

void Engine::SeedPrefetch(
    const std::vector<std::shared_ptr<Partition>>& parts, int depth) {
  const int64_t n =
      std::min<int64_t>(depth, static_cast<int64_t>(parts.size()));
  for (int64_t i = 0; i < n; ++i) cache_->Prefetch(parts[i]);
}

void Engine::PrefetchTable(const Table& table) {
  for (const auto& p : table.partitions) cache_->Prefetch(p);
}

Result<std::vector<Record>> Engine::ReadPartition(
    const std::shared_ptr<Partition>& p) {
  c_partitions_read_->Add(1);
  obs::ScopedLatency latency(h_partition_read_ms_);
  auto records = cache_->ReadThrough(p);
  if (records.ok() || p->lineage() == nullptr) return records;
  const Status& st = records.status();
  if (!st.IsIOError() && !st.IsNotFound() && !st.IsUnavailable() &&
      !st.IsDataLoss()) {
    return records;
  }
  // The partition's data is gone (lost or corrupt spill block): rebuild it
  // from the parent by re-applying the lineage UDF — Spark-style
  // recomputation instead of job failure. Deterministic UDFs make the
  // rebuilt records bit-identical to the originals. kDataLoss lands here
  // rather than in a retry loop because re-reading a corrupt block cannot
  // help; recomputation is the only cure, and is metered separately.
  const bool from_corruption = st.IsDataLoss();
  const Lineage* lineage = p->lineage();
  VISTA_ASSIGN_OR_RETURN(std::vector<Record> parent_records,
                         ReadPartition(lineage->parent));
  VISTA_ASSIGN_OR_RETURN(std::vector<Record> rebuilt,
                         lineage->fn(std::move(parent_records)));
  recomputed_partitions_.fetch_add(1);
  if (from_corruption) c_recomputes_->Add(1);
  return rebuilt;
}

Result<std::vector<Record>> Engine::ReadPartitionWithRetry(
    const std::shared_ptr<Partition>& p, uint64_t unit, const char* what) {
  const RetryPolicy& policy = config_.retry;
  for (int attempt = 0;; ++attempt) {
    Status st = injector_->MaybeFail(FaultSite::kShuffleSend,
                                     FaultInjector::TaskKey(unit, attempt),
                                     what);
    if (st.ok()) {
      auto records = ReadPartition(p);
      if (records.ok()) return records;
      st = records.status();
    }
    if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
      return st;
    }
    task_retries_.fetch_add(1);
    SleepForBackoff(policy, unit, attempt);
  }
}

Result<Table> Engine::MapPartitions(const Table& input,
                                    const MapPartitionsFn& fn,
                                    int prefetch_depth) {
  const int np = input.num_partitions();
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "map_partitions", "engine");
  const int depth = EffectivePrefetchDepth(prefetch_depth);
  SeedPrefetch(input.partitions, depth);
  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    PrefetchAhead(input.partitions, i, depth);
    c_map_tasks_->Add(1);
    obs::ScopedLatency task_latency(h_map_task_ms_);
    const RetryPolicy& policy = config_.retry;
    const uint64_t unit = ShuffleTaskUnit(op, 0, i);
    for (int attempt = 0;; ++attempt) {
      // The injected failure fires before the UDF runs, modelling a lost
      // task; a retried task re-reads its input and re-runs the UDF from
      // scratch, so partial work never leaks into the output.
      Status st = injector_->MaybeFail(FaultSite::kMapTask,
                                       FaultInjector::TaskKey(unit, attempt),
                                       "partition " + std::to_string(i));
      if (st.ok()) {
        auto records = ReadPartition(input.partitions[i]);
        if (records.ok()) {
          auto mapped = fn(std::move(records).value());
          if (mapped.ok()) {
            c_records_out_->Add(
                static_cast<int64_t>(mapped.value().size()));
            outputs[i] =
                std::make_shared<Partition>(std::move(mapped).value());
            return;
          }
          st = mapped.status();
        } else {
          st = records.status();
        }
      }
      if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
        statuses[i] = st;
        return;
      }
      task_retries_.fetch_add(1);
      SleepForBackoff(policy, unit, attempt);
    }
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  if (config_.enable_lineage) {
    for (int i = 0; i < np; ++i) {
      out.partitions[i]->set_lineage(std::make_shared<Lineage>(
          Lineage{input.partitions[i], fn}));
    }
  }
  return out;
}

Status Engine::ShuffleSources(
    const Table& table, uint64_t op, int side, int num_destinations,
    const char* what,
    std::vector<std::vector<std::vector<Record>>>* buckets_out) {
  SourceBuckets& buckets = *buckets_out;
  const int ns = table.num_partitions();
  buckets.assign(ns, {});
  const int depth = config_.prefetch_depth;
  SeedPrefetch(table.partitions, depth);
  std::vector<Status> statuses(ns);
  std::atomic<int64_t> wire_bytes{0};
  pool_->ParallelFor(ns, [&](int64_t i) {
    PrefetchAhead(table.partitions, i, depth);
    auto records = ReadPartitionWithRetry(table.partitions[i],
                                          ShuffleTaskUnit(op, side, i), what);
    if (!records.ok()) {
      statuses[i] = records.status();
      return;
    }
    std::vector<std::vector<Record>>& dest = buckets[i];
    dest.resize(num_destinations);
    // Wire bytes: the source partition's cached serialized footprint (free
    // for serialized-resident partitions); per-record fallback for spilled
    // sources whose size is not measurable in place.
    int64_t bytes = table.partitions[i]->memory_bytes_as(
        PersistenceFormat::kSerialized);
    if (bytes <= 0) {
      for (const Record& r : *records) bytes += SerializedRecordBytes(r);
    }
    for (Record& r : *records) {
      dest[ShuffleHashId(r.id) % num_destinations].push_back(std::move(r));
    }
    wire_bytes.fetch_add(bytes, std::memory_order_relaxed);
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  c_shuffle_bytes_->Add(wire_bytes.load());
  return Status::OK();
}

Result<Table> Engine::Repartition(const Table& input, int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "repartition", "engine");
  obs::ScopedLatency shuffle_latency(h_shuffle_ms_);
  // Zero-decode path: serialized-resident inputs are moved as byte ranges —
  // header-scan each source, then concatenate each destination's record
  // bytes in source order. No record is ever materialized.
  if (AllSerializedResident(input)) {
    WireSourceBuckets sources;
    int64_t wire_bytes = 0;
    Status scanned = ScanWireSources(
        pool_.get(), injector_.get(), config_.retry, &task_retries_, input,
        op, 0, num_partitions, "repartition read", &sources, &wire_bytes,
        c_blocks_verified_, c_checksum_failures_);
    if (scanned.ok()) {
      c_shuffle_bytes_->Add(wire_bytes);
      Table table;
      table.partitions.resize(num_partitions);
      pool_->ParallelFor(num_partitions, [&](int64_t j) {
        std::vector<WireRef> refs = MergeWireDestination(&sources, j);
        size_t total = 0;
        for (const WireRef& r : refs) total += r.view.wire_bytes();
        std::vector<uint8_t> blob;
        blob.reserve(total);
        for (const WireRef& r : refs) {
          blob.insert(blob.end(), r.blob->begin() + r.view.begin,
                      r.blob->begin() + r.view.tensors_end);
        }
        table.partitions[j] = std::make_shared<Partition>(
            std::move(blob), static_cast<int64_t>(refs.size()));
      });
      return table;
    }
    if (!scanned.IsDataLoss()) return scanned;
    // A resident blob failed verification: fall through to the record
    // path, whose cache-level verify + lineage recomputation can heal the
    // partition instead of failing the op.
  }
  // Two-phase parallel shuffle. Phase 1: every source partition buckets
  // its own records by destination (thread-local, no shared state; metered
  // as shuffle traffic at wire size). Phase 2: per-destination merges, in
  // source order, run in parallel.
  SourceBuckets sources;
  VISTA_RETURN_IF_ERROR(ShuffleSources(input, op, 0, num_partitions,
                                       "repartition read", &sources));
  Table table;
  table.partitions.resize(num_partitions);
  pool_->ParallelFor(num_partitions, [&](int64_t j) {
    table.partitions[j] =
        std::make_shared<Partition>(MergeDestination(&sources, j));
  });
  return table;
}

Result<Table> Engine::Join(const Table& left, const Table& right,
                           JoinStrategy strategy,
                           int num_output_partitions) {
  if (num_output_partitions < 1) {
    return Status::InvalidArgument("num_output_partitions must be >= 1");
  }
  c_join_ops_->Add(1);
  obs::ScopedSpan span(
      tracer_,
      strategy == JoinStrategy::kBroadcast ? "join:broadcast" : "join:shuffle",
      "engine");
  obs::ScopedLatency shuffle_latency(h_shuffle_ms_);
  if (strategy == JoinStrategy::kBroadcast) {
    // Gather the full right side in parallel (per-source slots keep the
    // build input order deterministic), then build one hash table from it.
    // Replicated per worker in a real cluster, so Core memory is charged
    // num_workers times; the wire counter meters actual serialized bytes.
    const uint64_t op = NextOpSeq();
    const int nr = right.num_partitions();
    const int depth = config_.prefetch_depth;
    SeedPrefetch(right.partitions, depth);
    std::vector<std::vector<Record>> gathered(nr);
    std::vector<Status> gather_statuses(nr);
    std::atomic<int64_t> wire_bytes{0};
    pool_->ParallelFor(nr, [&](int64_t i) {
      PrefetchAhead(right.partitions, i, depth);
      auto records = ReadPartitionWithRetry(right.partitions[i],
                                            ShuffleTaskUnit(op, 1, i),
                                            "broadcast gather");
      if (!records.ok()) {
        gather_statuses[i] = records.status();
        return;
      }
      int64_t bytes = right.partitions[i]->memory_bytes_as(
          PersistenceFormat::kSerialized);
      if (bytes <= 0) {
        for (const Record& r : *records) bytes += SerializedRecordBytes(r);
      }
      wire_bytes.fetch_add(bytes, std::memory_order_relaxed);
      gathered[i] = std::move(records).value();
    });
    for (const Status& st : gather_statuses) {
      VISTA_RETURN_IF_ERROR(st);
    }
    size_t total = 0;
    for (const auto& g : gathered) total += g.size();
    std::vector<Record> small;
    small.reserve(total);
    int64_t small_bytes = 0;
    for (auto& g : gathered) {
      for (Record& r : g) {
        small_bytes += EstimateRecordBytes(r);
        small.push_back(std::move(r));
      }
    }
    c_broadcast_bytes_->Add(wire_bytes.load() * config_.num_workers);
    // The replicated hash table holds deserialized records, so the Core
    // charge stays at the in-memory estimate.
    const int64_t charged = small_bytes * config_.num_workers;
    VISTA_RETURN_IF_ERROR(memory_->TryReserve(MemoryRegion::kCore, charged));
    FlatMap<const Record*> hash_table(small.size());
    for (const Record& r : small) hash_table.emplace(r.id, &r);

    const int np = left.num_partitions();
    SeedPrefetch(left.partitions, depth);
    std::vector<std::shared_ptr<Partition>> outputs(np);
    std::vector<Status> statuses(np);
    pool_->ParallelFor(np, [&](int64_t i) {
      PrefetchAhead(left.partitions, i, depth);
      auto records = ReadPartition(left.partitions[i]);
      if (!records.ok()) {
        statuses[i] = records.status();
        return;
      }
      std::vector<Record> joined;
      for (const Record& l : *records) {
        const Record* const* hit = hash_table.find(l.id);
        if (hit != nullptr) {
          joined.push_back(MergeRecords(l, **hit));
        }
      }
      outputs[i] = std::make_shared<Partition>(std::move(joined));
    });
    memory_->Release(MemoryRegion::kCore, charged);
    for (const Status& st : statuses) {
      VISTA_RETURN_IF_ERROR(st);
    }
    Table out;
    out.partitions = std::move(outputs);
    if (out.num_partitions() != num_output_partitions) {
      return Repartition(out, num_output_partitions);
    }
    return out;
  }

  // Shuffle-hash join, two-phase. Phase 1: both sides' source partitions
  // bucket their records by destination hash in one parallel pass over
  // nl + nr read tasks, each into thread-local per-source slots (no shared
  // mutable state, no locks). Each shuffle-side read is a retryable "send"
  // (lost shuffle block). Phase 2: per destination, merge the per-source
  // buckets in fixed source order — making the output bit-identical to the
  // old serial gather at any parallelism — then hash-join the bucket pair.
  const uint64_t op = NextOpSeq();
  const int np = num_output_partitions;
  // Zero-decode path: when both sides are resident serialized, shuffle and
  // join the records as byte ranges and splice the outputs. A blob that
  // fails verification mid-scan drops to the decoding path below, where
  // lineage recomputation can rebuild the corrupt partition.
  if (AllSerializedResident(left) && AllSerializedResident(right)) {
    auto joined = SerializedShuffleJoin(left, right, op, np);
    if (joined.ok() || !joined.status().IsDataLoss()) return joined;
  }
  SourceBuckets left_sources;
  SourceBuckets right_sources;
  VISTA_RETURN_IF_ERROR(
      ShuffleSources(left, op, 0, np, "shuffle send (left)", &left_sources));
  VISTA_RETURN_IF_ERROR(ShuffleSources(right, op, 1, np,
                                       "shuffle send (right)",
                                       &right_sources));

  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    std::vector<Record> left_bucket = MergeDestination(&left_sources, i);
    std::vector<Record> right_bucket = MergeDestination(&right_sources, i);
    // Build side: the smaller bucket. Charge its footprint to Core memory
    // for the duration of the probe (join working memory).
    std::vector<Record>& build = right_bucket.size() <= left_bucket.size()
                                     ? right_bucket
                                     : left_bucket;
    std::vector<Record>& probe = right_bucket.size() <= left_bucket.size()
                                     ? left_bucket
                                     : right_bucket;
    const bool build_is_right = &build == &right_bucket;
    int64_t build_bytes = 0;
    for (const Record& r : build) build_bytes += EstimateRecordBytes(r);
    Status reserve = memory_->TryReserve(MemoryRegion::kCore, build_bytes);
    if (!reserve.ok()) {
      statuses[i] = reserve;
      return;
    }
    FlatMap<const Record*> hash_table(build.size());
    for (const Record& r : build) hash_table.emplace(r.id, &r);
    std::vector<Record> joined;
    joined.reserve(std::min(build.size(), probe.size()));
    for (const Record& p : probe) {
      const Record* const* hit = hash_table.find(p.id);
      if (hit != nullptr) {
        // Keep (left, right) merge order regardless of build side.
        joined.push_back(build_is_right ? MergeRecords(p, **hit)
                                        : MergeRecords(**hit, p));
      }
    }
    memory_->Release(MemoryRegion::kCore, build_bytes);
    build.clear();
    probe.clear();
    outputs[i] = std::make_shared<Partition>(std::move(joined));
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}

Result<Table> Engine::SerializedShuffleJoin(const Table& left,
                                            const Table& right, uint64_t op,
                                            int num_output_partitions) {
  const int np = num_output_partitions;
  int64_t wire_bytes = 0;
  WireSourceBuckets left_sources;
  WireSourceBuckets right_sources;
  VISTA_RETURN_IF_ERROR(ScanWireSources(
      pool_.get(), injector_.get(), config_.retry, &task_retries_, left, op,
      0, np, "shuffle send (left)", &left_sources, &wire_bytes,
      c_blocks_verified_, c_checksum_failures_));
  VISTA_RETURN_IF_ERROR(ScanWireSources(
      pool_.get(), injector_.get(), config_.retry, &task_retries_, right, op,
      1, np, "shuffle send (right)", &right_sources, &wire_bytes,
      c_blocks_verified_, c_checksum_failures_));
  c_shuffle_bytes_->Add(wire_bytes);

  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    std::vector<WireRef> left_bucket = MergeWireDestination(&left_sources, i);
    std::vector<WireRef> right_bucket =
        MergeWireDestination(&right_sources, i);
    // Same build-side choice and merge order as the decoding path, so the
    // spliced output is bit-identical to decode + MergeRecords + re-encode.
    std::vector<WireRef>& build = right_bucket.size() <= left_bucket.size()
                                      ? right_bucket
                                      : left_bucket;
    std::vector<WireRef>& probe = right_bucket.size() <= left_bucket.size()
                                      ? left_bucket
                                      : right_bucket;
    const bool build_is_right = &build == &right_bucket;
    // The hash build holds byte-range views, so the Core charge is the
    // build side's wire footprint — what this path actually keeps resident,
    // not the (larger, dense) deserialized estimate.
    int64_t build_bytes = 0;
    for (const WireRef& r : build) {
      build_bytes += static_cast<int64_t>(r.view.wire_bytes());
    }
    Status reserve = memory_->TryReserve(MemoryRegion::kCore, build_bytes);
    if (!reserve.ok()) {
      statuses[i] = reserve;
      return;
    }
    FlatMap<const WireRef*> hash_table(build.size());
    for (const WireRef& r : build) hash_table.emplace(r.view.id, &r);
    // Probe pass collects the matches (in probe order, (left, right)
    // oriented) and sizes the output exactly; the splice pass then fills
    // one flat allocation with straight memcpys.
    std::vector<std::pair<const WireRef*, const WireRef*>> hits;
    hits.reserve(std::min(build.size(), probe.size()));
    size_t out_bytes = 0;
    for (const WireRef& p : probe) {
      const WireRef* const* hit = hash_table.find(p.view.id);
      if (hit != nullptr) {
        const WireRef* l = build_is_right ? &p : *hit;
        const WireRef* r = build_is_right ? *hit : &p;
        out_bytes += static_cast<size_t>(SplicedJoinBytes(l->view, r->view));
        hits.emplace_back(l, r);
      }
    }
    std::vector<uint8_t> blob;
    blob.reserve(out_bytes);
    for (const auto& [l, r] : hits) {
      SpliceJoinedRecord(*l->blob, l->view, *r->blob, r->view, &blob);
    }
    memory_->Release(MemoryRegion::kCore, build_bytes);
    outputs[i] = std::make_shared<Partition>(
        std::move(blob), static_cast<int64_t>(hits.size()));
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}

Result<Table> Engine::Filter(
    const Table& input, const std::function<bool(const Record&)>& predicate) {
  // Capture the predicate by value: the lambda outlives this call as the
  // output table's lineage UDF.
  return MapPartitions(
      input,
      [predicate](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          if (predicate(r)) out.push_back(std::move(r));
        }
        return out;
      });
}

Result<Table> Engine::Union(const Table& a, const Table& b) {
  if (a.num_partitions() != b.num_partitions()) {
    return Status::InvalidArgument(
        "Union: partition counts differ (" +
        std::to_string(a.num_partitions()) + " vs " +
        std::to_string(b.num_partitions()) + "); repartition first");
  }
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "union", "engine");
  obs::ScopedLatency shuffle_latency(h_shuffle_ms_);
  const int np = a.num_partitions();
  const int depth = config_.prefetch_depth;
  SeedPrefetch(a.partitions, depth);
  SeedPrefetch(b.partitions, depth);
  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    PrefetchAhead(a.partitions, i, depth);
    PrefetchAhead(b.partitions, i, depth);
    auto left = ReadPartitionWithRetry(a.partitions[i],
                                       ShuffleTaskUnit(op, 0, i),
                                       "union read (left)");
    if (!left.ok()) {
      statuses[i] = left.status();
      return;
    }
    auto right = ReadPartitionWithRetry(b.partitions[i],
                                        ShuffleTaskUnit(op, 1, i),
                                        "union read (right)");
    if (!right.ok()) {
      statuses[i] = right.status();
      return;
    }
    std::vector<Record> merged = std::move(left).value();
    std::vector<Record> tail = std::move(right).value();
    merged.reserve(merged.size() + tail.size());
    for (Record& r : tail) merged.push_back(std::move(r));
    outputs[i] = std::make_shared<Partition>(std::move(merged));
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}

Result<Table> Engine::Sample(const Table& input, double fraction,
                             uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("Sample: fraction must be in [0, 1]");
  }
  return MapPartitions(
      input,
      [fraction, seed](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          // Stable per-id hash draw (splitmix64 finalizer).
          uint64_t z = static_cast<uint64_t>(r.id) * 0x9e3779b97f4a7c15ULL +
                       seed;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
          z ^= z >> 31;
          const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
          if (u < fraction) out.push_back(std::move(r));
        }
        return out;
      });
}

Status Engine::Persist(Table* table, PersistenceFormat format) {
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "persist", "engine");
  // Phase 1: per-partition format conversion in parallel — ConvertTo is
  // pure CPU (encode/decode) and partitions are independent.
  const int np = table->num_partitions();
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    obs::ScopedLatency latency(h_serialize_ms_);
    statuses[i] = table->partitions[i]->ConvertTo(format);
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  // Phase 2: sequential inserts (memory-spike fault draws key off the
  // cache's insert sequence, so ordering must stay deterministic). Any
  // eviction they trigger hands its blob to the spill writer thread, which
  // overlaps the disk I/O with the next insert's work.
  for (size_t i = 0; i < table->partitions.size(); ++i) {
    // Transient memory spikes (injected in the cache) reject individual
    // insert attempts with Unavailable; retry them. Genuine budget
    // violations are ResourceExhausted and fail through immediately.
    VISTA_RETURN_IF_ERROR(RunWithRetry(
        config_.retry, ShuffleTaskUnit(op, 0, static_cast<int64_t>(i)),
        [&] { return cache_->Insert(table->partitions[i]); },
        &task_retries_));
  }
  // Ordered flush: async spill-write failures fail the Persist that
  // caused them, not some unrelated later operation.
  return spill_->Flush();
}

void Engine::Unpersist(Table* table) {
  for (auto& p : table->partitions) cache_->Remove(p);
}

Result<std::vector<Record>> Engine::Collect(const Table& table,
                                            int64_t driver_memory_bytes) {
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "collect", "engine");
  // Stays serial: the driver-memory crash must trigger at a deterministic
  // record, in table order, independent of thread scheduling. Read-ahead
  // still overlaps the next partition's disk read with this one's decode.
  const int depth = config_.prefetch_depth;
  SeedPrefetch(table.partitions, depth);
  std::vector<Record> all;
  int64_t bytes = 0;
  for (int i = 0; i < table.num_partitions(); ++i) {
    PrefetchAhead(table.partitions, i, depth);
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> records,
        ReadPartitionWithRetry(table.partitions[i],
                               ShuffleTaskUnit(op, 0, i), "collect fetch"));
    for (Record& r : records) {
      bytes += EstimateRecordBytes(r);
      if (driver_memory_bytes >= 0 && bytes > driver_memory_bytes) {
        return Status::ResourceExhausted(
            "driver memory exhausted while collecting results");
      }
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace vista::df
