#include "dataflow/engine.h"

#include <algorithm>
#include <unistd.h>
#include <unordered_map>

#include "common/logging.h"

namespace vista::df {
namespace {

/// Stable hash of a record id for partitioning (splitmix64 finalizer).
uint64_t HashId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::vector<Record>> BucketByHash(std::vector<Record> records,
                                              int num_partitions) {
  std::vector<std::vector<Record>> buckets(num_partitions);
  for (Record& r : records) {
    buckets[HashId(r.id) % num_partitions].push_back(std::move(r));
  }
  return buckets;
}

}  // namespace

const char* JoinStrategyToString(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kShuffleHash:
      return "shuffle";
    case JoinStrategy::kBroadcast:
      return "broadcast";
  }
  return "?";
}

Record MergeRecords(const Record& left, const Record& right) {
  Record out;
  out.id = left.id;
  out.struct_features = left.struct_features;
  out.struct_features.insert(out.struct_features.end(),
                             right.struct_features.begin(),
                             right.struct_features.end());
  out.images = left.has_image() ? left.images : right.images;
  for (const Tensor& t : left.features.tensors()) out.features.Append(t);
  for (const Tensor& t : right.features.tensors()) out.features.Append(t);
  return out;
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  VISTA_CHECK_GE(config_.num_workers, 1);
  VISTA_CHECK_GE(config_.cpus_per_worker, 1);
  memory_ = std::make_unique<MemoryManager>(config_.budgets);
  if (config_.spill_dir.empty()) {
    config_.spill_dir =
        "/tmp/vista_spill_" + std::to_string(::getpid()) + "_" +
        std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  spill_ = std::make_unique<SpillManager>(config_.spill_dir);
  cache_ = std::make_unique<StorageCache>(memory_.get(), spill_.get(),
                                          config_.allow_spill);
  pool_ = std::make_unique<ThreadPool>(config_.num_workers *
                                       config_.cpus_per_worker);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.shuffle_bytes = shuffle_bytes_.load();
  s.broadcast_bytes = broadcast_bytes_.load();
  s.spill_bytes_written = spill_->bytes_written();
  s.spill_bytes_read = spill_->bytes_read();
  s.num_spills = spill_->num_spills();
  return s;
}

Result<Table> Engine::MakeTable(std::vector<Record> records,
                                int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  auto buckets = BucketByHash(std::move(records), num_partitions);
  Table table;
  table.partitions.reserve(num_partitions);
  for (auto& bucket : buckets) {
    table.partitions.push_back(
        std::make_shared<Partition>(std::move(bucket)));
  }
  return table;
}

Result<std::vector<Record>> Engine::ReadPartition(
    const std::shared_ptr<Partition>& p) {
  return cache_->ReadThrough(p);
}

Result<Table> Engine::MapPartitions(const Table& input,
                                    const MapPartitionsFn& fn) {
  const int np = input.num_partitions();
  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    auto records = ReadPartition(input.partitions[i]);
    if (!records.ok()) {
      statuses[i] = records.status();
      return;
    }
    auto mapped = fn(std::move(records).value());
    if (!mapped.ok()) {
      statuses[i] = mapped.status();
      return;
    }
    outputs[i] = std::make_shared<Partition>(std::move(mapped).value());
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}

Result<Table> Engine::Repartition(const Table& input, int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  // Gather-and-rebucket; metered as shuffle traffic.
  std::vector<Record> all;
  for (const auto& p : input.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> records, ReadPartition(p));
    for (Record& r : records) {
      shuffle_bytes_.fetch_add(EstimateRecordBytes(r));
      all.push_back(std::move(r));
    }
  }
  return MakeTable(std::move(all), num_partitions);
}

Result<Table> Engine::Join(const Table& left, const Table& right,
                           JoinStrategy strategy,
                           int num_output_partitions) {
  if (num_output_partitions < 1) {
    return Status::InvalidArgument("num_output_partitions must be >= 1");
  }
  if (strategy == JoinStrategy::kBroadcast) {
    // Build one hash table from the full right side; replicated per worker
    // in a real cluster, so Core memory is charged num_workers times.
    std::vector<Record> small;
    int64_t small_bytes = 0;
    for (const auto& p : right.partitions) {
      VISTA_ASSIGN_OR_RETURN(std::vector<Record> records, ReadPartition(p));
      for (Record& r : records) {
        small_bytes += EstimateRecordBytes(r);
        small.push_back(std::move(r));
      }
    }
    broadcast_bytes_.fetch_add(small_bytes * config_.num_workers);
    const int64_t charged = small_bytes * config_.num_workers;
    VISTA_RETURN_IF_ERROR(memory_->TryReserve(MemoryRegion::kCore, charged));
    std::unordered_map<int64_t, const Record*> hash_table;
    hash_table.reserve(small.size());
    for (const Record& r : small) hash_table.emplace(r.id, &r);

    const int np = left.num_partitions();
    std::vector<std::shared_ptr<Partition>> outputs(np);
    std::vector<Status> statuses(np);
    pool_->ParallelFor(np, [&](int64_t i) {
      auto records = ReadPartition(left.partitions[i]);
      if (!records.ok()) {
        statuses[i] = records.status();
        return;
      }
      std::vector<Record> joined;
      for (const Record& l : *records) {
        auto it = hash_table.find(l.id);
        if (it != hash_table.end()) {
          joined.push_back(MergeRecords(l, *it->second));
        }
      }
      outputs[i] = std::make_shared<Partition>(std::move(joined));
    });
    memory_->Release(MemoryRegion::kCore, charged);
    for (const Status& st : statuses) {
      VISTA_RETURN_IF_ERROR(st);
    }
    Table out;
    out.partitions = std::move(outputs);
    if (out.num_partitions() != num_output_partitions) {
      return Repartition(out, num_output_partitions);
    }
    return out;
  }

  // Shuffle-hash join: bucket both sides by id hash into the output
  // partition count, then hash-join bucket pairs in parallel.
  const int np = num_output_partitions;
  std::vector<std::vector<Record>> left_buckets(np);
  std::vector<std::vector<Record>> right_buckets(np);
  for (const auto& p : left.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> records, ReadPartition(p));
    for (Record& r : records) {
      shuffle_bytes_.fetch_add(EstimateRecordBytes(r));
      left_buckets[HashId(r.id) % np].push_back(std::move(r));
    }
  }
  for (const auto& p : right.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> records, ReadPartition(p));
    for (Record& r : records) {
      shuffle_bytes_.fetch_add(EstimateRecordBytes(r));
      right_buckets[HashId(r.id) % np].push_back(std::move(r));
    }
  }

  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    // Build side: the smaller bucket. Charge its footprint to Core memory
    // for the duration of the probe (join working memory).
    std::vector<Record>& build = right_buckets[i].size() <=
                                         left_buckets[i].size()
                                     ? right_buckets[i]
                                     : left_buckets[i];
    std::vector<Record>& probe = right_buckets[i].size() <=
                                         left_buckets[i].size()
                                     ? left_buckets[i]
                                     : right_buckets[i];
    const bool build_is_right = &build == &right_buckets[i];
    int64_t build_bytes = 0;
    for (const Record& r : build) build_bytes += EstimateRecordBytes(r);
    Status reserve = memory_->TryReserve(MemoryRegion::kCore, build_bytes);
    if (!reserve.ok()) {
      statuses[i] = reserve;
      return;
    }
    std::unordered_map<int64_t, const Record*> hash_table;
    hash_table.reserve(build.size());
    for (const Record& r : build) hash_table.emplace(r.id, &r);
    std::vector<Record> joined;
    for (const Record& p : probe) {
      auto it = hash_table.find(p.id);
      if (it != hash_table.end()) {
        // Keep (left, right) merge order regardless of build side.
        joined.push_back(build_is_right ? MergeRecords(p, *it->second)
                                        : MergeRecords(*it->second, p));
      }
    }
    memory_->Release(MemoryRegion::kCore, build_bytes);
    build.clear();
    probe.clear();
    outputs[i] = std::make_shared<Partition>(std::move(joined));
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}


Result<Table> Engine::Filter(
    const Table& input, const std::function<bool(const Record&)>& predicate) {
  return MapPartitions(
      input,
      [&predicate](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          if (predicate(r)) out.push_back(std::move(r));
        }
        return out;
      });
}

Result<Table> Engine::Union(const Table& a, const Table& b) {
  if (a.num_partitions() != b.num_partitions()) {
    return Status::InvalidArgument(
        "Union: partition counts differ (" +
        std::to_string(a.num_partitions()) + " vs " +
        std::to_string(b.num_partitions()) + "); repartition first");
  }
  Table out;
  for (int i = 0; i < a.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> left,
                           ReadPartition(a.partitions[i]));
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> right,
                           ReadPartition(b.partitions[i]));
    for (Record& r : right) left.push_back(std::move(r));
    out.partitions.push_back(std::make_shared<Partition>(std::move(left)));
  }
  return out;
}

Result<Table> Engine::Sample(const Table& input, double fraction,
                             uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("Sample: fraction must be in [0, 1]");
  }
  return MapPartitions(
      input,
      [fraction, seed](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          // Stable per-id hash draw (splitmix64 finalizer).
          uint64_t z = static_cast<uint64_t>(r.id) * 0x9e3779b97f4a7c15ULL +
                       seed;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
          z ^= z >> 31;
          const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
          if (u < fraction) out.push_back(std::move(r));
        }
        return out;
      });
}

Status Engine::Persist(Table* table, PersistenceFormat format) {
  for (auto& p : table->partitions) {
    VISTA_RETURN_IF_ERROR(p->ConvertTo(format));
    VISTA_RETURN_IF_ERROR(cache_->Insert(p));
  }
  return Status::OK();
}

void Engine::Unpersist(Table* table) {
  for (auto& p : table->partitions) cache_->Remove(p);
}

Result<std::vector<Record>> Engine::Collect(const Table& table,
                                            int64_t driver_memory_bytes) {
  std::vector<Record> all;
  int64_t bytes = 0;
  for (const auto& p : table.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<Record> records, ReadPartition(p));
    for (Record& r : records) {
      bytes += EstimateRecordBytes(r);
      if (driver_memory_bytes >= 0 && bytes > driver_memory_bytes) {
        return Status::ResourceExhausted(
            "driver memory exhausted while collecting results");
      }
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace vista::df
