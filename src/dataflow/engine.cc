#include "dataflow/engine.h"

#include <algorithm>
#include <unistd.h>
#include <unordered_map>

#include "common/logging.h"

namespace vista::df {
namespace {

/// Stable hash of a record id for partitioning (splitmix64 finalizer).
uint64_t HashId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::vector<Record>> BucketByHash(std::vector<Record> records,
                                              int num_partitions) {
  std::vector<std::vector<Record>> buckets(num_partitions);
  for (Record& r : records) {
    buckets[HashId(r.id) % num_partitions].push_back(std::move(r));
  }
  return buckets;
}

}  // namespace

const char* JoinStrategyToString(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kShuffleHash:
      return "shuffle";
    case JoinStrategy::kBroadcast:
      return "broadcast";
  }
  return "?";
}

Record MergeRecords(const Record& left, const Record& right) {
  Record out;
  out.id = left.id;
  out.struct_features = left.struct_features;
  out.struct_features.insert(out.struct_features.end(),
                             right.struct_features.begin(),
                             right.struct_features.end());
  out.images = left.has_image() ? left.images : right.images;
  for (const Tensor& t : left.features.tensors()) out.features.Append(t);
  for (const Tensor& t : right.features.tensors()) out.features.Append(t);
  return out;
}

Engine::Engine(EngineConfig config) : config_(std::move(config)) {
  VISTA_CHECK_GE(config_.num_workers, 1);
  VISTA_CHECK_GE(config_.cpus_per_worker, 1);
  memory_ = std::make_unique<MemoryManager>(config_.budgets);
  injector_ = std::make_unique<FaultInjector>(config_.faults);
  if (config_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::Registry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = config_.metrics;
  }
  if (config_.tracer == nullptr) {
    owned_tracer_ = std::make_unique<obs::TraceCollector>();
    tracer_ = owned_tracer_.get();
  } else {
    tracer_ = config_.tracer;
  }
  c_shuffle_bytes_ = metrics_->counter("engine.shuffle_bytes");
  c_broadcast_bytes_ = metrics_->counter("engine.broadcast_bytes");
  c_map_tasks_ = metrics_->counter("engine.map_tasks");
  c_partitions_read_ = metrics_->counter("engine.partitions_read");
  c_records_out_ = metrics_->counter("engine.records_out");
  c_join_ops_ = metrics_->counter("engine.join_ops");
  h_map_task_ms_ = metrics_->histogram("engine.map_task_ms");
  h_partition_read_ms_ = metrics_->histogram("engine.partition_read_ms");
  if (config_.spill_dir.empty()) {
    config_.spill_dir =
        "/tmp/vista_spill_" + std::to_string(::getpid()) + "_" +
        std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  spill_ = std::make_unique<SpillManager>(config_.spill_dir);
  spill_->set_fault_injector(injector_.get());
  spill_->set_retry_policy(config_.retry);
  spill_->set_metrics(metrics_);
  cache_ = std::make_unique<StorageCache>(memory_.get(), spill_.get(),
                                          config_.allow_spill,
                                          injector_.get(), metrics_);
  pool_ = std::make_unique<ThreadPool>(config_.num_workers *
                                       config_.cpus_per_worker);
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.shuffle_bytes = c_shuffle_bytes_->value();
  s.broadcast_bytes = c_broadcast_bytes_->value();
  s.spill_bytes_written = spill_->bytes_written();
  s.spill_bytes_read = spill_->bytes_read();
  s.num_spills = spill_->num_spills();
  s.recovery.retries = task_retries_.load() + spill_->io_retries();
  s.recovery.recomputed_partitions = recomputed_partitions_.load();
  s.recovery.injected_faults = injector_->total_injected();
  return s;
}

Result<Table> Engine::MakeTable(std::vector<Record> records,
                                int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  auto buckets = BucketByHash(std::move(records), num_partitions);
  Table table;
  table.partitions.reserve(num_partitions);
  for (auto& bucket : buckets) {
    table.partitions.push_back(
        std::make_shared<Partition>(std::move(bucket)));
  }
  return table;
}

Result<std::vector<Record>> Engine::ReadPartition(
    const std::shared_ptr<Partition>& p) {
  c_partitions_read_->Add(1);
  obs::ScopedLatency latency(h_partition_read_ms_);
  auto records = cache_->ReadThrough(p);
  if (records.ok() || p->lineage() == nullptr) return records;
  const Status& st = records.status();
  if (!st.IsIOError() && !st.IsNotFound() && !st.IsUnavailable()) {
    return records;
  }
  // The partition's data is gone (lost or corrupt spill block): rebuild it
  // from the parent by re-applying the lineage UDF — Spark-style
  // recomputation instead of job failure. Deterministic UDFs make the
  // rebuilt records bit-identical to the originals.
  const Lineage* lineage = p->lineage();
  VISTA_ASSIGN_OR_RETURN(std::vector<Record> parent_records,
                         ReadPartition(lineage->parent));
  VISTA_ASSIGN_OR_RETURN(std::vector<Record> rebuilt,
                         lineage->fn(std::move(parent_records)));
  recomputed_partitions_.fetch_add(1);
  return rebuilt;
}

Result<std::vector<Record>> Engine::ReadPartitionWithRetry(
    const std::shared_ptr<Partition>& p, uint64_t unit, const char* what) {
  const RetryPolicy& policy = config_.retry;
  for (int attempt = 0;; ++attempt) {
    Status st = injector_->MaybeFail(FaultSite::kShuffleSend,
                                     FaultInjector::TaskKey(unit, attempt),
                                     what);
    if (st.ok()) {
      auto records = ReadPartition(p);
      if (records.ok()) return records;
      st = records.status();
    }
    if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
      return st;
    }
    task_retries_.fetch_add(1);
    SleepForBackoff(policy, unit, attempt);
  }
}

Result<Table> Engine::MapPartitions(const Table& input,
                                    const MapPartitionsFn& fn) {
  const int np = input.num_partitions();
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "map_partitions", "engine");
  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    c_map_tasks_->Add(1);
    obs::ScopedLatency task_latency(h_map_task_ms_);
    const RetryPolicy& policy = config_.retry;
    const uint64_t unit = (op << 16) | static_cast<uint64_t>(i);
    for (int attempt = 0;; ++attempt) {
      // The injected failure fires before the UDF runs, modelling a lost
      // task; a retried task re-reads its input and re-runs the UDF from
      // scratch, so partial work never leaks into the output.
      Status st = injector_->MaybeFail(FaultSite::kMapTask,
                                       FaultInjector::TaskKey(unit, attempt),
                                       "partition " + std::to_string(i));
      if (st.ok()) {
        auto records = ReadPartition(input.partitions[i]);
        if (records.ok()) {
          auto mapped = fn(std::move(records).value());
          if (mapped.ok()) {
            c_records_out_->Add(
                static_cast<int64_t>(mapped.value().size()));
            outputs[i] =
                std::make_shared<Partition>(std::move(mapped).value());
            return;
          }
          st = mapped.status();
        } else {
          st = records.status();
        }
      }
      if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
        statuses[i] = st;
        return;
      }
      task_retries_.fetch_add(1);
      SleepForBackoff(policy, unit, attempt);
    }
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  if (config_.enable_lineage) {
    for (int i = 0; i < np; ++i) {
      out.partitions[i]->set_lineage(std::make_shared<Lineage>(
          Lineage{input.partitions[i], fn}));
    }
  }
  return out;
}

Result<Table> Engine::Repartition(const Table& input, int num_partitions) {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1");
  }
  // Gather-and-rebucket; metered as shuffle traffic.
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "repartition", "engine");
  std::vector<Record> all;
  for (int i = 0; i < input.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> records,
        ReadPartitionWithRetry(input.partitions[i],
                               (op << 16) | static_cast<uint64_t>(i),
                               "repartition read"));
    for (Record& r : records) {
      c_shuffle_bytes_->Add(EstimateRecordBytes(r));
      all.push_back(std::move(r));
    }
  }
  return MakeTable(std::move(all), num_partitions);
}

Result<Table> Engine::Join(const Table& left, const Table& right,
                           JoinStrategy strategy,
                           int num_output_partitions) {
  if (num_output_partitions < 1) {
    return Status::InvalidArgument("num_output_partitions must be >= 1");
  }
  c_join_ops_->Add(1);
  obs::ScopedSpan span(
      tracer_,
      strategy == JoinStrategy::kBroadcast ? "join:broadcast" : "join:shuffle",
      "engine");
  if (strategy == JoinStrategy::kBroadcast) {
    // Build one hash table from the full right side; replicated per worker
    // in a real cluster, so Core memory is charged num_workers times.
    const uint64_t op = NextOpSeq();
    std::vector<Record> small;
    int64_t small_bytes = 0;
    for (int i = 0; i < right.num_partitions(); ++i) {
      VISTA_ASSIGN_OR_RETURN(
          std::vector<Record> records,
          ReadPartitionWithRetry(right.partitions[i],
                                 (op << 16) | static_cast<uint64_t>(i),
                                 "broadcast gather"));
      for (Record& r : records) {
        small_bytes += EstimateRecordBytes(r);
        small.push_back(std::move(r));
      }
    }
    c_broadcast_bytes_->Add(small_bytes * config_.num_workers);
    const int64_t charged = small_bytes * config_.num_workers;
    VISTA_RETURN_IF_ERROR(memory_->TryReserve(MemoryRegion::kCore, charged));
    std::unordered_map<int64_t, const Record*> hash_table;
    hash_table.reserve(small.size());
    for (const Record& r : small) hash_table.emplace(r.id, &r);

    const int np = left.num_partitions();
    std::vector<std::shared_ptr<Partition>> outputs(np);
    std::vector<Status> statuses(np);
    pool_->ParallelFor(np, [&](int64_t i) {
      auto records = ReadPartition(left.partitions[i]);
      if (!records.ok()) {
        statuses[i] = records.status();
        return;
      }
      std::vector<Record> joined;
      for (const Record& l : *records) {
        auto it = hash_table.find(l.id);
        if (it != hash_table.end()) {
          joined.push_back(MergeRecords(l, *it->second));
        }
      }
      outputs[i] = std::make_shared<Partition>(std::move(joined));
    });
    memory_->Release(MemoryRegion::kCore, charged);
    for (const Status& st : statuses) {
      VISTA_RETURN_IF_ERROR(st);
    }
    Table out;
    out.partitions = std::move(outputs);
    if (out.num_partitions() != num_output_partitions) {
      return Repartition(out, num_output_partitions);
    }
    return out;
  }

  // Shuffle-hash join: bucket both sides by id hash into the output
  // partition count, then hash-join bucket pairs in parallel. Each
  // shuffle-side read is a retryable "send" (lost shuffle block).
  const uint64_t op = NextOpSeq();
  const int np = num_output_partitions;
  std::vector<std::vector<Record>> left_buckets(np);
  std::vector<std::vector<Record>> right_buckets(np);
  for (int i = 0; i < left.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> records,
        ReadPartitionWithRetry(left.partitions[i],
                               (op << 16) | static_cast<uint64_t>(i),
                               "shuffle send (left)"));
    for (Record& r : records) {
      c_shuffle_bytes_->Add(EstimateRecordBytes(r));
      left_buckets[HashId(r.id) % np].push_back(std::move(r));
    }
  }
  for (int i = 0; i < right.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> records,
        ReadPartitionWithRetry(right.partitions[i],
                               (op << 16) | static_cast<uint64_t>(
                                   0x8000 + i),
                               "shuffle send (right)"));
    for (Record& r : records) {
      c_shuffle_bytes_->Add(EstimateRecordBytes(r));
      right_buckets[HashId(r.id) % np].push_back(std::move(r));
    }
  }

  std::vector<std::shared_ptr<Partition>> outputs(np);
  std::vector<Status> statuses(np);
  pool_->ParallelFor(np, [&](int64_t i) {
    // Build side: the smaller bucket. Charge its footprint to Core memory
    // for the duration of the probe (join working memory).
    std::vector<Record>& build = right_buckets[i].size() <=
                                         left_buckets[i].size()
                                     ? right_buckets[i]
                                     : left_buckets[i];
    std::vector<Record>& probe = right_buckets[i].size() <=
                                         left_buckets[i].size()
                                     ? left_buckets[i]
                                     : right_buckets[i];
    const bool build_is_right = &build == &right_buckets[i];
    int64_t build_bytes = 0;
    for (const Record& r : build) build_bytes += EstimateRecordBytes(r);
    Status reserve = memory_->TryReserve(MemoryRegion::kCore, build_bytes);
    if (!reserve.ok()) {
      statuses[i] = reserve;
      return;
    }
    std::unordered_map<int64_t, const Record*> hash_table;
    hash_table.reserve(build.size());
    for (const Record& r : build) hash_table.emplace(r.id, &r);
    std::vector<Record> joined;
    for (const Record& p : probe) {
      auto it = hash_table.find(p.id);
      if (it != hash_table.end()) {
        // Keep (left, right) merge order regardless of build side.
        joined.push_back(build_is_right ? MergeRecords(p, *it->second)
                                        : MergeRecords(*it->second, p));
      }
    }
    memory_->Release(MemoryRegion::kCore, build_bytes);
    build.clear();
    probe.clear();
    outputs[i] = std::make_shared<Partition>(std::move(joined));
  });
  for (const Status& st : statuses) {
    VISTA_RETURN_IF_ERROR(st);
  }
  Table out;
  out.partitions = std::move(outputs);
  return out;
}


Result<Table> Engine::Filter(
    const Table& input, const std::function<bool(const Record&)>& predicate) {
  // Capture the predicate by value: the lambda outlives this call as the
  // output table's lineage UDF.
  return MapPartitions(
      input,
      [predicate](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          if (predicate(r)) out.push_back(std::move(r));
        }
        return out;
      });
}

Result<Table> Engine::Union(const Table& a, const Table& b) {
  if (a.num_partitions() != b.num_partitions()) {
    return Status::InvalidArgument(
        "Union: partition counts differ (" +
        std::to_string(a.num_partitions()) + " vs " +
        std::to_string(b.num_partitions()) + "); repartition first");
  }
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "union", "engine");
  Table out;
  for (int i = 0; i < a.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> left,
        ReadPartitionWithRetry(a.partitions[i],
                               (op << 16) | static_cast<uint64_t>(i),
                               "union read (left)"));
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> right,
        ReadPartitionWithRetry(b.partitions[i],
                               (op << 16) | static_cast<uint64_t>(
                                   0x8000 + i),
                               "union read (right)"));
    for (Record& r : right) left.push_back(std::move(r));
    out.partitions.push_back(std::make_shared<Partition>(std::move(left)));
  }
  return out;
}

Result<Table> Engine::Sample(const Table& input, double fraction,
                             uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("Sample: fraction must be in [0, 1]");
  }
  return MapPartitions(
      input,
      [fraction, seed](std::vector<Record> records)
          -> Result<std::vector<Record>> {
        std::vector<Record> out;
        for (Record& r : records) {
          // Stable per-id hash draw (splitmix64 finalizer).
          uint64_t z = static_cast<uint64_t>(r.id) * 0x9e3779b97f4a7c15ULL +
                       seed;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
          z ^= z >> 31;
          const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
          if (u < fraction) out.push_back(std::move(r));
        }
        return out;
      });
}

Status Engine::Persist(Table* table, PersistenceFormat format) {
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "persist", "engine");
  for (size_t i = 0; i < table->partitions.size(); ++i) {
    auto& p = table->partitions[i];
    VISTA_RETURN_IF_ERROR(p->ConvertTo(format));
    // Transient memory spikes (injected in the cache) reject individual
    // insert attempts with Unavailable; retry them. Genuine budget
    // violations are ResourceExhausted and fail through immediately.
    VISTA_RETURN_IF_ERROR(RunWithRetry(
        config_.retry, (op << 16) | i, [&] { return cache_->Insert(p); },
        &task_retries_));
  }
  return Status::OK();
}

void Engine::Unpersist(Table* table) {
  for (auto& p : table->partitions) cache_->Remove(p);
}

Result<std::vector<Record>> Engine::Collect(const Table& table,
                                            int64_t driver_memory_bytes) {
  const uint64_t op = NextOpSeq();
  obs::ScopedSpan span(tracer_, "collect", "engine");
  std::vector<Record> all;
  int64_t bytes = 0;
  for (int i = 0; i < table.num_partitions(); ++i) {
    VISTA_ASSIGN_OR_RETURN(
        std::vector<Record> records,
        ReadPartitionWithRetry(table.partitions[i],
                               (op << 16) | static_cast<uint64_t>(i),
                               "collect fetch"));
    for (Record& r : records) {
      bytes += EstimateRecordBytes(r);
      if (driver_memory_bytes >= 0 && bytes > driver_memory_bytes) {
        return Status::ResourceExhausted(
            "driver memory exhausted while collecting results");
      }
      all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace vista::df
