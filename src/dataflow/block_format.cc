#include "dataflow/block_format.h"

#include <cstring>

#include "common/checksum.h"

namespace vista::df {
namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status Fail(BlockDefect d, BlockDefect* defect, const std::string& msg) {
  if (defect != nullptr) *defect = d;
  return Status::DataLoss("block frame " + std::string(BlockDefectToString(d)) +
                          ": " + msg);
}

}  // namespace

const char* BlockDefectToString(BlockDefect defect) {
  switch (defect) {
    case BlockDefect::kNone:
      return "ok";
    case BlockDefect::kTruncated:
      return "truncated";
    case BlockDefect::kBadMagic:
      return "bad-magic";
    case BlockDefect::kBadVersion:
      return "bad-version";
    case BlockDefect::kHeaderCorrupt:
      return "header-corrupt";
    case BlockDefect::kPayloadCorrupt:
      return "payload-corrupt";
    case BlockDefect::kBadFooter:
      return "bad-footer";
    case BlockDefect::kTrailingGarbage:
      return "trailing-garbage";
    case BlockDefect::kStale:
      return "stale";
  }
  return "?";
}

void EncodeBlockFrame(const std::vector<uint8_t>& payload, uint64_t seq,
                      std::vector<uint8_t>* out) {
  out->reserve(out->size() + payload.size() + kBlockFrameOverhead);
  const size_t header_begin = out->size();
  PutU32(out, kBlockMagic);
  PutU32(out, kBlockFormatVersion);
  PutU64(out, seq);
  PutU64(out, static_cast<uint64_t>(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  PutU32(out, Crc32c(out->data() + header_begin, kBlockHeaderBytes - 4));
  out->insert(out->end(), payload.begin(), payload.end());
  PutU32(out, kBlockFooterMagic);
}

Result<DecodedBlock> DecodeBlockFrame(const uint8_t* data, size_t size,
                                      int64_t expected_seq,
                                      BlockDefect* defect) {
  if (defect != nullptr) *defect = BlockDefect::kNone;
  if (size < kBlockFrameOverhead) {
    return Fail(BlockDefect::kTruncated, defect,
                "frame is " + std::to_string(size) + " bytes, header+footer "
                "alone need " + std::to_string(kBlockFrameOverhead));
  }
  if (GetU32(data) != kBlockMagic) {
    return Fail(BlockDefect::kBadMagic, defect, "leading magic mismatch");
  }
  // The header CRC is checked before any header field is *used*, so a
  // flipped bit in the length can never drive an out-of-bounds read.
  const uint32_t header_crc = GetU32(data + kBlockHeaderBytes - 4);
  if (Crc32c(data, kBlockHeaderBytes - 4) != header_crc) {
    return Fail(BlockDefect::kHeaderCorrupt, defect, "header CRC mismatch");
  }
  const uint32_t version = GetU32(data + 4);
  if (version != kBlockFormatVersion) {
    return Fail(BlockDefect::kBadVersion, defect,
                "version " + std::to_string(version));
  }
  const uint64_t seq = GetU64(data + 8);
  const uint64_t payload_len = GetU64(data + 16);
  // Exact-size equation, overflow-safe: compare against the span we have
  // rather than computing header + payload + footer (which could wrap).
  const uint64_t body_bytes = size - kBlockFrameOverhead;
  if (payload_len > body_bytes) {
    return Fail(BlockDefect::kTruncated, defect,
                "declared payload " + std::to_string(payload_len) +
                    " exceeds the " + std::to_string(body_bytes) +
                    " bytes present");
  }
  if (payload_len < body_bytes) {
    return Fail(BlockDefect::kTrailingGarbage, defect,
                std::to_string(body_bytes - payload_len) +
                    " bytes beyond the frame end");
  }
  const uint8_t* payload = data + kBlockHeaderBytes;
  if (GetU32(payload + payload_len) != kBlockFooterMagic) {
    return Fail(BlockDefect::kBadFooter, defect, "footer sentinel mismatch");
  }
  const uint32_t payload_crc = GetU32(data + 24);
  if (Crc32c(payload, payload_len) != payload_crc) {
    return Fail(BlockDefect::kPayloadCorrupt, defect, "payload CRC mismatch");
  }
  if (expected_seq >= 0 && seq != static_cast<uint64_t>(expected_seq)) {
    return Fail(BlockDefect::kStale, defect,
                "block generation " + std::to_string(seq) + ", expected " +
                    std::to_string(expected_seq));
  }
  DecodedBlock block;
  block.seq = seq;
  block.payload.assign(payload, payload + payload_len);
  return block;
}

}  // namespace vista::df
