#include "dataflow/memory.h"

#include <limits>
#include <sstream>

#include "common/bytes.h"

namespace vista::df {

const char* MemoryRegionToString(MemoryRegion region) {
  switch (region) {
    case MemoryRegion::kUser:
      return "User";
    case MemoryRegion::kCore:
      return "Core";
    case MemoryRegion::kStorage:
      return "Storage";
    case MemoryRegion::kDlExecution:
      return "DLExecution";
  }
  return "?";
}

int64_t MemoryBudgets::Get(MemoryRegion region) const {
  switch (region) {
    case MemoryRegion::kUser:
      return user;
    case MemoryRegion::kCore:
      return core;
    case MemoryRegion::kStorage:
      return storage;
    case MemoryRegion::kDlExecution:
      return dl_execution;
  }
  return -1;
}

MemoryManager::MemoryManager(MemoryBudgets budgets) : budgets_(budgets) {
  for (int i = 0; i < kNumMemoryRegions; ++i) {
    used_[i].store(0);
    peak_[i].store(0);
  }
}

Status MemoryManager::TryReserve(MemoryRegion region, int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  const int idx = static_cast<int>(region);
  const int64_t budget = budgets_.Get(region);
  std::lock_guard<std::mutex> lock(region_mu_[idx]);
  const int64_t current = used_[idx].load(std::memory_order_relaxed);
  const int64_t proposed = current + bytes;
  if (budget >= 0 && proposed > budget) {
    return Status::ResourceExhausted(
        std::string(MemoryRegionToString(region)) +
        " memory exhausted: in use " + FormatBytes(current) +
        ", requested " + FormatBytes(bytes) + ", budget " +
        FormatBytes(budget));
  }
  used_[idx].store(proposed, std::memory_order_relaxed);
  if (proposed > peak_[idx].load(std::memory_order_relaxed)) {
    peak_[idx].store(proposed, std::memory_order_relaxed);
  }
  return Status::OK();
}

void MemoryManager::Release(MemoryRegion region, int64_t bytes) {
  if (bytes <= 0) return;
  const int idx = static_cast<int>(region);
  std::lock_guard<std::mutex> lock(region_mu_[idx]);
  const int64_t current = used_[idx].load(std::memory_order_relaxed);
  // Defensive clamp at zero; going negative indicates an accounting bug
  // upstream.
  used_[idx].store(current >= bytes ? current - bytes : 0,
                   std::memory_order_relaxed);
}

int64_t MemoryManager::Used(MemoryRegion region) const {
  return used_[static_cast<int>(region)].load(std::memory_order_relaxed);
}

int64_t MemoryManager::Budget(MemoryRegion region) const {
  return budgets_.Get(region);
}

int64_t MemoryManager::Peak(MemoryRegion region) const {
  return peak_[static_cast<int>(region)].load(std::memory_order_relaxed);
}

int64_t MemoryManager::Available(MemoryRegion region) const {
  const int64_t budget = budgets_.Get(region);
  if (budget < 0) return std::numeric_limits<int64_t>::max();
  return budget - Used(region);
}

std::string MemoryManager::DebugString() const {
  std::ostringstream os;
  for (int i = 0; i < kNumMemoryRegions; ++i) {
    const auto region = static_cast<MemoryRegion>(i);
    os << MemoryRegionToString(region) << ": used "
       << FormatBytes(Used(region)) << " / budget ";
    const int64_t budget = Budget(region);
    os << (budget < 0 ? "unlimited" : FormatBytes(budget));
    os << " (peak " << FormatBytes(Peak(region)) << ")";
    if (i + 1 < kNumMemoryRegions) os << "; ";
  }
  return os.str();
}

}  // namespace vista::df
