#ifndef VISTA_DATAFLOW_BLOCK_FORMAT_H_
#define VISTA_DATAFLOW_BLOCK_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vista::df {

/// The framed durable-block format every spilled partition blob is written
/// in. Layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic            0x564B4C42 ("BLKV")
///   4       4     format version   (currently 1)
///   8       8     sequence number  (monotone per spill key; stale-read
///                                   detection)
///   16      8     payload length   (bytes)
///   24      4     payload CRC32C
///   28      4     header CRC32C    (over bytes [0, 28))
///   32      N     payload
///   32+N    4     footer sentinel  0x4B4C4245 ("EBLK")
///
/// Every field is covered by a check: the header fields by the header CRC,
/// the payload by the payload CRC, the tail by the footer sentinel, and the
/// total length by the exact-size equation — so any single-bit flip,
/// truncation, or trailing garbage decodes to kDataLoss, never to a
/// "successful" wrong payload. The sequence number pins which generation of
/// the block the caller expects, catching stale read-backs whose frame is
/// internally consistent.
inline constexpr uint32_t kBlockMagic = 0x564b4c42u;
inline constexpr uint32_t kBlockFooterMagic = 0x4b4c4245u;
inline constexpr uint32_t kBlockFormatVersion = 1;
inline constexpr size_t kBlockHeaderBytes = 32;
inline constexpr size_t kBlockFooterBytes = 4;
inline constexpr size_t kBlockFrameOverhead =
    kBlockHeaderBytes + kBlockFooterBytes;

/// What DecodeBlockFrame found wrong, for the integrity counters: torn
/// shapes (kTruncated / kBadFooter) are counted separately from content
/// corruption because they indicate a crash-consistency hole rather than
/// bit rot.
enum class BlockDefect {
  kNone = 0,
  /// Frame shorter than its header + declared payload + footer.
  kTruncated,
  /// Leading magic is wrong (not a block, or its first bytes rotted).
  kBadMagic,
  /// Unknown format version (with an intact header CRC).
  kBadVersion,
  /// Header CRC mismatch: a header field (seq, length, payload CRC) rotted.
  kHeaderCorrupt,
  /// Payload CRC mismatch: payload bit rot.
  kPayloadCorrupt,
  /// Footer sentinel wrong with the right total length: a torn tail.
  kBadFooter,
  /// Bytes beyond the frame end: a partial overwrite left garbage behind.
  kTrailingGarbage,
  /// Frame valid but its sequence number is not the expected generation.
  kStale,
};

const char* BlockDefectToString(BlockDefect defect);

/// True for the defect shapes produced by interrupted writes (truncation,
/// torn tail) as opposed to in-place bit rot.
inline bool IsTornWriteDefect(BlockDefect defect) {
  return defect == BlockDefect::kTruncated ||
         defect == BlockDefect::kBadFooter;
}

/// Appends the frame for `payload` with sequence number `seq` to `out`.
void EncodeBlockFrame(const std::vector<uint8_t>& payload, uint64_t seq,
                      std::vector<uint8_t>* out);

struct DecodedBlock {
  std::vector<uint8_t> payload;
  uint64_t seq = 0;
};

/// Validates and decodes one frame occupying exactly [data, data + size).
/// On failure returns kDataLoss (never crashes, never returns a corrupt
/// payload) and, when `defect` is non-null, classifies what was wrong.
/// `expected_seq` >= 0 additionally requires the frame's sequence number to
/// match (stale-read detection); pass -1 to accept any generation.
Result<DecodedBlock> DecodeBlockFrame(const uint8_t* data, size_t size,
                                      int64_t expected_seq = -1,
                                      BlockDefect* defect = nullptr);

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_BLOCK_FORMAT_H_
