#ifndef VISTA_DATAFLOW_SPILL_H_
#define VISTA_DATAFLOW_SPILL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace vista::df {

/// Writes evicted partition blobs to real files in a scratch directory and
/// reads them back on demand. Disk spills are a first-class cost in the
/// paper's trade-off space, so the engine both performs and meters them.
class SpillManager {
 public:
  /// `dir` is created if missing; files are removed on destruction.
  explicit SpillManager(std::string dir);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Persists `blob` under `key` (overwrites any previous spill of `key`).
  Status Write(int64_t key, const std::vector<uint8_t>& blob);

  /// Reads back the blob spilled under `key`.
  Result<std::vector<uint8_t>> Read(int64_t key);

  /// Deletes the spill file for `key`, if any.
  void Remove(int64_t key);

  int64_t bytes_written() const { return bytes_written_.load(); }
  int64_t bytes_read() const { return bytes_read_.load(); }
  int64_t num_spills() const { return num_spills_.load(); }

 private:
  std::string PathFor(int64_t key) const;

  std::string dir_;
  std::mutex mu_;
  std::unordered_map<int64_t, int64_t> sizes_;
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> num_spills_{0};
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_SPILL_H_
