#ifndef VISTA_DATAFLOW_SPILL_H_
#define VISTA_DATAFLOW_SPILL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault_injector.h"
#include "common/retry.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace vista::df {

/// Writes evicted partition blobs to real files in a scratch directory and
/// reads them back on demand. Disk spills are a first-class cost in the
/// paper's trade-off space, so the engine both performs and meters them.
///
/// Spill I/O is where transient storage faults surface, so the manager owns
/// its own retry loop: each Write/Read attempt first consults the optional
/// FaultInjector (sites kSpillWrite / kSpillRead), then performs the real
/// file operation; retryable failures are re-attempted under the
/// RetryPolicy, and exhausted retries surface as IOError to the caller
/// (where lineage recomputation can take over).
class SpillManager {
 public:
  /// `dir` is created if missing; files are removed on destruction.
  explicit SpillManager(std::string dir);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Optional deterministic fault injection; `injector` must outlive the
  /// manager. Null disables injection.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Reports spill counters and I/O latency histograms into `metrics`
  /// ("spill.*" instruments, resolved once here). Null disables reporting;
  /// the registry must outlive the manager.
  void set_metrics(obs::Registry* metrics);

  /// Persists `blob` under `key` (overwrites any previous spill of `key`).
  /// Short writes and flush/close-time errors are detected and reported;
  /// the spill is recorded (size entry + counters) only after the file is
  /// durably on disk.
  Status Write(int64_t key, const std::vector<uint8_t>& blob);

  /// Reads back the blob spilled under `key`.
  Result<std::vector<uint8_t>> Read(int64_t key);

  /// Deletes the spill file for `key`, if any. The size entry and the file
  /// are removed under one lock so no reader can observe the entry without
  /// the file.
  void Remove(int64_t key);

  int64_t bytes_written() const { return bytes_written_.load(); }
  int64_t bytes_read() const { return bytes_read_.load(); }
  int64_t num_spills() const { return num_spills_.load(); }
  /// Failed spill I/O attempts that were retried.
  int64_t io_retries() const { return io_retries_.load(); }

 private:
  std::string PathFor(int64_t key) const;
  Status WriteOnce(const std::string& path, const std::vector<uint8_t>& blob);
  Result<std::vector<uint8_t>> ReadOnce(const std::string& path,
                                        int64_t size);

  std::string dir_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  std::mutex mu_;
  std::unordered_map<int64_t, int64_t> sizes_;
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> num_spills_{0};
  std::atomic<int64_t> io_retries_{0};
  /// Obs instruments; all null until set_metrics is called.
  obs::Counter* c_writes_ = nullptr;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_bytes_written_ = nullptr;
  obs::Counter* c_bytes_read_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Histogram* h_write_ms_ = nullptr;
  obs::Histogram* h_read_ms_ = nullptr;
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_SPILL_H_
