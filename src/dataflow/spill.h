#ifndef VISTA_DATAFLOW_SPILL_H_
#define VISTA_DATAFLOW_SPILL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fault_injector.h"
#include "common/retry.h"
#include "common/status.h"
#include "dataflow/memory.h"
#include "obs/metrics.h"

namespace vista::df {

/// Writes evicted partition blobs to real files in a scratch directory and
/// reads them back on demand. Disk spills are a first-class cost in the
/// paper's trade-off space, so the engine both performs and meters them.
///
/// Durability & integrity protocol (see dataflow/block_format.h and
/// DESIGN.md "Data integrity & durability"): every blob is written as a
/// framed durable block — magic + version + per-key sequence number +
/// length + payload CRC32C + header CRC + footer sentinel — to a temp file
/// that is fflush'd, fsync'd, closed, and atomically renamed over the final
/// path (followed by a directory fsync), so a crash mid-write can never
/// leave a readable half-block: the old generation survives intact or the
/// new one is durably complete. Read-back verifies the whole frame plus the
/// expected sequence number before any byte reaches the engine; failures
/// return kDataLoss — deliberately non-retryable, because a corrupt block
/// stays corrupt on re-read — which the engine routes to per-partition
/// lineage recomputation. Verification outcomes are metered as
/// "integrity.*" counters.
///
/// Spill I/O is where transient storage faults surface, so the manager owns
/// its own retry loop: each Write/Read attempt first consults the optional
/// FaultInjector (sites kSpillWrite / kSpillNoSpace / kSpillRead), then
/// performs the real file operation; retryable failures are re-attempted
/// under the RetryPolicy, and exhausted retries surface as IOError to the
/// caller (where lineage recomputation can take over). The injector's
/// mutation sites (kSpillBitFlip, kSpillTornWrite, kSpillStaleRead) corrupt
/// durably-written blocks after the write reports success — the silent
/// failure shapes only verify-on-read catches.
///
/// Writes come in two flavors:
///  - Write: synchronous — returns after the blob is durably on disk (or
///    the retry budget is exhausted).
///  - WriteAsync: hands the blob to a background writer thread through a
///    bounded queue (double buffering), overlapping serialization on the
///    caller with disk I/O. Errors are sticky and latched per key: a key
///    whose async write failed surfaces that same error on every later
///    Read of the key (never a silent NotFound, and never the stale
///    previous generation) until the key is successfully rewritten or
///    removed, and the first error since the previous Flush also surfaces
///    at Flush(). Read/Remove/Write on a key with a pending async write
///    first wait for that write to land, so read-after-write ordering is
///    preserved per key.
///
/// Reads have a symmetric async half — the prefetch plane (the read-side
/// mirror of the double-buffered writer):
///  - Prefetch: a non-blocking hint that `key` will be read soon. Accepted
///    hints enter a bounded queue drained by a background reader thread
///    that runs the exact same verified-read path as Read (same fault
///    draws, same integrity counters), latching the outcome — payload or
///    error — in a per-key slot.
///  - Read first consumes the key's slot: a ready outcome is returned
///    without touching the disk (a hit, including latched kDataLoss — a
///    corrupt prefetched block is dropped and surfaces exactly like a
///    corrupt sync read, so integrity accounting is identical whether the
///    read ran ahead or inline); an in-flight read is waited for (per-key
///    latch, never a second read of the same bytes); a still-queued hint
///    is claimed back and the read runs synchronously. Keys without a slot
///    fall through to the plain sync path — prefetching is purely an
///    overlap optimization and never changes results.
///  - Hints are dropped (counted, never an error) when the queue is at
///    capacity, the key has no spill or a latched async-write error, or
///    the optional memory budget has no headroom. Write/Remove invalidate
///    any slot for the key, so a prefetched previous generation can never
///    be served after an overwrite.
class SpillManager {
 public:
  /// `dir` is created if missing; files are removed on destruction.
  /// `async_queue_capacity` bounds the writer queue (backpressure beyond
  /// it): 2 gives classic double buffering.
  explicit SpillManager(std::string dir, int async_queue_capacity = 2);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Optional deterministic fault injection; `injector` must outlive the
  /// manager. Null disables injection.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Reports spill counters and I/O latency histograms into `metrics`
  /// ("spill.*" instruments, resolved once here), plus a
  /// "spill.queue_depth" gauge tracking the async queue (its max_value is
  /// the high-water mark — > 0 proves serialization and disk I/O actually
  /// overlapped) and the shared "integrity.*" verification counters. Null
  /// disables reporting; the registry must outlive the manager.
  void set_metrics(obs::Registry* metrics);

  /// Persists `blob` under `key` (overwrites any previous spill of `key`,
  /// bumping the key's block generation). Short writes and flush/fsync/
  /// close-time errors are detected and reported; the spill is recorded
  /// (size entry + counters) only after the file is durably on disk.
  Status Write(int64_t key, const std::vector<uint8_t>& blob);

  /// Enqueues `blob` for the background writer (started lazily on first
  /// use). Blocks only when the bounded queue is full. The write itself
  /// runs under the same fault-injection + retry loop as Write; failures
  /// surface at Flush() and on every Read of the failed key.
  Status WriteAsync(int64_t key, std::vector<uint8_t> blob);

  /// Waits until every queued async write has landed, then returns (and
  /// clears) the first async write error since the previous Flush. The
  /// engine calls this at the end of Persist so a failed spill fails the
  /// operation that caused it. Per-key error latches survive Flush — they
  /// clear only when the key is rewritten successfully or removed.
  Status Flush();

  /// Reads back the blob spilled under `key`, verifying the durable-block
  /// frame (checksums, footer, expected generation) before returning it.
  /// Corruption returns kDataLoss without retrying; a key whose async
  /// write failed returns that write's latched error. Consumes the key's
  /// prefetched outcome when one is ready or in flight (see the class
  /// comment); otherwise reads synchronously.
  Result<std::vector<uint8_t>> Read(int64_t key);

  /// Non-blocking read-ahead hint: enqueue `key` for the background reader
  /// (started lazily on first use). Best-effort — dropped (and counted)
  /// when the bounded queue is full, the key has no spill entry or a
  /// latched async-write error, or the optional prefetch memory budget is
  /// out of headroom. Safe to hint the same key repeatedly (deduped while
  /// a slot exists).
  void Prefetch(int64_t key);

  /// Bounds outstanding prefetch slots (queued + reading + ready); hints
  /// beyond it are dropped. Reconfigure before issuing hints.
  void set_prefetch_capacity(int capacity);

  /// Optional budget gate: when set, each accepted hint charges the
  /// payload's bytes against `region` until its slot is consumed or
  /// invalidated, and hints with no headroom are dropped. `memory` must
  /// outlive the manager; null (the default) disables the gate — the
  /// bounded queue is then the only over-buffering control.
  void set_prefetch_memory(MemoryManager* memory, MemoryRegion region);

  /// Deletes the spill file for `key`, if any. The size entry and the file
  /// are removed under one lock so no reader can observe the entry without
  /// the file. Also clears the key's async-error latch.
  void Remove(int64_t key);

  /// Counters. Accessors first drain any in-flight async writes so callers
  /// always observe settled totals. Byte counters meter payload bytes
  /// (frame overhead excluded), so they stay comparable across format
  /// versions.
  int64_t bytes_written() const;
  int64_t bytes_read() const;
  int64_t num_spills() const;
  /// Failed spill I/O attempts that were retried.
  int64_t io_retries() const;
  /// Verify-on-read outcomes (also exported as "integrity.*" metrics).
  int64_t blocks_verified() const;
  int64_t checksum_failures() const;
  int64_t torn_writes_detected() const;
  /// Prefetch-plane outcomes (also exported as "prefetch.*" metrics):
  /// accepted hints, reads served from a prefetched outcome, still-queued
  /// hints claimed back by a sync read, hints/slots dropped unconsumed,
  /// and prefetched blocks that failed verification (dropped; the read
  /// surfaces kDataLoss exactly like the sync path, so lineage heals it).
  int64_t prefetch_requests() const { return pf_requests_.load(); }
  int64_t prefetch_hits() const { return pf_hits_.load(); }
  int64_t prefetch_claimed() const { return pf_claimed_.load(); }
  int64_t prefetch_dropped() const { return pf_dropped_.load(); }
  int64_t prefetch_corrupt_dropped() const {
    return pf_corrupt_dropped_.load();
  }

 private:
  struct PendingWrite {
    int64_t key = 0;
    std::vector<uint8_t> blob;
  };

  /// Index entry for one durably-written key: payload size (for byte
  /// accounting) and the expected block generation (stale-read detection).
  struct SpillEntry {
    int64_t payload_bytes = 0;
    uint64_t seq = 0;
  };

  /// One latched read-ahead: lifecycle kQueued -> kReading -> kReady,
  /// guarded by pf_mu_. `charged_bytes` is the optional budget charge,
  /// released by whoever erases the slot.
  struct PrefetchSlot {
    enum State { kQueued, kReading, kReady };
    State state = kQueued;
    Status status;
    std::vector<uint8_t> payload;
    int64_t charged_bytes = 0;
  };

  std::string PathFor(int64_t key) const;
  /// Durable write of one encoded frame: temp file + fsync + atomic
  /// rename + directory fsync.
  Status WriteOnce(const std::string& path, const std::vector<uint8_t>& frame);
  /// Reads the whole file at `path` (whatever its length — torn files are
  /// shorter than the frame they should hold).
  Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);
  /// The shared injection + retry + framing + bookkeeping loop behind both
  /// Write flavors. Thread-safe (called from the caller thread or the
  /// writer).
  Status WriteWithRetry(int64_t key, const std::vector<uint8_t>& blob);
  /// The shared verified-read loop behind the sync path and the prefetch
  /// reader: per-attempt kSpillRead / kSpillReadDelay injection, retry,
  /// frame decode against `entry.seq`, and all integrity/byte counters.
  /// Fault draws and counter bumps are identical wherever the read runs,
  /// which is what keeps prefetched and sync schedules bit-identical in
  /// their accounting.
  Result<std::vector<uint8_t>> ReadVerifiedWithRetry(int64_t key,
                                                     const SpillEntry& entry);
  void WriterLoop();
  /// The prefetch reader: pops hints, orders after any pending write of
  /// the key (WaitForKey), runs ReadVerifiedWithRetry, latches the outcome
  /// in the key's slot (discarded if the slot was invalidated mid-read).
  void ReaderLoop();
  /// Erases a slot, releasing its budget charge. Requires pf_mu_.
  void EraseSlotLocked(int64_t key);
  /// Drops any queued or ready slot for `key` (counted); blocks while the
  /// reader is mid-read of it so an overwrite can never race the read.
  /// Called by Write/WriteAsync/Remove before touching the key's file.
  void InvalidatePrefetch(int64_t key);
  void CountPrefetchDrop();
  /// True while `key` has a queued or in-flight async write. Requires qmu_.
  bool KeyPendingLocked(int64_t key) const;
  /// Blocks until no async write of `key` is pending.
  void WaitForKey(int64_t key);
  /// Blocks until the async queue is empty and the writer is idle.
  void WaitDrained() const;

  std::string dir_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
  std::mutex mu_;
  std::unordered_map<int64_t, SpillEntry> entries_;
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> num_spills_{0};
  std::atomic<int64_t> io_retries_{0};
  std::atomic<int64_t> blocks_verified_{0};
  std::atomic<int64_t> checksum_failures_{0};
  std::atomic<int64_t> torn_writes_{0};

  /// Async writer state, all guarded by qmu_. The writer thread starts
  /// lazily on the first WriteAsync and is joined in the destructor (after
  /// draining its queue).
  mutable std::mutex qmu_;
  mutable std::condition_variable work_cv_;
  mutable std::condition_variable space_cv_;
  mutable std::condition_variable drained_cv_;
  std::deque<PendingWrite> queue_;
  size_t queue_capacity_;
  std::thread writer_;
  bool writer_started_ = false;
  bool shutdown_ = false;
  bool writing_ = false;
  int64_t writing_key_ = 0;
  Status async_error_;
  /// Sticky per-key async-write errors: set by the writer on failure,
  /// cleared by a successful rewrite or Remove. Read() consults this
  /// first so a failed overwrite can never silently serve the previous
  /// generation (satellite: the silent-failure window between the last
  /// WriteAsync and Flush).
  std::unordered_map<int64_t, Status> failed_keys_;

  /// Prefetch-plane state, guarded by pf_mu_. The reader thread starts
  /// lazily on the first accepted hint and is joined in the destructor
  /// (before the writer, so no read can race file removal).
  mutable std::mutex pf_mu_;
  std::condition_variable pf_work_cv_;   // Reader wake-up.
  std::condition_variable pf_state_cv_;  // Slot state transitions.
  std::deque<int64_t> pf_queue_;
  std::unordered_map<int64_t, PrefetchSlot> pf_slots_;
  size_t pf_capacity_ = 4;
  std::thread reader_;
  bool reader_started_ = false;
  bool pf_shutdown_ = false;
  MemoryManager* pf_memory_ = nullptr;
  MemoryRegion pf_region_ = MemoryRegion::kStorage;
  std::atomic<int64_t> pf_requests_{0};
  std::atomic<int64_t> pf_hits_{0};
  std::atomic<int64_t> pf_claimed_{0};
  std::atomic<int64_t> pf_dropped_{0};
  std::atomic<int64_t> pf_corrupt_dropped_{0};

  /// Obs instruments; all null until set_metrics is called.
  obs::Counter* c_writes_ = nullptr;
  obs::Counter* c_reads_ = nullptr;
  obs::Counter* c_bytes_written_ = nullptr;
  obs::Counter* c_bytes_read_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_blocks_verified_ = nullptr;
  obs::Counter* c_checksum_failures_ = nullptr;
  obs::Counter* c_torn_writes_ = nullptr;
  obs::Counter* c_pf_requests_ = nullptr;
  obs::Counter* c_pf_hits_ = nullptr;
  obs::Counter* c_pf_claimed_ = nullptr;
  obs::Counter* c_pf_dropped_ = nullptr;
  obs::Counter* c_pf_corrupt_dropped_ = nullptr;
  obs::Histogram* h_write_ms_ = nullptr;
  obs::Histogram* h_read_ms_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_pf_queue_depth_ = nullptr;
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_SPILL_H_
