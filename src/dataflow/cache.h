#ifndef VISTA_DATAFLOW_CACHE_H_
#define VISTA_DATAFLOW_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/status.h"
#include "dataflow/memory.h"
#include "dataflow/partition.h"
#include "dataflow/spill.h"
#include "obs/metrics.h"

namespace vista::df {

/// LRU-managed Storage Memory for cached partitions.
///
/// Inserted partitions charge their footprint against the MemoryManager's
/// Storage region. Under pressure, least-recently-used partitions are
/// evicted to the SpillManager (if spilling is allowed — Spark-like) or the
/// insert fails with ResourceExhausted (memory-only, Ignite-like), which is
/// exactly the paper's Eager-on-Ignite crash mode.
class StorageCache {
 public:
  /// `injector` (optional, may be null) lets seeded transient memory
  /// spikes reject inserts: Insert returns Unavailable, which the engine's
  /// retry policy treats as retryable — unlike a genuine budget violation.
  /// `metrics` (optional) receives "cache.*" counters and a resident-bytes
  /// gauge; both must outlive the cache when given.
  StorageCache(MemoryManager* memory, SpillManager* spill, bool allow_spill,
               FaultInjector* injector = nullptr,
               obs::Registry* metrics = nullptr);

  StorageCache(const StorageCache&) = delete;
  StorageCache& operator=(const StorageCache&) = delete;

  /// Places `partition` under cache management, evicting LRU entries as
  /// needed. If it cannot fit even after evictions, the partition itself is
  /// spilled (when allowed) or ResourceExhausted is returned.
  Status Insert(const std::shared_ptr<Partition>& partition);

  /// Reads the records of a managed partition, faulting it in from disk if
  /// it was spilled, and marks it most-recently-used. Also works for
  /// partitions that are not under management (plain read). Serialized
  /// resident blobs are CRC-verified before any record is decoded from
  /// them; a mismatch returns kDataLoss (counted under "integrity.*") so
  /// the engine recomputes from lineage instead of decoding rotted bytes.
  Result<std::vector<Record>> ReadThrough(
      const std::shared_ptr<Partition>& partition);

  /// Removes a partition from management, releasing memory and any spill.
  void Remove(const std::shared_ptr<Partition>& partition);

  /// Non-blocking read-ahead hint: if `partition` is managed and currently
  /// spilled, asks the SpillManager to start reading its block in the
  /// background so a near-future ReadThrough finds the verified bytes
  /// already latched. No-op for resident or unmanaged partitions; purely
  /// an overlap optimization (results and fault accounting are identical
  /// with or without the hint — see SpillManager::Prefetch).
  void Prefetch(const std::shared_ptr<Partition>& partition);

  int64_t num_managed() const;
  int64_t num_spilled() const;

 private:
  struct Entry {
    int64_t key = 0;
    std::shared_ptr<Partition> partition;
    /// Bytes charged to Storage while resident.
    int64_t charged_bytes = 0;
    std::list<Partition*>::iterator lru_it;
    bool in_lru = false;
  };

  /// Evicts LRU partitions until `bytes` of Storage are available.
  /// Requires mu_ held. Returns ResourceExhausted when nothing is left to
  /// evict (or spilling is disallowed) and the space still is not there.
  Status EvictUntilAvailable(int64_t bytes);

  /// Requires mu_ held.
  Status FaultIn(Entry* entry);

  /// CRC-verifies `partition`'s resident serialized blob (no-op for other
  /// representations), updating the integrity counters either way.
  Status VerifyResident(const Partition& partition);

  MemoryManager* memory_;
  SpillManager* spill_;
  bool allow_spill_;
  FaultInjector* injector_;
  /// Obs instruments; all null when no registry was given.
  obs::Counter* c_inserts_ = nullptr;
  obs::Counter* c_read_hits_ = nullptr;
  obs::Counter* c_read_misses_ = nullptr;
  obs::Counter* c_fault_ins_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Counter* c_blocks_verified_ = nullptr;
  obs::Counter* c_checksum_failures_ = nullptr;
  obs::Gauge* g_resident_bytes_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<Partition*, Entry> entries_;
  /// Most-recently-used at the front.
  std::list<Partition*> lru_;
  int64_t next_key_ = 0;
  /// Monotone per-Insert-call sequence seeding memory-spike draws: each
  /// retry of a rejected insert gets a fresh, deterministic draw.
  int64_t insert_seq_ = 0;
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_CACHE_H_
