#include "dataflow/partition.h"

#include "common/checksum.h"

namespace vista::df {

const char* PersistenceFormatToString(PersistenceFormat format) {
  switch (format) {
    case PersistenceFormat::kDeserialized:
      return "deserialized";
    case PersistenceFormat::kSerialized:
      return "serialized";
  }
  return "?";
}

Partition::Partition(std::vector<Record> records)
    : num_records_(static_cast<int64_t>(records.size())),
      records_(std::move(records)) {}

Partition::Partition(std::vector<uint8_t> blob, int64_t num_records)
    : num_records_(num_records),
      format_(PersistenceFormat::kSerialized),
      blob_(std::move(blob)) {
  serialized_bytes_ = static_cast<int64_t>(blob_.size());
  blob_crc_ = Crc32c(blob_.data(), blob_.size());
  blob_crc_valid_ = true;
}

int64_t Partition::memory_bytes() const {
  if (!resident_) return 0;
  return memory_bytes_as(format_);
}

int64_t Partition::memory_bytes_as(PersistenceFormat format) const {
  if (format == PersistenceFormat::kDeserialized) {
    if (deserialized_bytes_ < 0) {
      int64_t bytes = 0;
      if (resident_ && format_ == PersistenceFormat::kDeserialized) {
        for (const Record& r : records_) bytes += EstimateRecordBytes(r);
        deserialized_bytes_ = bytes;
      } else {
        // Decode to estimate; rare path (size queries on serialized data).
        auto records = ReadRecords();
        if (!records.ok()) return 0;
        for (const Record& r : *records) bytes += EstimateRecordBytes(r);
        deserialized_bytes_ = bytes;
      }
    }
    return deserialized_bytes_;
  }
  if (serialized_bytes_ < 0) {
    if (resident_ && format_ == PersistenceFormat::kSerialized) {
      serialized_bytes_ = static_cast<int64_t>(blob_.size());
    } else if (resident_) {
      // Exact wire size without encoding anything (this used to build a
      // throwaway blob just to measure it).
      int64_t bytes = 0;
      for (const Record& r : records_) bytes += SerializedRecordBytes(r);
      serialized_bytes_ = bytes;
    } else {
      return 0;  // Spilled: nothing to measure (matches old ToBlob failure).
    }
  }
  return serialized_bytes_;
}

Status Partition::ConvertTo(PersistenceFormat format) {
  if (!resident_) {
    return Status::FailedPrecondition("cannot convert a spilled partition");
  }
  if (format == format_) return Status::OK();
  if (format == PersistenceFormat::kSerialized) {
    VISTA_ASSIGN_OR_RETURN(blob_, ToBlob());
    serialized_bytes_ = static_cast<int64_t>(blob_.size());
    blob_crc_ = Crc32c(blob_.data(), blob_.size());
    blob_crc_valid_ = true;
    records_.clear();
    records_.shrink_to_fit();
  } else {
    std::vector<Record> records;
    records.reserve(num_records_);
    size_t offset = 0;
    for (int64_t i = 0; i < num_records_; ++i) {
      VISTA_ASSIGN_OR_RETURN(Record r, DeserializeRecord(blob_, &offset));
      records.push_back(std::move(r));
    }
    records_ = std::move(records);
    blob_.clear();
    blob_.shrink_to_fit();
    blob_crc_valid_ = false;
  }
  format_ = format;
  return Status::OK();
}

Result<std::vector<Record>> Partition::ReadRecords() const {
  if (!resident_) {
    return Status::FailedPrecondition("partition is spilled");
  }
  if (format_ == PersistenceFormat::kDeserialized) {
    return records_;  // Copy; tensors share buffers so this is cheap.
  }
  std::vector<Record> records;
  records.reserve(num_records_);
  size_t offset = 0;
  for (int64_t i = 0; i < num_records_; ++i) {
    VISTA_ASSIGN_OR_RETURN(Record r, DeserializeRecord(blob_, &offset));
    records.push_back(std::move(r));
  }
  return records;
}

Result<const std::vector<Record>*> Partition::records() const {
  if (!resident_ || format_ != PersistenceFormat::kDeserialized) {
    return Status::FailedPrecondition(
        "records() requires a resident deserialized partition");
  }
  return &records_;
}

Result<const std::vector<uint8_t>*> Partition::blob() const {
  if (!resident_ || format_ != PersistenceFormat::kSerialized) {
    return Status::FailedPrecondition(
        "blob() requires a resident serialized partition");
  }
  return &blob_;
}

Result<std::vector<uint8_t>> Partition::ToBlob() const {
  if (!resident_) {
    return Status::FailedPrecondition("partition is spilled");
  }
  if (format_ == PersistenceFormat::kSerialized) return blob_;
  // Exact-size reservation up front: SerializeRecord then appends through
  // a raw cursor without ever reallocating the blob.
  int64_t total = 0;
  for (const Record& r : records_) total += SerializedRecordBytes(r);
  std::vector<uint8_t> blob;
  blob.reserve(static_cast<size_t>(total));
  for (const Record& r : records_) SerializeRecord(r, &blob);
  return blob;
}

Status Partition::VerifyBlob() const {
  if (!resident_ || format_ != PersistenceFormat::kSerialized ||
      !blob_crc_valid_) {
    return Status::OK();  // No serialized blob resident: nothing to check.
  }
  if (Crc32c(blob_.data(), blob_.size()) != blob_crc_) {
    return Status::DataLoss(
        "resident serialized blob failed CRC32C verification");
  }
  return Status::OK();
}

void Partition::Evict() {
  records_.clear();
  records_.shrink_to_fit();
  blob_.clear();
  blob_.shrink_to_fit();
  blob_crc_valid_ = false;
  resident_ = false;
}

Status Partition::Restore(const std::vector<uint8_t>& blob,
                          PersistenceFormat format) {
  if (resident_) {
    return Status::FailedPrecondition("partition is already resident");
  }
  blob_ = blob;
  blob_crc_ = Crc32c(blob_.data(), blob_.size());
  blob_crc_valid_ = true;
  resident_ = true;
  format_ = PersistenceFormat::kSerialized;
  return ConvertTo(format);
}

}  // namespace vista::df
