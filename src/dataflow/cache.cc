#include "dataflow/cache.h"

namespace vista::df {

StorageCache::StorageCache(MemoryManager* memory, SpillManager* spill,
                           bool allow_spill, FaultInjector* injector,
                           obs::Registry* metrics)
    : memory_(memory),
      spill_(spill),
      allow_spill_(allow_spill),
      injector_(injector) {
  if (metrics != nullptr) {
    c_inserts_ = metrics->counter("cache.inserts");
    c_read_hits_ = metrics->counter("cache.read_hits");
    c_read_misses_ = metrics->counter("cache.read_misses");
    c_fault_ins_ = metrics->counter("cache.fault_ins");
    c_evictions_ = metrics->counter("cache.evictions");
    c_blocks_verified_ = metrics->counter("integrity.blocks_verified");
    c_checksum_failures_ = metrics->counter("integrity.checksum_failures");
    g_resident_bytes_ = metrics->gauge("cache.resident_bytes");
  }
}

Status StorageCache::EvictUntilAvailable(int64_t bytes) {
  for (;;) {
    if (memory_->Available(MemoryRegion::kStorage) >= bytes) {
      return Status::OK();
    }
    if (lru_.empty()) {
      if (!allow_spill_) {
        return Status::ResourceExhausted(
            "Storage memory exhausted and spilling is disabled "
            "(memory-only mode)");
      }
      // Caller will spill the incoming partition itself.
      return Status::OutOfMemory("storage cannot fit partition");
    }
    // Evict the least-recently-used resident partition.
    Partition* victim = lru_.back();
    auto it = entries_.find(victim);
    Entry& entry = it->second;
    if (!allow_spill_) {
      return Status::ResourceExhausted(
          "Storage memory exhausted and spilling is disabled "
          "(memory-only mode)");
    }
    // Hand the blob to the background writer: the caller continues
    // serializing/inserting while the disk write is in flight. A write
    // that later fails surfaces at the engine's Flush (end of Persist) or
    // as a NotFound read that lineage recomputation absorbs.
    VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, victim->ToBlob());
    VISTA_RETURN_IF_ERROR(spill_->WriteAsync(entry.key, std::move(blob)));
    victim->Evict();
    memory_->Release(MemoryRegion::kStorage, entry.charged_bytes);
    if (c_evictions_ != nullptr) {
      c_evictions_->Add(1);
      g_resident_bytes_->Add(-entry.charged_bytes);
    }
    entry.charged_bytes = 0;
    lru_.pop_back();
    entry.in_lru = false;
  }
}

Status StorageCache::Insert(const std::shared_ptr<Partition>& partition) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(partition.get()) > 0) {
    return Status::OK();  // Already managed.
  }
  if (injector_ != nullptr) {
    // A transient memory spike rejects this insert attempt; the engine's
    // retry loop re-tries it (with a fresh draw) rather than crashing.
    VISTA_RETURN_IF_ERROR(injector_->MaybeFail(
        FaultSite::kMemorySpike, static_cast<uint64_t>(insert_seq_++),
        "cache insert"));
  }
  Entry entry;
  entry.key = next_key_++;
  entry.partition = partition;
  const int64_t bytes = partition->memory_bytes();
  Status avail = EvictUntilAvailable(bytes);
  if (avail.ok()) {
    Status reserve = memory_->TryReserve(MemoryRegion::kStorage, bytes);
    if (reserve.ok()) {
      entry.charged_bytes = bytes;
      lru_.push_front(partition.get());
      entry.lru_it = lru_.begin();
      entry.in_lru = true;
      entries_.emplace(partition.get(), std::move(entry));
      if (c_inserts_ != nullptr) {
        c_inserts_->Add(1);
        g_resident_bytes_->Add(bytes);
      }
      return Status::OK();
    }
    avail = reserve;
  }
  if (avail.IsResourceExhausted()) return avail;  // Memory-only crash.
  // Spill the incoming partition directly: it is managed but non-resident.
  VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, partition->ToBlob());
  VISTA_RETURN_IF_ERROR(spill_->WriteAsync(entry.key, std::move(blob)));
  partition->Evict();
  entries_.emplace(partition.get(), std::move(entry));
  if (c_inserts_ != nullptr) c_inserts_->Add(1);
  return Status::OK();
}

Status StorageCache::FaultIn(Entry* entry) {
  Partition* p = entry->partition.get();
  VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, spill_->Read(entry->key));
  // Restored partitions come back in the compact serialized format; the
  // blob size is exactly what Storage must hold.
  const int64_t bytes = static_cast<int64_t>(blob.size());
  VISTA_RETURN_IF_ERROR(EvictUntilAvailable(bytes));
  VISTA_RETURN_IF_ERROR(memory_->TryReserve(MemoryRegion::kStorage, bytes));
  Status restored = p->Restore(blob, PersistenceFormat::kSerialized);
  if (!restored.ok()) {
    memory_->Release(MemoryRegion::kStorage, bytes);
    return restored;
  }
  entry->charged_bytes = bytes;
  spill_->Remove(entry->key);
  lru_.push_front(p);
  entry->lru_it = lru_.begin();
  entry->in_lru = true;
  if (c_fault_ins_ != nullptr) {
    c_fault_ins_->Add(1);
    g_resident_bytes_->Add(bytes);
  }
  return Status::OK();
}

Status StorageCache::VerifyResident(const Partition& partition) {
  if (!partition.resident() ||
      partition.format() != PersistenceFormat::kSerialized) {
    return Status::OK();  // No serialized blob to check.
  }
  Status st = partition.VerifyBlob();
  if (st.ok()) {
    if (c_blocks_verified_ != nullptr) c_blocks_verified_->Add(1);
  } else {
    if (c_checksum_failures_ != nullptr) c_checksum_failures_->Add(1);
  }
  return st;
}

Result<std::vector<Record>> StorageCache::ReadThrough(
    const std::shared_ptr<Partition>& partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(partition.get());
  if (it == entries_.end()) {
    // Unmanaged partition: plain read — still verified before decode.
    VISTA_RETURN_IF_ERROR(VerifyResident(*partition));
    return partition->ReadRecords();
  }
  Entry& entry = it->second;
  if (!partition->resident()) {
    // A managed read that has to go to disk is the cache's miss case.
    if (c_read_misses_ != nullptr) c_read_misses_->Add(1);
    VISTA_RETURN_IF_ERROR(FaultIn(&entry));
  } else if (entry.in_lru) {
    lru_.erase(entry.lru_it);
    lru_.push_front(partition.get());
    entry.lru_it = lru_.begin();
    if (c_read_hits_ != nullptr) c_read_hits_->Add(1);
  }
  // Verify the serialized representation (restored from disk or long
  // resident) before ReadRecords header-scans and decodes it.
  VISTA_RETURN_IF_ERROR(VerifyResident(*partition));
  return partition->ReadRecords();
}

void StorageCache::Prefetch(const std::shared_ptr<Partition>& partition) {
  int64_t key = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(partition.get());
    if (it == entries_.end() || partition->resident()) return;
    key = it->second.key;
  }
  // Outside mu_: the hint only touches SpillManager state, and holding the
  // cache lock across it would serialize hints against ReadThrough.
  spill_->Prefetch(key);
}

void StorageCache::Remove(const std::shared_ptr<Partition>& partition) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(partition.get());
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.in_lru) lru_.erase(entry.lru_it);
  memory_->Release(MemoryRegion::kStorage, entry.charged_bytes);
  if (g_resident_bytes_ != nullptr && entry.charged_bytes > 0) {
    g_resident_bytes_->Add(-entry.charged_bytes);
  }
  spill_->Remove(entry.key);
  entries_.erase(it);
}

int64_t StorageCache::num_managed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t StorageCache::num_spilled() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& [p, entry] : entries_) {
    if (!p->resident()) ++n;
  }
  return n;
}

}  // namespace vista::df
