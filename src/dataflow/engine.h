#ifndef VISTA_DATAFLOW_ENGINE_H_
#define VISTA_DATAFLOW_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/fault_injector.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dataflow/cache.h"
#include "dataflow/memory.h"
#include "dataflow/partition.h"
#include "dataflow/record.h"
#include "dataflow/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vista::df {

/// A distributed table handle: an ordered set of hash partitions.
/// Tables are cheap to copy (partitions are shared).
struct Table {
  std::vector<std::shared_ptr<Partition>> partitions;

  int num_partitions() const { return static_cast<int>(partitions.size()); }
  int64_t num_records() const {
    int64_t n = 0;
    for (const auto& p : partitions) n += p->num_records();
    return n;
  }
  /// Current total in-memory footprint.
  int64_t memory_bytes() const {
    int64_t n = 0;
    for (const auto& p : partitions) n += p->memory_bytes();
    return n;
  }
};

/// Physical join operator choice (Section 4.2.3).
enum class JoinStrategy {
  kShuffleHash,
  kBroadcast,
};

const char* JoinStrategyToString(JoinStrategy strategy);

/// Stable hash of a record id for partitioning (splitmix64 finalizer).
/// Exported so tests and benches can reproduce the engine's bucketing.
uint64_t ShuffleHashId(int64_t id);

/// Packs (op sequence, side, partition index) into a unique fault-decision
/// unit key: op in the high bits, one side bit, then 32 bits of index. The
/// old packing reserved only 15 bits for the index (right side = 0x8000+i),
/// so left and right keys collided once a table exceeded 0x8000 partitions
/// and same-seed fault schedules silently overlapped.
constexpr uint64_t ShuffleTaskUnit(uint64_t op, int side, int64_t index) {
  return (op << 33) | (static_cast<uint64_t>(side & 1) << 32) |
         (static_cast<uint64_t>(index) & 0xffffffffULL);
}

/// Configuration of the local dataflow engine.
///
/// The engine executes in one process; `num_workers * cpus_per_worker`
/// threads model the cluster's total parallelism, and the MemoryBudgets
/// model the *aggregate* regions across workers. Crash scenarios surface as
/// ResourceExhausted Statuses rather than process deaths.
struct EngineConfig {
  int num_workers = 1;
  int cpus_per_worker = 2;
  MemoryBudgets budgets;
  /// Storage format applied by Persist() unless overridden.
  PersistenceFormat persistence = PersistenceFormat::kDeserialized;
  /// False models memory-only deployments (Ignite-like): storage pressure
  /// becomes a crash instead of a disk spill.
  bool allow_spill = true;
  /// Scratch directory for spills; auto-generated when empty.
  std::string spill_dir;
  /// Seeded fault injection (inert by default). Failure decisions are pure
  /// functions of (seed, site, key), so a given seed yields the same
  /// failure schedule across runs regardless of thread interleaving.
  FaultInjectorConfig faults;
  /// Retry policy applied to map-partition tasks, shuffle-side partition
  /// reads, spill I/O, and persist inserts.
  RetryPolicy retry;
  /// Attach lineage metadata to MapPartitions outputs so a partition whose
  /// data is lost (failed spill read-back) is recomputed from its parent
  /// instead of failing the job. Like Spark, recomputation re-runs the UDF,
  /// so UDFs must be deterministic (all of Vista's are).
  bool enable_lineage = true;
  /// Read-ahead distance for spilled partitions in read-driven ops
  /// (MapPartitions, shuffle sources, broadcast gather, Union, Collect):
  /// while task i runs, partition i + depth is hinted to the spill
  /// prefetch plane. 0 (the default) disables hinting entirely, keeping
  /// read schedules and fault-draw accounting identical to the
  /// pre-prefetch engine; results are bit-identical at any depth either
  /// way.
  int prefetch_depth = 0;
  /// Bounds outstanding prefetch slots in the SpillManager (hints beyond
  /// it drop). The effective capacity is max(this, prefetch_depth).
  int prefetch_queue_capacity = 4;
  /// Metrics/trace sinks for the engine and its spill/cache components.
  /// Null → the engine creates and owns private instances (tests stay
  /// isolated); benches inject shared ones to aggregate several engines
  /// into one exported profile.
  obs::Registry* metrics = nullptr;
  obs::TraceCollector* tracer = nullptr;
};

/// Counters the benches and tests inspect after running a plan.
struct EngineStats {
  int64_t shuffle_bytes = 0;
  int64_t broadcast_bytes = 0;
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  int64_t num_spills = 0;
  /// High-water mark of the async spill-writer queue. > 0 proves that
  /// serialization and disk writes actually overlapped during this run.
  int64_t spill_queue_depth_peak = 0;
  /// StorageCache counters, read from the shared "cache.*" instruments so
  /// engine-level stats and the obs registry agree by construction: resident
  /// managed reads (hits), reads that had to fault in from disk (misses),
  /// LRU evictions, inserts, and the current resident footprint.
  int64_t cache_read_hits = 0;
  int64_t cache_read_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_inserts = 0;
  int64_t cache_resident_bytes = 0;
  /// Prefetch-plane counters, read from the shared "prefetch.*"
  /// instruments (see SpillManager): accepted read-ahead hints, reads
  /// served from a latched prefetched outcome, still-queued hints claimed
  /// back by a sync read, hints/slots dropped unconsumed, and prefetched
  /// blocks dropped because they failed verification. The queue-depth peak
  /// > 0 proves read-ahead actually ran ahead of the consumer.
  int64_t prefetch_requests = 0;
  int64_t prefetch_hits = 0;
  int64_t prefetch_claimed = 0;
  int64_t prefetch_dropped = 0;
  int64_t prefetch_corrupt_dropped = 0;
  int64_t prefetch_queue_depth_peak = 0;
  /// Inference-plane totals, summed from the per-layer "dl.flops.*" and
  /// "dl.int8_ops.*" counters of every model profiled into this engine's
  /// registry: analytic FLOPs of all forwards run, and the subset executed
  /// on the quantized int8 kernel (0 unless some run used int8 precision).
  int64_t dl_flops = 0;
  int64_t dl_int8_ops = 0;
  /// Process-wide high-water mark of the kernel scratch arenas (packed
  /// GEMM panels across every thread; the im2col slot only when the
  /// explicit reference conv ran) — KernelScratch::GlobalPeakBytes()
  /// mirrored through the "scratch.peak_bytes" gauge. This is the
  /// measured DL-execution Temp footprint that the estimator's
  /// ConvTempBytes predicts.
  int64_t scratch_peak_bytes = 0;
  /// Retries, lineage recomputations, and injected faults since engine
  /// construction (degradations are filled in by the executor layer).
  RecoveryStats recovery;
  /// Verify-on-read outcomes, read from the shared "integrity.*"
  /// instruments: every durable/serialized block checked before re-entering
  /// the engine, checksum mismatches (including torn writes, also broken
  /// out separately), and how many of those corruptions were healed by
  /// lineage recomputation instead of failing the job.
  IntegrityStats integrity;
};

/// The parallel-dataflow substrate: partitioned tables, UDF map-partitions,
/// shuffle-hash and broadcast key-key joins, managed caching with LRU
/// eviction and disk spills.
class Engine {
 public:
  /// UDF over one partition's records. Runs concurrently across partitions;
  /// must be thread-compatible (no shared mutable state without locking).
  using MapPartitionsFn =
      std::function<Result<std::vector<Record>>(std::vector<Record>)>;

  explicit Engine(EngineConfig config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineConfig& config() const { return config_; }
  MemoryManager& memory() { return *memory_; }
  StorageCache& cache() { return *cache_; }
  /// The engine-owned injector; tests reconfigure rates between ops via
  /// FaultInjector::Configure.
  FaultInjector& fault_injector() { return *injector_; }
  EngineStats stats() const;

  /// The metrics registry and trace collector every engine component
  /// reports into: op spans, task latency histograms, bytes-moved and
  /// spill/cache counters. Engine-owned unless injected via EngineConfig.
  obs::Registry& metrics() { return *metrics_; }
  const obs::Registry& metrics() const { return *metrics_; }
  obs::TraceCollector& tracer() { return *tracer_; }
  const obs::TraceCollector& tracer() const { return *tracer_; }

  /// Total execution threads (num_workers * cpus_per_worker).
  int parallelism() const { return pool_->num_threads(); }

  /// The engine's worker pool, for UDFs that parallelize internally (e.g.
  /// batched CNN inference). ParallelFor is caller-inclusive, so nesting it
  /// inside an engine map task cannot deadlock; see thread_pool.h.
  ThreadPool* pool() { return pool_.get(); }

  /// Hash-partitions `records` by id into `num_partitions` partitions.
  Result<Table> MakeTable(std::vector<Record> records, int num_partitions);

  /// Applies `fn` to every partition in parallel, producing a new
  /// (unmanaged) table with the same partitioning. `prefetch_depth`
  /// overrides EngineConfig::prefetch_depth for this op (-1 keeps the
  /// config value); the executor uses it to pick a compute-aware
  /// read-ahead distance per inference step.
  Result<Table> MapPartitions(const Table& input, const MapPartitionsFn& fn,
                              int prefetch_depth = -1);

  /// Non-blocking read-ahead hints for every currently spilled partition
  /// of `table` (bounded by the prefetch queue; excess hints drop). The
  /// executor calls this for the next step's input while the current step
  /// computes; the serving plane calls it on a cached view before resuming
  /// partial inference from it.
  void PrefetchTable(const Table& table);

  /// Inner key-key join on record id. Records are merged field-wise: ids
  /// must match, struct features are concatenated (left then right), image
  /// and feature-list fields are taken from whichever side has them.
  Result<Table> Join(const Table& left, const Table& right,
                     JoinStrategy strategy, int num_output_partitions);

  /// Re-partitions a table by id hash.
  Result<Table> Repartition(const Table& input, int num_partitions);

  /// Keeps the records satisfying `predicate` (partition-parallel).
  Result<Table> Filter(const Table& input,
                       const std::function<bool(const Record&)>& predicate);

  /// Concatenates two tables partition-wise. Record ids are not
  /// deduplicated; partition counts must match (repartition first
  /// otherwise).
  Result<Table> Union(const Table& a, const Table& b);

  /// Deterministic Bernoulli sample of `fraction` of the records, keyed on
  /// record id and `seed` (the same record is always in or out for a given
  /// seed, independent of partitioning).
  Result<Table> Sample(const Table& input, double fraction,
                       uint64_t seed = 17);

  /// Puts a table's partitions under managed Storage memory in `format`,
  /// spilling under pressure (or failing when spills are disallowed).
  Status Persist(Table* table, PersistenceFormat format);

  /// Removes a table's partitions from managed storage.
  void Unpersist(Table* table);

  /// Gathers all records to the caller ("driver"). If
  /// `driver_memory_bytes` >= 0, fails with ResourceExhausted when the
  /// result exceeds it (the paper's driver-OOM crash scenario).
  Result<std::vector<Record>> Collect(const Table& table,
                                      int64_t driver_memory_bytes = -1);

 private:
  /// Reads a partition's records through the cache (faulting in spills).
  /// When the data is unreadable (lost/corrupt spill) and the partition
  /// carries lineage, rebuilds the records from the parent partition.
  Result<std::vector<Record>> ReadPartition(
      const std::shared_ptr<Partition>& p);

  /// ReadPartition wrapped in the retry policy with shuffle-send fault
  /// injection, for the gather side of shuffles/broadcasts/collects.
  /// `unit` is a stable per-op task key.
  Result<std::vector<Record>> ReadPartitionWithRetry(
      const std::shared_ptr<Partition>& p, uint64_t unit,
      const char* what);

  /// Issues read-ahead hints around task `i` of a partition-ordered loop:
  /// the initial window [0, depth) when i == 0 has not run yet is seeded
  /// by SeedPrefetch, and each task hints partition i + depth. No-ops at
  /// depth <= 0.
  void PrefetchAhead(const std::vector<std::shared_ptr<Partition>>& parts,
                     int64_t i, int depth);
  void SeedPrefetch(const std::vector<std::shared_ptr<Partition>>& parts,
                    int depth);
  /// Resolves an op-level depth override (-1 = use config).
  int EffectivePrefetchDepth(int override_depth) const {
    return override_depth < 0 ? config_.prefetch_depth : override_depth;
  }

  /// Phase 1 of the two-phase parallel shuffle: reads every partition of
  /// `table` in parallel (retryable shuffle sends keyed by
  /// ShuffleTaskUnit(op, side, i)) and buckets its records into
  /// (*buckets_out)[source][destination] — thread-local per source, so no
  /// locks. Wire bytes are metered into the shuffle counter.
  Status ShuffleSources(
      const Table& table, uint64_t op, int side, int num_destinations,
      const char* what,
      std::vector<std::vector<std::vector<Record>>>* buckets_out);

  /// Zero-decode shuffle-hash join for serialized-resident inputs: scans
  /// record headers into byte-range views, hash-joins the views by id, and
  /// splices output partitions directly in serialized form. Bit-identical
  /// output (after ToBlob) to the decoding path at any thread count.
  Result<Table> SerializedShuffleJoin(const Table& left, const Table& right,
                                      uint64_t op, int num_output_partitions);

  /// Monotone per-engine-op sequence: ops are driver-sequential, so keys
  /// derived from it are deterministic across runs.
  uint64_t NextOpSeq() { return op_seq_.fetch_add(1); }

  EngineConfig config_;
  /// Backing instances when EngineConfig does not inject sinks. Declared
  /// before every component that holds instrument pointers — most
  /// importantly SpillManager, whose background writer thread bumps
  /// registry-owned counters until ~SpillManager joins it — so reverse
  /// destruction order keeps the registry alive past all of them.
  std::unique_ptr<obs::Registry> owned_metrics_;
  std::unique_ptr<obs::TraceCollector> owned_tracer_;
  std::unique_ptr<MemoryManager> memory_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<SpillManager> spill_;
  std::unique_ptr<StorageCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  obs::Registry* metrics_ = nullptr;
  obs::TraceCollector* tracer_ = nullptr;
  /// Instruments are resolved once here; hot paths only touch atomics.
  obs::Counter* c_shuffle_bytes_ = nullptr;
  obs::Counter* c_broadcast_bytes_ = nullptr;
  obs::Counter* c_map_tasks_ = nullptr;
  obs::Counter* c_partitions_read_ = nullptr;
  obs::Counter* c_records_out_ = nullptr;
  obs::Counter* c_join_ops_ = nullptr;
  obs::Histogram* h_map_task_ms_ = nullptr;
  obs::Histogram* h_partition_read_ms_ = nullptr;
  /// Wall-clock of each shuffle-moving op (Join/Repartition/Union) and of
  /// each per-partition serialization task inside Persist.
  obs::Histogram* h_shuffle_ms_ = nullptr;
  obs::Histogram* h_serialize_ms_ = nullptr;
  obs::Gauge* g_spill_queue_depth_ = nullptr;
  /// Shared "integrity.*" instruments (also fed by SpillManager and
  /// StorageCache); the engine adds zero-decode scan verifies and
  /// DataLoss-triggered lineage recomputes.
  obs::Counter* c_blocks_verified_ = nullptr;
  obs::Counter* c_checksum_failures_ = nullptr;
  obs::Counter* c_recomputes_ = nullptr;
  std::atomic<int64_t> task_retries_{0};
  std::atomic<int64_t> recomputed_partitions_{0};
  std::atomic<uint64_t> op_seq_{1};
};

/// Merges two joined records (documented on Engine::Join).
Record MergeRecords(const Record& left, const Record& right);

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_ENGINE_H_
