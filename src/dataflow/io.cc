#include "dataflow/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace vista::df {
namespace {

constexpr char kTableMagic[8] = {'V', 'T', 'B', 'L', '0', '0', '0', '1'};

Status WriteAll(std::ofstream& out, const void* data, size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status ReadAll(std::ifstream& in, void* data, size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IOError("short read / truncated file");
  }
  return Status::OK();
}

}  // namespace

Status WriteStructCsv(const std::vector<Record>& records,
                      const std::string& path) {
  size_t width = 0;
  for (const Record& r : records) {
    if (r.has_image() || r.features.size() > 0) {
      return Status::InvalidArgument(
          "WriteStructCsv: records with image/feature tensors are not "
          "representable as CSV; use WriteTableFile");
    }
    width = std::max(width, r.struct_features.size());
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "id";
  for (size_t i = 0; i < width; ++i) out << ",f" << i;
  out << "\n";
  for (const Record& r : records) {
    if (r.struct_features.size() != width) {
      return Status::InvalidArgument(
          "WriteStructCsv: ragged rows (record " + std::to_string(r.id) +
          " has " + std::to_string(r.struct_features.size()) +
          " features, expected " + std::to_string(width) + ")");
    }
    out << r.id;
    char buf[48];
    for (float v : r.struct_features) {
      std::snprintf(buf, sizeof(buf), ",%.9g", static_cast<double>(v));
      out << buf;
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Record>> ReadStructCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: " + path);
  }
  if (line.rfind("id", 0) != 0) {
    return Status::InvalidArgument("CSV missing 'id,...' header: " + path);
  }
  std::vector<Record> records;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Record r;
    std::istringstream is(line);
    std::string cell;
    if (!std::getline(is, cell, ',')) {
      return Status::InvalidArgument("bad CSV row at line " +
                                     std::to_string(line_no));
    }
    try {
      r.id = std::stoll(cell);
    } catch (...) {
      return Status::InvalidArgument("bad id at line " +
                                     std::to_string(line_no));
    }
    while (std::getline(is, cell, ',')) {
      try {
        size_t pos = 0;
        r.struct_features.push_back(std::stof(cell, &pos));
        if (pos != cell.size()) throw 0;
      } catch (...) {
        return Status::InvalidArgument("bad float '" + cell + "' at line " +
                                       std::to_string(line_no));
      }
    }
    records.push_back(std::move(r));
  }
  return records;
}

Status WriteTableFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  VISTA_RETURN_IF_ERROR(WriteAll(out, kTableMagic, sizeof(kTableMagic)));
  const uint32_t np = static_cast<uint32_t>(table.num_partitions());
  VISTA_RETURN_IF_ERROR(WriteAll(out, &np, sizeof(np)));
  for (const auto& partition : table.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, partition->ToBlob());
    const uint64_t num_records =
        static_cast<uint64_t>(partition->num_records());
    const uint64_t blob_bytes = blob.size();
    VISTA_RETURN_IF_ERROR(WriteAll(out, &num_records, sizeof(num_records)));
    VISTA_RETURN_IF_ERROR(WriteAll(out, &blob_bytes, sizeof(blob_bytes)));
    if (!blob.empty()) {
      VISTA_RETURN_IF_ERROR(WriteAll(out, blob.data(), blob.size()));
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Table> ReadTableFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kTableMagic)];
  VISTA_RETURN_IF_ERROR(ReadAll(in, magic, sizeof(magic)));
  if (std::memcmp(magic, kTableMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a Vista table file: " + path);
  }
  uint32_t np = 0;
  VISTA_RETURN_IF_ERROR(ReadAll(in, &np, sizeof(np)));
  if (np == 0 || np > 1 << 20) {
    return Status::InvalidArgument("implausible partition count in " + path);
  }
  Table table;
  for (uint32_t p = 0; p < np; ++p) {
    uint64_t num_records = 0, blob_bytes = 0;
    VISTA_RETURN_IF_ERROR(ReadAll(in, &num_records, sizeof(num_records)));
    VISTA_RETURN_IF_ERROR(ReadAll(in, &blob_bytes, sizeof(blob_bytes)));
    std::vector<uint8_t> blob(blob_bytes);
    if (blob_bytes > 0) {
      VISTA_RETURN_IF_ERROR(ReadAll(in, blob.data(), blob_bytes));
    }
    std::vector<Record> records;
    records.reserve(num_records);
    size_t offset = 0;
    for (uint64_t i = 0; i < num_records; ++i) {
      VISTA_ASSIGN_OR_RETURN(Record r, DeserializeRecord(blob, &offset));
      records.push_back(std::move(r));
    }
    if (offset != blob.size()) {
      return Status::InvalidArgument("trailing bytes in partition blob of " +
                                     path);
    }
    table.partitions.push_back(
        std::make_shared<Partition>(std::move(records)));
  }
  return table;
}

Status WriteImagePpm(const Tensor& image, const std::string& path) {
  if (image.shape().rank() != 3 ||
      (image.shape().dim(0) != 1 && image.shape().dim(0) != 3)) {
    return Status::InvalidArgument(
        "WriteImagePpm expects a 1xHxW or 3xHxW tensor, got " +
        image.shape().ToString());
  }
  const int64_t c = image.shape().dim(0);
  const int64_t h = image.shape().dim(1);
  const int64_t w = image.shape().dim(2);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "P6\n" << w << " " << h << "\n255\n";
  std::vector<uint8_t> row(static_cast<size_t>(w) * 3);
  const float* data = image.data();
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      for (int64_t ch = 0; ch < 3; ++ch) {
        const int64_t src = c == 3 ? ch : 0;
        const float v =
            std::clamp(data[(src * h + y) * w + x], 0.0f, 1.0f);
        row[x * 3 + ch] = static_cast<uint8_t>(v * 255.0f + 0.5f);
      }
    }
    VISTA_RETURN_IF_ERROR(WriteAll(out, row.data(), row.size()));
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Tensor> ReadImagePpm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string magic;
  int64_t w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  if (magic != "P6" || w <= 0 || h <= 0 || maxval != 255) {
    return Status::InvalidArgument("unsupported PPM header in " + path);
  }
  in.get();  // Single whitespace after header.
  std::vector<uint8_t> raw(static_cast<size_t>(w) * h * 3);
  VISTA_RETURN_IF_ERROR(ReadAll(in, raw.data(), raw.size()));
  Tensor image(Shape{3, h, w});
  float* data = image.mutable_data();
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      for (int64_t ch = 0; ch < 3; ++ch) {
        data[(ch * h + y) * w + x] =
            static_cast<float>(raw[(y * w + x) * 3 + ch]) / 255.0f;
      }
    }
  }
  return image;
}

}  // namespace vista::df
