#ifndef VISTA_DATAFLOW_PARTITION_H_
#define VISTA_DATAFLOW_PARTITION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dataflow/record.h"

namespace vista::df {

class Partition;

/// Spark-style lineage: how to rebuild a partition's records from its
/// parent when both its resident data and its spill file are unreadable.
/// `fn` must be deterministic and re-runnable (it is re-applied verbatim on
/// recovery, so recomputed partitions stay bit-identical to the originals).
struct Lineage {
  std::shared_ptr<Partition> parent;
  std::function<Result<std::vector<Record>>(std::vector<Record>)> fn;
};

/// In-memory storage format of a cached partition (Section 4.2.3).
enum class PersistenceFormat {
  /// Records held as live objects: no translation cost, larger footprint.
  kDeserialized,
  /// Records held as one compact byte blob (with sparse tensor encoding):
  /// smaller footprint, pays encode/decode cost on access.
  kSerialized,
};

const char* PersistenceFormatToString(PersistenceFormat format);

/// A horizontal slice of a table. Exactly one representation is resident at
/// a time: deserialized records, a serialized blob, or nothing (spilled to
/// disk, managed by StorageCache).
class Partition {
 public:
  explicit Partition(std::vector<Record> records);

  /// Constructs a serialized-resident partition directly from an encoded
  /// blob (the late-materialization shuffle produces these without ever
  /// holding Record objects). `num_records` must match the blob's content.
  Partition(std::vector<uint8_t> blob, int64_t num_records);

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  int64_t num_records() const { return num_records_; }
  PersistenceFormat format() const { return format_; }
  bool resident() const { return resident_; }

  /// Current in-memory footprint: the Tungsten-style estimate for
  /// deserialized data, the exact blob size for serialized data, zero when
  /// spilled.
  int64_t memory_bytes() const;

  /// Footprint this partition would occupy in `format`.
  int64_t memory_bytes_as(PersistenceFormat format) const;

  /// Converts the resident representation. No-op if already in `format`.
  Status ConvertTo(PersistenceFormat format);

  /// Returns a copy of the records, decoding if serialized. Fails if the
  /// partition is not resident.
  Result<std::vector<Record>> ReadRecords() const;

  /// Direct access to deserialized records (must be resident and
  /// deserialized).
  Result<const std::vector<Record>*> records() const;

  /// Serialized blob of the partition's records regardless of the resident
  /// format (encodes on the fly if deserialized). Used for spilling.
  Result<std::vector<uint8_t>> ToBlob() const;

  /// Direct access to the serialized blob (must be resident and
  /// serialized). The zero-decode shuffle path scans this in place.
  Result<const std::vector<uint8_t>*> blob() const;

  /// Integrity check on the resident serialized blob: recomputes its
  /// CRC32C and compares against the checksum captured when the blob
  /// became resident. Returns kDataLoss on mismatch (in-memory rot or a
  /// stray write), OK otherwise — including when there is no blob to
  /// verify (deserialized or spilled). Callers verify before header-scan
  /// paths (ScanRecord / SpliceJoinedRecord) that walk the blob without
  /// decoding it.
  Status VerifyBlob() const;

  /// Test hook: direct mutable access to the resident blob so integrity
  /// tests can corrupt it in place. Never use outside tests.
  std::vector<uint8_t>* mutable_blob_for_testing() { return &blob_; }

  /// Drops in-memory data (after a successful spill).
  void Evict();

  /// Restores from a spilled blob in the given format.
  Status Restore(const std::vector<uint8_t>& blob, PersistenceFormat format);

  /// Records how to rebuild this partition from its parent (set by the
  /// engine on derived partitions). Null for base tables.
  void set_lineage(std::shared_ptr<Lineage> lineage) {
    lineage_ = std::move(lineage);
  }
  const Lineage* lineage() const { return lineage_.get(); }

 private:
  int64_t num_records_ = 0;
  PersistenceFormat format_ = PersistenceFormat::kDeserialized;
  bool resident_ = true;
  std::vector<Record> records_;
  std::vector<uint8_t> blob_;
  /// CRC32C of blob_, captured whenever a serialized blob becomes
  /// resident; invalid while no serialized blob is resident.
  uint32_t blob_crc_ = 0;
  bool blob_crc_valid_ = false;
  std::shared_ptr<Lineage> lineage_;
  // Cached size estimates (valid while num_records_ is unchanged).
  mutable int64_t deserialized_bytes_ = -1;
  mutable int64_t serialized_bytes_ = -1;
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_PARTITION_H_
