#include "dataflow/record.h"

#include <cstring>

#include "common/logging.h"

namespace vista::df {
namespace {

/// Hard ceiling on declared tensor elements (256 MiB of floats). Real Vista
/// tensors top out around a few hundred thousand elements (224x224x3
/// images, conv feature maps), so anything near this bound is a corrupt
/// header — reject it before allocating.
constexpr uint64_t kMaxTensorElements = uint64_t{1} << 26;

// ---------------------------------------------------------------------------
// Write-side cursor helpers. SerializeRecord sizes the output exactly first
// (SerializedRecordBytes), resizes once, then streams through a raw cursor —
// no per-field resize+memcpy, no reallocation.

inline void WriteU32(uint8_t** p, uint32_t v) {
  std::memcpy(*p, &v, 4);
  *p += 4;
}

inline void WriteI64(uint8_t** p, int64_t v) {
  std::memcpy(*p, &v, 8);
  *p += 8;
}

inline void WriteF32(uint8_t** p, float v) {
  std::memcpy(*p, &v, 4);
  *p += 4;
}

inline void WriteFloats(uint8_t** p, const float* data, int64_t n) {
  if (n <= 0) return;  // Empty vectors pass data() == nullptr (UB to memcpy).
  std::memcpy(*p, data, static_cast<size_t>(n) * 4);
  *p += static_cast<size_t>(n) * 4;
}

/// True when `n` more bytes are readable at `offset`. Written subtractively:
/// a corrupt header can make `n` huge, and `offset + n` would wrap around
/// and bogusly pass the check.
bool CanRead(const std::vector<uint8_t>& buf, size_t offset, uint64_t n) {
  return offset <= buf.size() && n <= buf.size() - offset;
}

Status ReadU32(const std::vector<uint8_t>& buf, size_t* offset,
               uint32_t* v) {
  if (!CanRead(buf, *offset, 4)) {
    return Status::InvalidArgument("record buffer truncated (u32)");
  }
  std::memcpy(v, buf.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadI64(const std::vector<uint8_t>& buf, size_t* offset, int64_t* v) {
  if (!CanRead(buf, *offset, 8)) {
    return Status::InvalidArgument("record buffer truncated (i64)");
  }
  std::memcpy(v, buf.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

Status ReadFloats(const std::vector<uint8_t>& buf, size_t* offset, int64_t n,
                  float* dst) {
  if (!CanRead(buf, *offset, static_cast<uint64_t>(n) * 4)) {
    return Status::InvalidArgument("record buffer truncated (float array)");
  }
  if (n <= 0) return Status::OK();  // dst may be null for empty vectors.
  std::memcpy(dst, buf.data() + *offset, static_cast<size_t>(n) * 4);
  *offset += static_cast<size_t>(n) * 4;
  return Status::OK();
}

/// Non-zero count of `t` — decides the wire encoding (sparse entry costs
/// 8 B vs 4 B dense, so sparse wins below 50% density).
int64_t TensorNnz(const Tensor& t) {
  const int64_t n = t.num_elements();
  const float* data = t.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < n; ++i) {
    nnz += (data[i] != 0.0f) ? 1 : 0;
  }
  return nnz;
}

/// Exact wire size of one tensor given its non-zero count.
int64_t SerializedTensorBytes(const Tensor& t, int64_t nnz) {
  const int64_t n = t.num_elements();
  int64_t bytes = 4 + 8 * static_cast<int64_t>(t.shape().rank()) + 1;
  if (nnz * 2 < n) {
    bytes += 8 + 8 * nnz;  // i64 nnz + (u32 index, f32 value) pairs.
  } else {
    bytes += 4 * n;  // Dense float payload.
  }
  return bytes;
}

// Tensor wire format: u32 rank; i64 dims[rank]; u8 encoding
// (0 = dense, 1 = sparse); payload.
void SerializeTensor(const Tensor& t, int64_t nnz, uint8_t** p) {
  WriteU32(p, static_cast<uint32_t>(t.shape().rank()));
  for (int i = 0; i < t.shape().rank(); ++i) WriteI64(p, t.shape().dim(i));
  const int64_t n = t.num_elements();
  const float* data = t.data();
  if (nnz * 2 < n) {
    *(*p)++ = 1;
    WriteI64(p, nnz);
    for (int64_t i = 0; i < n; ++i) {
      if (data[i] != 0.0f) {
        WriteU32(p, static_cast<uint32_t>(i));
        WriteF32(p, data[i]);
      }
    }
  } else {
    *(*p)++ = 0;
    WriteFloats(p, data, n);
  }
}

Result<Tensor> DeserializeTensor(const std::vector<uint8_t>& buf,
                                 size_t* offset) {
  uint32_t rank = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &rank));
  if (rank > 8) return Status::InvalidArgument("tensor rank too large");
  std::vector<int64_t> dims(rank);
  // Validate the element count while parsing dims, overflow-safely, so a
  // corrupt header is rejected before the tensor is allocated (a bad dim
  // used to trigger a multi-GB allocation here).
  uint64_t elements = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &dims[i]));
    if (dims[i] < 0) return Status::InvalidArgument("negative tensor dim");
    const uint64_t d = static_cast<uint64_t>(dims[i]);
    if (d == 0) {
      elements = 0;
    } else if (elements > kMaxTensorElements / d) {
      return Status::InvalidArgument("tensor element count too large");
    } else {
      elements *= d;
    }
  }
  if (elements > kMaxTensorElements) {
    return Status::InvalidArgument("tensor element count too large");
  }
  if (!CanRead(buf, *offset, 1)) {
    return Status::InvalidArgument("record buffer truncated (encoding)");
  }
  const uint8_t encoding = buf[(*offset)++];
  if (encoding == 0) {
    // The whole dense payload must be present before allocating.
    if (!CanRead(buf, *offset, elements * 4)) {
      return Status::InvalidArgument("record buffer truncated (dense data)");
    }
    Tensor t(Shape(std::move(dims)));
    VISTA_RETURN_IF_ERROR(ReadFloats(buf, offset, t.num_elements(),
                                     t.mutable_data()));
    return t;
  }
  if (encoding == 1) {
    int64_t nnz = 0;
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &nnz));
    if (nnz < 0 || static_cast<uint64_t>(nnz) > elements) {
      return Status::InvalidArgument("bad sparse tensor nnz");
    }
    // All nnz (index, value) pairs must be present before allocating; one
    // bounds check up front lets the decode loop run unchecked.
    if (!CanRead(buf, *offset, static_cast<uint64_t>(nnz) * 8)) {
      return Status::InvalidArgument("record buffer truncated (sparse data)");
    }
    Tensor t(Shape(std::move(dims)));
    float* out = t.mutable_data();
    const uint8_t* src = buf.data() + *offset;
    for (int64_t i = 0; i < nnz; ++i) {
      uint32_t idx = 0;
      float v = 0;
      std::memcpy(&idx, src, 4);
      std::memcpy(&v, src + 4, 4);
      src += 8;
      if (idx >= elements) {
        return Status::InvalidArgument("sparse index out of range");
      }
      out[idx] = v;
    }
    *offset += static_cast<size_t>(nnz) * 8;
    return t;
  }
  return Status::InvalidArgument("unknown tensor encoding");
}

}  // namespace

int64_t EstimateRecordBytes(const Record& record) {
  // 8 B fixed-length key + null bitmap word.
  int64_t bytes = 8 + 8;
  // Variable-length fields carry an 8 B offset/length header each.
  bytes += 8 + static_cast<int64_t>(record.struct_features.size()) * 4;
  for (const Tensor& img : record.images) bytes += 8 + img.num_bytes();
  for (const Tensor& t : record.features.tensors()) {
    bytes += 8 + t.num_bytes();
  }
  return bytes;
}

int64_t SerializedRecordBytes(const Record& record) {
  // i64 id + u32 struct count + floats + u32 image count + u32 tensor count.
  int64_t bytes = 8 + 4 +
                  static_cast<int64_t>(record.struct_features.size()) * 4 +
                  4 + 4;
  for (const Tensor& img : record.images) {
    bytes += SerializedTensorBytes(img, TensorNnz(img));
  }
  for (const Tensor& t : record.features.tensors()) {
    bytes += SerializedTensorBytes(t, TensorNnz(t));
  }
  return bytes;
}

void SerializeRecord(const Record& record, std::vector<uint8_t>* out) {
  // Size-precompute pass: count non-zeros once per tensor (reused for the
  // encoding decision), then do a single resize and stream through a raw
  // cursor. Callers that pre-reserve (Partition::ToBlob) never reallocate.
  const size_t n_images = record.images.size();
  const size_t n_tensors = record.features.tensors().size();
  std::vector<int64_t> nnz(n_images + n_tensors);
  int64_t total = 8 + 4 +
                  static_cast<int64_t>(record.struct_features.size()) * 4 +
                  4 + 4;
  for (size_t i = 0; i < n_images; ++i) {
    nnz[i] = TensorNnz(record.images[i]);
    total += SerializedTensorBytes(record.images[i], nnz[i]);
  }
  for (size_t i = 0; i < n_tensors; ++i) {
    const Tensor& t = record.features.tensors()[i];
    nnz[n_images + i] = TensorNnz(t);
    total += SerializedTensorBytes(t, nnz[n_images + i]);
  }
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(total));
  uint8_t* p = out->data() + base;
  WriteI64(&p, record.id);
  WriteU32(&p, static_cast<uint32_t>(record.struct_features.size()));
  WriteFloats(&p, record.struct_features.data(),
              static_cast<int64_t>(record.struct_features.size()));
  WriteU32(&p, static_cast<uint32_t>(n_images));
  for (size_t i = 0; i < n_images; ++i) {
    SerializeTensor(record.images[i], nnz[i], &p);
  }
  WriteU32(&p, static_cast<uint32_t>(n_tensors));
  for (size_t i = 0; i < n_tensors; ++i) {
    SerializeTensor(record.features.tensors()[i], nnz[n_images + i], &p);
  }
  VISTA_DCHECK(p == out->data() + out->size());
}

Result<Record> DeserializeRecord(const std::vector<uint8_t>& buffer,
                                 size_t* offset) {
  Record record;
  VISTA_RETURN_IF_ERROR(ReadI64(buffer, offset, &record.id));
  uint32_t n_struct = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_struct));
  // Check the payload is present before sizing the vector: a corrupt count
  // must not drive a huge allocation.
  if (!CanRead(buffer, *offset, static_cast<uint64_t>(n_struct) * 4)) {
    return Status::InvalidArgument("record buffer truncated (struct)");
  }
  record.struct_features.resize(n_struct);
  VISTA_RETURN_IF_ERROR(
      ReadFloats(buffer, offset, n_struct, record.struct_features.data()));
  uint32_t n_images = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_images));
  if (n_images > 1 << 20) {
    return Status::InvalidArgument("implausible image count in record");
  }
  for (uint32_t i = 0; i < n_images; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor img, DeserializeTensor(buffer, offset));
    record.images.push_back(std::move(img));
  }
  uint32_t n_tensors = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_tensors));
  if (n_tensors > 1 << 20) {
    return Status::InvalidArgument("implausible tensor count in record");
  }
  for (uint32_t i = 0; i < n_tensors; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor t, DeserializeTensor(buffer, offset));
    record.features.Append(std::move(t));
  }
  return record;
}

namespace {

/// Skips one serialized tensor without materializing it, with the same
/// validation as DeserializeTensor.
Status SkipTensor(const std::vector<uint8_t>& buf, size_t* offset) {
  uint32_t rank = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &rank));
  if (rank > 8) return Status::InvalidArgument("tensor rank too large");
  uint64_t elements = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    int64_t dim = 0;
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &dim));
    if (dim < 0) return Status::InvalidArgument("negative tensor dim");
    const uint64_t d = static_cast<uint64_t>(dim);
    if (d == 0) {
      elements = 0;
    } else if (elements > kMaxTensorElements / d) {
      return Status::InvalidArgument("tensor element count too large");
    } else {
      elements *= d;
    }
  }
  if (elements > kMaxTensorElements) {
    return Status::InvalidArgument("tensor element count too large");
  }
  if (!CanRead(buf, *offset, 1)) {
    return Status::InvalidArgument("record buffer truncated (encoding)");
  }
  const uint8_t encoding = buf[(*offset)++];
  if (encoding == 0) {
    if (!CanRead(buf, *offset, elements * 4)) {
      return Status::InvalidArgument("record buffer truncated (dense data)");
    }
    *offset += static_cast<size_t>(elements) * 4;
    return Status::OK();
  }
  if (encoding == 1) {
    int64_t nnz = 0;
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &nnz));
    if (nnz < 0 || static_cast<uint64_t>(nnz) > elements) {
      return Status::InvalidArgument("bad sparse tensor nnz");
    }
    if (!CanRead(buf, *offset, static_cast<uint64_t>(nnz) * 8)) {
      return Status::InvalidArgument("record buffer truncated (sparse data)");
    }
    *offset += static_cast<size_t>(nnz) * 8;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown tensor encoding");
}

}  // namespace

Result<SerializedRecordView> ScanRecord(const std::vector<uint8_t>& buffer,
                                        size_t* offset) {
  SerializedRecordView view;
  view.begin = *offset;
  VISTA_RETURN_IF_ERROR(ReadI64(buffer, offset, &view.id));
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &view.num_struct));
  if (!CanRead(buffer, *offset, static_cast<uint64_t>(view.num_struct) * 4)) {
    return Status::InvalidArgument("record buffer truncated (struct)");
  }
  view.structs_begin = *offset;
  *offset += static_cast<size_t>(view.num_struct) * 4;
  view.structs_end = *offset;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &view.num_images));
  if (view.num_images > 1 << 20) {
    return Status::InvalidArgument("implausible image count in record");
  }
  view.images_begin = *offset;
  for (uint32_t i = 0; i < view.num_images; ++i) {
    VISTA_RETURN_IF_ERROR(SkipTensor(buffer, offset));
  }
  view.images_end = *offset;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &view.num_tensors));
  if (view.num_tensors > 1 << 20) {
    return Status::InvalidArgument("implausible tensor count in record");
  }
  view.tensors_begin = *offset;
  for (uint32_t i = 0; i < view.num_tensors; ++i) {
    VISTA_RETURN_IF_ERROR(SkipTensor(buffer, offset));
  }
  view.tensors_end = *offset;
  return view;
}

int64_t SplicedJoinBytes(const SerializedRecordView& l,
                         const SerializedRecordView& r) {
  // MergeRecords keeps left's images when present, right's otherwise.
  const SerializedRecordView& img = l.num_images > 0 ? l : r;
  return 8 + 4 + static_cast<int64_t>(l.structs_end - l.structs_begin) +
         static_cast<int64_t>(r.structs_end - r.structs_begin) + 4 +
         static_cast<int64_t>(img.images_end - img.images_begin) + 4 +
         static_cast<int64_t>(l.tensors_end - l.tensors_begin) +
         static_cast<int64_t>(r.tensors_end - r.tensors_begin);
}

void SpliceJoinedRecord(const std::vector<uint8_t>& left_buf,
                        const SerializedRecordView& left,
                        const std::vector<uint8_t>& right_buf,
                        const SerializedRecordView& right,
                        std::vector<uint8_t>* out) {
  const bool left_images = left.num_images > 0;
  const std::vector<uint8_t>& img_buf = left_images ? left_buf : right_buf;
  const SerializedRecordView& img = left_images ? left : right;
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(SplicedJoinBytes(left, right)));
  uint8_t* p = out->data() + base;
  WriteI64(&p, left.id);
  WriteU32(&p, left.num_struct + right.num_struct);
  std::memcpy(p, left_buf.data() + left.structs_begin,
              left.structs_end - left.structs_begin);
  p += left.structs_end - left.structs_begin;
  std::memcpy(p, right_buf.data() + right.structs_begin,
              right.structs_end - right.structs_begin);
  p += right.structs_end - right.structs_begin;
  WriteU32(&p, img.num_images);
  std::memcpy(p, img_buf.data() + img.images_begin,
              img.images_end - img.images_begin);
  p += img.images_end - img.images_begin;
  WriteU32(&p, left.num_tensors + right.num_tensors);
  std::memcpy(p, left_buf.data() + left.tensors_begin,
              left.tensors_end - left.tensors_begin);
  p += left.tensors_end - left.tensors_begin;
  std::memcpy(p, right_buf.data() + right.tensors_begin,
              right.tensors_end - right.tensors_begin);
  p += right.tensors_end - right.tensors_begin;
  VISTA_DCHECK(p == out->data() + out->size());
}

}  // namespace vista::df
