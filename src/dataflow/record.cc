#include "dataflow/record.h"

#include <cstring>

namespace vista::df {
namespace {

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

void PutF32(float v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutFloats(const float* data, int64_t n, std::vector<uint8_t>* out) {
  if (n <= 0) return;  // Empty vectors pass data() == nullptr (UB to memcpy).
  const size_t at = out->size();
  out->resize(at + static_cast<size_t>(n) * 4);
  std::memcpy(out->data() + at, data, static_cast<size_t>(n) * 4);
}

bool CanRead(const std::vector<uint8_t>& buf, size_t offset, size_t n) {
  return offset + n <= buf.size();
}

Status ReadU32(const std::vector<uint8_t>& buf, size_t* offset,
               uint32_t* v) {
  if (!CanRead(buf, *offset, 4)) {
    return Status::InvalidArgument("record buffer truncated (u32)");
  }
  std::memcpy(v, buf.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadI64(const std::vector<uint8_t>& buf, size_t* offset, int64_t* v) {
  if (!CanRead(buf, *offset, 8)) {
    return Status::InvalidArgument("record buffer truncated (i64)");
  }
  std::memcpy(v, buf.data() + *offset, 8);
  *offset += 8;
  return Status::OK();
}

Status ReadF32(const std::vector<uint8_t>& buf, size_t* offset, float* v) {
  if (!CanRead(buf, *offset, 4)) {
    return Status::InvalidArgument("record buffer truncated (f32)");
  }
  std::memcpy(v, buf.data() + *offset, 4);
  *offset += 4;
  return Status::OK();
}

Status ReadFloats(const std::vector<uint8_t>& buf, size_t* offset, int64_t n,
                  float* dst) {
  if (!CanRead(buf, *offset, static_cast<size_t>(n) * 4)) {
    return Status::InvalidArgument("record buffer truncated (float array)");
  }
  if (n <= 0) return Status::OK();  // dst may be null for empty vectors.
  std::memcpy(dst, buf.data() + *offset, static_cast<size_t>(n) * 4);
  *offset += static_cast<size_t>(n) * 4;
  return Status::OK();
}

// Tensor wire format: u32 rank; i64 dims[rank]; u8 encoding
// (0 = dense, 1 = sparse); payload.
void SerializeTensor(const Tensor& t, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(t.shape().rank()), out);
  for (int i = 0; i < t.shape().rank(); ++i) PutI64(t.shape().dim(i), out);
  const int64_t n = t.num_elements();
  const float* data = t.data();
  int64_t nnz = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (data[i] != 0.0f) ++nnz;
  }
  // Sparse entry costs 8 B vs 4 B dense: sparse wins below 50% density.
  if (nnz * 2 < n) {
    out->push_back(1);
    PutI64(nnz, out);
    for (int64_t i = 0; i < n; ++i) {
      if (data[i] != 0.0f) {
        PutU32(static_cast<uint32_t>(i), out);
        PutF32(data[i], out);
      }
    }
  } else {
    out->push_back(0);
    PutFloats(data, n, out);
  }
}

Result<Tensor> DeserializeTensor(const std::vector<uint8_t>& buf,
                                 size_t* offset) {
  uint32_t rank = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &rank));
  if (rank > 8) return Status::InvalidArgument("tensor rank too large");
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &dims[i]));
    if (dims[i] < 0) return Status::InvalidArgument("negative tensor dim");
  }
  Shape shape(std::move(dims));
  if (!CanRead(buf, *offset, 1)) {
    return Status::InvalidArgument("record buffer truncated (encoding)");
  }
  const uint8_t encoding = buf[(*offset)++];
  Tensor t(shape);
  if (encoding == 0) {
    VISTA_RETURN_IF_ERROR(
        ReadFloats(buf, offset, t.num_elements(), t.mutable_data()));
  } else if (encoding == 1) {
    int64_t nnz = 0;
    VISTA_RETURN_IF_ERROR(ReadI64(buf, offset, &nnz));
    if (nnz < 0 || nnz > t.num_elements()) {
      return Status::InvalidArgument("bad sparse tensor nnz");
    }
    for (int64_t i = 0; i < nnz; ++i) {
      uint32_t idx = 0;
      float v = 0;
      VISTA_RETURN_IF_ERROR(ReadU32(buf, offset, &idx));
      VISTA_RETURN_IF_ERROR(ReadF32(buf, offset, &v));
      if (idx >= t.num_elements()) {
        return Status::InvalidArgument("sparse index out of range");
      }
      t.mutable_data()[idx] = v;
    }
  } else {
    return Status::InvalidArgument("unknown tensor encoding");
  }
  return t;
}

}  // namespace

int64_t EstimateRecordBytes(const Record& record) {
  // 8 B fixed-length key + null bitmap word.
  int64_t bytes = 8 + 8;
  // Variable-length fields carry an 8 B offset/length header each.
  bytes += 8 + static_cast<int64_t>(record.struct_features.size()) * 4;
  for (const Tensor& img : record.images) bytes += 8 + img.num_bytes();
  for (const Tensor& t : record.features.tensors()) {
    bytes += 8 + t.num_bytes();
  }
  return bytes;
}

void SerializeRecord(const Record& record, std::vector<uint8_t>* out) {
  PutI64(record.id, out);
  PutU32(static_cast<uint32_t>(record.struct_features.size()), out);
  PutFloats(record.struct_features.data(),
            static_cast<int64_t>(record.struct_features.size()), out);
  PutU32(static_cast<uint32_t>(record.images.size()), out);
  for (const Tensor& img : record.images) SerializeTensor(img, out);
  PutU32(static_cast<uint32_t>(record.features.size()), out);
  for (const Tensor& t : record.features.tensors()) {
    SerializeTensor(t, out);
  }
}

Result<Record> DeserializeRecord(const std::vector<uint8_t>& buffer,
                                 size_t* offset) {
  Record record;
  VISTA_RETURN_IF_ERROR(ReadI64(buffer, offset, &record.id));
  uint32_t n_struct = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_struct));
  record.struct_features.resize(n_struct);
  VISTA_RETURN_IF_ERROR(
      ReadFloats(buffer, offset, n_struct, record.struct_features.data()));
  uint32_t n_images = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_images));
  if (n_images > 1 << 20) {
    return Status::InvalidArgument("implausible image count in record");
  }
  for (uint32_t i = 0; i < n_images; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor img, DeserializeTensor(buffer, offset));
    record.images.push_back(std::move(img));
  }
  uint32_t n_tensors = 0;
  VISTA_RETURN_IF_ERROR(ReadU32(buffer, offset, &n_tensors));
  for (uint32_t i = 0; i < n_tensors; ++i) {
    VISTA_ASSIGN_OR_RETURN(Tensor t, DeserializeTensor(buffer, offset));
    record.features.Append(std::move(t));
  }
  return record;
}

}  // namespace vista::df
