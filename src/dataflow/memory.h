#ifndef VISTA_DATAFLOW_MEMORY_H_
#define VISTA_DATAFLOW_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace vista::df {

/// The memory regions of the paper's abstract model of distributed memory
/// apportioning (Section 4.1 / Figure 4). Budgets are per worker.
enum class MemoryRegion : int {
  /// UDF execution scratch: CNN models being deserialized, feature-layer
  /// buffers, downstream-model copies.
  kUser = 0,
  /// Query-processing scratch: join hash tables, shuffle buffers.
  kCore = 1,
  /// Cached intermediate data partitions.
  kStorage = 2,
  /// DL-system memory, outside the dataflow system's heap: per-thread CNN
  /// replicas during inference.
  kDlExecution = 3,
};

inline constexpr int kNumMemoryRegions = 4;

const char* MemoryRegionToString(MemoryRegion region);

/// Per-worker memory budgets (bytes). A budget of -1 means unlimited
/// (useful in tests exercising logic without memory pressure).
struct MemoryBudgets {
  int64_t user = -1;
  int64_t core = -1;
  int64_t storage = -1;
  int64_t dl_execution = -1;

  int64_t Get(MemoryRegion region) const;
};

/// Thread-safe accounting of region usage against budgets.
///
/// This is real accounting, not simulation: the local engine reserves bytes
/// before materializing buffers and fails with ResourceExhausted when a
/// region's budget would be exceeded — reproducing the paper's crash
/// scenarios as observable Status values instead of process deaths.
class MemoryManager {
 public:
  explicit MemoryManager(MemoryBudgets budgets = {});

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Attempts to reserve `bytes` in `region`; ResourceExhausted if the
  /// budget would be exceeded. Reservations of zero or negative bytes are
  /// no-ops.
  Status TryReserve(MemoryRegion region, int64_t bytes);

  /// Releases a previous reservation (clamped at zero defensively).
  void Release(MemoryRegion region, int64_t bytes);

  int64_t Used(MemoryRegion region) const;
  int64_t Budget(MemoryRegion region) const;
  /// High-water mark of usage in `region` since construction.
  int64_t Peak(MemoryRegion region) const;

  /// Bytes of head-room left, or INT64_MAX for unlimited regions.
  int64_t Available(MemoryRegion region) const;

  std::string DebugString() const;

 private:
  MemoryBudgets budgets_;
  /// Reserve/release mutate used_ and peak_ as one step under the region's
  /// mutex so the high-water mark can never record a stale value; the
  /// atomics keep Used()/Peak()/Available() lock-free for readers.
  mutable std::mutex region_mu_[kNumMemoryRegions];
  std::atomic<int64_t> used_[kNumMemoryRegions];
  std::atomic<int64_t> peak_[kNumMemoryRegions];
};

}  // namespace vista::df

#endif  // VISTA_DATAFLOW_MEMORY_H_
