#ifndef VISTA_TENSOR_GEMM_H_
#define VISTA_TENSOR_GEMM_H_

#include <cstdint>

#include "common/status.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace vista {

class ThreadPool;

/// Dense single-precision matrix multiply: C = A (m x k) * B (k x n),
/// row-major, written into a fresh tensor. Runs on the blocked, packed
/// GEMM core (tensor/gemm_kernel.h): register micro-tiling, cache
/// blocking, and panel packing into the calling thread's scratch arena.
/// No data-dependent branching, so NaN/Inf propagate exactly as IEEE
/// arithmetic dictates.
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// The naive i-k-j triple loop kept as the correctness oracle for the
/// packed kernel (tests compare against it on random shapes) and as the
/// baseline the micro benches measure speedup against.
Result<Tensor> MatMulReference(const Tensor& a, const Tensor& b);

/// im2col expansion of a CHW input for a (kernel x kernel, stride, pad)
/// convolution over `groups` channel groups: produces, for group `g`, a
/// matrix of shape (C/groups * kernel * kernel) x (H_out * W_out) laid out
/// so that the group's filter matrix can be applied with one MatMul.
/// Returns a rank-3 tensor (groups, C/groups*k*k, H_out*W_out).
Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups);

/// Convolution as GEMM — an independent implementation of tensor/ops.h's
/// Conv2D with identical semantics (including groups), differential-tested
/// against the direct loops. Routes to Conv2DGemmImplicit (no relu, no
/// pool). CnnModel uses this path.
Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups = 1);

/// Explicit im2col + GEMM reference: materializes the patch-matrix
/// expansion into the thread-local arena (Slot::kIm2Col — this is the only
/// remaining producer of that slot), then runs each group's packed GEMM
/// over strided views. `relu` folds max(0, x) into the GEMM's output pass,
/// and a non-null `pool` distributes each group's GEMM row tiles with
/// ThreadPool::ParallelFor (safe under nesting; see thread_pool.h).
/// Kept as the differential-test oracle and bench baseline for the
/// implicit path below, which is bit-identical by construction.
Result<Tensor> Conv2DGemmEx(const Tensor& input, const Tensor& weights,
                            const Tensor& bias, int stride, int pad,
                            int groups, bool relu, ThreadPool* pool);

/// Convolution as *implicit* GEMM — the hot path. Same semantics and
/// epilogue as Conv2DGemmEx, but the patch matrix is never materialized:
/// the GEMM's B-panel packer gathers patch elements straight from the
/// padded CHW input while packing KC x NC panels (tensor/gemm_kernel.h),
/// so conv scratch drops from the full C/g*k^2 x H_out*W_out expansion to
/// the two packed panels. A 1x1/stride-1/pad-0 convolution skips the
/// gather entirely and feeds the input tensor to the packed GEMM in
/// place. Output is bit-identical to Conv2DGemmEx: the packed panels are
/// byte-identical, so the accumulation order is unchanged.
Result<Tensor> Conv2DGemmImplicit(const Tensor& input, const Tensor& weights,
                                  const Tensor& bias, int stride, int pad,
                                  int groups, bool relu, ThreadPool* pool);

/// Conv2DGemmImplicit on the quantized kernel: the implicit B packer
/// quantizes each gathered patch value per-tensor with `act_scale` (the
/// calibrated symmetric input scale; <= 0 is the zero-scale guard and
/// quantizes to zeros) while packing — no fp32 expansion and no staging
/// quantization pass — then each group's GEMM runs int8 x int8 into
/// int32, and the fused epilogue dequantizes with the per-output-channel
/// combined scale (weight_scale * act_scale), adds the fp32 bias and
/// applies ReLU. Output and layer boundaries stay fp32. Int32
/// accumulators are bit-identical to quantizing a materialized expansion.
Result<Tensor> Conv2DGemmInt8(const Tensor& input, const QuantizedWeights& qw,
                              const Tensor& bias, int stride, int pad,
                              int groups, bool relu, float act_scale,
                              ThreadPool* pool);

/// Fully connected layer on the quantized kernel (y = dequant(W_q x_q) + b,
/// optional fused ReLU); the int8 twin of ops.h's FullyConnected.
Result<Tensor> FullyConnectedInt8(const Tensor& input,
                                  const QuantizedWeights& qw,
                                  const Tensor& bias, bool relu,
                                  float act_scale);

}  // namespace vista

#endif  // VISTA_TENSOR_GEMM_H_
