#ifndef VISTA_TENSOR_GEMM_H_
#define VISTA_TENSOR_GEMM_H_

#include <cstdint>

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista {

/// Dense single-precision matrix multiply: C = A (m x k) * B (k x n),
/// row-major, written into a fresh tensor. Blocked for cache friendliness;
/// this is the compute core of the im2col convolution path.
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// im2col expansion of a CHW input for a (kernel x kernel, stride, pad)
/// convolution over `groups` channel groups: produces, for group `g`, a
/// matrix of shape (C/groups * kernel * kernel) x (H_out * W_out) laid out
/// so that the group's filter matrix can be applied with one MatMul.
/// Returns a rank-3 tensor (groups, C/groups*k*k, H_out*W_out).
Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups);

/// Convolution via im2col + GEMM — an independent implementation of
/// tensor/ops.h's Conv2D with identical semantics (including groups),
/// differential-tested against the direct loops. Roughly 2-4x faster for
/// the shapes the micro CNNs use; CnnModel uses this path.
Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups = 1);

}  // namespace vista

#endif  // VISTA_TENSOR_GEMM_H_
