#ifndef VISTA_TENSOR_GEMM_H_
#define VISTA_TENSOR_GEMM_H_

#include <cstdint>

#include "common/status.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace vista {

class ThreadPool;

/// Dense single-precision matrix multiply: C = A (m x k) * B (k x n),
/// row-major, written into a fresh tensor. Runs on the blocked, packed
/// GEMM core (tensor/gemm_kernel.h): register micro-tiling, cache
/// blocking, and panel packing into the calling thread's scratch arena.
/// No data-dependent branching, so NaN/Inf propagate exactly as IEEE
/// arithmetic dictates.
Result<Tensor> MatMul(const Tensor& a, const Tensor& b);

/// The naive i-k-j triple loop kept as the correctness oracle for the
/// packed kernel (tests compare against it on random shapes) and as the
/// baseline the micro benches measure speedup against.
Result<Tensor> MatMulReference(const Tensor& a, const Tensor& b);

/// im2col expansion of a CHW input for a (kernel x kernel, stride, pad)
/// convolution over `groups` channel groups: produces, for group `g`, a
/// matrix of shape (C/groups * kernel * kernel) x (H_out * W_out) laid out
/// so that the group's filter matrix can be applied with one MatMul.
/// Returns a rank-3 tensor (groups, C/groups*k*k, H_out*W_out).
Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups);

/// Convolution via im2col + GEMM — an independent implementation of
/// tensor/ops.h's Conv2D with identical semantics (including groups),
/// differential-tested against the direct loops. The im2col expansion goes
/// into the thread-local scratch arena and each group's GEMM reads strided
/// views of the weight and column buffers, so a warmed-up call performs no
/// scratch allocation and no per-group copies; bias is fused into the GEMM
/// epilogue. CnnModel uses this path.
Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups = 1);

/// Conv2DGemm with the full fused epilogue and optional intra-op
/// parallelism: `relu` folds max(0, x) into the GEMM's output pass, and a
/// non-null `pool` distributes each group's GEMM row tiles with
/// ThreadPool::ParallelFor (safe under nesting; see thread_pool.h).
Result<Tensor> Conv2DGemmEx(const Tensor& input, const Tensor& weights,
                            const Tensor& bias, int stride, int pad,
                            int groups, bool relu, ThreadPool* pool);

/// Conv2DGemmEx on the quantized kernel: the fp32 im2col expansion is
/// quantized per-tensor with `act_scale` (the calibrated symmetric input
/// scale; <= 0 is the zero-scale guard and quantizes to zeros), each
/// group's GEMM runs int8 x int8 into int32, and the fused epilogue
/// dequantizes with the per-output-channel combined scale
/// (weight_scale * act_scale), adds the fp32 bias and applies ReLU.
/// Output and layer boundaries stay fp32. Same scratch discipline as the
/// fp32 path: zero allocations when warmed up.
Result<Tensor> Conv2DGemmInt8(const Tensor& input, const QuantizedWeights& qw,
                              const Tensor& bias, int stride, int pad,
                              int groups, bool relu, float act_scale,
                              ThreadPool* pool);

/// Fully connected layer on the quantized kernel (y = dequant(W_q x_q) + b,
/// optional fused ReLU); the int8 twin of ops.h's FullyConnected.
Result<Tensor> FullyConnectedInt8(const Tensor& input,
                                  const QuantizedWeights& qw,
                                  const Tensor& bias, bool relu,
                                  float act_scale);

}  // namespace vista

#endif  // VISTA_TENSOR_GEMM_H_
