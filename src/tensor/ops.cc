#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vista {
namespace {

Status ExpectRank(const Tensor& t, int rank, const char* what) {
  if (t.shape().rank() != rank) {
    return Status::InvalidArgument(std::string(what) + ": expected rank " +
                                   std::to_string(rank) + ", got shape " +
                                   t.shape().ToString());
  }
  return Status::OK();
}

}  // namespace

Result<Tensor> Conv2D(const Tensor& input, const Tensor& weights,
                      const Tensor& bias, int stride, int pad, int groups) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "Conv2D input"));
  VISTA_RETURN_IF_ERROR(ExpectRank(weights, 4, "Conv2D weights"));
  VISTA_RETURN_IF_ERROR(ExpectRank(bias, 1, "Conv2D bias"));
  if (stride < 1 || pad < 0 || groups < 1) {
    return Status::InvalidArgument("Conv2D: bad stride/pad/groups");
  }
  const int64_t c_in = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  const int64_t k = weights.shape().dim(0);
  const int64_t r = weights.shape().dim(2);
  const int64_t s = weights.shape().dim(3);
  if (c_in % groups != 0 || k % groups != 0) {
    return Status::InvalidArgument(
        "Conv2D: channels not divisible by groups");
  }
  const int64_t c_per_group = c_in / groups;
  if (weights.shape().dim(1) != c_per_group) {
    return Status::InvalidArgument(
        "Conv2D: weight channel dim " +
        std::to_string(weights.shape().dim(1)) + " != input channels/groups " +
        std::to_string(c_per_group));
  }
  if (bias.shape().dim(0) != k) {
    return Status::InvalidArgument("Conv2D: bias length != filter count");
  }
  if (r > h + 2 * pad || s > w + 2 * pad) {
    return Status::InvalidArgument("Conv2D: kernel larger than padded input " +
                                   input.shape().ToString());
  }
  const int64_t h_out = (h + 2 * pad - r) / stride + 1;
  const int64_t w_out = (w + 2 * pad - s) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Conv2D: output would be empty for input " +
                                   input.shape().ToString());
  }

  Tensor out(Shape{k, h_out, w_out});
  float* o = out.mutable_data();
  const float* in = input.data();
  const float* wt = weights.data();
  const float* b = bias.data();

  const int64_t k_per_group = k / groups;
  for (int64_t f = 0; f < k; ++f) {
    const float* wf = wt + f * c_per_group * r * s;
    const int64_t group_c0 = (f / k_per_group) * c_per_group;
    for (int64_t oy = 0; oy < h_out; ++oy) {
      const int64_t iy0 = oy * stride - pad;
      for (int64_t ox = 0; ox < w_out; ++ox) {
        const int64_t ix0 = ox * stride - pad;
        float acc = b[f];
        for (int64_t c = 0; c < c_per_group; ++c) {
          const float* in_c = in + (group_c0 + c) * h * w;
          const float* w_c = wf + c * r * s;
          for (int64_t ky = 0; ky < r; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* in_row = in_c + iy * w;
            const float* w_row = w_c + ky * s;
            for (int64_t kx = 0; kx < s; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += in_row[ix] * w_row[kx];
            }
          }
        }
        o[(f * h_out + oy) * w_out + ox] = acc;
      }
    }
  }
  return out;
}

namespace {

enum class PoolKind { kMax, kAvg };

Result<Tensor> Pool2D(const Tensor& input, int window, int stride, int pad,
                      PoolKind kind) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "Pool2D input"));
  if (window < 1 || stride < 1 || pad < 0) {
    return Status::InvalidArgument("Pool2D: bad window/stride/pad");
  }
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (window > h + 2 * pad || window > w + 2 * pad) {
    return Status::InvalidArgument("Pool2D: window larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - window) / stride + 1;
  const int64_t w_out = (w + 2 * pad - window) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Pool2D: output would be empty");
  }
  Tensor out(Shape{c, h_out, w_out});
  float* o = out.mutable_data();
  const float* in = input.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* in_c = in + ch * h * w;
    for (int64_t oy = 0; oy < h_out; ++oy) {
      for (int64_t ox = 0; ox < w_out; ++ox) {
        const int64_t iy0 = oy * stride - pad;
        const int64_t ix0 = ox * stride - pad;
        float best = -std::numeric_limits<float>::infinity();
        float sum = 0.0f;
        int64_t count = 0;
        for (int ky = 0; ky < window; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < window; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            const float v = in_c[iy * w + ix];
            best = std::max(best, v);
            sum += v;
            ++count;
          }
        }
        float result;
        if (kind == PoolKind::kMax) {
          result = count > 0 ? best : 0.0f;
        } else {
          result = count > 0 ? sum / static_cast<float>(count) : 0.0f;
        }
        o[(ch * h_out + oy) * w_out + ox] = result;
      }
    }
  }
  return out;
}

}  // namespace

Result<Tensor> MaxPool2D(const Tensor& input, int window, int stride,
                         int pad) {
  return Pool2D(input, window, stride, pad, PoolKind::kMax);
}

Result<Tensor> AvgPool2D(const Tensor& input, int window, int stride,
                         int pad) {
  return Pool2D(input, window, stride, pad, PoolKind::kAvg);
}

Result<Tensor> GlobalAvgPool(const Tensor& input) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "GlobalAvgPool input"));
  const int64_t c = input.shape().dim(0);
  const int64_t hw = input.shape().dim(1) * input.shape().dim(2);
  Tensor out(Shape{c});
  const float* in = input.data();
  float* o = out.mutable_data();
  for (int64_t ch = 0; ch < c; ++ch) {
    double sum = 0.0;
    for (int64_t i = 0; i < hw; ++i) sum += in[ch * hw + i];
    o[ch] = static_cast<float>(sum / static_cast<double>(hw));
  }
  return out;
}

Tensor Relu(const Tensor& input) {
  Tensor out = input.Clone();
  float* o = out.mutable_data();
  const int64_t n = out.num_elements();
  for (int64_t i = 0; i < n; ++i) o[i] = std::max(0.0f, o[i]);
  return out;
}

Result<Tensor> FullyConnected(const Tensor& input, const Tensor& weights,
                              const Tensor& bias) {
  VISTA_RETURN_IF_ERROR(ExpectRank(weights, 2, "FullyConnected weights"));
  VISTA_RETURN_IF_ERROR(ExpectRank(bias, 1, "FullyConnected bias"));
  const int64_t out_dim = weights.shape().dim(0);
  const int64_t in_dim = weights.shape().dim(1);
  if (input.num_elements() != in_dim) {
    return Status::InvalidArgument(
        "FullyConnected: input has " + std::to_string(input.num_elements()) +
        " elements, weights expect " + std::to_string(in_dim));
  }
  if (bias.shape().dim(0) != out_dim) {
    return Status::InvalidArgument("FullyConnected: bias length mismatch");
  }
  Tensor out(Shape{out_dim});
  const float* x = input.data();
  const float* w = weights.data();
  const float* b = bias.data();
  float* o = out.mutable_data();
  for (int64_t r = 0; r < out_dim; ++r) {
    const float* wr = w + r * in_dim;
    double acc = b[r];
    for (int64_t c = 0; c < in_dim; ++c) acc += wr[c] * x[c];
    o[r] = static_cast<float>(acc);
  }
  return out;
}

Result<Tensor> BatchNormInference(const Tensor& input, const Tensor& scale,
                                  const Tensor& shift) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "BatchNorm input"));
  const int64_t c = input.shape().dim(0);
  if (scale.num_elements() != c || shift.num_elements() != c) {
    return Status::InvalidArgument("BatchNorm: scale/shift length mismatch");
  }
  const int64_t hw = input.shape().dim(1) * input.shape().dim(2);
  Tensor out = input.Clone();
  float* o = out.mutable_data();
  const float* sc = scale.data();
  const float* sh = shift.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < hw; ++i) {
      o[ch * hw + i] = sc[ch] * o[ch * hw + i] + sh[ch];
    }
  }
  return out;
}

Result<Tensor> Add(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Add: shape mismatch " +
                                   a.shape().ToString() + " vs " +
                                   b.shape().ToString());
  }
  Tensor out = a.Clone();
  float* o = out.mutable_data();
  const float* bb = b.data();
  const int64_t n = out.num_elements();
  for (int64_t i = 0; i < n; ++i) o[i] += bb[i];
  return out;
}

Result<Tensor> Softmax(const Tensor& input) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 1, "Softmax input"));
  Tensor out = input.Clone();
  float* o = out.mutable_data();
  const int64_t n = out.num_elements();
  float max_v = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < n; ++i) max_v = std::max(max_v, o[i]);
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    o[i] = std::exp(o[i] - max_v);
    sum += o[i];
  }
  for (int64_t i = 0; i < n; ++i) {
    o[i] = static_cast<float>(o[i] / sum);
  }
  return out;
}

Result<Tensor> LocalResponseNorm(const Tensor& input, int depth_radius,
                                 float bias, float alpha, float beta) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "LRN input"));
  const int64_t c = input.shape().dim(0);
  const int64_t hw = input.shape().dim(1) * input.shape().dim(2);
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.mutable_data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const int64_t lo = std::max<int64_t>(0, ch - depth_radius);
    const int64_t hi = std::min<int64_t>(c - 1, ch + depth_radius);
    for (int64_t i = 0; i < hw; ++i) {
      float sq = 0.0f;
      for (int64_t j = lo; j <= hi; ++j) {
        const float v = in[j * hw + i];
        sq += v * v;
      }
      o[ch * hw + i] =
          in[ch * hw + i] / std::pow(bias + alpha * sq, beta);
    }
  }
  return out;
}

Result<Tensor> GridMaxPool(const Tensor& input, int grid) {
  VISTA_RETURN_IF_ERROR(ExpectRank(input, 3, "GridMaxPool input"));
  if (grid < 1) return Status::InvalidArgument("GridMaxPool: grid < 1");
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (h < grid || w < grid) {
    // Already at or below target resolution: identity.
    return input;
  }
  Tensor out(Shape{c, grid, grid});
  const float* in = input.data();
  float* o = out.mutable_data();
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int g1 = 0; g1 < grid; ++g1) {
      const int64_t y0 = g1 * h / grid;
      const int64_t y1 = (g1 + 1) * h / grid;
      for (int g2 = 0; g2 < grid; ++g2) {
        const int64_t x0 = g2 * w / grid;
        const int64_t x1 = (g2 + 1) * w / grid;
        float best = -std::numeric_limits<float>::infinity();
        for (int64_t y = y0; y < y1; ++y) {
          for (int64_t x = x0; x < x1; ++x) {
            best = std::max(best, in[(ch * h + y) * w + x]);
          }
        }
        o[(ch * grid + g1) * grid + g2] = best;
      }
    }
  }
  return out;
}

int64_t Conv2DFlops(int64_t in_channels, int64_t out_channels,
                    int64_t out_height, int64_t out_width, int64_t kernel) {
  return 2 * in_channels * out_channels * out_height * out_width * kernel *
         kernel;
}

int64_t FullyConnectedFlops(int64_t in_features, int64_t out_features) {
  return 2 * in_features * out_features;
}

}  // namespace vista
