#ifndef VISTA_TENSOR_TENSOR_H_
#define VISTA_TENSOR_TENSOR_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "tensor/shape.h"

namespace vista {

/// Dense row-major float32 tensor.
///
/// Copying a Tensor is cheap: copies share the underlying buffer, like Arrow
/// arrays. Treat shared tensors as immutable; call Clone() before mutating a
/// tensor that may be aliased. This keeps the dataflow engine's record
/// movement (shuffles, joins, caching) allocation-free where possible.
class Tensor {
 public:
  /// An empty rank-0 tensor holding a single zero.
  Tensor() : Tensor(Shape{}) {}

  /// Allocates a zero-initialized tensor of `shape`.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(shape_.num_elements(),
                                                   0.0f)) {}

  /// Wraps existing values; `values.size()` must equal
  /// `shape.num_elements()`.
  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(std::move(values))) {
    VISTA_CHECK_EQ(static_cast<int64_t>(data_->size()),
                   shape_.num_elements());
  }

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }

  static Tensor Full(Shape shape, float value) {
    Tensor t(std::move(shape));
    for (float& v : *t.data_) v = value;
    return t;
  }

  /// I.i.d. Gaussian entries with the given std (mean 0).
  static Tensor RandomGaussian(Shape shape, Rng* rng, float stddev = 1.0f) {
    Tensor t(std::move(shape));
    for (float& v : *t.data_) {
      v = static_cast<float>(rng->NextGaussian()) * stddev;
    }
    return t;
  }

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return shape_.num_elements(); }
  int64_t num_bytes() const { return shape_.num_bytes(); }

  const float* data() const { return data_->data(); }
  float* mutable_data() { return data_->data(); }

  float at(int64_t flat_index) const {
    VISTA_DCHECK(flat_index >= 0 && flat_index < num_elements());
    return (*data_)[flat_index];
  }
  void set(int64_t flat_index, float value) {
    VISTA_DCHECK(flat_index >= 0 && flat_index < num_elements());
    (*data_)[flat_index] = value;
  }

  /// 3D accessor for CHW image tensors.
  float at3(int64_t c, int64_t h, int64_t w) const {
    return (*data_)[(c * shape_.dim(1) + h) * shape_.dim(2) + w];
  }

  /// Deep copy with a fresh buffer.
  Tensor Clone() const {
    return Tensor(shape_, std::vector<float>(*data_));
  }

  /// Returns a rank-1 view-copy of this tensor's values (FlattenOp,
  /// Definition 3.5).
  Tensor Flatten() const {
    return Tensor(Shape{num_elements()}, std::vector<float>(*data_));
  }

  /// True if both tensors have the same shape and element-wise equal values
  /// within `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

/// Indexed list of tensors of potentially different shapes (Definition 3.2).
///
/// Used to carry the materialized feature layers of one record through the
/// dataflow engine: entry i holds the (flattened or raw) feature tensor of
/// the i-th layer of interest.
class TensorList {
 public:
  TensorList() = default;
  explicit TensorList(std::vector<Tensor> tensors)
      : tensors_(std::move(tensors)) {}

  void Append(Tensor t) { tensors_.push_back(std::move(t)); }

  int size() const { return static_cast<int>(tensors_.size()); }
  bool empty() const { return tensors_.empty(); }
  const Tensor& at(int i) const { return tensors_[i]; }
  Tensor& at(int i) { return tensors_[i]; }

  /// Total payload bytes across all entries.
  int64_t num_bytes() const {
    int64_t n = 0;
    for (const auto& t : tensors_) n += t.num_bytes();
    return n;
  }

  const std::vector<Tensor>& tensors() const { return tensors_; }

 private:
  std::vector<Tensor> tensors_;
};

}  // namespace vista

#endif  // VISTA_TENSOR_TENSOR_H_
