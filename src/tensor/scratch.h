#ifndef VISTA_TENSOR_SCRATCH_H_
#define VISTA_TENSOR_SCRATCH_H_

#include <cstddef>
#include <cstdint>

namespace vista {

/// Reusable, cache-line-aligned scratch buffers for the tensor kernels.
///
/// A KernelScratch owns one growable buffer per slot (im2col expansion,
/// packed A panel, packed B panel). Acquire() returns a pointer with at
/// least the requested capacity, growing geometrically on miss and reusing
/// the existing allocation on hit — so a CNN forward pass performs a fixed
/// number of allocations on the first image (the warm-up) and zero on every
/// image after it. The alloc/reuse counters make that claim testable.
///
/// Thread-safety contract: a KernelScratch is single-threaded state. Kernels
/// never share one across threads; each thread uses its own arena via
/// ThreadLocal(). Buffers returned by Acquire() stay valid until the next
/// Acquire() of the *same* slot (a grow may reallocate), so a kernel may
/// hold the im2col buffer while packing panels.
class KernelScratch {
 public:
  enum class Slot : int {
    /// Materialized im2col expansion. Only the explicit reference path
    /// (Conv2DGemmEx, the differential-test oracle) still writes this
    /// slot; the implicit-GEMM hot path gathers patches during B-panel
    /// packing and never touches it.
    kIm2Col = 0,
    kPackA = 1,
    kPackB = 2,
    // Int8 inference plane: packed int8 A/B panels, the quantized
    // activation staging buffer, and per-row combined dequant scales.
    kPackAInt8 = 3,
    kPackBInt8 = 4,
    kQuantAct = 5,
    kScales = 6,
    kNumSlots = 7,
  };

  KernelScratch() = default;
  ~KernelScratch();

  KernelScratch(const KernelScratch&) = delete;
  KernelScratch& operator=(const KernelScratch&) = delete;

  /// Returns a 64-byte-aligned buffer holding at least `num_floats` floats.
  /// Contents are unspecified (kernels fully overwrite what they use).
  float* Acquire(Slot slot, size_t num_floats);

  /// Byte-typed view of a slot for the int8 kernels: a 64-byte-aligned
  /// buffer holding at least `num_bytes` bytes (backed by the same float
  /// storage, rounded up).
  void* AcquireBytes(Slot slot, size_t num_bytes) {
    return Acquire(slot, (num_bytes + sizeof(float) - 1) / sizeof(float));
  }

  /// Frees every slot (counters are kept). Mainly for tests that measure
  /// cold-start behavior.
  void Release();

  /// Number of Acquire() calls that had to (re)allocate.
  int64_t allocations() const { return allocations_; }
  /// Number of Acquire() calls served entirely from an existing buffer.
  int64_t reuses() const { return reuses_; }
  /// Total float capacity currently held across slots.
  int64_t capacity_floats() const;
  /// Total bytes currently held across slots.
  int64_t capacity_bytes() const { return capacity_floats() * 4; }
  /// High-water mark of capacity_bytes() over this arena's lifetime
  /// (Release() resets capacity but never the peak): the arena's true
  /// scratch footprint, the number the estimator's ConvTempBytes predicts.
  int64_t peak_bytes() const { return peak_bytes_; }

  /// Process-wide aggregates over every arena (all threads): bytes
  /// currently held, and the high-water mark of that total. Mirrored into
  /// obs as the "scratch.peak_bytes" gauge and surfaced through
  /// EngineStats/RealRunResult so the kernel Temp footprint is observable.
  static int64_t TotalBytes();
  static int64_t GlobalPeakBytes();

  /// The calling thread's arena. One arena per thread for the process
  /// lifetime: pack buffers are reused across layers, images, and engine
  /// map tasks scheduled on the same worker thread.
  static KernelScratch& ThreadLocal();

 private:
  static constexpr int kNumSlots = static_cast<int>(Slot::kNumSlots);

  struct Buffer {
    float* data = nullptr;
    size_t capacity = 0;  // In floats.
  };

  /// Adjusts this arena's held-byte count by `delta` bytes and folds the
  /// result into the per-arena and process-wide high-water marks.
  void TrackBytes(int64_t delta);

  Buffer buffers_[kNumSlots];
  int64_t allocations_ = 0;
  int64_t reuses_ = 0;
  int64_t held_bytes_ = 0;
  int64_t peak_bytes_ = 0;
};

}  // namespace vista

#endif  // VISTA_TENSOR_SCRATCH_H_
