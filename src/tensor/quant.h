#ifndef VISTA_TENSOR_QUANT_H_
#define VISTA_TENSOR_QUANT_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista {

/// Symmetric int8 quantization helpers shared by the quantized GEMM path
/// (tensor/gemm_kernel.h), the DL calibration pass (dl/cnn.h), and the
/// tests. The scheme is symmetric around zero with the narrow range
/// [-127, 127] (the -128 code is never produced), so a quantized value is
/// exactly q = round(x / scale) and dequantizes as q * scale with no zero
/// point to track through the GEMM.

/// max |x| over `n` floats; 0 for an empty range.
float MaxAbs(const float* x, int64_t n);

/// The scale mapping [-max_abs, max_abs] onto [-127, 127]: max_abs / 127.
/// A zero, negative, or non-finite max_abs yields 0 — the zero-scale guard
/// for tensors that are identically zero (see QuantizeSymmetric).
float SymmetricScale(float max_abs);

/// Rounds to nearest with ties to even (the IEEE default rounding mode,
/// which this relies on — the process must not switch fesetround away from
/// FE_TONEAREST) and saturates to [-127, 127]. NaN maps to 0.
inline int8_t SaturateRoundToInt8(float v) {
  if (std::isnan(v)) return 0;
  if (v >= 127.0f) return 127;
  if (v <= -127.0f) return -127;
  return static_cast<int8_t>(std::lrintf(v));
}

/// dst[i] = SaturateRoundToInt8(src[i] / scale). A scale <= 0 (the
/// zero-scale guard: SymmetricScale of an all-zero tensor) writes zeros
/// instead of dividing.
void QuantizeSymmetric(const float* src, int64_t n, float scale,
                       int8_t* dst);

/// A weight tensor quantized per output channel (dim 0): element order
/// matches the fp32 tensor, and row i of the flattened (out x inner) view
/// dequantizes as data[i * inner + j] * scales[i].
struct QuantizedWeights {
  Shape shape;                 ///< Original fp32 weight shape.
  std::vector<int8_t> data;    ///< Same element order as the fp32 tensor.
  std::vector<float> scales;   ///< Length shape.dim(0).

  int64_t out_channels() const { return shape.rank() > 0 ? shape.dim(0) : 0; }
  int64_t inner() const {
    const int64_t oc = out_channels();
    return oc > 0 ? shape.num_elements() / oc : 0;
  }
};

/// Quantizes `w` (rank >= 2; dim 0 is the output-channel axis — conv
/// filters are (K, C/g, k, k), fc weights (out, in)) with one symmetric
/// max-abs scale per output channel. All-zero channels get scale 0 and
/// all-zero codes.
Result<QuantizedWeights> QuantizeWeightsPerChannel(const Tensor& w);

}  // namespace vista

#endif  // VISTA_TENSOR_QUANT_H_
