#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "tensor/quant.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define VISTA_HAVE_X86_INT8 1
#else
#define VISTA_HAVE_X86_INT8 0
#endif

namespace vista {
namespace {

std::atomic<int64_t> g_gemm_flops{0};

inline int64_t RoundUp(int64_t x, int64_t multiple) {
  return (x + multiple - 1) / multiple * multiple;
}

/// Packs the (mc x kc) block of A starting at `a` into MR-row strips:
/// strip s holds rows [s*MR, s*MR+MR) column-major within the strip
/// (index p*MR + i), zero-padded past mc so the micro-kernel never
/// branches on the row count.
void PackA(const float* a, int64_t lda, int64_t mc, int64_t kc, float* ap) {
  for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
    const int64_t mr = std::min(kGemmMR, mc - ir);
    float* dst = ap + ir * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* col = a + ir * lda + p;
      for (int64_t i = 0; i < mr; ++i) {
        dst[p * kGemmMR + i] = col[i * lda];
      }
      for (int64_t i = mr; i < kGemmMR; ++i) {
        dst[p * kGemmMR + i] = 0.0f;
      }
    }
  }
}

/// Packs the (kc x nc) block of B starting at `b` into NR-column strips
/// (index p*NR + j), zero-padded past nc.
void PackB(const float* b, int64_t ldb, int64_t kc, int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    float* dst = bp + jr * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = b + p * ldb + jr;
      float* row = dst + p * kGemmNR;
      for (int64_t j = 0; j < nr; ++j) row[j] = src[j];
      for (int64_t j = nr; j < kGemmNR; ++j) row[j] = 0.0f;
    }
  }
}

/// Patch-row tap decomposition for one KC panel: row r = pc + p of the
/// implicit patch matrix is the conv tap (channel cc, ky, kx) with
/// r = (cc * kernel + ky) * kernel + kx. Built once per panel so the
/// per-strip pack loops below touch no divisions.
struct ConvRowTaps {
  // Sized for the larger int8 K panel (kGemmKcInt8 = 4 * kGemmKC rows);
  // the fp32 path uses the first kGemmKC entries.
  int32_t cc[kGemmKcInt8];
  int32_t ky[kGemmKcInt8];
  int32_t kx[kGemmKcInt8];

  void Build(const ConvPatchView& v, int64_t pc, int64_t kc) {
    const int64_t kk = static_cast<int64_t>(v.kernel) * v.kernel;
    for (int64_t p = 0; p < kc; ++p) {
      const int64_t r = pc + p;
      const int64_t c = r / kk;
      const int64_t rem = r - c * kk;
      cc[p] = static_cast<int32_t>(c);
      ky[p] = static_cast<int32_t>(rem / v.kernel);
      kx[p] = static_cast<int32_t>(rem % v.kernel);
    }
  }
};

/// One strip's worth of output columns decomposed into output-row runs:
/// columns [jc + jr + q, jc + jr + q + len) all sit in output row oy
/// starting at output column ox. At most kGemmNR runs (w_out == 1), and
/// for typical conv grids one or two. Built once per strip — the span
/// walk is independent of the patch row, so the p loop reuses it.
struct StripSpans {
  struct Run {
    int32_t q, len, oy, ox;
  };
  Run runs[kGemmNR];
  int n = 0;

  void Build(const ConvPatchView& v, int64_t col0, int64_t nr) {
    n = 0;
    int64_t q = 0;
    while (q < nr) {
      const int64_t col = col0 + q;
      const int64_t oy = col / v.w_out;
      const int64_t ox = col - oy * v.w_out;
      const int64_t len = std::min(nr - q, v.w_out - ox);
      runs[n++] = {static_cast<int32_t>(q), static_cast<int32_t>(len),
                   static_cast<int32_t>(oy), static_cast<int32_t>(ox)};
      q += len;
    }
  }
};

/// Packs the (kc x nc) block at (row pc, col jc) of `v`'s implicit patch
/// matrix into NR-column strips — the same strip layout and zero fill as
/// PackB, but copying input segments straight into the strips: within one
/// output-row run a stride-1 patch row is a contiguous slice of an input
/// row, so the gather is the same contiguous copy PackB performs, reading
/// the (L2-resident) input instead of a materialized expansion that was
/// itself gathered from it. Taps landing in the zero-padding border store
/// 0. Single pass: the expansion never exists, not even panel-sized.
void PackBConv(const ConvPatchView& v, int64_t pc, int64_t jc, int64_t kc,
               int64_t nc, float* bp) {
  ConvRowTaps taps;
  taps.Build(v, pc, kc);
  StripSpans spans;
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    spans.Build(v, jc + jr, nr);
    float* dst = bp + jr * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* chan =
          v.input + static_cast<int64_t>(taps.cc[p]) * v.h * v.w;
      const int64_t ky = taps.ky[p];
      const int64_t kx = taps.kx[p];
      float* out = dst + p * kGemmNR;
      for (int s = 0; s < spans.n; ++s) {
        const StripSpans::Run& run = spans.runs[s];
        float* o = out + run.q;
        const int64_t iy = run.oy * v.stride - v.pad + ky;
        if (iy < 0 || iy >= v.h) {
          for (int32_t i = 0; i < run.len; ++i) o[i] = 0.0f;
          continue;
        }
        const float* row = chan + iy * v.w;
        if (v.stride == 1) {
          // Column run.ox + i reads ix = ix0 + i: zeros while ix < 0, an
          // unchecked contiguous copy while 0 <= ix < w, zeros past the
          // right edge.
          const int64_t ix0 = run.ox - v.pad + kx;
          const int64_t len = run.len;
          const int64_t left = std::min(len, std::max<int64_t>(0, -ix0));
          const int64_t end = std::max(left, std::min(len, v.w - ix0));
          for (int64_t i = 0; i < left; ++i) o[i] = 0.0f;
          const float* src = row + ix0;
          for (int64_t i = left; i < end; ++i) o[i] = src[i];
          for (int64_t i = end; i < len; ++i) o[i] = 0.0f;
        } else {
          for (int32_t i = 0; i < run.len; ++i) {
            const int64_t ix =
                (run.ox + i) * v.stride - v.pad + kx;
            o[i] = static_cast<uint64_t>(ix) < static_cast<uint64_t>(v.w)
                       ? row[ix]
                       : 0.0f;
          }
        }
      }
      for (int64_t j = nr; j < kGemmNR; ++j) out[j] = 0.0f;
    }
  }
}

/// The register micro-kernel: acc (MR x NR) += Ap strip * Bp strip over kc.
///
/// Written with GCC/Clang vector extensions (8-float lanes, two per NR=16
/// row) so the 6x16 accumulator block provably lives in 12 vector
/// registers; plain auto-vectorization of the equivalent scalar loops only
/// produced 16-byte SLP on GCC 12. target_clones emits AVX2/AVX-512
/// variants behind a runtime ifunc dispatch, keeping the binary portable
/// to baseline x86-64 (and the scalar fallback keeps other
/// compilers/architectures working).
#if defined(__GNUC__) || defined(__clang__)
#define VISTA_HAVE_VECTOR_EXT 1
#else
#define VISTA_HAVE_VECTOR_EXT 0
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define VISTA_GEMM_CLONES \
  __attribute__((target_clones("default,arch=x86-64-v3,arch=x86-64-v4")))
#else
#define VISTA_GEMM_CLONES
#endif

#if VISTA_HAVE_VECTOR_EXT
typedef float Vec8 __attribute__((vector_size(32)));
static_assert(kGemmNR == 16, "micro-kernel assumes two 8-float lanes");

VISTA_GEMM_CLONES
void MicroKernel(int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict acc) {
  Vec8 c[kGemmMR][2];
  for (int64_t i = 0; i < kGemmMR; ++i) {
    std::memcpy(&c[i][0], acc + i * kGemmNR, sizeof(Vec8));
    std::memcpy(&c[i][1], acc + i * kGemmNR + 8, sizeof(Vec8));
  }
  for (int64_t p = 0; p < kc; ++p) {
    Vec8 b0, b1;
    std::memcpy(&b0, bp + p * kGemmNR, sizeof(Vec8));
    std::memcpy(&b1, bp + p * kGemmNR + 8, sizeof(Vec8));
    const float* a = ap + p * kGemmMR;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      c[i][0] += a[i] * b0;
      c[i][1] += a[i] * b1;
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    std::memcpy(acc + i * kGemmNR, &c[i][0], sizeof(Vec8));
    std::memcpy(acc + i * kGemmNR + 8, &c[i][1], sizeof(Vec8));
  }
}
#else
void MicroKernel(int64_t kc, const float* ap, const float* bp, float* acc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kGemmMR;
    const float* b = bp + p * kGemmNR;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      const float ai = a[i];
      for (int64_t j = 0; j < kGemmNR; ++j) {
        acc[i * kGemmNR + j] += ai * b[j];
      }
    }
  }
}
#endif

/// Runs the micro-tile grid over one packed (mc x kc) A panel and
/// (kc x nc) B panel, accumulating into C. `first` zeroes instead of
/// loading C (the pc == 0 panel); `last` applies the epilogue while
/// storing (the final K panel). `bias` is pre-offset to this C block's
/// first row.
void InnerTiles(int64_t mc, int64_t nc, int64_t kc, const float* ap,
                const float* bp, float* c, int64_t ldc, bool first,
                bool last, const float* bias, bool relu) {
  float acc[kGemmMR * kGemmNR];
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    const float* bstrip = bp + jr * kc;
    for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const int64_t mr = std::min(kGemmMR, mc - ir);
      const float* astrip = ap + ir * kc;
      if (first) {
        std::memset(acc, 0, sizeof(acc));
      } else {
        for (int64_t i = 0; i < mr; ++i) {
          const float* src = c + (ir + i) * ldc + jr;
          for (int64_t j = 0; j < nr; ++j) acc[i * kGemmNR + j] = src[j];
        }
      }
      MicroKernel(kc, astrip, bstrip, acc);
      for (int64_t i = 0; i < mr; ++i) {
        float* dst = c + (ir + i) * ldc + jr;
        const float* row = acc + i * kGemmNR;
        if (last) {
          const float b = bias != nullptr ? bias[ir + i] : 0.0f;
          if (relu) {
            for (int64_t j = 0; j < nr; ++j) {
              dst[j] = std::max(0.0f, row[j] + b);
            }
          } else {
            for (int64_t j = 0; j < nr; ++j) dst[j] = row[j] + b;
          }
        } else {
          for (int64_t j = 0; j < nr; ++j) dst[j] = row[j];
        }
      }
    }
  }
}

/// Degenerate k == 0: C is the epilogue of a zero product.
void EpilogueOnly(int64_t m, int64_t n, float* c, int64_t ldc,
                  const GemmEpilogue& epilogue) {
  for (int64_t i = 0; i < m; ++i) {
    float v = epilogue.bias != nullptr ? epilogue.bias[i] : 0.0f;
    if (epilogue.relu) v = std::max(0.0f, v);
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = v;
  }
}

/// ---- Int8 kernel -------------------------------------------------------

std::atomic<int64_t> g_gemm_int8_ops{0};

/// Packs the (mc x kc) block of A into MR-row strips of 4-deep k blocks:
/// strip byte (kb*MR + i)*4 + t holds A[row i][4*kb + t], signed,
/// zero-padded past mc and past kc (to kc4 = RoundUp(kc, 4)). Also emits
/// the per-row sum over the block's k range, which the driver uses to
/// correct the +128 unsigned bias applied to the B panel.
void PackAInt8(const int8_t* a, int64_t lda, int64_t mc, int64_t kc,
               int8_t* ap, int32_t* rowsum) {
  const int64_t kc4 = RoundUp(kc, 4);
  for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
    const int64_t mr = std::min(kGemmMR, mc - ir);
    int8_t* dst = ap + ir * kc4;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      const int8_t* src = i < mr ? a + (ir + i) * lda : nullptr;
      int32_t sum = 0;
      for (int64_t p = 0; p < kc4; ++p) {
        const int8_t v = (src != nullptr && p < kc) ? src[p] : 0;
        dst[((p / 4) * kGemmMR + i) * 4 + (p % 4)] = v;
        sum += v;
      }
      if (i < mr) rowsum[ir + i] = sum;
    }
  }
}

/// Packs the (kc x nc) block of B into NR-column strips of 4-deep k
/// blocks, biased to unsigned: strip byte (kb*NR + j)*4 + t holds
/// B[4*kb + t][col j] + 128 (so padding stores 128, i.e. signed zero).
/// This is the vpdpbusd unsigned-operand convention; the signed result is
/// recovered by subtracting 128 * rowsum(A).
void PackBInt8(const int8_t* b, int64_t ldb, int64_t kc, int64_t nc,
               uint8_t* bp) {
  const int64_t kc4 = RoundUp(kc, 4);
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    uint8_t* dst = bp + jr * kc4;
    for (int64_t p = 0; p < kc4; ++p) {
      uint8_t* out = dst + (p / 4) * kGemmNR * 4 + (p % 4);
      if (p >= kc) {
        for (int64_t j = 0; j < kGemmNR; ++j) out[j * 4] = 128;
        continue;
      }
      const int8_t* src = b + p * ldb + jr;
      for (int64_t j = 0; j < kGemmNR; ++j) {
        const int v = j < nr ? src[j] : 0;
        out[j * 4] = static_cast<uint8_t>(v + 128);
      }
    }
  }
}

/// Int8 twin of PackBConv: packs the (kc x nc) block of `v`'s implicit
/// patch matrix into PackBInt8's [k/4][NR][4] u8 layout, quantizing each
/// gathered fp32 value on the fly with exactly QuantizeSymmetric's
/// expression — SaturateRoundToInt8(value * (1/act_scale)) — then biasing
/// +128. Padding taps, columns past nc, rows past kc, and the whole panel
/// under the zero-scale guard (act_scale <= 0) all store 128 (signed
/// zero), matching what PackBInt8 would have read from a quantized
/// expansion byte for byte.
void PackBConvInt8(const ConvPatchView& v, float act_scale, int64_t pc,
                   int64_t jc, int64_t kc, int64_t nc, uint8_t* bp) {
  const int64_t kc4 = RoundUp(kc, 4);
  const bool zero_scale = !(act_scale > 0.0f);
  const float inv = zero_scale ? 0.0f : 1.0f / act_scale;
  ConvRowTaps taps;
  taps.Build(v, pc, kc);
  StripSpans spans;
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    spans.Build(v, jc + jr, nr);
    uint8_t* dst = bp + jr * kc4;
    for (int64_t p = 0; p < kc4; ++p) {
      uint8_t* out = dst + (p / 4) * kGemmNR * 4 + (p % 4);
      if (p >= kc || zero_scale) {
        // Rows past kc and the zero-scale guard store 128 (signed zero).
        for (int64_t j = 0; j < kGemmNR; ++j) out[j * 4] = 128;
        continue;
      }
      const float* chan =
          v.input + static_cast<int64_t>(taps.cc[p]) * v.h * v.w;
      const int64_t ky = taps.ky[p];
      const int64_t kx = taps.kx[p];
      for (int s = 0; s < spans.n; ++s) {
        const StripSpans::Run& run = spans.runs[s];
        uint8_t* o = out + static_cast<int64_t>(run.q) * 4;
        const int64_t iy = run.oy * v.stride - v.pad + ky;
        if (iy < 0 || iy >= v.h) {
          for (int32_t i = 0; i < run.len; ++i) o[i * 4] = 128;
          continue;
        }
        const float* row = chan + iy * v.w;
        for (int32_t i = 0; i < run.len; ++i) {
          const int64_t ix = (run.ox + i) * v.stride - v.pad + kx;
          const float val =
              static_cast<uint64_t>(ix) < static_cast<uint64_t>(v.w)
                  ? row[ix]
                  : 0.0f;
          o[i * 4] =
              static_cast<uint8_t>(SaturateRoundToInt8(val * inv) + 128);
        }
      }
      for (int64_t j = nr; j < kGemmNR; ++j) out[j * 4] = 128;
    }
  }
}

/// acc (MR x NR int32) += sum over kb of dot4(Bu8 strip, As8 strip):
/// acc[i][j] += sum_t b[(kb*NR+j)*4+t] * a[(kb*MR+i)*4+t], with b unsigned
/// and a signed. Every dispatch target computes this exact integer
/// expression, so results are bit-identical across ISAs.
using MicroKernelInt8Fn = void (*)(int64_t kc4, const int8_t* ap,
                                   const uint8_t* bp, int32_t* acc);

void MicroKernelInt8Scalar(int64_t kc4, const int8_t* ap, const uint8_t* bp,
                           int32_t* acc) {
  const int64_t kb_n = kc4 / 4;
  for (int64_t kb = 0; kb < kb_n; ++kb) {
    const int8_t* a = ap + kb * kGemmMR * 4;
    const uint8_t* b = bp + kb * kGemmNR * 4;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      const int32_t a0 = a[i * 4 + 0];
      const int32_t a1 = a[i * 4 + 1];
      const int32_t a2 = a[i * 4 + 2];
      const int32_t a3 = a[i * 4 + 3];
      int32_t* row = acc + i * kGemmNR;
      for (int64_t j = 0; j < kGemmNR; ++j) {
        row[j] += static_cast<int32_t>(b[j * 4 + 0]) * a0 +
                  static_cast<int32_t>(b[j * 4 + 1]) * a1 +
                  static_cast<int32_t>(b[j * 4 + 2]) * a2 +
                  static_cast<int32_t>(b[j * 4 + 3]) * a3;
      }
    }
  }
}

#if VISTA_HAVE_X86_INT8
/// 256-bit vpdpbusd micro-kernel (AVX512-VNNI with VL, and the AVX-VNNI
/// twin below for client parts without AVX-512): each dword lane of a B
/// strip holds one column's 4 k bytes, dpbusd does the widening
/// u8 x s8 dot-4 + int32 accumulate in one instruction.
__attribute__((target("avx512vnni,avx512vl,avx512bw,avx512f"))) void
MicroKernelInt8Avx512Vnni(int64_t kc4, const int8_t* ap, const uint8_t* bp,
                          int32_t* acc) {
  // NR == 16 int32 accumulators fit one zmm per row: per k4 block the
  // whole B strip row is a single 64-byte load and each output row is one
  // broadcast + one dpbusd.
  __m512i c[kGemmMR];
  for (int64_t i = 0; i < kGemmMR; ++i) {
    c[i] = _mm512_loadu_si512(acc + i * kGemmNR);
  }
  const int64_t kb_n = kc4 / 4;
  for (int64_t kb = 0; kb < kb_n; ++kb) {
    const __m512i bv = _mm512_loadu_si512(bp + kb * kGemmNR * 4);
    const int8_t* a = ap + kb * kGemmMR * 4;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      int32_t aw;
      std::memcpy(&aw, a + i * 4, sizeof(aw));
      c[i] = _mm512_dpbusd_epi32(c[i], bv, _mm512_set1_epi32(aw));
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    _mm512_storeu_si512(acc + i * kGemmNR, c[i]);
  }
}

#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 11
#define VISTA_HAVE_AVXVNNI_KERNEL 1
__attribute__((target("avxvnni,avx2"))) void MicroKernelInt8AvxVnni(
    int64_t kc4, const int8_t* ap, const uint8_t* bp, int32_t* acc) {
  __m256i c[kGemmMR][2];
  for (int64_t i = 0; i < kGemmMR; ++i) {
    c[i][0] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + i * kGemmNR));
    c[i][1] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + i * kGemmNR + 8));
  }
  const int64_t kb_n = kc4 / 4;
  for (int64_t kb = 0; kb < kb_n; ++kb) {
    const uint8_t* b = bp + kb * kGemmNR * 4;
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 32));
    const int8_t* a = ap + kb * kGemmMR * 4;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      int32_t aw;
      std::memcpy(&aw, a + i * 4, sizeof(aw));
      const __m256i av = _mm256_set1_epi32(aw);
      c[i][0] = _mm256_dpbusd_avx_epi32(c[i][0], b0, av);
      c[i][1] = _mm256_dpbusd_avx_epi32(c[i][1], b1, av);
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kGemmNR),
                        c[i][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i * kGemmNR + 8),
                        c[i][1]);
  }
}
#else
#define VISTA_HAVE_AVXVNNI_KERNEL 0
#endif
#endif  // VISTA_HAVE_X86_INT8

struct Int8KernelChoice {
  MicroKernelInt8Fn fn;
  const char* name;
};

/// Manual runtime dispatch (resolved once at startup): target_clones has
/// no clone level that implies VNNI, so the int8 kernel picks its ISA via
/// __builtin_cpu_supports instead.
Int8KernelChoice ResolveMicroKernelInt8() {
#if VISTA_HAVE_X86_INT8 && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw")) {
    return {MicroKernelInt8Avx512Vnni, "avx512vnni"};
  }
#if VISTA_HAVE_AVXVNNI_KERNEL
  if (__builtin_cpu_supports("avxvnni")) {
    return {MicroKernelInt8AvxVnni, "avxvnni"};
  }
#endif
#endif
  return {MicroKernelInt8Scalar, "scalar"};
}

const Int8KernelChoice g_int8_kernel = ResolveMicroKernelInt8();

/// Micro-tile grid over one packed int8 A panel / B panel. Between K
/// panels C holds raw int32 partial sums bit-cast into the float storage;
/// the last panel dequantizes through the epilogue. `rowsum` is this A
/// panel's per-row k sum (for the +128 B bias correction); scale/bias/c8
/// in `e` are pre-offset to this C block's first row/column by the
/// driver.
void InnerTilesInt8(int64_t mc, int64_t nc, int64_t kc, const int8_t* ap,
                    const uint8_t* bp, const int32_t* rowsum, float* c,
                    int64_t ldc, bool first, bool last, const float* scale,
                    const float* bias, bool relu, int8_t* c8, int64_t ldc8,
                    float inv_out_scale) {
  const int64_t kc4 = RoundUp(kc, 4);
  // A fully empty epilogue leaves the raw int32 accumulators bit-cast in
  // c even on the last panel — the differential tests' mode.
  const bool raw = scale == nullptr && bias == nullptr && !relu &&
                   c8 == nullptr;
  alignas(64) int32_t acc[kGemmMR * kGemmNR];
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    const uint8_t* bstrip = bp + jr * kc4;
    for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const int64_t mr = std::min(kGemmMR, mc - ir);
      const int8_t* astrip = ap + ir * kc4;
      std::memset(acc, 0, sizeof(acc));
      if (!first) {
        for (int64_t i = 0; i < mr; ++i) {
          std::memcpy(acc + i * kGemmNR, c + (ir + i) * ldc + jr,
                      sizeof(int32_t) * nr);
        }
      }
      g_int8_kernel.fn(kc4, astrip, bstrip, acc);
      for (int64_t i = 0; i < mr; ++i) {
        const int32_t corr = 128 * rowsum[ir + i];
        int32_t* row = acc + i * kGemmNR;
        if (!last || raw) {
          for (int64_t j = 0; j < nr; ++j) row[j] -= corr;
          std::memcpy(c + (ir + i) * ldc + jr, row, sizeof(int32_t) * nr);
          continue;
        }
        const float s = scale != nullptr ? scale[ir + i] : 1.0f;
        const float b = bias != nullptr ? bias[ir + i] : 0.0f;
        if (c8 != nullptr) {
          int8_t* dst = c8 + (ir + i) * ldc8 + jr;
          for (int64_t j = 0; j < nr; ++j) {
            float y = static_cast<float>(row[j] - corr) * s + b;
            if (relu) y = std::max(0.0f, y);
            dst[j] = SaturateRoundToInt8(y * inv_out_scale);
          }
        } else {
          float* dst = c + (ir + i) * ldc + jr;
          for (int64_t j = 0; j < nr; ++j) {
            float y = static_cast<float>(row[j] - corr) * s + b;
            dst[j] = relu ? std::max(0.0f, y) : y;
          }
        }
      }
    }
  }
}

/// Degenerate k == 0 for the int8 path: the epilogue of a zero product.
void EpilogueOnlyInt8(int64_t m, int64_t n, float* c, int64_t ldc,
                      const GemmInt8Epilogue& e) {
  const float inv =
      e.out_scale > 0.0f ? 1.0f / e.out_scale : 0.0f;
  for (int64_t i = 0; i < m; ++i) {
    float v = e.bias != nullptr ? e.bias[i] : 0.0f;
    if (e.relu) v = std::max(0.0f, v);
    if (e.c8 != nullptr) {
      const int8_t q = SaturateRoundToInt8(v * inv);
      int8_t* row = e.c8 + i * e.ldc8;
      for (int64_t j = 0; j < n; ++j) row[j] = q;
    } else {
      float* row = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) row[j] = v;
    }
  }
}

/// ---- Shared panel-loop drivers -----------------------------------------
///
/// The jc (NC) / pc (KC) / ic (MC) blocking, scratch acquisition, and
/// micro-tile dispatch are identical for every B source; the drivers are
/// parameterized on `pack_b(pc, jc, kc, nc, bp)`, which supplies the
/// packed (kc x nc) panel — copied from memory (PackB / PackBInt8) or
/// gathered from a conv's implicit patch matrix (PackBConv /
/// PackBConvInt8). Because the packed panels are byte-identical across
/// sources, every downstream accumulation is too: implicit-GEMM
/// bit-identity is structural, not numerical luck.

template <typename PackBFn>
void GemmPackedDriver(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t lda, PackBFn&& pack_b, float* c, int64_t ldc,
                      const GemmEpilogue& epilogue, KernelScratch* scratch) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnly(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_flops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKC) {
      const int64_t kc = std::min(kGemmKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      float* bp = scratch->Acquire(
          KernelScratch::Slot::kPackB,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc));
      pack_b(pc, jc, kc, nc, bp);
      float* ap = scratch->Acquire(
          KernelScratch::Slot::kPackA,
          static_cast<size_t>(RoundUp(std::min(m, kGemmMC), kGemmMR) *
                              kGemmKC));
      for (int64_t ic = 0; ic < m; ic += kGemmMC) {
        const int64_t mc = std::min(kGemmMC, m - ic);
        PackA(a + ic * lda + pc, lda, mc, kc, ap);
        InnerTiles(mc, nc, kc, ap, bp, c + ic * ldc + jc, ldc, first, last,
                   epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
                   epilogue.relu);
      }
    }
  }
}

template <typename PackBFn>
void GemmPackedParallelDriver(int64_t m, int64_t n, int64_t k, const float* a,
                              int64_t lda, PackBFn&& pack_b, float* c,
                              int64_t ldc, const GemmEpilogue& epilogue,
                              ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnly(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_flops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  KernelScratch& caller = KernelScratch::ThreadLocal();
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKC) {
      const int64_t kc = std::min(kGemmKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      // The B panel is packed once into the caller's arena; workers read
      // it concurrently (it is immutable until the ParallelFor returns).
      float* bp = caller.Acquire(
          KernelScratch::Slot::kPackB,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc));
      pack_b(pc, jc, kc, nc, bp);
      const int64_t num_blocks = (m + kGemmMC - 1) / kGemmMC;
      pool->ParallelFor(num_blocks, [&](int64_t blk) {
        const int64_t ic = blk * kGemmMC;
        const int64_t mc = std::min(kGemmMC, m - ic);
        KernelScratch& local = KernelScratch::ThreadLocal();
        float* ap = local.Acquire(
            KernelScratch::Slot::kPackA,
            static_cast<size_t>(RoundUp(mc, kGemmMR) * kc));
        PackA(a + ic * lda + pc, lda, mc, kc, ap);
        InnerTiles(mc, nc, kc, ap, bp, c + ic * ldc + jc, ldc, first, last,
                   epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
                   epilogue.relu);
      });
    }
  }
}

template <typename PackBFn>
void GemmPackedInt8Driver(int64_t m, int64_t n, int64_t k, const int8_t* a,
                          int64_t lda, PackBFn&& pack_b, float* c,
                          int64_t ldc, const GemmInt8Epilogue& epilogue,
                          KernelScratch* scratch) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnlyInt8(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_int8_ops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  const float inv_out =
      epilogue.out_scale > 0.0f ? 1.0f / epilogue.out_scale : 0.0f;
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKcInt8) {
      const int64_t kc = std::min(kGemmKcInt8, k - pc);
      const int64_t kc4 = RoundUp(kc, 4);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      uint8_t* bp = static_cast<uint8_t*>(scratch->AcquireBytes(
          KernelScratch::Slot::kPackBInt8,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc4)));
      pack_b(pc, jc, kc, nc, bp);
      int8_t* ap = static_cast<int8_t*>(scratch->AcquireBytes(
          KernelScratch::Slot::kPackAInt8,
          static_cast<size_t>(RoundUp(std::min(m, kGemmMC), kGemmMR) *
                              kc4)));
      int32_t rowsum[kGemmMC];
      for (int64_t ic = 0; ic < m; ic += kGemmMC) {
        const int64_t mc = std::min(kGemmMC, m - ic);
        PackAInt8(a + ic * lda + pc, lda, mc, kc, ap, rowsum);
        InnerTilesInt8(
            mc, nc, kc, ap, bp, rowsum, c + ic * ldc + jc, ldc, first, last,
            epilogue.scale != nullptr ? epilogue.scale + ic : nullptr,
            epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
            epilogue.relu,
            epilogue.c8 != nullptr ? epilogue.c8 + ic * epilogue.ldc8 + jc
                                   : nullptr,
            epilogue.ldc8, inv_out);
      }
    }
  }
}

template <typename PackBFn>
void GemmPackedInt8ParallelDriver(int64_t m, int64_t n, int64_t k,
                                  const int8_t* a, int64_t lda,
                                  PackBFn&& pack_b, float* c, int64_t ldc,
                                  const GemmInt8Epilogue& epilogue,
                                  ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnlyInt8(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_int8_ops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  const float inv_out =
      epilogue.out_scale > 0.0f ? 1.0f / epilogue.out_scale : 0.0f;
  KernelScratch& caller = KernelScratch::ThreadLocal();
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKcInt8) {
      const int64_t kc = std::min(kGemmKcInt8, k - pc);
      const int64_t kc4 = RoundUp(kc, 4);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      // The B panel is packed once into the caller's arena; workers read
      // it concurrently (it is immutable until the ParallelFor returns).
      uint8_t* bp = static_cast<uint8_t*>(caller.AcquireBytes(
          KernelScratch::Slot::kPackBInt8,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc4)));
      pack_b(pc, jc, kc, nc, bp);
      const int64_t num_blocks = (m + kGemmMC - 1) / kGemmMC;
      pool->ParallelFor(num_blocks, [&](int64_t blk) {
        const int64_t ic = blk * kGemmMC;
        const int64_t mc = std::min(kGemmMC, m - ic);
        KernelScratch& local = KernelScratch::ThreadLocal();
        int8_t* ap = static_cast<int8_t*>(local.AcquireBytes(
            KernelScratch::Slot::kPackAInt8,
            static_cast<size_t>(RoundUp(mc, kGemmMR) * kc4)));
        int32_t rowsum[kGemmMC];
        PackAInt8(a + ic * lda + pc, lda, mc, kc, ap, rowsum);
        InnerTilesInt8(
            mc, nc, kc, ap, bp, rowsum, c + ic * ldc + jc, ldc, first, last,
            epilogue.scale != nullptr ? epilogue.scale + ic : nullptr,
            epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
            epilogue.relu,
            epilogue.c8 != nullptr ? epilogue.c8 + ic * epilogue.ldc8 + jc
                                   : nullptr,
            epilogue.ldc8, inv_out);
      });
    }
  }
}

/// Below ~2 MFLOP the dispatch overhead beats the row-tile win; one M
/// block also leaves nothing to distribute.
inline bool ParallelTooSmall(int64_t m, int64_t n, int64_t k,
                             ThreadPool* pool) {
  return pool == nullptr || pool->num_threads() <= 1 ||
         m * n * k < (1 << 20) || m <= kGemmMC;
}

}  // namespace

int64_t GemmFlopsTotal() {
  return g_gemm_flops.load(std::memory_order_relaxed);
}

void GemmPacked(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc,
                const GemmEpilogue& epilogue, KernelScratch* scratch) {
  GemmPackedDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, float* bp) {
        PackB(b + pc * ldb + jc, ldb, kc, nc, bp);
      },
      c, ldc, epilogue, scratch);
}

void GemmPackedConv(int64_t m, int64_t n, int64_t k, const float* a,
                    int64_t lda, const ConvPatchView& b, float* c,
                    int64_t ldc, const GemmEpilogue& epilogue,
                    KernelScratch* scratch) {
  GemmPackedDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, float* bp) {
        PackBConv(b, pc, jc, kc, nc, bp);
      },
      c, ldc, epilogue, scratch);
}

void GemmPackedParallel(int64_t m, int64_t n, int64_t k, const float* a,
                        int64_t lda, const float* b, int64_t ldb, float* c,
                        int64_t ldc, const GemmEpilogue& epilogue,
                        ThreadPool* pool) {
  if (ParallelTooSmall(m, n, k, pool)) {
    GemmPacked(m, n, k, a, lda, b, ldb, c, ldc, epilogue,
               &KernelScratch::ThreadLocal());
    return;
  }
  GemmPackedParallelDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, float* bp) {
        PackB(b + pc * ldb + jc, ldb, kc, nc, bp);
      },
      c, ldc, epilogue, pool);
}

void GemmPackedConvParallel(int64_t m, int64_t n, int64_t k, const float* a,
                            int64_t lda, const ConvPatchView& b, float* c,
                            int64_t ldc, const GemmEpilogue& epilogue,
                            ThreadPool* pool) {
  if (ParallelTooSmall(m, n, k, pool)) {
    GemmPackedConv(m, n, k, a, lda, b, c, ldc, epilogue,
                   &KernelScratch::ThreadLocal());
    return;
  }
  GemmPackedParallelDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, float* bp) {
        PackBConv(b, pc, jc, kc, nc, bp);
      },
      c, ldc, epilogue, pool);
}

int64_t GemmInt8OpsTotal() {
  return g_gemm_int8_ops.load(std::memory_order_relaxed);
}

const char* GemmInt8KernelName() { return g_int8_kernel.name; }

void GemmPackedInt8(int64_t m, int64_t n, int64_t k, const int8_t* a,
                    int64_t lda, const int8_t* b, int64_t ldb, float* c,
                    int64_t ldc, const GemmInt8Epilogue& epilogue,
                    KernelScratch* scratch) {
  GemmPackedInt8Driver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, uint8_t* bp) {
        PackBInt8(b + pc * ldb + jc, ldb, kc, nc, bp);
      },
      c, ldc, epilogue, scratch);
}

void GemmPackedConvInt8(int64_t m, int64_t n, int64_t k, const int8_t* a,
                        int64_t lda, const ConvPatchView& b, float act_scale,
                        float* c, int64_t ldc,
                        const GemmInt8Epilogue& epilogue,
                        KernelScratch* scratch) {
  GemmPackedInt8Driver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, uint8_t* bp) {
        PackBConvInt8(b, act_scale, pc, jc, kc, nc, bp);
      },
      c, ldc, epilogue, scratch);
}

void GemmPackedInt8Parallel(int64_t m, int64_t n, int64_t k, const int8_t* a,
                            int64_t lda, const int8_t* b, int64_t ldb,
                            float* c, int64_t ldc,
                            const GemmInt8Epilogue& epilogue,
                            ThreadPool* pool) {
  if (ParallelTooSmall(m, n, k, pool)) {
    GemmPackedInt8(m, n, k, a, lda, b, ldb, c, ldc, epilogue,
                   &KernelScratch::ThreadLocal());
    return;
  }
  GemmPackedInt8ParallelDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, uint8_t* bp) {
        PackBInt8(b + pc * ldb + jc, ldb, kc, nc, bp);
      },
      c, ldc, epilogue, pool);
}

void GemmPackedConvInt8Parallel(int64_t m, int64_t n, int64_t k,
                                const int8_t* a, int64_t lda,
                                const ConvPatchView& b, float act_scale,
                                float* c, int64_t ldc,
                                const GemmInt8Epilogue& epilogue,
                                ThreadPool* pool) {
  if (ParallelTooSmall(m, n, k, pool)) {
    GemmPackedConvInt8(m, n, k, a, lda, b, act_scale, c, ldc, epilogue,
                       &KernelScratch::ThreadLocal());
    return;
  }
  GemmPackedInt8ParallelDriver(
      m, n, k, a, lda,
      [&](int64_t pc, int64_t jc, int64_t kc, int64_t nc, uint8_t* bp) {
        PackBConvInt8(b, act_scale, pc, jc, kc, nc, bp);
      },
      c, ldc, epilogue, pool);
}

}  // namespace vista
