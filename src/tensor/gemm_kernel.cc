#include "tensor/gemm_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/thread_pool.h"

namespace vista {
namespace {

std::atomic<int64_t> g_gemm_flops{0};

inline int64_t RoundUp(int64_t x, int64_t multiple) {
  return (x + multiple - 1) / multiple * multiple;
}

/// Packs the (mc x kc) block of A starting at `a` into MR-row strips:
/// strip s holds rows [s*MR, s*MR+MR) column-major within the strip
/// (index p*MR + i), zero-padded past mc so the micro-kernel never
/// branches on the row count.
void PackA(const float* a, int64_t lda, int64_t mc, int64_t kc, float* ap) {
  for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
    const int64_t mr = std::min(kGemmMR, mc - ir);
    float* dst = ap + ir * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* col = a + ir * lda + p;
      for (int64_t i = 0; i < mr; ++i) {
        dst[p * kGemmMR + i] = col[i * lda];
      }
      for (int64_t i = mr; i < kGemmMR; ++i) {
        dst[p * kGemmMR + i] = 0.0f;
      }
    }
  }
}

/// Packs the (kc x nc) block of B starting at `b` into NR-column strips
/// (index p*NR + j), zero-padded past nc.
void PackB(const float* b, int64_t ldb, int64_t kc, int64_t nc, float* bp) {
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    float* dst = bp + jr * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = b + p * ldb + jr;
      float* row = dst + p * kGemmNR;
      for (int64_t j = 0; j < nr; ++j) row[j] = src[j];
      for (int64_t j = nr; j < kGemmNR; ++j) row[j] = 0.0f;
    }
  }
}

/// The register micro-kernel: acc (MR x NR) += Ap strip * Bp strip over kc.
///
/// Written with GCC/Clang vector extensions (8-float lanes, two per NR=16
/// row) so the 6x16 accumulator block provably lives in 12 vector
/// registers; plain auto-vectorization of the equivalent scalar loops only
/// produced 16-byte SLP on GCC 12. target_clones emits AVX2/AVX-512
/// variants behind a runtime ifunc dispatch, keeping the binary portable
/// to baseline x86-64 (and the scalar fallback keeps other
/// compilers/architectures working).
#if defined(__GNUC__) || defined(__clang__)
#define VISTA_HAVE_VECTOR_EXT 1
#else
#define VISTA_HAVE_VECTOR_EXT 0
#endif

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define VISTA_GEMM_CLONES \
  __attribute__((target_clones("default,arch=x86-64-v3,arch=x86-64-v4")))
#else
#define VISTA_GEMM_CLONES
#endif

#if VISTA_HAVE_VECTOR_EXT
typedef float Vec8 __attribute__((vector_size(32)));
static_assert(kGemmNR == 16, "micro-kernel assumes two 8-float lanes");

VISTA_GEMM_CLONES
void MicroKernel(int64_t kc, const float* __restrict ap,
                 const float* __restrict bp, float* __restrict acc) {
  Vec8 c[kGemmMR][2];
  for (int64_t i = 0; i < kGemmMR; ++i) {
    std::memcpy(&c[i][0], acc + i * kGemmNR, sizeof(Vec8));
    std::memcpy(&c[i][1], acc + i * kGemmNR + 8, sizeof(Vec8));
  }
  for (int64_t p = 0; p < kc; ++p) {
    Vec8 b0, b1;
    std::memcpy(&b0, bp + p * kGemmNR, sizeof(Vec8));
    std::memcpy(&b1, bp + p * kGemmNR + 8, sizeof(Vec8));
    const float* a = ap + p * kGemmMR;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      c[i][0] += a[i] * b0;
      c[i][1] += a[i] * b1;
    }
  }
  for (int64_t i = 0; i < kGemmMR; ++i) {
    std::memcpy(acc + i * kGemmNR, &c[i][0], sizeof(Vec8));
    std::memcpy(acc + i * kGemmNR + 8, &c[i][1], sizeof(Vec8));
  }
}
#else
void MicroKernel(int64_t kc, const float* ap, const float* bp, float* acc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kGemmMR;
    const float* b = bp + p * kGemmNR;
    for (int64_t i = 0; i < kGemmMR; ++i) {
      const float ai = a[i];
      for (int64_t j = 0; j < kGemmNR; ++j) {
        acc[i * kGemmNR + j] += ai * b[j];
      }
    }
  }
}
#endif

/// Runs the micro-tile grid over one packed (mc x kc) A panel and
/// (kc x nc) B panel, accumulating into C. `first` zeroes instead of
/// loading C (the pc == 0 panel); `last` applies the epilogue while
/// storing (the final K panel). `bias` is pre-offset to this C block's
/// first row.
void InnerTiles(int64_t mc, int64_t nc, int64_t kc, const float* ap,
                const float* bp, float* c, int64_t ldc, bool first,
                bool last, const float* bias, bool relu) {
  float acc[kGemmMR * kGemmNR];
  for (int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const int64_t nr = std::min(kGemmNR, nc - jr);
    const float* bstrip = bp + jr * kc;
    for (int64_t ir = 0; ir < mc; ir += kGemmMR) {
      const int64_t mr = std::min(kGemmMR, mc - ir);
      const float* astrip = ap + ir * kc;
      if (first) {
        std::memset(acc, 0, sizeof(acc));
      } else {
        for (int64_t i = 0; i < mr; ++i) {
          const float* src = c + (ir + i) * ldc + jr;
          for (int64_t j = 0; j < nr; ++j) acc[i * kGemmNR + j] = src[j];
        }
      }
      MicroKernel(kc, astrip, bstrip, acc);
      for (int64_t i = 0; i < mr; ++i) {
        float* dst = c + (ir + i) * ldc + jr;
        const float* row = acc + i * kGemmNR;
        if (last) {
          const float b = bias != nullptr ? bias[ir + i] : 0.0f;
          if (relu) {
            for (int64_t j = 0; j < nr; ++j) {
              dst[j] = std::max(0.0f, row[j] + b);
            }
          } else {
            for (int64_t j = 0; j < nr; ++j) dst[j] = row[j] + b;
          }
        } else {
          for (int64_t j = 0; j < nr; ++j) dst[j] = row[j];
        }
      }
    }
  }
}

/// Degenerate k == 0: C is the epilogue of a zero product.
void EpilogueOnly(int64_t m, int64_t n, float* c, int64_t ldc,
                  const GemmEpilogue& epilogue) {
  for (int64_t i = 0; i < m; ++i) {
    float v = epilogue.bias != nullptr ? epilogue.bias[i] : 0.0f;
    if (epilogue.relu) v = std::max(0.0f, v);
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = v;
  }
}

}  // namespace

int64_t GemmFlopsTotal() {
  return g_gemm_flops.load(std::memory_order_relaxed);
}

void GemmPacked(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc,
                const GemmEpilogue& epilogue, KernelScratch* scratch) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnly(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_flops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKC) {
      const int64_t kc = std::min(kGemmKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      float* bp = scratch->Acquire(
          KernelScratch::Slot::kPackB,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc));
      PackB(b + pc * ldb + jc, ldb, kc, nc, bp);
      float* ap = scratch->Acquire(
          KernelScratch::Slot::kPackA,
          static_cast<size_t>(RoundUp(std::min(m, kGemmMC), kGemmMR) *
                              kGemmKC));
      for (int64_t ic = 0; ic < m; ic += kGemmMC) {
        const int64_t mc = std::min(kGemmMC, m - ic);
        PackA(a + ic * lda + pc, lda, mc, kc, ap);
        InnerTiles(mc, nc, kc, ap, bp, c + ic * ldc + jc, ldc, first, last,
                   epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
                   epilogue.relu);
      }
    }
  }
}

void GemmPackedParallel(int64_t m, int64_t n, int64_t k, const float* a,
                        int64_t lda, const float* b, int64_t ldb, float* c,
                        int64_t ldc, const GemmEpilogue& epilogue,
                        ThreadPool* pool) {
  // Below ~2 MFLOP the dispatch overhead beats the row-tile win; one M
  // block also leaves nothing to distribute.
  const bool tiny = m * n * k < (1 << 20) || m <= kGemmMC;
  if (pool == nullptr || pool->num_threads() <= 1 || tiny) {
    GemmPacked(m, n, k, a, lda, b, ldb, c, ldc, epilogue,
               &KernelScratch::ThreadLocal());
    return;
  }
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    EpilogueOnly(m, n, c, ldc, epilogue);
    return;
  }
  g_gemm_flops.fetch_add(2 * m * n * k, std::memory_order_relaxed);
  KernelScratch& caller = KernelScratch::ThreadLocal();
  for (int64_t jc = 0; jc < n; jc += kGemmNC) {
    const int64_t nc = std::min(kGemmNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kGemmKC) {
      const int64_t kc = std::min(kGemmKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      // The B panel is packed once into the caller's arena; workers read
      // it concurrently (it is immutable until the ParallelFor returns).
      float* bp = caller.Acquire(
          KernelScratch::Slot::kPackB,
          static_cast<size_t>(RoundUp(nc, kGemmNR) * kc));
      PackB(b + pc * ldb + jc, ldb, kc, nc, bp);
      const int64_t num_blocks = (m + kGemmMC - 1) / kGemmMC;
      pool->ParallelFor(num_blocks, [&](int64_t blk) {
        const int64_t ic = blk * kGemmMC;
        const int64_t mc = std::min(kGemmMC, m - ic);
        KernelScratch& local = KernelScratch::ThreadLocal();
        float* ap = local.Acquire(
            KernelScratch::Slot::kPackA,
            static_cast<size_t>(RoundUp(mc, kGemmMR) * kc));
        PackA(a + ic * lda + pc, lda, mc, kc, ap);
        InnerTiles(mc, nc, kc, ap, bp, c + ic * ldc + jc, ldc, first, last,
                   epilogue.bias != nullptr ? epilogue.bias + ic : nullptr,
                   epilogue.relu);
      });
    }
  }
}

}  // namespace vista
