#include "tensor/quant.h"

#include <cmath>

namespace vista {

float MaxAbs(const float* x, int64_t n) {
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

float SymmetricScale(float max_abs) {
  if (!(max_abs > 0.0f) || !std::isfinite(max_abs)) return 0.0f;
  return max_abs / 127.0f;
}

void QuantizeSymmetric(const float* src, int64_t n, float scale,
                       int8_t* dst) {
  if (!(scale > 0.0f)) {
    for (int64_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const float inv = 1.0f / scale;
  for (int64_t i = 0; i < n; ++i) {
    dst[i] = SaturateRoundToInt8(src[i] * inv);
  }
}

Result<QuantizedWeights> QuantizeWeightsPerChannel(const Tensor& w) {
  if (w.shape().rank() < 2) {
    return Status::InvalidArgument(
        "QuantizeWeightsPerChannel expects rank >= 2, got " +
        w.shape().ToString());
  }
  QuantizedWeights q;
  q.shape = w.shape();
  const int64_t oc = q.out_channels();
  const int64_t inner = q.inner();
  q.data.resize(static_cast<size_t>(w.num_elements()));
  q.scales.resize(static_cast<size_t>(oc));
  const float* src = w.data();
  for (int64_t i = 0; i < oc; ++i) {
    const float* row = src + i * inner;
    const float scale = SymmetricScale(MaxAbs(row, inner));
    q.scales[static_cast<size_t>(i)] = scale;
    QuantizeSymmetric(row, inner, scale, q.data.data() + i * inner);
  }
  return q;
}

}  // namespace vista
