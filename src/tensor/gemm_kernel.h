#ifndef VISTA_TENSOR_GEMM_KERNEL_H_
#define VISTA_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

#include "tensor/scratch.h"

namespace vista {

class ThreadPool;

/// Blocked, packed single-precision GEMM — the compute core under MatMul
/// and Conv2DGemm (BLIS-style: register micro-tile, L1/L2 cache blocking,
/// panel packing into a reusable scratch arena).
///
/// Register micro-tile: each micro-kernel invocation accumulates a
/// kGemmMR x kGemmNR block of C in local accumulators; the inner loops are
/// fixed-trip so the compiler keeps the block in vector registers.
inline constexpr int64_t kGemmMR = 6;
inline constexpr int64_t kGemmNR = 16;
/// Cache blocking: a kGemmKC x kGemmNR B-strip stays L1-resident across one
/// row of micro-tiles; the packed kGemmMC x kGemmKC A panel targets L2.
/// kGemmMC is a multiple of kGemmMR and kGemmNC a multiple of kGemmNR.
inline constexpr int64_t kGemmMC = 96;
inline constexpr int64_t kGemmKC = 256;
inline constexpr int64_t kGemmNC = 2048;

/// Optional fused output transform applied as C is written on the last
/// K-panel, saving a second pass over the output.
struct GemmEpilogue {
  /// Per-row addend of length m (a convolution's per-filter bias); null
  /// skips the add.
  const float* bias = nullptr;
  /// Applies max(0, x) after the bias add (a convolution's fused ReLU).
  bool relu = false;
};

/// C (m x n, row stride ldc) = A (m x k, row stride lda) * B (k x n, row
/// stride ldb), overwriting C, then applies `epilogue`. The row strides
/// admit strided views into larger tensors, which is what makes grouped
/// convolution zero-copy. Pack buffers come from `scratch` (slots kPackA /
/// kPackB), so steady-state calls allocate nothing.
void GemmPacked(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc,
                const GemmEpilogue& epilogue, KernelScratch* scratch);

/// ---- Implicit-GEMM convolution ----------------------------------------
///
/// Geometry of one convolution group's *implicit* patch matrix: the
/// (C/g * kernel * kernel) x (H_out * W_out) im2col expansion that the
/// explicit path materializes, described instead by the mapping
///   B[r][q] = input[c][oy*stride - pad + ky][ox*stride - pad + kx]
/// with r = (c, ky, kx) row-major over (channel, kernel-y, kernel-x) and
/// q = (oy, ox) row-major over the output grid; elements whose window
/// taps land in the zero-padding border are 0. The implicit B-panel packer
/// gathers straight from this view while packing KC x NC panels, so the
/// expansion is never written to memory: the conv's scratch footprint
/// drops from C/g*k*k * H_out*W_out floats to the two packed panels.
struct ConvPatchView {
  /// First channel of this group's input (CHW, contiguous).
  const float* input = nullptr;
  /// Input spatial dims.
  int64_t h = 0;
  int64_t w = 0;
  int kernel = 1;
  int stride = 1;
  int pad = 0;
  /// Output width (columns decompose as q = oy * w_out + ox).
  int64_t w_out = 1;
};

/// GemmPacked with the B operand sourced from `b`'s implicit patch matrix:
/// C (m x n) = A (m x k) * im2col(b), bit-identical to materializing the
/// expansion and calling GemmPacked on it (the packer gathers the exact
/// values PackB would copy, in the same panel order, so the accumulation
/// order is unchanged — only the operand source differs). `n` must be
/// h_out * w_out and `k` the patch-row count of the view.
void GemmPackedConv(int64_t m, int64_t n, int64_t k, const float* a,
                    int64_t lda, const ConvPatchView& b, float* c,
                    int64_t ldc, const GemmEpilogue& epilogue,
                    KernelScratch* scratch);

/// GemmPackedConv with row-tile parallelism, mirroring GemmPackedParallel:
/// the implicit B panel is gathered once per (NC, KC) block by the caller,
/// M blocks are distributed with ParallelFor, per-thread A panels.
void GemmPackedConvParallel(int64_t m, int64_t n, int64_t k, const float* a,
                            int64_t lda, const ConvPatchView& b, float* c,
                            int64_t ldc, const GemmEpilogue& epilogue,
                            ThreadPool* pool);

/// GemmPacked with row-tile (M-dimension) parallelism across `pool`: the B
/// panel is packed once by the caller, then the M blocks are distributed
/// with ThreadPool::ParallelFor (caller-inclusive, so this is safe to call
/// from inside a pool task). Each participating thread packs its own A
/// panels into its thread-local arena. Falls back to the serial kernel when
/// `pool` is null or the problem is too small to amortize dispatch.
void GemmPackedParallel(int64_t m, int64_t n, int64_t k, const float* a,
                        int64_t lda, const float* b, int64_t ldb, float* c,
                        int64_t ldc, const GemmEpilogue& epilogue,
                        ThreadPool* pool);

/// Cumulative FLOPs executed by the packed GEMM in this process
/// (2*m*n*k per call, relaxed-atomic). Benches compute achieved GFLOP/s
/// from deltas around a timed region; see obs gauge "tensor.gemm_gflops".
int64_t GemmFlopsTotal();

/// ---- Quantized (int8) packed GEMM -------------------------------------
///
/// Same BLIS-style structure as the fp32 kernel (6x16 register micro-tile,
/// MC/NC blocking, panel packing into KernelScratch), but the inner loop
/// does widening int8 x int8 multiply-accumulate into int32. Because int8
/// panels are a quarter the size, the K panel quadruples so a packed
/// kGemmNR-column B strip still fills the same L1 footprint.
///
/// Packing is k4-blocked to match the VNNI dot-product instruction: A
/// strips hold [k/4][MR][4] signed bytes, B strips [k/4][NR][4] bytes
/// biased to unsigned (u8 = s8 + 128, the vpdpbusd operand convention);
/// the +128 offset is corrected by subtracting 128 * rowsum(A) per output
/// row. The scalar fallback computes the identical integer expression, so
/// every dispatch target produces bit-identical int32 accumulators.
///
/// Accumulator range: each output accumulates at most 255 * 127 per k
/// step, so int32 is exact for k < ~66000 — far beyond any conv/fc
/// lowering here (callers must not exceed it).
inline constexpr int64_t kGemmKcInt8 = 4 * kGemmKC;

/// Fused output transform for the int8 kernel, applied on the last K
/// panel. The int32 accumulator dequantizes as
///   y = float(acc) * scale[row] + bias[row]          (then optional ReLU)
/// and is stored either as fp32 into `c`, or — when `c8` is non-null —
/// requantized to int8 (round-to-nearest-even, saturating to +/-127) as
///   c8[row * ldc8 + col] = sat(round(y / out_scale)).
/// `c` is always required: between K panels it holds the raw int32
/// partial sums (bit-cast into the float storage).
struct GemmInt8Epilogue {
  /// Per-row dequant scale of length m (weight_scale[row] * act_scale);
  /// null means 1.0. When the whole epilogue is empty (no scale, bias,
  /// relu, or c8), the raw int32 accumulators are left bit-cast in `c` —
  /// the exact-differential-test mode.
  const float* scale = nullptr;
  /// Per-row fp32 addend of length m, applied after dequantization.
  const float* bias = nullptr;
  /// Applies max(0, y) after the bias add.
  bool relu = false;
  /// Optional requantized int8 output (see above). out_scale <= 0 writes
  /// zeros (the zero-scale guard).
  int8_t* c8 = nullptr;
  int64_t ldc8 = 0;
  float out_scale = 0.0f;
};

/// C (m x n fp32, row stride ldc) = dequant(A_q (m x k int8) * B_q
/// (k x n int8)) with the fused epilogue above. Pack buffers come from
/// `scratch` slots kPackAInt8 / kPackBInt8, so steady-state calls
/// allocate nothing.
void GemmPackedInt8(int64_t m, int64_t n, int64_t k, const int8_t* a,
                    int64_t lda, const int8_t* b, int64_t ldb, float* c,
                    int64_t ldc, const GemmInt8Epilogue& epilogue,
                    KernelScratch* scratch);

/// GemmPackedInt8 with row-tile parallelism across `pool`, mirroring
/// GemmPackedParallel: B packed once by the caller, M blocks distributed
/// with ParallelFor, per-thread A panels. Falls back to the serial kernel
/// when `pool` is null or the problem is too small.
void GemmPackedInt8Parallel(int64_t m, int64_t n, int64_t k, const int8_t* a,
                            int64_t lda, const int8_t* b, int64_t ldb,
                            float* c, int64_t ldc,
                            const GemmInt8Epilogue& epilogue,
                            ThreadPool* pool);

/// GemmPackedInt8 with the B operand gathered from `b`'s implicit fp32
/// patch matrix and quantized *during* panel packing: each gathered value
/// is quantized exactly as QuantizeSymmetric (round-to-nearest-even of
/// value / act_scale, saturating; act_scale <= 0 quantizes to zeros) and
/// stored biased to unsigned (+128, the vpdpbusd convention). Replaces the
/// fp32-im2col-then-quantize detour: int32 accumulators are bit-identical
/// to quantizing a materialized expansion and calling GemmPackedInt8 on
/// it, with neither the expansion nor the quantized copy ever written.
void GemmPackedConvInt8(int64_t m, int64_t n, int64_t k, const int8_t* a,
                        int64_t lda, const ConvPatchView& b, float act_scale,
                        float* c, int64_t ldc,
                        const GemmInt8Epilogue& epilogue,
                        KernelScratch* scratch);

/// GemmPackedConvInt8 with row-tile parallelism, mirroring
/// GemmPackedInt8Parallel.
void GemmPackedConvInt8Parallel(int64_t m, int64_t n, int64_t k,
                                const int8_t* a, int64_t lda,
                                const ConvPatchView& b, float act_scale,
                                float* c, int64_t ldc,
                                const GemmInt8Epilogue& epilogue,
                                ThreadPool* pool);

/// Cumulative int8 multiply-accumulate ops (2*m*n*k per call,
/// relaxed-atomic) — the int8 twin of GemmFlopsTotal(); see obs gauge
/// "gemm_gops_int8".
int64_t GemmInt8OpsTotal();

/// Name of the int8 micro-kernel selected at startup for this CPU:
/// "avx512vnni", "avxvnni", or "scalar". Surfaced by the benches.
const char* GemmInt8KernelName();

}  // namespace vista

#endif  // VISTA_TENSOR_GEMM_KERNEL_H_
