#ifndef VISTA_TENSOR_GEMM_KERNEL_H_
#define VISTA_TENSOR_GEMM_KERNEL_H_

#include <cstdint>

#include "tensor/scratch.h"

namespace vista {

class ThreadPool;

/// Blocked, packed single-precision GEMM — the compute core under MatMul
/// and Conv2DGemm (BLIS-style: register micro-tile, L1/L2 cache blocking,
/// panel packing into a reusable scratch arena).
///
/// Register micro-tile: each micro-kernel invocation accumulates a
/// kGemmMR x kGemmNR block of C in local accumulators; the inner loops are
/// fixed-trip so the compiler keeps the block in vector registers.
inline constexpr int64_t kGemmMR = 6;
inline constexpr int64_t kGemmNR = 16;
/// Cache blocking: a kGemmKC x kGemmNR B-strip stays L1-resident across one
/// row of micro-tiles; the packed kGemmMC x kGemmKC A panel targets L2.
/// kGemmMC is a multiple of kGemmMR and kGemmNC a multiple of kGemmNR.
inline constexpr int64_t kGemmMC = 96;
inline constexpr int64_t kGemmKC = 256;
inline constexpr int64_t kGemmNC = 2048;

/// Optional fused output transform applied as C is written on the last
/// K-panel, saving a second pass over the output.
struct GemmEpilogue {
  /// Per-row addend of length m (a convolution's per-filter bias); null
  /// skips the add.
  const float* bias = nullptr;
  /// Applies max(0, x) after the bias add (a convolution's fused ReLU).
  bool relu = false;
};

/// C (m x n, row stride ldc) = A (m x k, row stride lda) * B (k x n, row
/// stride ldb), overwriting C, then applies `epilogue`. The row strides
/// admit strided views into larger tensors, which is what makes grouped
/// convolution zero-copy. Pack buffers come from `scratch` (slots kPackA /
/// kPackB), so steady-state calls allocate nothing.
void GemmPacked(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc,
                const GemmEpilogue& epilogue, KernelScratch* scratch);

/// GemmPacked with row-tile (M-dimension) parallelism across `pool`: the B
/// panel is packed once by the caller, then the M blocks are distributed
/// with ThreadPool::ParallelFor (caller-inclusive, so this is safe to call
/// from inside a pool task). Each participating thread packs its own A
/// panels into its thread-local arena. Falls back to the serial kernel when
/// `pool` is null or the problem is too small to amortize dispatch.
void GemmPackedParallel(int64_t m, int64_t n, int64_t k, const float* a,
                        int64_t lda, const float* b, int64_t ldb, float* c,
                        int64_t ldc, const GemmEpilogue& epilogue,
                        ThreadPool* pool);

/// Cumulative FLOPs executed by the packed GEMM in this process
/// (2*m*n*k per call, relaxed-atomic). Benches compute achieved GFLOP/s
/// from deltas around a timed region; see obs gauge "tensor.gemm_gflops".
int64_t GemmFlopsTotal();

}  // namespace vista

#endif  // VISTA_TENSOR_GEMM_KERNEL_H_
