#ifndef VISTA_TENSOR_SHAPE_H_
#define VISTA_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace vista {

/// Shape of a dense d-dimensional tensor (Definition 3.1 in the paper).
///
/// Convention for image tensors is CHW (channels, height, width); vectors
/// are rank-1. A default-constructed Shape is the scalar shape (rank 0,
/// 1 element).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_[i]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements (product of dims; 1 for rank 0).
  int64_t num_elements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  /// Bytes occupied by a float32 tensor of this shape.
  int64_t num_bytes() const { return num_elements() * 4; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Renders e.g. "(3, 227, 227)".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace vista

#endif  // VISTA_TENSOR_SHAPE_H_
