#ifndef VISTA_TENSOR_OPS_H_
#define VISTA_TENSOR_OPS_H_

#include <cstdint>

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista {

/// Neural-network kernels operating on single-record tensors (CHW images or
/// rank-1 vectors). These are the TensorOps of Definition 3.3: each takes a
/// tensor of a fixed expected shape and produces a tensor of a fixed shape.
///
/// All kernels are pure reference implementations: straightforward loops,
/// verified by tests against hand-computed results. They are fast enough for
/// the scaled-down "micro" CNNs used in tests/examples; cluster-scale cost
/// is handled analytically by the simulator.

/// 2-D convolution of a CHW input with KCRS weights (K filters of size
/// C x R x S), plus a per-filter bias of length K. Zero padding `pad` on all
/// sides, square stride. Output is K x H' x W' with
/// H' = (H + 2*pad - R)/stride + 1 (and similarly W').
/// `groups` > 1 selects grouped convolution: input channels are split into
/// `groups` contiguous blocks and filter k reads only block k*groups/K
/// (weights then have shape K x C/groups x R x S), as in AlexNet.
Result<Tensor> Conv2D(const Tensor& input, const Tensor& weights,
                      const Tensor& bias, int stride, int pad,
                      int groups = 1);

/// Max pooling with a square window and stride over a CHW input.
Result<Tensor> MaxPool2D(const Tensor& input, int window, int stride,
                         int pad = 0);

/// Average pooling with a square window and stride over a CHW input.
Result<Tensor> AvgPool2D(const Tensor& input, int window, int stride,
                         int pad = 0);

/// Global average pooling: reduces C x H x W to a length-C vector.
Result<Tensor> GlobalAvgPool(const Tensor& input);

/// Element-wise max(0, x).
Tensor Relu(const Tensor& input);

/// Fully connected layer: y = W x + b with W of shape (out, in), x rank-1.
Result<Tensor> FullyConnected(const Tensor& input, const Tensor& weights,
                              const Tensor& bias);

/// Inference-mode batch normalization over channels of a CHW input:
/// y_c = scale_c * x_c + shift_c (scale/shift fold mean/variance).
Result<Tensor> BatchNormInference(const Tensor& input, const Tensor& scale,
                                  const Tensor& shift);

/// Element-wise addition; shapes must match (residual connections).
Result<Tensor> Add(const Tensor& a, const Tensor& b);

/// Numerically stable softmax over a rank-1 tensor.
Result<Tensor> Softmax(const Tensor& input);

/// AlexNet-style local response normalization across channels.
Result<Tensor> LocalResponseNorm(const Tensor& input, int depth_radius = 2,
                                 float bias = 2.0f, float alpha = 1e-4f,
                                 float beta = 0.75f);

/// The paper's dimensionality reducer for convolutional feature layers
/// (footnote 4): max pooling with filter width and stride chosen so the
/// C x H x W tensor reduces to a C x grid x grid tensor of the same depth.
Result<Tensor> GridMaxPool(const Tensor& input, int grid = 2);

/// FLOP counts used by layer statistics and the simulator's cost model.
/// Convention: one multiply-accumulate = 2 FLOPs.
int64_t Conv2DFlops(int64_t in_channels, int64_t out_channels,
                    int64_t out_height, int64_t out_width, int64_t kernel);
int64_t FullyConnectedFlops(int64_t in_features, int64_t out_features);

}  // namespace vista

#endif  // VISTA_TENSOR_OPS_H_
