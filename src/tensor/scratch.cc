#include "tensor/scratch.h"

#include <algorithm>
#include <new>

namespace vista {

namespace {
constexpr size_t kAlignment = 64;
}  // namespace

KernelScratch::~KernelScratch() { Release(); }

float* KernelScratch::Acquire(Slot slot, size_t num_floats) {
  Buffer& buf = buffers_[static_cast<int>(slot)];
  if (num_floats <= buf.capacity) {
    ++reuses_;
    return buf.data;
  }
  // Grow geometrically so alternating layer shapes converge to the largest
  // request instead of reallocating on every size change.
  const size_t capacity = std::max(num_floats, buf.capacity * 2);
  if (buf.data != nullptr) {
    ::operator delete[](buf.data, std::align_val_t(kAlignment));
  }
  buf.data = static_cast<float*>(::operator new[](
      capacity * sizeof(float), std::align_val_t(kAlignment)));
  buf.capacity = capacity;
  ++allocations_;
  return buf.data;
}

void KernelScratch::Release() {
  for (Buffer& buf : buffers_) {
    if (buf.data != nullptr) {
      ::operator delete[](buf.data, std::align_val_t(kAlignment));
      buf.data = nullptr;
      buf.capacity = 0;
    }
  }
}

int64_t KernelScratch::capacity_floats() const {
  int64_t n = 0;
  for (const Buffer& buf : buffers_) {
    n += static_cast<int64_t>(buf.capacity);
  }
  return n;
}

KernelScratch& KernelScratch::ThreadLocal() {
  thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace vista
