#include "tensor/scratch.h"

#include <algorithm>
#include <atomic>
#include <new>

namespace vista {

namespace {
constexpr size_t kAlignment = 64;

/// Process-wide footprint accounting across every arena. The current total
/// moves with grow/release; the peak only ratchets up (CAS-max), so the
/// gauge mirrors a true high-water mark even under concurrent growth.
std::atomic<int64_t> g_total_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void RaiseGlobalPeak(int64_t candidate) {
  int64_t seen = g_peak_bytes.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !g_peak_bytes.compare_exchange_weak(seen, candidate,
                                             std::memory_order_relaxed)) {
  }
}
}  // namespace

KernelScratch::~KernelScratch() { Release(); }

void KernelScratch::TrackBytes(int64_t delta) {
  held_bytes_ += delta;
  peak_bytes_ = std::max(peak_bytes_, held_bytes_);
  const int64_t total =
      g_total_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) RaiseGlobalPeak(total);
}

float* KernelScratch::Acquire(Slot slot, size_t num_floats) {
  Buffer& buf = buffers_[static_cast<int>(slot)];
  if (num_floats <= buf.capacity) {
    ++reuses_;
    return buf.data;
  }
  // Grow geometrically so alternating layer shapes converge to the largest
  // request instead of reallocating on every size change.
  const size_t capacity = std::max(num_floats, buf.capacity * 2);
  if (buf.data != nullptr) {
    ::operator delete[](buf.data, std::align_val_t(kAlignment));
  }
  buf.data = static_cast<float*>(::operator new[](
      capacity * sizeof(float), std::align_val_t(kAlignment)));
  TrackBytes(static_cast<int64_t>(capacity - buf.capacity) *
             static_cast<int64_t>(sizeof(float)));
  buf.capacity = capacity;
  ++allocations_;
  return buf.data;
}

void KernelScratch::Release() {
  for (Buffer& buf : buffers_) {
    if (buf.data != nullptr) {
      ::operator delete[](buf.data, std::align_val_t(kAlignment));
      TrackBytes(-static_cast<int64_t>(buf.capacity) *
                 static_cast<int64_t>(sizeof(float)));
      buf.data = nullptr;
      buf.capacity = 0;
    }
  }
}

int64_t KernelScratch::capacity_floats() const {
  int64_t n = 0;
  for (const Buffer& buf : buffers_) {
    n += static_cast<int64_t>(buf.capacity);
  }
  return n;
}

int64_t KernelScratch::TotalBytes() {
  return g_total_bytes.load(std::memory_order_relaxed);
}

int64_t KernelScratch::GlobalPeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

KernelScratch& KernelScratch::ThreadLocal() {
  thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace vista
