#include "tensor/tensor.h"

#include <cmath>

namespace vista {

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  const float* a = data();
  const float* b = other.data();
  const int64_t n = num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace vista
