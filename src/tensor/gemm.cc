#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/gemm_kernel.h"
#include "tensor/scratch.h"

namespace vista {
namespace {

Status CheckMatMulShapes(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return Status::InvalidArgument("MatMul expects rank-2 tensors, got " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  if (b.shape().dim(0) != a.shape().dim(1)) {
    return Status::InvalidArgument("MatMul inner dimensions mismatch: " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  return Status::OK();
}

/// Writes the im2col expansion of `in` (CHW, dims c/h/w) into `out`, which
/// must hold groups * (c/groups * kernel * kernel) * (h_out * w_out)
/// floats. Row/column layout matches Im2Col's documented tensor layout.
void Im2ColInto(const float* in, int64_t c, int64_t h, int64_t w, int kernel,
                int stride, int pad, int groups, int64_t h_out,
                int64_t w_out, float* out) {
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t cols = h_out * w_out;
  for (int64_t g = 0; g < groups; ++g) {
    float* og = out + g * rows * cols;
    for (int64_t cc = 0; cc < c_per_group; ++cc) {
      const float* in_c = in + (g * c_per_group + cc) * h * w;
      for (int ky = 0; ky < kernel; ++ky) {
        for (int kx = 0; kx < kernel; ++kx) {
          float* row = og + ((cc * kernel + ky) * kernel + kx) * cols;
          for (int64_t oy = 0; oy < h_out; ++oy) {
            const int64_t iy = oy * stride - pad + ky;
            float* dst = row + oy * w_out;
            if (iy < 0 || iy >= h) {
              std::memset(dst, 0, sizeof(float) * w_out);
              continue;
            }
            const float* src_row = in_c + iy * w;
            for (int64_t ox = 0; ox < w_out; ++ox) {
              const int64_t ix = ox * stride - pad + kx;
              dst[ox] = (ix < 0 || ix >= w) ? 0.0f : src_row[ix];
            }
          }
        }
      }
    }
  }
}

/// Shared shape validation + derived geometry for the Conv2DGemm* family.
/// `name` prefixes error messages so each entry point keeps its own
/// diagnostics.
struct ConvGeom {
  int64_t k_total = 0;
  int kernel = 1;
  int64_t c = 0;
  int64_t h = 0;
  int64_t w = 0;
  int64_t h_out = 0;
  int64_t w_out = 0;
  int64_t c_per_group = 0;
  int64_t rows = 0;     // Patch rows per group: c/groups * kernel^2.
  int64_t spatial = 0;  // h_out * w_out.
  int64_t k_per_group = 0;
};

Status ComputeConvGeom(const char* name, const Shape& in_shape,
                       const Shape& ws, const Shape& bias_shape, int stride,
                       int pad, int groups, ConvGeom* g) {
  const std::string p(name);
  if (ws.rank() != 4 || bias_shape.rank() != 1) {
    return Status::InvalidArgument(p + ": bad weights/bias rank");
  }
  g->k_total = ws.dim(0);
  g->kernel = static_cast<int>(ws.dim(2));
  if (ws.dim(2) != ws.dim(3)) {
    return Status::InvalidArgument(p + ": non-square kernel");
  }
  if (groups < 1 || g->k_total % groups != 0 ||
      bias_shape.dim(0) != g->k_total) {
    return Status::InvalidArgument(p + ": filters/groups mismatch");
  }
  g->c = in_shape.rank() == 3 ? in_shape.dim(0) : 0;
  if (in_shape.rank() != 3 || g->c % groups != 0 ||
      ws.dim(1) != g->c / groups) {
    return Status::InvalidArgument(
        p + ": input channels incompatible with weights/groups");
  }
  if (g->kernel < 1 || stride < 1 || pad < 0) {
    return Status::InvalidArgument(p + ": bad kernel/stride/pad");
  }
  g->h = in_shape.dim(1);
  g->w = in_shape.dim(2);
  if (g->kernel > g->h + 2 * pad || g->kernel > g->w + 2 * pad) {
    return Status::InvalidArgument(p + ": kernel larger than padded input");
  }
  g->h_out = (g->h + 2 * pad - g->kernel) / stride + 1;
  g->w_out = (g->w + 2 * pad - g->kernel) / stride + 1;
  if (g->h_out <= 0 || g->w_out <= 0) {
    return Status::InvalidArgument(p + ": empty output");
  }
  g->c_per_group = g->c / groups;
  g->rows = g->c_per_group * g->kernel * g->kernel;
  g->spatial = g->h_out * g->w_out;
  g->k_per_group = g->k_total / groups;
  return Status::OK();
}

}  // namespace

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  VISTA_RETURN_IF_ERROR(CheckMatMulShapes(a, b));
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  GemmPacked(m, n, k, a.data(), k, b.data(), n, c.mutable_data(), n,
             GemmEpilogue{}, &KernelScratch::ThreadLocal());
  return c;
}

Result<Tensor> MatMulReference(const Tensor& a, const Tensor& b) {
  VISTA_RETURN_IF_ERROR(CheckMatMulShapes(a, b));
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.mutable_data();
  // i-k-j loop order with the inner loop over contiguous rows of B and C.
  // No data-dependent skips: every IEEE special value flows through.
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = pc + i * n;
    const float* a_row = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
  return c;
}

Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups) {
  if (input.shape().rank() != 3) {
    return Status::InvalidArgument("Im2Col expects a CHW tensor");
  }
  if (kernel < 1 || stride < 1 || pad < 0 || groups < 1) {
    return Status::InvalidArgument("Im2Col: bad kernel/stride/pad/groups");
  }
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (c % groups != 0) {
    return Status::InvalidArgument("Im2Col: channels not divisible");
  }
  if (kernel > h + 2 * pad || kernel > w + 2 * pad) {
    return Status::InvalidArgument("Im2Col: kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Im2Col: empty output");
  }
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t cols = h_out * w_out;
  Tensor out(Shape{groups, rows, cols});
  Im2ColInto(input.data(), c, h, w, kernel, stride, pad, groups, h_out,
             w_out, out.mutable_data());
  return out;
}

Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups) {
  return Conv2DGemmImplicit(input, weights, bias, stride, pad, groups,
                            /*relu=*/false, /*pool=*/nullptr);
}

Result<Tensor> Conv2DGemmEx(const Tensor& input, const Tensor& weights,
                            const Tensor& bias, int stride, int pad,
                            int groups, bool relu, ThreadPool* pool) {
  ConvGeom g;
  VISTA_RETURN_IF_ERROR(ComputeConvGeom("Conv2DGemm", input.shape(),
                                        weights.shape(), bias.shape(), stride,
                                        pad, groups, &g));
  // im2col into the thread-local arena: reused across layers and images,
  // so a warmed-up convolution performs no scratch allocation. This is the
  // only remaining producer of the kIm2Col slot — the implicit hot path
  // below never materializes the expansion.
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  float* cols = scratch.Acquire(
      KernelScratch::Slot::kIm2Col,
      static_cast<size_t>(groups * g.rows * g.spatial));
  Im2ColInto(input.data(), g.c, g.h, g.w, g.kernel, stride, pad, groups,
             g.h_out, g.w_out, cols);

  Tensor out(Shape{g.k_total, g.h_out, g.w_out});
  float* o = out.mutable_data();
  const float* wt = weights.data();
  const float* b = bias.data();
  for (int64_t gi = 0; gi < groups; ++gi) {
    // Zero-copy group views: the group's filter matrix (k_per_group x rows)
    // and patch matrix (rows x spatial) are contiguous slices addressed by
    // pointer + stride, never materialized as tensors.
    GemmEpilogue epilogue;
    epilogue.bias = b + gi * g.k_per_group;
    epilogue.relu = relu;
    const float* a_g = wt + gi * g.k_per_group * g.rows;
    const float* b_g = cols + gi * g.rows * g.spatial;
    float* c_g = o + gi * g.k_per_group * g.spatial;
    if (pool != nullptr) {
      GemmPackedParallel(g.k_per_group, g.spatial, g.rows, a_g, g.rows, b_g,
                         g.spatial, c_g, g.spatial, epilogue, pool);
    } else {
      GemmPacked(g.k_per_group, g.spatial, g.rows, a_g, g.rows, b_g,
                 g.spatial, c_g, g.spatial, epilogue, &scratch);
    }
  }
  return out;
}

Result<Tensor> Conv2DGemmImplicit(const Tensor& input, const Tensor& weights,
                                  const Tensor& bias, int stride, int pad,
                                  int groups, bool relu, ThreadPool* pool) {
  ConvGeom g;
  VISTA_RETURN_IF_ERROR(ComputeConvGeom("Conv2DGemm", input.shape(),
                                        weights.shape(), bias.shape(), stride,
                                        pad, groups, &g));
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  Tensor out(Shape{g.k_total, g.h_out, g.w_out});
  float* o = out.mutable_data();
  const float* wt = weights.data();
  const float* b = bias.data();
  // 1x1 / stride-1 / pad-0: the patch matrix IS the group's input slice
  // (rows = c_per_group, columns = the h*w pixels), so the packed GEMM can
  // read it in place with ldb = h*w — no gather at all.
  const bool unit = g.kernel == 1 && stride == 1 && pad == 0;
  for (int64_t gi = 0; gi < groups; ++gi) {
    GemmEpilogue epilogue;
    epilogue.bias = b + gi * g.k_per_group;
    epilogue.relu = relu;
    const float* a_g = wt + gi * g.k_per_group * g.rows;
    const float* in_g = input.data() + gi * g.c_per_group * g.h * g.w;
    float* c_g = o + gi * g.k_per_group * g.spatial;
    if (unit) {
      if (pool != nullptr) {
        GemmPackedParallel(g.k_per_group, g.spatial, g.rows, a_g, g.rows,
                           in_g, g.spatial, c_g, g.spatial, epilogue, pool);
      } else {
        GemmPacked(g.k_per_group, g.spatial, g.rows, a_g, g.rows, in_g,
                   g.spatial, c_g, g.spatial, epilogue, &scratch);
      }
      continue;
    }
    ConvPatchView view;
    view.input = in_g;
    view.h = g.h;
    view.w = g.w;
    view.kernel = g.kernel;
    view.stride = stride;
    view.pad = pad;
    view.w_out = g.w_out;
    if (pool != nullptr) {
      GemmPackedConvParallel(g.k_per_group, g.spatial, g.rows, a_g, g.rows,
                             view, c_g, g.spatial, epilogue, pool);
    } else {
      GemmPackedConv(g.k_per_group, g.spatial, g.rows, a_g, g.rows, view,
                     c_g, g.spatial, epilogue, &scratch);
    }
  }
  return out;
}

Result<Tensor> Conv2DGemmInt8(const Tensor& input, const QuantizedWeights& qw,
                              const Tensor& bias, int stride, int pad,
                              int groups, bool relu, float act_scale,
                              ThreadPool* pool) {
  ConvGeom g;
  VISTA_RETURN_IF_ERROR(ComputeConvGeom("Conv2DGemmInt8", input.shape(),
                                        qw.shape, bias.shape(), stride, pad,
                                        groups, &g));
  if (static_cast<int64_t>(qw.scales.size()) != g.k_total ||
      static_cast<int64_t>(qw.data.size()) != qw.shape.num_elements()) {
    return Status::InvalidArgument("Conv2DGemmInt8: filters/groups mismatch");
  }
  // No im2col and no staging quantization pass: the implicit B packer
  // quantizes each gathered patch value with act_scale while packing
  // panels (the exact QuantizeSymmetric expression, so accumulators match
  // the old quantize-the-expansion path bit for bit). The only scratch
  // this path touches beyond the packed panels is the k_total-float
  // combined-scale vector.
  KernelScratch& scratch = KernelScratch::ThreadLocal();

  // Per-row combined dequant scale: weight channel scale x activation
  // scale (0 when either side hit the zero-scale guard).
  float* scales = scratch.Acquire(KernelScratch::Slot::kScales,
                                  static_cast<size_t>(g.k_total));
  const float act = act_scale > 0.0f ? act_scale : 0.0f;
  for (int64_t i = 0; i < g.k_total; ++i) {
    scales[i] = qw.scales[static_cast<size_t>(i)] * act;
  }

  Tensor out(Shape{g.k_total, g.h_out, g.w_out});
  float* o = out.mutable_data();
  const int8_t* wt = qw.data.data();
  const float* b = bias.data();
  for (int64_t gi = 0; gi < groups; ++gi) {
    GemmInt8Epilogue epilogue;
    epilogue.scale = scales + gi * g.k_per_group;
    epilogue.bias = b + gi * g.k_per_group;
    epilogue.relu = relu;
    const int8_t* a_g = wt + gi * g.k_per_group * g.rows;
    float* c_g = o + gi * g.k_per_group * g.spatial;
    ConvPatchView view;
    view.input = input.data() + gi * g.c_per_group * g.h * g.w;
    view.h = g.h;
    view.w = g.w;
    view.kernel = g.kernel;
    view.stride = stride;
    view.pad = pad;
    view.w_out = g.w_out;
    if (pool != nullptr) {
      GemmPackedConvInt8Parallel(g.k_per_group, g.spatial, g.rows, a_g,
                                 g.rows, view, act_scale, c_g, g.spatial,
                                 epilogue, pool);
    } else {
      GemmPackedConvInt8(g.k_per_group, g.spatial, g.rows, a_g, g.rows, view,
                         act_scale, c_g, g.spatial, epilogue, &scratch);
    }
  }
  return out;
}

Result<Tensor> FullyConnectedInt8(const Tensor& input,
                                  const QuantizedWeights& qw,
                                  const Tensor& bias, bool relu,
                                  float act_scale) {
  const Shape& ws = qw.shape;
  if (ws.rank() != 2 || bias.shape().rank() != 1) {
    return Status::InvalidArgument(
        "FullyConnectedInt8: bad weights/bias rank");
  }
  const int64_t out_dim = ws.dim(0);
  const int64_t in_dim = ws.dim(1);
  if (input.num_elements() != in_dim) {
    return Status::InvalidArgument(
        "FullyConnectedInt8: input has " +
        std::to_string(input.num_elements()) + " elements, weights expect " +
        std::to_string(in_dim));
  }
  if (bias.shape().dim(0) != out_dim ||
      static_cast<int64_t>(qw.scales.size()) != out_dim) {
    return Status::InvalidArgument("FullyConnectedInt8: bias length mismatch");
  }
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  int8_t* qx = static_cast<int8_t*>(scratch.AcquireBytes(
      KernelScratch::Slot::kQuantAct, static_cast<size_t>(in_dim)));
  QuantizeSymmetric(input.data(), in_dim, act_scale, qx);
  float* scales = scratch.Acquire(KernelScratch::Slot::kScales,
                                  static_cast<size_t>(out_dim));
  const float act = act_scale > 0.0f ? act_scale : 0.0f;
  for (int64_t i = 0; i < out_dim; ++i) {
    scales[i] = qw.scales[static_cast<size_t>(i)] * act;
  }
  Tensor out(Shape{out_dim});
  GemmInt8Epilogue epilogue;
  epilogue.scale = scales;
  epilogue.bias = bias.data();
  epilogue.relu = relu;
  GemmPackedInt8(out_dim, 1, in_dim, qw.data.data(), in_dim, qx, 1,
                 out.mutable_data(), 1, epilogue, &scratch);
  return out;
}

}  // namespace vista
