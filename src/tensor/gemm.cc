#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

namespace vista {

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return Status::InvalidArgument("MatMul expects rank-2 tensors, got " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  if (b.shape().dim(0) != k) {
    return Status::InvalidArgument("MatMul inner dimensions mismatch: " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.mutable_data();
  // i-k-j loop order with the inner loop over contiguous rows of B and C:
  // auto-vectorizes well and touches memory sequentially.
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = pc + i * n;
    const float* a_row = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;  // im2col matrices are often padded-sparse.
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
  return c;
}

Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups) {
  if (input.shape().rank() != 3) {
    return Status::InvalidArgument("Im2Col expects a CHW tensor");
  }
  if (kernel < 1 || stride < 1 || pad < 0 || groups < 1) {
    return Status::InvalidArgument("Im2Col: bad kernel/stride/pad/groups");
  }
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (c % groups != 0) {
    return Status::InvalidArgument("Im2Col: channels not divisible");
  }
  if (kernel > h + 2 * pad || kernel > w + 2 * pad) {
    return Status::InvalidArgument("Im2Col: kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Im2Col: empty output");
  }
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t cols = h_out * w_out;
  Tensor out(Shape{groups, rows, cols});
  float* o = out.mutable_data();
  const float* in = input.data();
  for (int64_t g = 0; g < groups; ++g) {
    float* og = o + g * rows * cols;
    for (int64_t cc = 0; cc < c_per_group; ++cc) {
      const float* in_c = in + (g * c_per_group + cc) * h * w;
      for (int ky = 0; ky < kernel; ++ky) {
        for (int kx = 0; kx < kernel; ++kx) {
          float* row =
              og + ((cc * kernel + ky) * kernel + kx) * cols;
          for (int64_t oy = 0; oy < h_out; ++oy) {
            const int64_t iy = oy * stride - pad + ky;
            float* dst = row + oy * w_out;
            if (iy < 0 || iy >= h) {
              std::memset(dst, 0, sizeof(float) * w_out);
              continue;
            }
            const float* src_row = in_c + iy * w;
            for (int64_t ox = 0; ox < w_out; ++ox) {
              const int64_t ix = ox * stride - pad + kx;
              dst[ox] = (ix < 0 || ix >= w) ? 0.0f : src_row[ix];
            }
          }
        }
      }
    }
  }
  return out;
}

Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups) {
  if (weights.shape().rank() != 4 || bias.shape().rank() != 1) {
    return Status::InvalidArgument("Conv2DGemm: bad weights/bias rank");
  }
  const int64_t k_total = weights.shape().dim(0);
  const int kernel = static_cast<int>(weights.shape().dim(2));
  if (weights.shape().dim(2) != weights.shape().dim(3)) {
    return Status::InvalidArgument("Conv2DGemm: non-square kernel");
  }
  if (k_total % groups != 0 || bias.shape().dim(0) != k_total) {
    return Status::InvalidArgument("Conv2DGemm: filters/groups mismatch");
  }
  const int64_t c = input.shape().dim(0);
  if (input.shape().rank() != 3 || c % groups != 0 ||
      weights.shape().dim(1) != c / groups) {
    return Status::InvalidArgument(
        "Conv2DGemm: input channels incompatible with weights/groups");
  }
  VISTA_ASSIGN_OR_RETURN(Tensor cols,
                         Im2Col(input, kernel, stride, pad, groups));
  const int64_t rows = cols.shape().dim(1);
  const int64_t spatial = cols.shape().dim(2);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  const int64_t k_per_group = k_total / groups;

  Tensor out(Shape{k_total, h_out, w_out});
  float* o = out.mutable_data();
  const float* wt = weights.data();
  const float* b = bias.data();
  for (int64_t g = 0; g < groups; ++g) {
    // Filter matrix for this group: (k_per_group x rows), a contiguous
    // slice of the weight tensor.
    Tensor filter(Shape{k_per_group, rows},
                  std::vector<float>(wt + g * k_per_group * rows,
                                     wt + (g + 1) * k_per_group * rows));
    Tensor patch(Shape{rows, spatial},
                 std::vector<float>(
                     cols.data() + g * rows * spatial,
                     cols.data() + (g + 1) * rows * spatial));
    VISTA_ASSIGN_OR_RETURN(Tensor product, MatMul(filter, patch));
    const float* p = product.data();
    for (int64_t f = 0; f < k_per_group; ++f) {
      float* dst = o + (g * k_per_group + f) * spatial;
      const float bf = b[g * k_per_group + f];
      const float* src = p + f * spatial;
      for (int64_t i = 0; i < spatial; ++i) dst[i] = src[i] + bf;
    }
  }
  return out;
}

}  // namespace vista
