#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/gemm_kernel.h"
#include "tensor/scratch.h"

namespace vista {
namespace {

Status CheckMatMulShapes(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return Status::InvalidArgument("MatMul expects rank-2 tensors, got " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  if (b.shape().dim(0) != a.shape().dim(1)) {
    return Status::InvalidArgument("MatMul inner dimensions mismatch: " +
                                   a.shape().ToString() + " x " +
                                   b.shape().ToString());
  }
  return Status::OK();
}

/// Writes the im2col expansion of `in` (CHW, dims c/h/w) into `out`, which
/// must hold groups * (c/groups * kernel * kernel) * (h_out * w_out)
/// floats. Row/column layout matches Im2Col's documented tensor layout.
void Im2ColInto(const float* in, int64_t c, int64_t h, int64_t w, int kernel,
                int stride, int pad, int groups, int64_t h_out,
                int64_t w_out, float* out) {
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t cols = h_out * w_out;
  for (int64_t g = 0; g < groups; ++g) {
    float* og = out + g * rows * cols;
    for (int64_t cc = 0; cc < c_per_group; ++cc) {
      const float* in_c = in + (g * c_per_group + cc) * h * w;
      for (int ky = 0; ky < kernel; ++ky) {
        for (int kx = 0; kx < kernel; ++kx) {
          float* row = og + ((cc * kernel + ky) * kernel + kx) * cols;
          for (int64_t oy = 0; oy < h_out; ++oy) {
            const int64_t iy = oy * stride - pad + ky;
            float* dst = row + oy * w_out;
            if (iy < 0 || iy >= h) {
              std::memset(dst, 0, sizeof(float) * w_out);
              continue;
            }
            const float* src_row = in_c + iy * w;
            for (int64_t ox = 0; ox < w_out; ++ox) {
              const int64_t ix = ox * stride - pad + kx;
              dst[ox] = (ix < 0 || ix >= w) ? 0.0f : src_row[ix];
            }
          }
        }
      }
    }
  }
}

}  // namespace

Result<Tensor> MatMul(const Tensor& a, const Tensor& b) {
  VISTA_RETURN_IF_ERROR(CheckMatMulShapes(a, b));
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  GemmPacked(m, n, k, a.data(), k, b.data(), n, c.mutable_data(), n,
             GemmEpilogue{}, &KernelScratch::ThreadLocal());
  return c;
}

Result<Tensor> MatMulReference(const Tensor& a, const Tensor& b) {
  VISTA_RETURN_IF_ERROR(CheckMatMulShapes(a, b));
  const int64_t m = a.shape().dim(0);
  const int64_t k = a.shape().dim(1);
  const int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.mutable_data();
  // i-k-j loop order with the inner loop over contiguous rows of B and C.
  // No data-dependent skips: every IEEE special value flows through.
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = pc + i * n;
    const float* a_row = pa + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      const float* b_row = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
  return c;
}

Result<Tensor> Im2Col(const Tensor& input, int kernel, int stride, int pad,
                      int groups) {
  if (input.shape().rank() != 3) {
    return Status::InvalidArgument("Im2Col expects a CHW tensor");
  }
  if (kernel < 1 || stride < 1 || pad < 0 || groups < 1) {
    return Status::InvalidArgument("Im2Col: bad kernel/stride/pad/groups");
  }
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (c % groups != 0) {
    return Status::InvalidArgument("Im2Col: channels not divisible");
  }
  if (kernel > h + 2 * pad || kernel > w + 2 * pad) {
    return Status::InvalidArgument("Im2Col: kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Im2Col: empty output");
  }
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t cols = h_out * w_out;
  Tensor out(Shape{groups, rows, cols});
  Im2ColInto(input.data(), c, h, w, kernel, stride, pad, groups, h_out,
             w_out, out.mutable_data());
  return out;
}

Result<Tensor> Conv2DGemm(const Tensor& input, const Tensor& weights,
                          const Tensor& bias, int stride, int pad,
                          int groups) {
  return Conv2DGemmEx(input, weights, bias, stride, pad, groups,
                      /*relu=*/false, /*pool=*/nullptr);
}

Result<Tensor> Conv2DGemmEx(const Tensor& input, const Tensor& weights,
                            const Tensor& bias, int stride, int pad,
                            int groups, bool relu, ThreadPool* pool) {
  if (weights.shape().rank() != 4 || bias.shape().rank() != 1) {
    return Status::InvalidArgument("Conv2DGemm: bad weights/bias rank");
  }
  const int64_t k_total = weights.shape().dim(0);
  const int kernel = static_cast<int>(weights.shape().dim(2));
  if (weights.shape().dim(2) != weights.shape().dim(3)) {
    return Status::InvalidArgument("Conv2DGemm: non-square kernel");
  }
  if (groups < 1 || k_total % groups != 0 ||
      bias.shape().dim(0) != k_total) {
    return Status::InvalidArgument("Conv2DGemm: filters/groups mismatch");
  }
  const int64_t c = input.shape().dim(0);
  if (input.shape().rank() != 3 || c % groups != 0 ||
      weights.shape().dim(1) != c / groups) {
    return Status::InvalidArgument(
        "Conv2DGemm: input channels incompatible with weights/groups");
  }
  if (kernel < 1 || stride < 1 || pad < 0) {
    return Status::InvalidArgument("Conv2DGemm: bad kernel/stride/pad");
  }
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (kernel > h + 2 * pad || kernel > w + 2 * pad) {
    return Status::InvalidArgument(
        "Conv2DGemm: kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Conv2DGemm: empty output");
  }
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t spatial = h_out * w_out;
  const int64_t k_per_group = k_total / groups;

  // im2col into the thread-local arena: reused across layers and images,
  // so a warmed-up convolution performs no scratch allocation.
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  float* cols = scratch.Acquire(
      KernelScratch::Slot::kIm2Col,
      static_cast<size_t>(groups * rows * spatial));
  Im2ColInto(input.data(), c, h, w, kernel, stride, pad, groups, h_out,
             w_out, cols);

  Tensor out(Shape{k_total, h_out, w_out});
  float* o = out.mutable_data();
  const float* wt = weights.data();
  const float* b = bias.data();
  for (int64_t g = 0; g < groups; ++g) {
    // Zero-copy group views: the group's filter matrix (k_per_group x rows)
    // and patch matrix (rows x spatial) are contiguous slices addressed by
    // pointer + stride, never materialized as tensors.
    GemmEpilogue epilogue;
    epilogue.bias = b + g * k_per_group;
    epilogue.relu = relu;
    const float* a_g = wt + g * k_per_group * rows;
    const float* b_g = cols + g * rows * spatial;
    float* c_g = o + g * k_per_group * spatial;
    if (pool != nullptr) {
      GemmPackedParallel(k_per_group, spatial, rows, a_g, rows, b_g, spatial,
                         c_g, spatial, epilogue, pool);
    } else {
      GemmPacked(k_per_group, spatial, rows, a_g, rows, b_g, spatial, c_g,
                 spatial, epilogue, &scratch);
    }
  }
  return out;
}

Result<Tensor> Conv2DGemmInt8(const Tensor& input, const QuantizedWeights& qw,
                              const Tensor& bias, int stride, int pad,
                              int groups, bool relu, float act_scale,
                              ThreadPool* pool) {
  const Shape& ws = qw.shape;
  if (ws.rank() != 4 || bias.shape().rank() != 1) {
    return Status::InvalidArgument("Conv2DGemmInt8: bad weights/bias rank");
  }
  const int64_t k_total = ws.dim(0);
  const int kernel = static_cast<int>(ws.dim(2));
  if (ws.dim(2) != ws.dim(3)) {
    return Status::InvalidArgument("Conv2DGemmInt8: non-square kernel");
  }
  if (groups < 1 || k_total % groups != 0 ||
      bias.shape().dim(0) != k_total ||
      static_cast<int64_t>(qw.scales.size()) != k_total ||
      static_cast<int64_t>(qw.data.size()) != ws.num_elements()) {
    return Status::InvalidArgument("Conv2DGemmInt8: filters/groups mismatch");
  }
  const int64_t c = input.shape().dim(0);
  if (input.shape().rank() != 3 || c % groups != 0 ||
      ws.dim(1) != c / groups) {
    return Status::InvalidArgument(
        "Conv2DGemmInt8: input channels incompatible with weights/groups");
  }
  if (kernel < 1 || stride < 1 || pad < 0) {
    return Status::InvalidArgument("Conv2DGemmInt8: bad kernel/stride/pad");
  }
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (kernel > h + 2 * pad || kernel > w + 2 * pad) {
    return Status::InvalidArgument(
        "Conv2DGemmInt8: kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Conv2DGemmInt8: empty output");
  }
  const int64_t c_per_group = c / groups;
  const int64_t rows = c_per_group * kernel * kernel;
  const int64_t spatial = h_out * w_out;
  const int64_t k_per_group = k_total / groups;

  // fp32 im2col exactly as Conv2DGemmEx, then one per-tensor symmetric
  // quantization pass over the expansion into the int8 staging slot.
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  const int64_t col_elems = groups * rows * spatial;
  float* cols = scratch.Acquire(KernelScratch::Slot::kIm2Col,
                                static_cast<size_t>(col_elems));
  Im2ColInto(input.data(), c, h, w, kernel, stride, pad, groups, h_out,
             w_out, cols);
  int8_t* qcols = static_cast<int8_t*>(scratch.AcquireBytes(
      KernelScratch::Slot::kQuantAct, static_cast<size_t>(col_elems)));
  QuantizeSymmetric(cols, col_elems, act_scale, qcols);

  // Per-row combined dequant scale: weight channel scale x activation
  // scale (0 when either side hit the zero-scale guard).
  float* scales = scratch.Acquire(KernelScratch::Slot::kScales,
                                  static_cast<size_t>(k_total));
  const float act = act_scale > 0.0f ? act_scale : 0.0f;
  for (int64_t i = 0; i < k_total; ++i) {
    scales[i] = qw.scales[static_cast<size_t>(i)] * act;
  }

  Tensor out(Shape{k_total, h_out, w_out});
  float* o = out.mutable_data();
  const int8_t* wt = qw.data.data();
  const float* b = bias.data();
  for (int64_t g = 0; g < groups; ++g) {
    GemmInt8Epilogue epilogue;
    epilogue.scale = scales + g * k_per_group;
    epilogue.bias = b + g * k_per_group;
    epilogue.relu = relu;
    const int8_t* a_g = wt + g * k_per_group * rows;
    const int8_t* b_g = qcols + g * rows * spatial;
    float* c_g = o + g * k_per_group * spatial;
    if (pool != nullptr) {
      GemmPackedInt8Parallel(k_per_group, spatial, rows, a_g, rows, b_g,
                             spatial, c_g, spatial, epilogue, pool);
    } else {
      GemmPackedInt8(k_per_group, spatial, rows, a_g, rows, b_g, spatial,
                     c_g, spatial, epilogue, &scratch);
    }
  }
  return out;
}

Result<Tensor> FullyConnectedInt8(const Tensor& input,
                                  const QuantizedWeights& qw,
                                  const Tensor& bias, bool relu,
                                  float act_scale) {
  const Shape& ws = qw.shape;
  if (ws.rank() != 2 || bias.shape().rank() != 1) {
    return Status::InvalidArgument(
        "FullyConnectedInt8: bad weights/bias rank");
  }
  const int64_t out_dim = ws.dim(0);
  const int64_t in_dim = ws.dim(1);
  if (input.num_elements() != in_dim) {
    return Status::InvalidArgument(
        "FullyConnectedInt8: input has " +
        std::to_string(input.num_elements()) + " elements, weights expect " +
        std::to_string(in_dim));
  }
  if (bias.shape().dim(0) != out_dim ||
      static_cast<int64_t>(qw.scales.size()) != out_dim) {
    return Status::InvalidArgument("FullyConnectedInt8: bias length mismatch");
  }
  KernelScratch& scratch = KernelScratch::ThreadLocal();
  int8_t* qx = static_cast<int8_t*>(scratch.AcquireBytes(
      KernelScratch::Slot::kQuantAct, static_cast<size_t>(in_dim)));
  QuantizeSymmetric(input.data(), in_dim, act_scale, qx);
  float* scales = scratch.Acquire(KernelScratch::Slot::kScales,
                                  static_cast<size_t>(out_dim));
  const float act = act_scale > 0.0f ? act_scale : 0.0f;
  for (int64_t i = 0; i < out_dim; ++i) {
    scales[i] = qw.scales[static_cast<size_t>(i)] * act;
  }
  Tensor out(Shape{out_dim});
  GemmInt8Epilogue epilogue;
  epilogue.scale = scales;
  epilogue.bias = bias.data();
  epilogue.relu = relu;
  GemmPackedInt8(out_dim, 1, in_dim, qw.data.data(), in_dim, qx, 1,
                 out.mutable_data(), 1, epilogue, &scratch);
  return out;
}

}  // namespace vista
