#ifndef VISTA_OBS_JSON_H_
#define VISTA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vista::obs {

/// Minimal ordered JSON document builder for the exporters and the bench
/// reporters. Build-and-dump only (no parsing); object members keep
/// insertion order so exports are stable and diffable.
class Json {
 public:
  static Json Object();
  static Json Array();
  static Json Str(std::string value);
  static Json Num(double value);
  static Json Int(int64_t value);
  static Json Bool(bool value);
  static Json Null();

  /// Adds/overwrites an object member. Requires an Object.
  Json& Set(std::string key, Json value);
  /// Appends an array element. Requires an Array.
  Json& Push(Json value);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  size_t size() const;

  /// Serializes; indent 0 emits a single line, > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kInt, kNum, kStr, kArray, kObject };

  Json() = default;

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double num_ = 0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace vista::obs

#endif  // VISTA_OBS_JSON_H_
