#ifndef VISTA_OBS_TRACE_H_
#define VISTA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vista::obs {

/// One completed trace span: a named, timed interval with parent/child
/// nesting. Timestamps are nanoseconds since the owning collector's epoch,
/// so spans from one collector are directly comparable and export cleanly
/// to the chrome://tracing timeline.
struct Span {
  std::string name;
  /// Coarse grouping for aggregation ("stage", "engine", "spill", ...).
  std::string category;
  int64_t id = 0;
  /// 0 = root (no enclosing span on this thread for this collector).
  int64_t parent_id = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  /// Stable per-thread tag (hash of std::thread::id).
  uint64_t thread_id = 0;

  double seconds() const {
    return static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// Thread-safe collector of completed spans. Span begin/end bookkeeping is
/// thread-local; a collector mutex is taken once per span completion, which
/// is orders of magnitude rarer than counter updates — cheap enough for
/// per-operator instrumentation.
class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Number of completed spans so far. Use as a mark before a run, then
  /// SpansSince(mark) to slice out just that run's spans.
  size_t size() const;
  /// Copy of spans [first_index, size()), ordered by start time.
  std::vector<Span> SpansSince(size_t first_index) const;
  /// Copy of all completed spans, ordered by start time.
  std::vector<Span> spans() const { return SpansSince(0); }

  /// Nanoseconds since this collector's construction.
  int64_t NowNs() const;

 private:
  friend class ScopedSpan;
  int64_t NextId();
  void Add(Span span);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<int64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII span: records begin at construction, completes and hands the span
/// to the collector at destruction. Nesting is tracked per (thread,
/// collector) so sibling collectors never see each other's parents. A null
/// collector makes the whole object a no-op, letting instrumentation sites
/// stay unconditional.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* collector, std::string name,
             std::string category = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Id of this span (0 when disabled); usable as an explicit parent.
  int64_t id() const { return span_.id; }

 private:
  TraceCollector* collector_;
  Span span_;
};

}  // namespace vista::obs

#endif  // VISTA_OBS_TRACE_H_
