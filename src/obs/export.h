#ifndef VISTA_OBS_EXPORT_H_
#define VISTA_OBS_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vista::obs {

/// JSON snapshot of every metric in `registry`:
///   {"counters": {name: value}, "gauges": {...}, "histograms": {...}}
Json MetricsJson(const Registry& registry);

/// JSON array of span objects (name, category, ids, times in both ns and
/// seconds).
Json SpansJson(const std::vector<Span>& spans);

/// One combined profile document — the machine-readable artifact benches
/// and tests write. Either input may be null/empty.
Json ProfileJson(const Registry* registry, const std::vector<Span>& spans);

/// chrome://tracing ("trace event format") document: load the dumped file
/// in chrome://tracing or Perfetto to see the per-thread span timeline.
Json ChromeTraceJson(const std::vector<Span>& spans);

/// Total seconds per span name, restricted to `category` (empty = all
/// spans). The per-stage rollup Table 3-style reporting is built on.
std::map<std::string, double> AggregateSpanSeconds(
    const std::vector<Span>& spans, const std::string& category = "");

/// Writes `content` to `path` (truncating), reporting I/O failures.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace vista::obs

#endif  // VISTA_OBS_EXPORT_H_
