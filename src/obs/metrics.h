#ifndef VISTA_OBS_METRICS_H_
#define VISTA_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vista::obs {

/// Monotonic counter (events, bytes, retries). Updates are relaxed atomic
/// fetch-adds; hot paths resolve the pointer once via Registry::counter and
/// pay one atomic add per event.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// A value that moves both ways (resident partitions, queue depth), with a
/// high-water mark.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }
  void Add(int64_t delta = 1) {
    const int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void UpdateMax(int64_t candidate) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket histogram for latencies and sizes. Record() finds the
/// bucket with a linear scan over the (small) bound list and performs only
/// relaxed atomic updates — no locks on the hot path, safe under concurrent
/// recording from the thread pool.
class Histogram {
 public:
  /// `value` in the unit the bounds were declared in (milliseconds for the
  /// default latency buckets).
  void Record(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Smallest / largest recorded value; 0 when empty.
  double min_value() const;
  double max_value() const;
  /// Approximate quantile (q in [0,1]) from the bucket counts, linear
  /// within a bucket. Reads are unsynchronized snapshots — fine for
  /// reporting, not for invariants.
  double Quantile(double q) const;

  /// Upper bounds of the finite buckets; an implicit +inf bucket follows.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last is the overflow).
  std::vector<int64_t> bucket_counts() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default latency buckets in milliseconds: 0.01 ms .. 60 s, roughly
/// 1-2.5-5 per decade. Suits everything from a per-layer conv forward to a
/// full persist pass.
std::vector<double> DefaultLatencyBucketsMs();

/// A named collection of metrics. Registration (the first use of a name)
/// takes a mutex; the returned pointers are stable for the registry's
/// lifetime and updating through them is lock-free, so components resolve
/// their instruments once at construction and the hot path never locks.
///
/// Scoping: each Engine owns a private Registry by default (tests stay
/// isolated); benches inject a shared one to export a whole run.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. A second call with the same name returns the same
  /// instrument (histogram bounds from the first call win).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = DefaultLatencyBucketsMs());

  /// Snapshots for exporters, sorted by name.
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Records elapsed milliseconds into a histogram when it goes out of scope.
/// A null histogram disables the timer (and the clock reads).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vista::obs

#endif  // VISTA_OBS_METRICS_H_
