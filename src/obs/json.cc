#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace vista::obs {

Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.kind_ = Kind::kStr;
  j.str_ = std::move(value);
  return j;
}

Json Json::Num(double value) {
  Json j;
  j.kind_ = Kind::kNum;
  // NaN/inf are not representable in JSON; clamp to null-ish zero.
  j.num_ = std::isfinite(value) ? value : 0.0;
  return j;
}

Json Json::Int(int64_t value) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = value;
  return j;
}

Json Json::Bool(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Null() { return Json(); }

Json& Json::Set(std::string key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  return kind_ == Kind::kObject ? members_.size() : items_.size();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int_));
      *out += buf;
      break;
    }
    case Kind::kNum: {
      char buf[40];
      if (num_ == static_cast<double>(static_cast<int64_t>(num_))) {
        std::snprintf(buf, sizeof(buf), "%lld.0",
                      static_cast<long long>(num_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", num_);
      }
      *out += buf;
      break;
    }
    case Kind::kStr:
      *out += '"';
      *out += JsonEscape(str_);
      *out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        *out += pad;
        items_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        *out += pad;
        *out += '"';
        *out += JsonEscape(members_[i].first);
        *out += '"';
        *out += kv_sep;
        members_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < members_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace vista::obs
