#include "obs/metrics.h"

#include <algorithm>

namespace vista::obs {

namespace {

/// Relaxed CAS-min/max for atomic doubles. `count_first` guards the
/// empty-histogram case: the first Record seeds both extremes.
void AtomicMin(std::atomic<double>* target, double candidate) {
  double seen = target->load(std::memory_order_relaxed);
  while (candidate < seen &&
         !target->compare_exchange_weak(seen, candidate,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double candidate) {
  double seen = target->load(std::memory_order_relaxed);
  while (candidate > seen &&
         !target->compare_exchange_weak(seen, candidate,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,
          10.0, 25.0,  50.0, 100., 250., 500., 1000.0, 2500.0, 5000.0,
          10000.0, 30000.0, 60000.0};
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Record(double value) {
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Seed the extremes on the first record; the CAS loops keep them exact
  // under concurrency afterwards. The count is bumped last so a reader that
  // sees count >= 1 also sees seeded extremes.
  if (count_.load(std::memory_order_relaxed) == 0) {
    double expected = 0.0;
    min_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  }
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min_value() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max_value() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<int64_t> counts = bucket_counts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target && counts[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size()
                               ? bounds_[i]
                               : max_.load(std::memory_order_relaxed);
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_.load(std::memory_order_relaxed);
}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

std::vector<const Counter*> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Gauge*> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.push_back(g.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(h.get());
  return out;
}

}  // namespace vista::obs
