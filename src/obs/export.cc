#include "obs/export.h"

#include <cstdio>

namespace vista::obs {

Json MetricsJson(const Registry& registry) {
  Json counters = Json::Object();
  for (const Counter* c : registry.counters()) {
    counters.Set(c->name(), Json::Int(c->value()));
  }
  Json gauges = Json::Object();
  for (const Gauge* g : registry.gauges()) {
    Json entry = Json::Object();
    entry.Set("value", Json::Int(g->value()));
    entry.Set("max", Json::Int(g->max_value()));
    gauges.Set(g->name(), std::move(entry));
  }
  Json histograms = Json::Object();
  for (const Histogram* h : registry.histograms()) {
    Json entry = Json::Object();
    entry.Set("count", Json::Int(h->count()));
    entry.Set("sum", Json::Num(h->sum()));
    entry.Set("mean", Json::Num(h->mean()));
    entry.Set("min", Json::Num(h->min_value()));
    entry.Set("max", Json::Num(h->max_value()));
    entry.Set("p50", Json::Num(h->Quantile(0.5)));
    entry.Set("p95", Json::Num(h->Quantile(0.95)));
    entry.Set("p99", Json::Num(h->Quantile(0.99)));
    Json bounds = Json::Array();
    for (double b : h->bounds()) bounds.Push(Json::Num(b));
    entry.Set("bucket_bounds", std::move(bounds));
    Json counts = Json::Array();
    for (int64_t c : h->bucket_counts()) counts.Push(Json::Int(c));
    entry.Set("bucket_counts", std::move(counts));
    histograms.Set(h->name(), std::move(entry));
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

Json SpansJson(const std::vector<Span>& spans) {
  Json out = Json::Array();
  for (const Span& s : spans) {
    Json entry = Json::Object();
    entry.Set("name", Json::Str(s.name));
    entry.Set("category", Json::Str(s.category));
    entry.Set("id", Json::Int(s.id));
    entry.Set("parent_id", Json::Int(s.parent_id));
    entry.Set("start_ns", Json::Int(s.start_ns));
    entry.Set("end_ns", Json::Int(s.end_ns));
    entry.Set("seconds", Json::Num(s.seconds()));
    entry.Set("thread", Json::Int(static_cast<int64_t>(s.thread_id)));
    out.Push(std::move(entry));
  }
  return out;
}

Json ProfileJson(const Registry* registry, const std::vector<Span>& spans) {
  Json out = Json::Object();
  Json stage_seconds = Json::Object();
  for (const auto& [name, seconds] : AggregateSpanSeconds(spans, "stage")) {
    stage_seconds.Set(name, Json::Num(seconds));
  }
  out.Set("stage_seconds", std::move(stage_seconds));
  if (registry != nullptr) out.Set("metrics", MetricsJson(*registry));
  out.Set("spans", SpansJson(spans));
  return out;
}

Json ChromeTraceJson(const std::vector<Span>& spans) {
  Json events = Json::Array();
  for (const Span& s : spans) {
    Json entry = Json::Object();
    entry.Set("name", Json::Str(s.name));
    entry.Set("cat", Json::Str(s.category.empty() ? "span" : s.category));
    entry.Set("ph", Json::Str("X"));
    entry.Set("ts", Json::Num(static_cast<double>(s.start_ns) / 1000.0));
    entry.Set("dur",
              Json::Num(static_cast<double>(s.end_ns - s.start_ns) / 1000.0));
    entry.Set("pid", Json::Int(1));
    entry.Set("tid", Json::Int(static_cast<int64_t>(s.thread_id % 100000)));
    events.Push(std::move(entry));
  }
  Json out = Json::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", Json::Str("ms"));
  return out;
}

std::map<std::string, double> AggregateSpanSeconds(
    const std::vector<Span>& spans, const std::string& category) {
  std::map<std::string, double> out;
  for (const Span& s : spans) {
    if (!category.empty() && s.category != category) continue;
    out[s.name] += s.seconds();
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != content.size() || !closed) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace vista::obs
