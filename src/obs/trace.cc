#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <thread>
#include <utility>

namespace vista::obs {

namespace {

/// Active-span stack of the current thread. Entries carry the owning
/// collector so nested spans against different collectors do not adopt
/// each other as parents.
thread_local std::vector<std::pair<TraceCollector*, int64_t>> tl_span_stack;

uint64_t CurrentThreadTag() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceCollector::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t TraceCollector::NextId() { return next_id_.fetch_add(1); }

void TraceCollector::Add(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<Span> TraceCollector::SpansSince(size_t first_index) const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_index < spans_.size()) {
      out.assign(spans_.begin() + static_cast<int64_t>(first_index),
                 spans_.end());
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

ScopedSpan::ScopedSpan(TraceCollector* collector, std::string name,
                       std::string category)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.id = collector_->NextId();
  span_.thread_id = CurrentThreadTag();
  // Parent: innermost active span on this thread for the same collector.
  for (auto it = tl_span_stack.rbegin(); it != tl_span_stack.rend(); ++it) {
    if (it->first == collector_) {
      span_.parent_id = it->second;
      break;
    }
  }
  tl_span_stack.emplace_back(collector_, span_.id);
  span_.start_ns = collector_->NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr) return;
  span_.end_ns = collector_->NowNs();
  // Normally our entry is the top of the stack; erase defensively so a
  // non-LIFO destruction order cannot corrupt sibling entries.
  for (auto it = tl_span_stack.rbegin(); it != tl_span_stack.rend(); ++it) {
    if (it->first == collector_ && it->second == span_.id) {
      tl_span_stack.erase(std::next(it).base());
      break;
    }
  }
  collector_->Add(std::move(span_));
}

}  // namespace vista::obs
