#ifndef VISTA_SERVE_VIEW_CACHE_H_
#define VISTA_SERVE_VIEW_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "dataflow/engine.h"
#include "dataflow/memory.h"
#include "dl/primitive.h"
#include "obs/metrics.h"

namespace vista::serve {

/// Cheap structural fingerprint of a dataset table: an order-insensitive
/// hash over every record's id, modality shapes, and a few sampled image
/// bytes. Two registrations of the same dataset — possibly by different
/// tenants, possibly partitioned differently — fingerprint identically, so
/// views materialized for one satisfy the other; distinct datasets collide
/// only with hash probability. Reads partitions directly (no engine), so
/// every partition must be resident.
Result<uint64_t> DatasetFingerprint(const df::Table& table);

/// One materialized visual view: layer `layer`'s tensors for a whole
/// dataset, carried in TensorList slot 0 of `table`'s records.
struct MaterializedView {
  df::Table table;
  int layer = -1;
};

/// Shared cross-query cache of partial-inference results — DeepLens's "CNN
/// features as materialized visual views" applied to Vista's Staged plan:
/// f̂_{1→l} computed for one query satisfies any later query whose base
/// layer l' >= l of the same model on the same dataset (the executor
/// resumes from the cached layer instead of raw image bytes).
///
/// Entries are keyed by (model, dataset fingerprint, precision, layer) and
/// charge their footprint against the MemoryManager's Storage region, the
/// same
/// accounting engine-persisted partitions live under. Eviction is
/// cost-aware rather than purely LRU: the victim is the entry with the
/// lowest recompute-FLOPs-saved per resident byte (ties broken by
/// recency), so a small deep view outlives a huge shallow one. Evicting
/// only drops the cache's reference — in-flight queries resuming from the
/// view hold the partitions alive via shared_ptr until they finish.
///
/// Thread-safe; Lookup/Insert take one mutex (the expensive work — actual
/// inference — happens outside).
class FeatureViewCache {
 public:
  /// `capacity_bytes` additionally caps the cache's own footprint below
  /// the Storage budget (-1: bounded by the Storage region alone).
  /// `metrics` (optional) receives "serve.view_cache.*" instruments; both
  /// pointers must outlive the cache.
  FeatureViewCache(df::MemoryManager* memory, int64_t capacity_bytes = -1,
                   obs::Registry* metrics = nullptr);
  ~FeatureViewCache();

  FeatureViewCache(const FeatureViewCache&) = delete;
  FeatureViewCache& operator=(const FeatureViewCache&) = delete;

  /// Deepest cached view of (model, fingerprint) materialized at
  /// `precision` with layer <= max_layer; nullopt on miss. Views produced
  /// at a different precision never satisfy the lookup — int8 features are
  /// numerically different tensors, and resuming an fp32 query from them
  /// (or vice versa) would silently change results. Hits refresh the
  /// entry's recency. Before a view is
  /// handed out for resume, every serialized-resident partition is
  /// CRC-verified; an entry that fails is dropped (counted under
  /// "serve.view_cache.corrupt_drops" and "integrity.checksum_failures")
  /// and the lookup falls back to the next-deepest intact view — a query
  /// must never resume inference from rotted features.
  std::optional<MaterializedView> Lookup(
      const std::string& model, uint64_t fingerprint, int max_layer,
      dl::Precision precision = dl::Precision::kFp32);

  /// Caches `view` under (model, fingerprint, precision, view.layer),
  /// evicting
  /// lower-value entries as needed. `recompute_flops` is the total FLOPs a
  /// future query saves by resuming here instead of from raw images
  /// (cumulative FLOPs through view.layer x record count) — the benefit
  /// side of the eviction score. Returns false (without error) when the
  /// view cannot fit even after evicting everything else; the query that
  /// produced it simply proceeds uncached.
  bool Insert(const std::string& model, uint64_t fingerprint,
              MaterializedView view, int64_t recompute_flops,
              dl::Precision precision = dl::Precision::kFp32);

  /// Drops every entry and releases all Storage charges.
  void Clear();

  int64_t num_views() const;
  int64_t resident_bytes() const;

 private:
  struct Entry {
    MaterializedView view;
    /// Bytes charged to the Storage region while cached.
    int64_t charged_bytes = 0;
    int64_t recompute_flops = 0;
    /// Monotone use sequence; larger = more recent.
    int64_t last_use = 0;
    /// Eviction score: FLOPs saved per resident byte.
    double value() const {
      return static_cast<double>(recompute_flops) /
             static_cast<double>(charged_bytes > 0 ? charged_bytes : 1);
    }
  };
  /// (model, fingerprint, precision, layer) — layer last so Lookup's
  /// "deepest view <= max_layer" scan stays a contiguous key range within
  /// one precision.
  using Key = std::tuple<std::string, uint64_t, int, int>;

  /// Evicts lowest-value entries until `bytes` fit under both the Storage
  /// region and capacity_bytes_. Returns false when impossible. Requires
  /// mu_ held.
  bool MakeRoom(int64_t bytes);

  df::MemoryManager* memory_;
  const int64_t capacity_bytes_;
  obs::Counter* c_hits_ = nullptr;
  obs::Counter* c_misses_ = nullptr;
  obs::Counter* c_inserts_ = nullptr;
  obs::Counter* c_evictions_ = nullptr;
  obs::Counter* c_insert_overflows_ = nullptr;
  obs::Counter* c_corrupt_drops_ = nullptr;
  obs::Counter* c_blocks_verified_ = nullptr;
  obs::Counter* c_checksum_failures_ = nullptr;
  obs::Gauge* g_resident_bytes_ = nullptr;
  obs::Gauge* g_views_ = nullptr;

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  int64_t charged_total_ = 0;
  int64_t use_seq_ = 0;
};

}  // namespace vista::serve

#endif  // VISTA_SERVE_VIEW_CACHE_H_
