#ifndef VISTA_SERVE_SERVICE_H_
#define VISTA_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"
#include "dl/cnn.h"
#include "serve/view_cache.h"
#include "vista/real_executor.h"
#include "vista/roster.h"

namespace vista::serve {

/// One tenant query against the service: explore `workload.layers` of the
/// registered model `model` on the registered dataset `dataset`. The
/// workload's `cnn` tag is ignored — the registered model's architecture is
/// authoritative (custom/micro architectures serve fine).
struct ServeRequest {
  std::string tenant = "default";
  std::string model;
  std::string dataset;
  TransferWorkload workload;
  /// False turns the query into pure feature materialization (no
  /// downstream training / test metrics) — the feature-serving shape.
  bool train_models = true;
  /// Queueing deadline in seconds; 0 disables it. A query still waiting in
  /// the admission queue when its deadline lapses completes with
  /// kDeadlineExceeded instead of executing pointlessly — the client
  /// stopped waiting, so running it would only burn shared inference
  /// capacity. Checked at dequeue time (before any work starts); negative
  /// values are rejected as InvalidArgument at submission.
  double deadline_seconds = 0;
};

/// Outcome of one query. Failures of an individual query surface here as a
/// non-OK status; they never take the service down.
struct ServeResult {
  Status status = Status::OK();
  uint64_t query_id = 0;
  std::string tenant;
  /// True when the shared view cache supplied a usable materialized view
  /// (exact base layer or a shallower layer to resume from).
  bool cache_hit = false;
  /// Layer the query's base materialization resumed from: the base layer
  /// itself (exact hit, zero materialization compute), a shallower cached
  /// layer, or -1 (computed from raw image bytes).
  int resumed_from_layer = -1;
  /// CNN FLOPs this query actually executed: base materialization (after
  /// any cache resume) plus the plan's inference steps. Cross-query reuse
  /// shows up as this number shrinking for identical requests.
  int64_t inference_flops = 0;
  /// Seconds spent queued behind admission, and executing.
  double queue_seconds = 0;
  double exec_seconds = 0;
  /// The underlying executor result (per-layer metrics, stage seconds,
  /// spans). Note: stage_seconds/spans come from the engine's shared
  /// tracer, so under concurrency they may include overlapping queries.
  RealRunResult run;
};

/// Completion handle for an async submission. Wait() blocks until the
/// query finishes (or is abandoned at shutdown, surfacing an Unavailable
/// result).
class ServeTicket {
 public:
  const ServeResult& Wait();
  bool Done() const;

 private:
  friend class FeatureTransferService;
  void Fulfill(ServeResult result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  ServeResult result_;
};

struct ServiceConfig {
  /// Service executor threads. Each runs one query at a time end to end;
  /// intra-query parallelism still comes from the engine's pool
  /// (ParallelFor is caller-inclusive, so service threads participate).
  int num_workers = 2;
  /// Total queued queries across all tenants; submissions beyond this are
  /// shed with Unavailable (backpressure).
  int max_queue_depth = 64;
  /// Queued queries per tenant — one noisy tenant cannot occupy the whole
  /// queue.
  int max_queued_per_tenant = 16;
  /// Reject queries whose estimated per-partition inference footprint
  /// exceeds the User region's current headroom, instead of letting them
  /// crash mid-flight with ResourceExhausted.
  bool admission_memory_check = true;
  /// View-cache footprint cap below the Storage budget (-1: Storage
  /// region only). 0 disables cross-query reuse entirely.
  int64_t view_cache_bytes = -1;
  /// Physical configuration shared by every query's executor run.
  RealExecutorConfig executor;

  /// Rejects nonsensical service configs (zero workers, zero queue, a
  /// view-cache budget that cannot fit under the Storage budget it charges
  /// against) and validates the nested executor config.
  Status Validate(const df::MemoryBudgets& budgets) const;
};

/// Point-in-time service counters, read from the obs registry (the same
/// instruments ProfileJson exports).
struct ServiceStats {
  int64_t queries_submitted = 0;
  int64_t queries_completed = 0;
  int64_t queries_failed = 0;
  int64_t cache_hits = 0;
  int64_t admission_rejects = 0;
  /// Queries dropped at dequeue because their deadline lapsed in the queue.
  int64_t deadline_rejects = 0;
  int64_t view_cache_evictions = 0;
  int64_t view_cache_resident_bytes = 0;
  double p50_latency_ms = 0;
  double p99_latency_ms = 0;
};

/// Long-running multi-tenant feature-transfer service: Vista's Staged plan
/// generalized across queries (ROADMAP "millions of users" item).
///
/// Wraps RealExecutor behind a concurrent front-end: a bounded, per-tenant
/// fair query scheduler with admission control keyed off the engine's
/// MemoryManager budgets, plus a shared FeatureViewCache so partial
/// inference done for one query is never redone for another. Queries run
/// the Staged plan from a pre-materialized base layer: the service resolves
/// the base from the view cache (exact hit / resume / cold), executes, and
/// publishes the base view for future queries.
///
/// Lifecycle: construct over an engine, register models and datasets, then
/// Submit/Execute from any thread. Drain() stops admission and waits for
/// in-flight work; Shutdown() (also run by the destructor) drains and joins
/// the workers. The engine, models, and registry must outlive the service.
class FeatureTransferService {
 public:
  /// Fails (InvalidArgument) on a nonsensical config — the service
  /// validates once here so per-query validation never trips.
  static Result<std::unique_ptr<FeatureTransferService>> Create(
      df::Engine* engine, ServiceConfig config);

  ~FeatureTransferService();

  FeatureTransferService(const FeatureTransferService&) = delete;
  FeatureTransferService& operator=(const FeatureTransferService&) = delete;

  /// Registers `model` under `name`. The model must outlive the service.
  Status RegisterModel(const std::string& name, const dl::CnnModel* model);

  /// Registers a dataset (structured side + image side) under `name` and
  /// fingerprints the image table for view-cache keying. Tables are cheap
  /// shared-partition handles; records must be resident.
  Status RegisterDataset(const std::string& name, df::Table t_str,
                         df::Table t_img);

  /// Admission-controlled async submission. A non-OK status means the
  /// query was rejected (shed), not enqueued: Unavailable on queue/tenant
  /// backpressure, ResourceExhausted when memory headroom is gone,
  /// FailedPrecondition while draining, InvalidArgument for malformed
  /// requests. Rejections are counted in serve.admission_rejects.
  Result<std::shared_ptr<ServeTicket>> Submit(ServeRequest request);

  /// Callback form: `callback` runs on the worker thread that finished the
  /// query. Same admission semantics as Submit.
  Status Submit(ServeRequest request,
                std::function<void(const ServeResult&)> callback);

  /// Synchronous convenience: Submit + Wait. The admission rejection comes
  /// back as the error status.
  Result<ServeResult> Execute(ServeRequest request);

  /// Stops admission and blocks until every queued and in-flight query has
  /// completed. Subsequent submissions fail with FailedPrecondition;
  /// workers stay alive (tests drain between phases).
  void Drain();

  /// Re-opens admission after a Drain (no-op if not draining).
  void Resume();

  /// Drain + join workers. Idempotent; the destructor calls it.
  void Shutdown();

  FeatureViewCache& view_cache() { return *view_cache_; }
  df::Engine& engine() { return *engine_; }

  ServiceStats stats() const;

 private:
  struct DatasetEntry {
    df::Table t_str;
    df::Table t_img;
    uint64_t fingerprint = 0;
  };

  struct Query {
    ServeRequest request;
    const dl::CnnModel* model = nullptr;
    const DatasetEntry* dataset = nullptr;
    uint64_t id = 0;
    std::shared_ptr<ServeTicket> ticket;
    std::function<void(const ServeResult&)> callback;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  FeatureTransferService(df::Engine* engine, ServiceConfig config);

  /// Admission checks + enqueue; the shared tail of both Submit forms.
  Status Enqueue(std::unique_ptr<Query> query);

  /// Scheduler: pops the next query round-robin across tenants with
  /// non-empty queues. Requires mu_ held. Null when no work is queued.
  std::unique_ptr<Query> NextQuery();

  void WorkerLoop();

  /// Executes one query end to end (view-cache probe, base
  /// materialization, Staged plan run, view publication).
  ServeResult RunQuery(const Query& query);

  void Finish(Query* query, ServeResult result);

  df::Engine* engine_;
  const ServiceConfig config_;
  std::unique_ptr<FeatureViewCache> view_cache_;

  obs::Counter* c_queries_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_rejects_ = nullptr;
  obs::Counter* c_deadline_rejects_ = nullptr;
  obs::Histogram* h_query_ms_ = nullptr;
  obs::Histogram* h_queue_ms_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_active_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::map<std::string, const dl::CnnModel*> models_;
  std::map<std::string, DatasetEntry> datasets_;
  /// Per-tenant FIFO queues plus a stable round-robin cursor over tenant
  /// names: each scheduling decision serves the next tenant (in name
  /// order) after the last served one that has queued work.
  std::map<std::string, std::deque<std::unique_ptr<Query>>> queues_;
  std::string last_served_tenant_;
  int total_queued_ = 0;
  int in_flight_ = 0;
  bool draining_ = false;
  bool shutdown_ = false;
  uint64_t next_query_id_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace vista::serve

#endif  // VISTA_SERVE_SERVICE_H_
