#include "serve/view_cache.h"

#include <cstring>
#include <limits>

namespace vista::serve {

namespace {

/// splitmix64 finalizer — the same mixing the engine's partitioner uses.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashTensorShape(uint64_t h, const Tensor& t) {
  h = Mix64(h ^ static_cast<uint64_t>(t.shape().rank()));
  for (int i = 0; i < t.shape().rank(); ++i) {
    h = Mix64(h ^ static_cast<uint64_t>(t.shape().dim(i)));
  }
  return h;
}

uint64_t HashRecord(const df::Record& r) {
  uint64_t h = Mix64(static_cast<uint64_t>(r.id));
  h = Mix64(h ^ static_cast<uint64_t>(r.struct_features.size()));
  h = Mix64(h ^ static_cast<uint64_t>(r.images.size()));
  for (const Tensor& img : r.images) {
    h = HashTensorShape(h, img);
    // Sample a few leading pixels so equal-shaped but different images
    // fingerprint apart.
    const int64_t sample =
        img.num_elements() < 8 ? img.num_elements() : int64_t{8};
    for (int64_t i = 0; i < sample; ++i) {
      uint32_t bits = 0;
      std::memcpy(&bits, img.data() + i, sizeof(bits));
      h = Mix64(h ^ bits);
    }
  }
  h = Mix64(h ^ static_cast<uint64_t>(r.features.size()));
  return h;
}

}  // namespace

Result<uint64_t> DatasetFingerprint(const df::Table& table) {
  // Commutative combine (sum + xor) so the fingerprint is independent of
  // partitioning and record order within partitions.
  uint64_t sum = 0;
  uint64_t xr = 0;
  int64_t n = 0;
  for (const auto& p : table.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> records,
                           p->ReadRecords());
    for (const df::Record& r : records) {
      const uint64_t h = HashRecord(r);
      sum += h;
      xr ^= Mix64(h);
      ++n;
    }
  }
  return Mix64(sum ^ Mix64(xr) ^ static_cast<uint64_t>(n));
}

FeatureViewCache::FeatureViewCache(df::MemoryManager* memory,
                                   int64_t capacity_bytes,
                                   obs::Registry* metrics)
    : memory_(memory), capacity_bytes_(capacity_bytes) {
  if (metrics != nullptr) {
    c_hits_ = metrics->counter("serve.view_cache.hits");
    c_misses_ = metrics->counter("serve.view_cache.misses");
    c_inserts_ = metrics->counter("serve.view_cache.inserts");
    c_evictions_ = metrics->counter("serve.view_cache.evictions");
    c_insert_overflows_ = metrics->counter("serve.view_cache.overflows");
    c_corrupt_drops_ = metrics->counter("serve.view_cache.corrupt_drops");
    c_blocks_verified_ = metrics->counter("integrity.blocks_verified");
    c_checksum_failures_ = metrics->counter("integrity.checksum_failures");
    g_resident_bytes_ = metrics->gauge("serve.view_cache.resident_bytes");
    g_views_ = metrics->gauge("serve.view_cache.views");
  }
}

FeatureViewCache::~FeatureViewCache() { Clear(); }

std::optional<MaterializedView> FeatureViewCache::Lookup(
    const std::string& model, uint64_t fingerprint, int max_layer,
    dl::Precision precision) {
  const int prec = static_cast<int>(precision);
  std::lock_guard<std::mutex> lock(mu_);
  // Keys order by (model, fingerprint, precision, layer); the deepest
  // usable view is the last entry at or below (model, fingerprint,
  // precision, max_layer). An entry that fails verification is dropped and
  // the scan continues at the next-deepest candidate — resuming inference
  // from rotted features would silently corrupt every downstream layer.
  for (;;) {
    auto it =
        entries_.upper_bound(Key{model, fingerprint, prec, max_layer});
    if (it == entries_.begin()) break;
    --it;
    const auto& [key_model, key_fp, key_prec, key_layer] = it->first;
    if (key_model != model || key_fp != fingerprint || key_prec != prec) {
      break;
    }
    bool intact = true;
    for (const auto& p : it->second.view.table.partitions) {
      if (p->resident() &&
          p->format() == df::PersistenceFormat::kSerialized) {
        if (p->VerifyBlob().ok()) {
          if (c_blocks_verified_ != nullptr) c_blocks_verified_->Add(1);
        } else {
          if (c_checksum_failures_ != nullptr) c_checksum_failures_->Add(1);
          intact = false;
        }
      }
    }
    if (!intact) {
      memory_->Release(df::MemoryRegion::kStorage, it->second.charged_bytes);
      charged_total_ -= it->second.charged_bytes;
      if (c_corrupt_drops_ != nullptr) c_corrupt_drops_->Add(1);
      if (g_resident_bytes_ != nullptr) {
        g_resident_bytes_->Add(-it->second.charged_bytes);
      }
      entries_.erase(it);
      if (g_views_ != nullptr) {
        g_views_->Set(static_cast<int64_t>(entries_.size()));
      }
      continue;
    }
    it->second.last_use = ++use_seq_;
    if (c_hits_ != nullptr) c_hits_->Add(1);
    return it->second.view;
  }
  if (c_misses_ != nullptr) c_misses_->Add(1);
  return std::nullopt;
}

bool FeatureViewCache::MakeRoom(int64_t bytes) {
  for (;;) {
    const bool region_ok =
        memory_->Available(df::MemoryRegion::kStorage) >= bytes;
    const bool capacity_ok =
        capacity_bytes_ < 0 || charged_total_ + bytes <= capacity_bytes_;
    if (region_ok && capacity_ok) return true;
    if (entries_.empty()) return false;
    // Victim: lowest FLOPs-saved per byte; ties broken LRU.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.value() < victim->second.value() ||
          (it->second.value() == victim->second.value() &&
           it->second.last_use < victim->second.last_use)) {
        victim = it;
      }
    }
    memory_->Release(df::MemoryRegion::kStorage,
                     victim->second.charged_bytes);
    charged_total_ -= victim->second.charged_bytes;
    if (c_evictions_ != nullptr) c_evictions_->Add(1);
    if (g_resident_bytes_ != nullptr) {
      g_resident_bytes_->Add(-victim->second.charged_bytes);
    }
    entries_.erase(victim);
    if (g_views_ != nullptr) {
      g_views_->Set(static_cast<int64_t>(entries_.size()));
    }
  }
}

bool FeatureViewCache::Insert(const std::string& model, uint64_t fingerprint,
                              MaterializedView view, int64_t recompute_flops,
                              dl::Precision precision) {
  const int64_t bytes = view.table.memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{model, fingerprint, static_cast<int>(precision),
                view.layer};
  if (entries_.count(key) > 0) return true;  // Raced duplicate; keep first.
  if (!MakeRoom(bytes)) {
    if (c_insert_overflows_ != nullptr) c_insert_overflows_->Add(1);
    return false;
  }
  if (!memory_->TryReserve(df::MemoryRegion::kStorage, bytes).ok()) {
    // Lost a race against another Storage consumer between the headroom
    // check and the reserve; treat as overflow rather than failing.
    if (c_insert_overflows_ != nullptr) c_insert_overflows_->Add(1);
    return false;
  }
  Entry entry;
  entry.view = std::move(view);
  entry.charged_bytes = bytes;
  entry.recompute_flops = recompute_flops;
  entry.last_use = ++use_seq_;
  charged_total_ += bytes;
  entries_.emplace(key, std::move(entry));
  if (c_inserts_ != nullptr) c_inserts_->Add(1);
  if (g_resident_bytes_ != nullptr) g_resident_bytes_->Add(bytes);
  if (g_views_ != nullptr) {
    g_views_->Set(static_cast<int64_t>(entries_.size()));
  }
  return true;
}

void FeatureViewCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    memory_->Release(df::MemoryRegion::kStorage, entry.charged_bytes);
    if (g_resident_bytes_ != nullptr) {
      g_resident_bytes_->Add(-entry.charged_bytes);
    }
  }
  charged_total_ = 0;
  entries_.clear();
  if (g_views_ != nullptr) g_views_->Set(0);
}

int64_t FeatureViewCache::num_views() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t FeatureViewCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_total_;
}

}  // namespace vista::serve
