#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/stopwatch.h"
#include "obs/trace.h"
#include "vista/plans.h"

namespace vista::serve {

namespace {

/// Conservative estimate of the User-region scratch one query needs while
/// its inference UDFs run: the largest requested layer's per-record output,
/// batched per partition, across the partitions the engine can run at
/// once. Mirrors the charge RunInference actually reserves.
int64_t EstimateUserBytes(const dl::CnnArchitecture& arch,
                          const std::vector<int>& layers,
                          int64_t num_records, int num_partitions,
                          int parallelism) {
  int64_t per_record = 0;
  for (int l : layers) {
    per_record = std::max(per_record, arch.layer(l).output_shape.num_bytes());
  }
  const int64_t per_partition_records =
      (num_records + num_partitions - 1) / std::max(num_partitions, 1);
  const int64_t concurrent =
      std::min<int64_t>(parallelism, num_partitions);
  return per_record * per_partition_records * std::max<int64_t>(concurrent, 1);
}

}  // namespace

// ---------------------------------------------------------------- ticket

const ServeResult& ServeTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool ServeTicket::Done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ServeTicket::Fulfill(ServeResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

// ---------------------------------------------------------------- config

Status ServiceConfig::Validate(const df::MemoryBudgets& budgets) const {
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (max_queued_per_tenant < 1) {
    return Status::InvalidArgument("max_queued_per_tenant must be >= 1");
  }
  if (view_cache_bytes < -1) {
    return Status::InvalidArgument(
        "view_cache_bytes must be -1 (Storage-bounded) or >= 0");
  }
  if (budgets.storage >= 0 && view_cache_bytes > budgets.storage) {
    return Status::InvalidArgument(
        "view_cache_bytes exceeds the Storage budget it charges against "
        "(the budgets do not sum)");
  }
  return executor.Validate();
}

// --------------------------------------------------------------- service

Result<std::unique_ptr<FeatureTransferService>> FeatureTransferService::Create(
    df::Engine* engine, ServiceConfig config) {
  VISTA_RETURN_IF_ERROR(config.Validate(engine->config().budgets));
  return std::unique_ptr<FeatureTransferService>(
      new FeatureTransferService(engine, std::move(config)));
}

FeatureTransferService::FeatureTransferService(df::Engine* engine,
                                               ServiceConfig config)
    : engine_(engine), config_(std::move(config)) {
  obs::Registry& metrics = engine_->metrics();
  view_cache_ = std::make_unique<FeatureViewCache>(
      &engine_->memory(), config_.view_cache_bytes, &metrics);
  c_queries_ = metrics.counter("serve.queries");
  c_completed_ = metrics.counter("serve.queries_completed");
  c_failed_ = metrics.counter("serve.queries_failed");
  c_cache_hits_ = metrics.counter("serve.cache_hits");
  c_rejects_ = metrics.counter("serve.admission_rejects");
  c_deadline_rejects_ = metrics.counter("serve.deadline_rejects");
  h_query_ms_ = metrics.histogram("serve.query_ms");
  h_queue_ms_ = metrics.histogram("serve.queue_ms");
  g_queue_depth_ = metrics.gauge("serve.queue_depth");
  g_active_ = metrics.gauge("serve.active_queries");
  workers_.reserve(config_.num_workers);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

FeatureTransferService::~FeatureTransferService() { Shutdown(); }

Status FeatureTransferService::RegisterModel(const std::string& name,
                                             const dl::CnnModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (models_.count(name) > 0) {
    return Status::AlreadyExists("model '" + name + "' already registered");
  }
  models_.emplace(name, model);
  return Status::OK();
}

Status FeatureTransferService::RegisterDataset(const std::string& name,
                                               df::Table t_str,
                                               df::Table t_img) {
  VISTA_ASSIGN_OR_RETURN(const uint64_t fingerprint,
                         DatasetFingerprint(t_img));
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.count(name) > 0) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  DatasetEntry entry;
  entry.t_str = std::move(t_str);
  entry.t_img = std::move(t_img);
  entry.fingerprint = fingerprint;
  datasets_.emplace(name, std::move(entry));
  return Status::OK();
}

Result<std::shared_ptr<ServeTicket>> FeatureTransferService::Submit(
    ServeRequest request) {
  auto query = std::make_unique<Query>();
  query->request = std::move(request);
  query->ticket = std::make_shared<ServeTicket>();
  std::shared_ptr<ServeTicket> ticket = query->ticket;
  VISTA_RETURN_IF_ERROR(Enqueue(std::move(query)));
  return ticket;
}

Status FeatureTransferService::Submit(
    ServeRequest request, std::function<void(const ServeResult&)> callback) {
  if (!callback) {
    return Status::InvalidArgument("callback must not be empty");
  }
  auto query = std::make_unique<Query>();
  query->request = std::move(request);
  query->callback = std::move(callback);
  return Enqueue(std::move(query));
}

Result<ServeResult> FeatureTransferService::Execute(ServeRequest request) {
  VISTA_ASSIGN_OR_RETURN(std::shared_ptr<ServeTicket> ticket,
                         Submit(std::move(request)));
  ServeResult result = ticket->Wait();
  VISTA_RETURN_IF_ERROR(result.status);
  return result;
}

Status FeatureTransferService::Enqueue(std::unique_ptr<Query> query) {
  const ServeRequest& req = query->request;
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || draining_) {
    return Status::FailedPrecondition("service is draining");
  }
  // Request validation (client errors; not counted as shed load).
  auto model_it = models_.find(req.model);
  if (model_it == models_.end()) {
    return Status::NotFound("model '" + req.model + "' is not registered");
  }
  auto data_it = datasets_.find(req.dataset);
  if (data_it == datasets_.end()) {
    return Status::NotFound("dataset '" + req.dataset +
                            "' is not registered");
  }
  const dl::CnnArchitecture& arch = model_it->second->arch();
  const std::vector<int>& layers = req.workload.layers;
  if (layers.empty()) {
    return Status::InvalidArgument("workload requests no layers");
  }
  for (size_t i = 0; i < layers.size(); ++i) {
    if (layers[i] < 0 || layers[i] >= arch.num_layers()) {
      return Status::InvalidArgument("requested layer out of range");
    }
    if (i > 0 && layers[i] <= layers[i - 1]) {
      return Status::InvalidArgument(
          "workload layers must be strictly ascending");
    }
  }
  if (req.workload.training_iterations < 0) {
    return Status::InvalidArgument("training_iterations must be >= 0");
  }
  if (req.deadline_seconds < 0) {
    return Status::InvalidArgument("deadline_seconds must be >= 0");
  }

  // Backpressure: bounded total queue, bounded per-tenant share.
  if (total_queued_ >= config_.max_queue_depth) {
    c_rejects_->Add(1);
    return Status::Unavailable("query queue is full");
  }
  std::deque<std::unique_ptr<Query>>& tenant_queue = queues_[req.tenant];
  if (static_cast<int>(tenant_queue.size()) >=
      config_.max_queued_per_tenant) {
    c_rejects_->Add(1);
    return Status::Unavailable("tenant '" + req.tenant +
                               "' has reached its queue share");
  }

  // Shed when the User region's headroom cannot hold this query's
  // inference scratch — the alternative is admitting work destined for a
  // mid-flight ResourceExhausted crash.
  if (config_.admission_memory_check) {
    const int64_t needed = EstimateUserBytes(
        arch, layers, data_it->second.t_img.num_records(),
        config_.executor.num_partitions, engine_->parallelism());
    if (engine_->memory().Available(df::MemoryRegion::kUser) < needed) {
      c_rejects_->Add(1);
      return Status::ResourceExhausted(
          "User memory headroom below the query's estimated footprint");
    }
  }

  query->model = model_it->second;
  query->dataset = &data_it->second;
  query->id = next_query_id_++;
  query->enqueued_at = std::chrono::steady_clock::now();
  c_queries_->Add(1);
  tenant_queue.push_back(std::move(query));
  ++total_queued_;
  g_queue_depth_->Set(total_queued_);
  work_cv_.notify_one();
  return Status::OK();
}

std::unique_ptr<FeatureTransferService::Query>
FeatureTransferService::NextQuery() {
  if (total_queued_ == 0) return nullptr;
  // Round-robin across tenant names: first non-empty queue strictly after
  // the last served tenant, wrapping.
  auto take = [this](std::deque<std::unique_ptr<Query>>& queue,
                     const std::string& tenant) {
    std::unique_ptr<Query> q = std::move(queue.front());
    queue.pop_front();
    last_served_tenant_ = tenant;
    --total_queued_;
    g_queue_depth_->Set(total_queued_);
    return q;
  };
  for (auto it = queues_.upper_bound(last_served_tenant_);
       it != queues_.end(); ++it) {
    if (!it->second.empty()) return take(it->second, it->first);
  }
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (!it->second.empty()) return take(it->second, it->first);
  }
  return nullptr;
}

void FeatureTransferService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Query> query;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutdown_ || total_queued_ > 0; });
      if (shutdown_ && total_queued_ == 0) return;
      query = NextQuery();
      if (query == nullptr) continue;
      ++in_flight_;
      g_active_->Add(1);
    }
    const double queue_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      query->enqueued_at)
            .count();
    ServeResult result;
    const double deadline = query->request.deadline_seconds;
    if (deadline > 0 && queue_seconds > deadline) {
      // The client's deadline lapsed while the query sat in the queue:
      // executing it now would burn shared inference capacity on an answer
      // nobody is waiting for. Fail fast, before any work starts.
      result.query_id = query->id;
      result.tenant = query->request.tenant;
      result.status = Status::DeadlineExceeded(
          "queued for " + std::to_string(queue_seconds) +
          "s, past the request deadline of " + std::to_string(deadline) +
          "s");
      c_deadline_rejects_->Add(1);
    } else {
      result = RunQuery(*query);
    }
    result.queue_seconds = queue_seconds;
    Finish(query.get(), std::move(result));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      g_active_->Add(-1);
      if (total_queued_ == 0 && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

ServeResult FeatureTransferService::RunQuery(const Query& query) {
  ServeResult result;
  result.query_id = query.id;
  result.tenant = query.request.tenant;
  Stopwatch watch;
  obs::ScopedSpan span(&engine_->tracer(), "serve.query", "serve");

  const TransferWorkload& workload = query.request.workload;
  const int base_layer = workload.layers.front();
  const dl::CnnModel* model = query.model;
  const uint64_t fingerprint = query.dataset->fingerprint;
  const bool use_cache = config_.view_cache_bytes != 0;

  RealExecutor executor(engine_, model);
  RealExecutorConfig exec_config = config_.executor;
  exec_config.train_models = query.request.train_models;
  // The query's workload decides the inference precision; the cache below
  // keys on it, so int8 and fp32 queries over the same dataset never share
  // numerically different feature views.
  exec_config.precision = workload.precision;

  // Resolve the base layer: exact cached view, resume from a shallower
  // view, or cold from raw image bytes.
  int64_t materialize_flops = 0;
  df::Table base_table;
  std::optional<MaterializedView> view;
  if (use_cache) {
    view = view_cache_->Lookup(query.request.model, fingerprint, base_layer,
                               workload.precision);
  }
  if (view.has_value()) {
    result.cache_hit = true;
    result.resumed_from_layer = view->layer;
    c_cache_hits_->Add(1);
    if (view->layer == base_layer) {
      base_table = view->table;
    } else {
      obs::ScopedSpan mat_span(&engine_->tracer(), "serve.resume", "serve");
      // A cached view may have been partly evicted to spill by queries
      // served since it was published; hint its partitions back into
      // flight so the resume's partial inference reads overlap the first
      // partitions' GEMMs instead of stalling on cold disk.
      if (exec_config.prefetch_depth != 0) {
        engine_->PrefetchTable(view->table);
      }
      auto resumed =
          executor.MaterializeLayer(view->table, 0, view->layer, base_layer,
                                    exec_config, &materialize_flops);
      if (!resumed.ok()) {
        result.status = resumed.status();
        result.exec_seconds = watch.ElapsedSeconds();
        return result;
      }
      base_table = std::move(resumed).value();
    }
  } else {
    result.resumed_from_layer = -1;
    obs::ScopedSpan mat_span(&engine_->tracer(), "serve.materialize",
                             "serve");
    auto cold = executor.MaterializeLayer(query.dataset->t_img, -1, -1,
                                          base_layer, exec_config,
                                          &materialize_flops);
    if (!cold.ok()) {
      result.status = cold.status();
      result.exec_seconds = watch.ElapsedSeconds();
      return result;
    }
    base_table = std::move(cold).value();
  }

  // Publish the base view for future queries (any query of this model at a
  // base layer >= base_layer resumes from it). The benefit charged to the
  // entry is the full from-raw recompute it saves.
  if (use_cache &&
      !(view.has_value() && view->layer == base_layer)) {
    const int64_t recompute_flops =
        model->arch().layer(base_layer).cumulative_flops *
        base_table.num_records();
    view_cache_->Insert(query.request.model, fingerprint,
                        MaterializedView{base_table, base_layer},
                        recompute_flops, workload.precision);
  }

  // The Staged plan from the pre-materialized base — the paper's Appendix B
  // pipeline, with the base now shared across queries and tenants.
  auto plan = CompilePlan(LogicalPlan::kStaged, workload,
                          /*pre_materialized_base=*/true);
  if (!plan.ok()) {
    result.status = plan.status();
    result.exec_seconds = watch.ElapsedSeconds();
    return result;
  }
  auto run = executor.Run(*plan, workload, query.dataset->t_str, base_table,
                          exec_config);
  if (!run.ok()) {
    result.status = run.status();
  } else {
    result.run = std::move(run).value();
  }
  result.inference_flops = materialize_flops + result.run.inference_flops;
  result.exec_seconds = watch.ElapsedSeconds();
  return result;
}

void FeatureTransferService::Finish(Query* query, ServeResult result) {
  (result.status.ok() ? c_completed_ : c_failed_)->Add(1);
  h_queue_ms_->Record(result.queue_seconds * 1e3);
  h_query_ms_->Record((result.queue_seconds + result.exec_seconds) * 1e3);
  if (query->callback) {
    query->callback(result);
  }
  if (query->ticket != nullptr) {
    query->ticket->Fulfill(std::move(result));
  }
}

void FeatureTransferService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drain_cv_.wait(lock,
                 [this] { return total_queued_ == 0 && in_flight_ == 0; });
}

void FeatureTransferService::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!shutdown_) draining_ = false;
}

void FeatureTransferService::Shutdown() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

ServiceStats FeatureTransferService::stats() const {
  const obs::Registry& metrics = engine_->metrics();
  ServiceStats s;
  s.queries_submitted = c_queries_->value();
  s.queries_completed = c_completed_->value();
  s.queries_failed = c_failed_->value();
  s.cache_hits = c_cache_hits_->value();
  s.admission_rejects = c_rejects_->value();
  s.deadline_rejects = c_deadline_rejects_->value();
  s.p50_latency_ms = h_query_ms_->Quantile(0.5);
  s.p99_latency_ms = h_query_ms_->Quantile(0.99);
  // The view cache registers into the same registry; const access goes
  // through the snapshot interface.
  for (const obs::Counter* counter : metrics.counters()) {
    if (counter->name() == "serve.view_cache.evictions") {
      s.view_cache_evictions = counter->value();
    }
  }
  s.view_cache_resident_bytes = view_cache_->resident_bytes();
  return s;
}

}  // namespace vista::serve
