#ifndef VISTA_VISTA_REAL_EXECUTOR_H_
#define VISTA_VISTA_REAL_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"
#include "dl/cnn.h"
#include "obs/trace.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "vista/plans.h"
#include "vista/roster.h"

namespace vista {

/// Physical choices for a real (in-process) execution.
struct RealExecutorConfig {
  df::JoinStrategy join = df::JoinStrategy::kShuffleHash;
  df::PersistenceFormat persistence = df::PersistenceFormat::kDeserialized;
  int num_partitions = 8;
  /// Grid for the paper's conv-layer max pooling g_l (footnote 4).
  int pooling_grid = 2;
  /// Held-out fraction for test metrics (paper: 20%).
  double test_fraction = 0.2;
  /// Train downstream models and compute test metrics. Disable to measure
  /// pure materialization pipelines.
  bool train_models = true;
  ml::LogisticRegressionConfig lr;
  ml::MlpConfig mlp;
  ml::DecisionTreeConfig tree;
  /// Driver collect budget (-1 = unlimited).
  int64_t driver_memory_bytes = -1;
  /// How inference spends the engine's threads *within* one partition, on
  /// top of the engine's partition-level parallelism: one pool task per
  /// image (kInterImage, the throughput default) or pool-parallel GEMM row
  /// tiles inside each image (kIntraImage, better for tiny batches with
  /// huge layers). Interacts with the optimizer's cpu knob — see
  /// DESIGN.md, "Kernel layer".
  dl::CnnParallelism inference_parallelism = dl::CnnParallelism::kInterImage;
  /// Inference precision for every kInference step this executor runs.
  /// kInt8 routes conv/fc primitives through the quantized GEMM kernel and
  /// materializes features that are exactly 1/4 the fp32 bytes; it requires
  /// the model to have been calibrated (CnnModel::CalibrateInt8) — the
  /// model-aware Validate overload rejects the combination otherwise. Must
  /// match the precision the plan was compiled for (CompiledPlan::precision).
  dl::Precision precision = dl::Precision::kFp32;
  /// Read-ahead distance for spilled partitions, driving the engine's
  /// prefetch plane (the read-side mirror of the async spill writer):
  ///   0  — disabled (the default): every read is synchronous, exactly the
  ///        pre-prefetch executor.
  ///  -1  — compute-aware: each inference step picks its own depth from
  ///        the layer range's FLOPs-per-byte intensity (the same per-layer
  ///        FLOP figures metered into the "dl.flops.*" counters) — deeper
  ///        read-ahead for compute-heavy layers, a single double-buffered
  ///        block for I/O-bound stages — clamped so the buffered bytes
  ///        never exceed the Storage region's current headroom. See
  ///        ChoosePrefetchDepth.
  ///  >0  — fixed depth for every read-driven op.
  /// Any setting also enables next-step input prefetch between plan steps
  /// (the layer pipeline: step k's compute overlaps step k+1's reads).
  /// Results are bit-identical at every depth; only wall-clock changes.
  int prefetch_depth = 0;
  /// When a run fails with ResourceExhausted, automatically step the
  /// physical plan down the degradation ladder and re-run instead of
  /// surfacing the crash:
  ///   1. persistence: deserialized -> serialized (smaller Storage footprint)
  ///   2. join: broadcast -> shuffle (no replicated build table in Core)
  ///   3. logical plan: Lazy/Eager/... -> Staged (one layer live at a time)
  /// Steps taken are recorded in RealRunResult::degradations. This is the
  /// paper's reliability claim (Section 4.4, Figure 11) — "Vista never
  /// crashes where manual configs do" — as an executable behavior.
  bool auto_degrade = false;

  /// Rejects nonsensical configurations (zero partitions, out-of-range
  /// fractions or enums, non-positive training hyper-parameters,
  /// driver/memory budgets below the -1 "unlimited" sentinel) with
  /// InvalidArgument before they become undefined behavior downstream.
  /// Every executor entry point validates; long-running services validate
  /// once at construction.
  Status Validate() const;

  /// Model-aware validation: everything Validate() checks, plus precision
  /// combinations that are only decidable against the model — int8 with a
  /// model that has no calibration is rejected with a Status that names the
  /// fix (CnnModel::CalibrateInt8). Null `model` degrades to Validate().
  Status Validate(const dl::CnnModel* model) const;
};

/// Per-layer outcome of a feature-transfer run.
struct LayerRunResult {
  int layer_index = -1;
  std::string layer_name;
  /// Seconds spent on the partial inference that materialized this layer.
  double inference_seconds = 0;
  double train_seconds = 0;
  ml::BinaryMetrics test_metrics;
  double test_f1 = 0;
};

/// Outcome of executing a compiled plan end to end.
struct RealRunResult {
  std::vector<LayerRunResult> per_layer;
  double total_seconds = 0;
  /// Sum of CNN FLOPs actually executed (quantifies Lazy's redundancy).
  int64_t inference_flops = 0;
  /// Of those, the ops executed on the quantized int8 kernel (conv/fc
  /// primitives when the run's precision is int8; 0 for fp32 runs). The
  /// per-layer breakdown accrues into the "dl.int8_ops.*" counters, which
  /// EngineStats::dl_int8_ops mirrors.
  int64_t inference_int8_ops = 0;
  /// Process-wide kernel-scratch high-water mark (packed GEMM panels) at
  /// run end — a copy of engine_stats.scratch_peak_bytes hoisted up: the
  /// measured DL-execution Temp footprint to compare against
  /// SizeEstimates::conv_temp_bytes.
  int64_t scratch_peak_bytes = 0;
  df::EngineStats engine_stats;
  /// Degradation-ladder steps taken before the run completed (empty for a
  /// clean first-attempt run), e.g. "persistence: deserialized -> serialized".
  std::vector<std::string> degradations;
  /// Recovery counters for this executor's engine (retries, lineage
  /// recomputations, injected faults) plus the degradations taken above.
  RecoveryStats recovery;
  /// Verify-on-read outcomes for this executor's engine (blocks checked,
  /// checksum mismatches, torn writes, corruption-triggered recomputes) —
  /// a copy of engine_stats.integrity hoisted up for callers that only
  /// read the summary.
  IntegrityStats integrity;
  /// Wall seconds per pipeline stage ("read", "join", "inference",
  /// "persistence", "train"), aggregated from the stage spans below — the
  /// paper's Table 3 drill-down measured on the real executor.
  std::map<std::string, double> stage_seconds;
  /// Trace spans recorded during this run (the successful attempt only,
  /// when auto-degradation re-ran the plan). Feed to obs::ProfileJson or
  /// obs::ChromeTraceJson to export.
  std::vector<obs::Span> spans;
  /// Data-movement-plane timings from the engine's histograms: total
  /// wall-clock of shuffle-moving ops (Join/Repartition/Union) and of
  /// per-partition serialization inside Persist. Cumulative over the
  /// engine's lifetime, so across degraded re-runs on one engine these
  /// include all attempts.
  double shuffle_ms = 0;
  double serialize_ms = 0;
};

/// Executes compiled plans on the local dataflow engine with a real CNN —
/// the Spark-TF role. Feature outputs are bit-identical across logical
/// plans (the paper's Section 5.2 invariant), which the test suite checks.
class RealExecutor {
 public:
  /// `engine`, `model` must outlive the executor. `arch_for_flops` is the
  /// architecture used for FLOP accounting (the model's own arch).
  RealExecutor(df::Engine* engine, const dl::CnnModel* model);

  /// Runs `plan` over the two base tables. `t_img` must carry raw images,
  /// unless the plan was compiled with a pre-materialized base, in which
  /// case it must carry the base layer's tensors in TensorList slot 0.
  Result<RealRunResult> Run(const CompiledPlan& plan,
                            const TransferWorkload& workload,
                            const df::Table& t_str, const df::Table& t_img,
                            const RealExecutorConfig& config);

  /// Appendix B helper: materializes the bottom-most layer of `workload`
  /// from raw images into a table carrying that layer in slot 0.
  Result<df::Table> PreMaterializeBase(const TransferWorkload& workload,
                                       const df::Table& t_img,
                                       const RealExecutorConfig& config);

  /// Materializes `target_layer` into TensorList slot 0 of a new table:
  /// from raw images when `source_layer` < 0 (then `source_slot` is
  /// ignored), otherwise resuming partial inference from `input`'s slot
  /// `source_slot`, which must carry `source_layer`'s tensors. Passing
  /// target_layer == source_layer copies the source slot through without
  /// compute. This is the serving plane's resume primitive: a cached
  /// f̂_{1→l} view satisfies any query whose base layer l' >= l by running
  /// only f̂_{l→l'}. Per-record FLOPs actually executed accrue into
  /// `*flops`.
  Result<df::Table> MaterializeLayer(const df::Table& input, int source_slot,
                                     int source_layer, int target_layer,
                                     const RealExecutorConfig& config,
                                     int64_t* flops);

 private:
  struct TableState {
    df::Table table;
    /// Layer index carried in each TensorList slot.
    std::vector<int> slots;
    bool persisted = false;
  };

  /// One attempt at the plan (no degradation). Any table still persisted
  /// when the attempt ends — success or failure — is unpersisted, so a
  /// degraded re-run starts from clean engine storage.
  Result<RealRunResult> RunOnce(const CompiledPlan& plan,
                                const TransferWorkload& workload,
                                const df::Table& t_str,
                                const df::Table& t_img,
                                const RealExecutorConfig& config);

  /// Executes the plan's steps into `tables`/`run`.
  Status RunSteps(const CompiledPlan& plan, const TransferWorkload& workload,
                  const df::Table& t_str, const df::Table& t_img,
                  const RealExecutorConfig& config,
                  std::map<std::string, TableState>* tables,
                  RealRunResult* run);

  /// Runs one inference step over `input`, producing the requested layers.
  /// FLOPs executed accrue into `*flops`; the subset run on the quantized
  /// int8 kernel (0 under fp32) accrues into `*int8_ops`.
  Result<df::Table> RunInference(const PlanStep& step, const df::Table& input,
                                 const RealExecutorConfig& config,
                                 int64_t* flops, int64_t* int8_ops);

  Result<LayerRunResult> RunTrain(const PlanStep& step,
                                  const TransferWorkload& workload,
                                  const df::Table& input,
                                  const RealExecutorConfig& config);

  df::Engine* engine_;
  const dl::CnnModel* model_;
};

/// The feature extractor used for downstream training: label is
/// struct_features[0], features are [struct_features[1..], g(slot tensor)].
ml::FeatureExtractor MakeTransferExtractor(int feature_slot,
                                           int pooling_grid);

/// Compute-aware read-ahead distance for one inference step. Pure
/// arithmetic so tests can pin the policy:
///  - intensity = partition_flops / partition_bytes (FLOPs the step runs
///    per byte it must read). >= 512 FLOPs/B -> depth 4 (GEMM-bound: the
///    reader can run far ahead), >= 64 -> 2, else 1 (I/O-bound: classic
///    double buffering — one block ahead matches the transient footprint
///    the sync path already needs, so auto mode never goes below 1).
///  - clamped so depth * partition_bytes stays within
///    `storage_headroom_bytes` (never over-buffer past the MemoryManager
///    budget), and by `max_depth` (the engine's prefetch queue capacity).
int ChoosePrefetchDepth(int64_t partition_flops, int64_t partition_bytes,
                        int64_t storage_headroom_bytes, int max_depth);

}  // namespace vista

#endif  // VISTA_VISTA_REAL_EXECUTOR_H_
