#include "vista/plans.h"

#include <sstream>

namespace vista {

const char* LogicalPlanToString(LogicalPlan plan) {
  switch (plan) {
    case LogicalPlan::kLazy:
      return "Lazy/AJ";
    case LogicalPlan::kLazyReordered:
      return "Lazy/BJ";
    case LogicalPlan::kEager:
      return "Eager/AJ";
    case LogicalPlan::kEagerReordered:
      return "Eager/BJ";
    case LogicalPlan::kStaged:
      return "Staged/AJ";
    case LogicalPlan::kStagedReordered:
      return "Staged/BJ";
  }
  return "?";
}

std::string PlanStep::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kReadStruct:
      os << "ReadStruct -> " << output;
      break;
    case Kind::kReadImages:
      os << "ReadImages -> " << output;
      break;
    case Kind::kJoin:
      os << "Join(" << input << ", " << input2 << ") -> " << output;
      break;
    case Kind::kInference: {
      os << "Inference(" << input << ", from ";
      if (source_slot < 0) {
        os << "image";
      } else {
        os << "layer " << source_layer << " @slot " << source_slot;
      }
      os << ", produce {";
      for (size_t i = 0; i < produce_layers.size(); ++i) {
        if (i > 0) os << ", ";
        os << produce_layers[i];
      }
      os << "}) -> " << output;
      break;
    }
    case Kind::kTrain:
      os << "Train(" << input << ", layer " << train_layer << " @slot "
         << feature_slot << ")";
      break;
    case Kind::kPersist:
      os << "Persist(" << input << ")";
      break;
    case Kind::kRelease:
      os << "Release(" << input << ")";
      break;
  }
  return os.str();
}

std::string CompiledPlan::ToString() const {
  std::ostringstream os;
  os << LogicalPlanToString(logical);
  if (pre_materialized_base) os << " (pre-materialized base)";
  if (precision == dl::Precision::kInt8) {
    os << " [" << dl::PrecisionName(precision) << "]";
  }
  os << ":\n";
  for (const PlanStep& step : steps) {
    os << "  " << step.ToString() << "\n";
  }
  return os.str();
}

namespace {

PlanStep ReadStruct() {
  PlanStep s;
  s.kind = PlanStep::Kind::kReadStruct;
  s.output = "str";
  return s;
}

PlanStep ReadImages() {
  PlanStep s;
  s.kind = PlanStep::Kind::kReadImages;
  s.output = "img";
  return s;
}

PlanStep Join(std::string left, std::string right, std::string out) {
  PlanStep s;
  s.kind = PlanStep::Kind::kJoin;
  s.input = std::move(left);
  s.input2 = std::move(right);
  s.output = std::move(out);
  return s;
}

PlanStep Inference(std::string in, std::string out, int source_slot,
                   int source_layer, std::vector<int> produce) {
  PlanStep s;
  s.kind = PlanStep::Kind::kInference;
  s.input = std::move(in);
  s.output = std::move(out);
  s.source_slot = source_slot;
  s.source_layer = source_layer;
  s.produce_layers = std::move(produce);
  return s;
}

PlanStep Train(std::string in, int slot, int layer) {
  PlanStep s;
  s.kind = PlanStep::Kind::kTrain;
  s.input = std::move(in);
  s.feature_slot = slot;
  s.train_layer = layer;
  return s;
}

PlanStep Persist(std::string table) {
  PlanStep s;
  s.kind = PlanStep::Kind::kPersist;
  s.input = std::move(table);
  return s;
}

PlanStep Release(std::string table) {
  PlanStep s;
  s.kind = PlanStep::Kind::kRelease;
  s.input = std::move(table);
  return s;
}

}  // namespace

Result<CompiledPlan> CompilePlan(LogicalPlan plan,
                                 const TransferWorkload& workload,
                                 bool pre_materialized_base) {
  const std::vector<int>& layers = workload.layers;
  if (layers.empty()) {
    return Status::InvalidArgument("workload has no layers");
  }
  for (size_t i = 1; i < layers.size(); ++i) {
    if (layers[i] <= layers[i - 1]) {
      return Status::InvalidArgument(
          "workload layers must be strictly ascending");
    }
  }
  const int k = static_cast<int>(layers.size());

  // With a pre-materialized base, the "img" table already carries the
  // bottom-most layer's tensors in slot 0.
  const int base_slot = pre_materialized_base ? 0 : -1;
  const int base_layer = pre_materialized_base ? layers.front() : -1;

  CompiledPlan out;
  out.logical = plan;
  out.pre_materialized_base = pre_materialized_base;
  out.precision = workload.precision;
  auto& steps = out.steps;
  steps.push_back(ReadStruct());
  steps.push_back(ReadImages());

  auto table_name = [](const char* prefix, int i) {
    return std::string(prefix) + "_" + std::to_string(i);
  };

  switch (plan) {
    case LogicalPlan::kLazy: {
      for (int i = 0; i < k; ++i) {
        const std::string feat = table_name("feat", i);
        const std::string ti = table_name("t", i);
        steps.push_back(
            Inference("img", feat, base_slot, base_layer, {layers[i]}));
        steps.push_back(Join("str", feat, ti));
        steps.push_back(Persist(ti));
        steps.push_back(Release(feat));
        steps.push_back(Train(ti, 0, layers[i]));
        steps.push_back(Release(ti));
      }
      break;
    }
    case LogicalPlan::kLazyReordered: {
      steps.push_back(Join("str", "img", "base"));
      steps.push_back(Persist("base"));
      for (int i = 0; i < k; ++i) {
        const std::string ti = table_name("t", i);
        steps.push_back(
            Inference("base", ti, base_slot, base_layer, {layers[i]}));
        steps.push_back(Persist(ti));
        steps.push_back(Train(ti, 0, layers[i]));
        steps.push_back(Release(ti));
      }
      steps.push_back(Release("base"));
      break;
    }
    case LogicalPlan::kEager: {
      steps.push_back(
          Inference("img", "feats", base_slot, base_layer, layers));
      steps.push_back(Persist("feats"));
      steps.push_back(Join("str", "feats", "t_all"));
      steps.push_back(Persist("t_all"));
      steps.push_back(Release("feats"));
      for (int i = 0; i < k; ++i) {
        steps.push_back(Train("t_all", i, layers[i]));
      }
      steps.push_back(Release("t_all"));
      break;
    }
    case LogicalPlan::kEagerReordered: {
      steps.push_back(Join("str", "img", "base"));
      steps.push_back(
          Inference("base", "t_all", base_slot, base_layer, layers));
      steps.push_back(Persist("t_all"));
      steps.push_back(Release("base"));
      for (int i = 0; i < k; ++i) {
        steps.push_back(Train("t_all", i, layers[i]));
      }
      steps.push_back(Release("t_all"));
      break;
    }
    case LogicalPlan::kStaged: {
      // First hop: inference to the bottom-most layer, then the only join.
      steps.push_back(
          Inference("img", "feat_0", base_slot, base_layer, {layers[0]}));
      steps.push_back(Persist("feat_0"));
      steps.push_back(Join("str", "feat_0", "t_0"));
      steps.push_back(Persist("t_0"));
      steps.push_back(Release("feat_0"));
      steps.push_back(Train("t_0", 0, layers[0]));
      for (int i = 1; i < k; ++i) {
        const std::string prev = table_name("t", i - 1);
        const std::string ti = table_name("t", i);
        steps.push_back(Inference(prev, ti, 0, layers[i - 1], {layers[i]}));
        steps.push_back(Persist(ti));
        steps.push_back(Release(prev));
        steps.push_back(Train(ti, 0, layers[i]));
      }
      steps.push_back(Release(table_name("t", k - 1)));
      break;
    }
    case LogicalPlan::kStagedReordered: {
      steps.push_back(Join("str", "img", "base"));
      steps.push_back(Persist("base"));
      steps.push_back(
          Inference("base", "t_0", base_slot, base_layer, {layers[0]}));
      steps.push_back(Persist("t_0"));
      steps.push_back(Release("base"));
      steps.push_back(Train("t_0", 0, layers[0]));
      for (int i = 1; i < k; ++i) {
        const std::string prev = table_name("t", i - 1);
        const std::string ti = table_name("t", i);
        steps.push_back(Inference(prev, ti, 0, layers[i - 1], {layers[i]}));
        steps.push_back(Persist(ti));
        steps.push_back(Release(prev));
        steps.push_back(Train(ti, 0, layers[i]));
      }
      steps.push_back(Release(table_name("t", k - 1)));
      break;
    }
  }
  return out;
}

}  // namespace vista
