#include "vista/optimizer.h"

#include <algorithm>
#include <sstream>

namespace vista {

std::string OptimizerDecisions::ToString() const {
  std::ostringstream os;
  os << "cpu=" << cpu << " np=" << num_partitions
     << " join=" << df::JoinStrategyToString(join)
     << " pers=" << df::PersistenceFormatToString(persistence)
     << " mem{storage=" << FormatBytes(mem_storage)
     << ", user=" << FormatBytes(mem_user) << ", dl=" << FormatBytes(mem_dl)
     << "}";
  return os.str();
}

int64_t ComputeNumPartitions(int64_t s_single, int cpu, int num_nodes,
                             int64_t p_max) {
  const int64_t total_cores =
      static_cast<int64_t>(cpu) * static_cast<int64_t>(num_nodes);
  const int64_t denom = p_max * total_cores;
  const int64_t z = (s_single + denom - 1) / denom;  // ceil
  return std::max<int64_t>(1, z) * total_cores;
}

Result<OptimizerDecisions> OptimizeFeatureTransfer(
    const SystemEnv& env, const RosterEntry& entry,
    const TransferWorkload& workload, const DataStats& stats,
    const OptimizerParams& params) {
  VISTA_ASSIGN_OR_RETURN(
      SizeEstimates est,
      EstimateSizes(entry, workload, stats, params.alpha));
  const int64_t model_mem = EstimateModelMemoryBytes(entry, workload, stats);
  const int64_t f_ser = entry.memory.serialized_bytes;
  const int64_t f_mem = entry.memory.runtime_cpu_bytes;
  const int64_t f_mem_gpu = entry.memory.runtime_gpu_bytes;

  const int x_hi = std::min(env.cores_per_node, params.cpu_max) - 1;
  for (int x = x_hi; x >= 1; --x) {
    // Eq. 15: GPU memory bound, when GPUs are present.
    if (env.gpu_memory_bytes > 0) {
      const int64_t gpu_need =
          static_cast<int64_t>(x) *
          std::max(f_mem_gpu,
                   params.model_in_dl_memory ? model_mem : int64_t{0});
      if (gpu_need >= env.gpu_memory_bytes) continue;
    }

    // The partitioning basis is the peak per-thread UDF buffer blown up by
    // alpha: decoded inputs plus produced feature tensors (Section 4.1's
    // "buffers to read inputs, and to hold features created by CNN
    // inference").
    const int64_t udf_table_bytes = static_cast<int64_t>(
        params.alpha * static_cast<double>(stats.num_records) *
        static_cast<double>(est.udf_record_bytes));
    const int64_t np = ComputeNumPartitions(
        std::max(est.s_single, udf_table_bytes), x, env.num_nodes,
        params.p_max);
    const int64_t partition_bytes = (udf_table_bytes + np - 1) / np;

    // Eq. 11: DL Execution Memory, plus the Eq. 16 Temp term — each
    // inference thread holds the conv kernel's scratch on top of the
    // runtime footprint: packed GEMM panels under implicit GEMM, or the
    // full materialized im2col expansion under the legacy flag.
    const int64_t conv_temp = params.materialized_im2col
                                  ? est.conv_temp_im2col_bytes
                                  : est.conv_temp_bytes;
    int64_t mem_dl = static_cast<int64_t>(x) * f_mem;
    if (params.model_in_dl_memory) {
      mem_dl = std::max(mem_dl, static_cast<int64_t>(x) * model_mem);
    }
    mem_dl += static_cast<int64_t>(x) * conv_temp;

    const int64_t mem_worker =
        env.node_memory_bytes - params.mem_os_rsv - mem_dl;

    // Eq. 10: User memory. The serialized CNN is shared across the
    // worker's threads; per-thread UDF buffers scale with partition size
    // (alpha is already folded into partition_bytes). A 10% headroom
    // absorbs rounding between planning and execution.
    int64_t mem_user =
        f_ser + static_cast<int64_t>(1.1 * x *
                                     static_cast<double>(partition_bytes));
    if (!params.model_in_dl_memory) {
      mem_user = std::max(mem_user, static_cast<int64_t>(x) * model_mem);
    }

    // Eq. 12 feasibility: Storage gets the remainder and must be positive
    // beyond the Core requirement.
    if (mem_worker - mem_user > params.mem_core) {
      OptimizerDecisions d;
      d.cpu = x;
      d.num_partitions = np;
      d.mem_user = mem_user;
      d.mem_dl = mem_dl;
      d.mem_storage = mem_worker - mem_user - params.mem_core;
      d.join = est.t_str_bytes < params.b_max ? df::JoinStrategy::kBroadcast
                                              : df::JoinStrategy::kShuffleHash;
      // Conservative: if the peak adjacent pair of intermediate tables
      // cannot be storage-resident, spills are likely; use the serialized
      // format to shrink them (Section 4.3).
      const int64_t s_double_per_worker = est.s_double / env.num_nodes;
      d.persistence = d.mem_storage < s_double_per_worker
                          ? df::PersistenceFormat::kSerialized
                          : df::PersistenceFormat::kDeserialized;
      return d;
    }
  }
  return Status::ResourceExhausted(
      "no feasible configuration: System Memory too small for " +
      entry.arch.name() +
      " feature transfer (provision machines with more memory)");
}

}  // namespace vista
