#ifndef VISTA_VISTA_VISTA_H_
#define VISTA_VISTA_VISTA_H_

#include <memory>

#include "vista/estimator.h"
#include "vista/optimizer.h"
#include "vista/plans.h"
#include "vista/profiles.h"
#include "vista/real_executor.h"
#include "vista/roster.h"
#include "vista/sim_executor.h"

namespace vista {

/// The declarative entry point (Section 3.3): users state *what* to run —
/// the system environment, a roster CNN with the number of top layers to
/// explore, the downstream model, and data statistics — and Vista decides
/// *how*: it invokes the optimizer (Algorithm 1), fixes the Staged logical
/// plan (Section 4.2.1), and configures the PD/DL systems.
///
///   Vista::Options opt;
///   opt.cnn = dl::KnownCnn::kResNet50;
///   opt.num_layers = 5;
///   opt.data.num_records = 20000;
///   opt.data.num_struct_features = 130;
///   VISTA_ASSIGN_OR_RETURN(Vista vista, Vista::Create(opt));
///   auto result = vista.ExecuteSimulated(PdSystem::kSparkLike, node);
class Vista {
 public:
  struct Options {
    SystemEnv env;
    dl::KnownCnn cnn = dl::KnownCnn::kAlexNet;
    /// Explore the top `num_layers` logical layers of the CNN.
    int num_layers = 3;
    DownstreamModel model = DownstreamModel::kLogisticRegression;
    int training_iterations = 10;
    DataStats data;
    OptimizerParams optimizer;
  };

  /// Validates the options, resolves the CNN from the roster, and runs the
  /// optimizer. Fails (ResourceExhausted) when no feasible configuration
  /// exists — the paper's "notify the user to provision more memory" path.
  static Result<Vista> Create(const Options& options);

  const Options& options() const { return options_; }
  const RosterEntry& entry() const { return *entry_; }
  const TransferWorkload& workload() const { return workload_; }
  const OptimizerDecisions& decisions() const { return decisions_; }
  const SizeEstimates& estimates() const { return estimates_; }

  /// The plan Vista always uses: Staged with the join after the first
  /// inference hop (Staged/AJ; Section 4.2.1, validated in Section 5.3).
  Result<CompiledPlan> Plan() const;

  /// Runs the workload on the cluster simulator, with the system
  /// configured from the optimizer's decisions.
  Result<sim::SimResult> ExecuteSimulated(PdSystem pd,
                                          const sim::NodeResources& node,
                                          bool use_gpu = false) const;

  /// Runs the workload for real on a local engine with an instantiated
  /// (micro) CNN, using the optimizer's physical choices.
  Result<RealRunResult> ExecuteReal(df::Engine* engine,
                                    const dl::CnnModel* model,
                                    const df::Table& t_str,
                                    const df::Table& t_img,
                                    int num_partitions = 8) const;

  /// EXPLAIN for feature transfer: a human-readable report covering the
  /// size estimates (Eq. 16), the optimizer's decisions, the compiled
  /// Staged plan, and a predicted stage-by-stage timeline from the cluster
  /// simulator — what a DBA would ask the system before committing cluster
  /// hours.
  Result<std::string> Explain(
      PdSystem pd = PdSystem::kSparkLike,
      const sim::NodeResources& node = sim::NodeResources{}) const;

 private:
  Options options_;
  std::shared_ptr<Roster> roster_;
  const RosterEntry* entry_ = nullptr;
  TransferWorkload workload_;
  OptimizerDecisions decisions_;
  SizeEstimates estimates_;
};

}  // namespace vista

#endif  // VISTA_VISTA_VISTA_H_
