#ifndef VISTA_VISTA_PROFILES_H_
#define VISTA_VISTA_PROFILES_H_

#include <string>

#include "dataflow/engine.h"
#include "sim/cluster.h"
#include "vista/estimator.h"
#include "vista/optimizer.h"

namespace vista {

/// Which PD system the deployment emulates. The distinction matters for
/// the memory mapping (Figure 4): Spark keeps User/Core/Storage in one JVM
/// heap with dynamic borrowing and disk spills; Ignite keeps a small heap
/// for unified User+Core and puts Storage off-heap, and (as configured in
/// the paper's experiments) runs memory-only, so storage pressure crashes.
enum class PdSystem {
  kSparkLike,
  kIgniteLike,
};

const char* PdSystemToString(PdSystem system);

/// A complete system configuration for a simulated run: memory model plus
/// the parallelism/partitioning/physical choices.
struct SystemProfile {
  std::string name;
  PdSystem pd = PdSystem::kSparkLike;
  sim::WorkerMemoryModel memory;
  int64_t num_partitions = 200;
  df::JoinStrategy join = df::JoinStrategy::kShuffleHash;
  df::PersistenceFormat persistence = df::PersistenceFormat::kDeserialized;
};

/// The paper's baseline Spark configuration ("best practices": 29 GB JVM
/// heap, shuffle join, deserialized, default partitioning), with the given
/// worker parallelism (Lazy-1/5/7 use cpus = 1/5/7). The default partition
/// count follows HDFS file/block-based input splits, so it scales with the
/// dataset (pass the record count).
SystemProfile SparkDefaultProfile(const SystemEnv& env, int cpus,
                                  int64_t num_records = 20000);

/// The paper's baseline Ignite configuration (4 GB JVM heap, 25 GB
/// statically committed off-heap storage, memory-only, np = 1024).
SystemProfile IgniteDefaultProfile(const SystemEnv& env, int cpus);

/// A profile realizing the Vista optimizer's decisions on the given PD
/// system. On Ignite, Vista enables the disk-backed storage mode so that
/// estimated overflow degrades to spills instead of crashes (Section 3.2's
/// secondary-storage assumption).
SystemProfile VistaProfile(const SystemEnv& env, PdSystem pd,
                           const OptimizerDecisions& decisions,
                           const OptimizerParams& params = {});

/// A profile with explicitly apportioned memory regions for a given cpu
/// (used by the paper's strong baselines, Section 5.1: "we explicitly
/// apportion CNN Inference memory, Storage, User and Core Memory").
SystemProfile ExplicitProfile(const SystemEnv& env, PdSystem pd, int cpus,
                              int64_t dl_mem_per_thread, int64_t user_bytes,
                              int64_t num_partitions);

}  // namespace vista

#endif  // VISTA_VISTA_PROFILES_H_
