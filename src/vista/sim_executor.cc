#include "vista/sim_executor.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace vista {
namespace {

/// Per-record FLOPs of partial inference (from_layer, to_layer].
int64_t RangeFlops(const dl::CnnArchitecture& arch, int from_layer,
                   int to_layer) {
  const int64_t upto = arch.layer(to_layer).cumulative_flops;
  const int64_t before =
      from_layer < 0 ? 0 : arch.layer(from_layer).cumulative_flops;
  return upto - before;
}

/// Bookkeeping for a named table during stage generation.
struct TableInfo {
  std::vector<int> layers;
  bool has_struct = false;
  bool has_image = false;
  bool cached = false;
  int64_t cached_bytes = 0;
  /// For uncached distributed-file tables (pre-materialized feature
  /// files): bytes re-read from disk by every consuming stage.
  int64_t file_bytes = 0;
};

}  // namespace

int64_t SimExecutor::MaterializedLayerFileBytes(int layer,
                                                const DataStats& stats) const {
  const int64_t feature_bytes =
      entry_->arch.layer(layer).output_shape.num_elements() * 4;
  const int64_t sparse = static_cast<int64_t>(
      stats.feature_density * 2.0 * static_cast<double>(feature_bytes));
  return stats.num_records * (16 + std::min(feature_bytes, sparse));
}

Result<std::vector<sim::SimStage>> SimExecutor::BuildStages(
    const CompiledPlan& plan, const TransferWorkload& workload,
    const DataStats& stats, const SimExecutorConfig& config) {
  const dl::CnnArchitecture& arch = entry_->arch;
  const SystemProfile& profile = config.profile;
  const int64_t np = profile.num_partitions;
  const int64_t n = stats.num_records;
  const double alpha = config.alpha;
  const int64_t model_mem =
      EstimateModelMemoryBytes(*entry_, workload, stats);

  // --- Size helpers.
  const int64_t struct_payload = 16 + 4 * stats.num_struct_features;
  const int64_t t_str_bytes = n * struct_payload;
  const int64_t img_file_bytes = n * (16 + stats.avg_image_file_bytes);
  const int64_t img_tensor_record = arch.input_shape().num_bytes();

  auto layer_feature_bytes = [&](int l) {
    return arch.layer(l).output_shape.num_elements() * 4;
  };
  auto layer_ser_bytes = [&](int l) {
    const int64_t feat = layer_feature_bytes(l);
    return std::min(feat, static_cast<int64_t>(stats.feature_density * 2.0 *
                                               static_cast<double>(feat)));
  };
  // Deserialized (managed-object) table size.
  auto table_deser_bytes = [&](const TableInfo& info) {
    int64_t payload = 8;
    for (int l : info.layers) payload += 8 + layer_feature_bytes(l);
    int64_t bytes = static_cast<int64_t>(
        alpha * static_cast<double>(n) * static_cast<double>(payload));
    if (info.has_struct) bytes += t_str_bytes;
    if (info.has_image) bytes += img_file_bytes;
    return bytes;
  };
  auto table_ser_bytes = [&](const TableInfo& info) {
    int64_t payload = 8;
    for (int l : info.layers) payload += 8 + layer_ser_bytes(l);
    int64_t bytes = n * payload;
    if (info.has_struct) bytes += t_str_bytes;
    if (info.has_image) bytes += img_file_bytes;
    return bytes;
  };
  auto table_bytes_in_format = [&](const TableInfo& info) {
    return profile.persistence == df::PersistenceFormat::kSerialized
               ? table_ser_bytes(info)
               : table_deser_bytes(info);
  };

  std::map<std::string, TableInfo> tables;
  std::vector<sim::SimStage> stages;
  const int64_t f_ser = entry_->memory.serialized_bytes;
  const int64_t f_mem = entry_->memory.runtime_cpu_bytes;
  const int64_t f_gpu = entry_->memory.runtime_gpu_bytes;
  const int cpus = profile.memory.cpus;

  auto make_tasks = [&](double total_flops, int64_t total_disk_read,
                        int64_t total_disk_write, int64_t total_shuffle) {
    std::vector<sim::SimTask> tasks(static_cast<size_t>(np));
    for (auto& t : tasks) {
      t.flops = total_flops / static_cast<double>(np);
      t.disk_read_bytes = total_disk_read / np;
      t.disk_write_bytes = total_disk_write / np;
      t.shuffle_bytes = total_shuffle / np;
    }
    return tasks;
  };

  for (const PlanStep& step : plan.steps) {
    switch (step.kind) {
      case PlanStep::Kind::kReadStruct: {
        TableInfo info;
        info.has_struct = true;
        sim::SimStage stage;
        stage.name = "read:struct";
        stage.tasks = make_tasks(0, t_str_bytes, 0, 0);
        stage.cache_insert_bytes = t_str_bytes;
        info.cached = true;
        info.cached_bytes = t_str_bytes;
        tables[step.output] = info;
        stages.push_back(std::move(stage));
        break;
      }
      case PlanStep::Kind::kReadImages: {
        TableInfo info;
        info.has_image = !plan.pre_materialized_base;
        if (plan.pre_materialized_base) {
          // Pre-materialized feature files are far larger than raw images
          // and live on distributed storage; consumers stream them from
          // disk instead of caching them (Appendix B's IO-cost caveat).
          info.layers = {workload.layers.front()};
          info.file_bytes =
              MaterializedLayerFileBytes(workload.layers.front(), stats);
          tables[step.output] = info;
          break;
        }
        sim::SimStage stage;
        stage.name = "read:images";
        // Small-files metadata overhead; parallelizes sub-linearly.
        stage.fixed_seconds =
            static_cast<double>(n) * config.image_read_overhead_seconds /
            std::pow(static_cast<double>(config.env.num_nodes), 0.8);
        stage.tasks = make_tasks(0, img_file_bytes, 0, 0);
        stage.cache_insert_bytes = img_file_bytes;
        info.cached = true;
        info.cached_bytes = img_file_bytes;
        tables[step.output] = info;
        stages.push_back(std::move(stage));
        break;
      }
      case PlanStep::Kind::kJoin: {
        const TableInfo& left = tables[step.input];
        const TableInfo& right = tables[step.input2];
        TableInfo out;
        out.has_struct = left.has_struct || right.has_struct;
        out.has_image = left.has_image || right.has_image;
        out.layers = right.layers;

        const int64_t left_bytes = table_deser_bytes(left);
        const int64_t right_bytes = table_deser_bytes(right);
        sim::SimStage stage;
        stage.name = "join:" + step.output;
        stage.cache_read_bytes = (left.cached ? left.cached_bytes : 0) +
                                 (right.cached ? right.cached_bytes : 0);
        const int64_t file_reads = left.file_bytes + right.file_bytes;
        const double probe_flops = static_cast<double>(n) * 100.0;
        if (profile.join == df::JoinStrategy::kBroadcast) {
          const int64_t small_bytes = std::min(left_bytes, right_bytes);
          stage.tasks = make_tasks(probe_flops, file_reads, 0, 0);
          // Each worker pulls and holds a replica of the small table.
          stage.fixed_seconds = static_cast<double>(small_bytes) /
                                (config.node.network_mbps * 1e6);
          stage.core_mem_per_task = small_bytes / std::max(1, cpus);
        } else {
          // A shuffle-join task buffers its shuffle blocks from both sides
          // and builds a hash table on the smaller one — all Core memory.
          const int64_t shuffled = left_bytes + right_bytes;
          stage.tasks = make_tasks(probe_flops, file_reads, 0, shuffled);
          stage.core_mem_per_task = shuffled / np;
        }
        tables[step.output] = out;
        stages.push_back(std::move(stage));
        break;
      }
      case PlanStep::Kind::kInference: {
        const TableInfo& in = tables[step.input];
        TableInfo out;
        out.has_struct = in.has_struct;
        out.layers = step.produce_layers;

        int64_t per_record_flops = 0;
        if (!(step.produce_layers.size() == 1 &&
              step.produce_layers[0] == step.source_layer)) {
          per_record_flops =
              RangeFlops(arch, step.source_layer, step.produce_layers.back());
        }
        sim::SimStage stage;
        stage.name = "inference:" +
                     arch.layer(step.produce_layers.back()).name;
        stage.uses_dl = true;
        stage.dl_mem_per_thread = f_mem;
        stage.dl_gpu_mem_per_thread = f_gpu;
        stage.tasks =
            make_tasks(static_cast<double>(per_record_flops) *
                           static_cast<double>(n),
                       in.file_bytes, 0, 0);
        stage.cache_read_bytes = in.cached ? in.cached_bytes : 0;
        // Per-thread UDF buffers: decoded inputs plus produced features of
        // one partition, with the managed-object fudge factor (Eq. 10).
        int64_t in_record_bytes =
            step.source_slot < 0
                ? img_tensor_record
                : layer_feature_bytes(step.source_layer);
        int64_t out_record_bytes = 0;
        for (int l : step.produce_layers) {
          out_record_bytes += layer_feature_bytes(l);
        }
        stage.user_mem_per_task =
            f_ser / std::max(1, cpus) +
            static_cast<int64_t>(alpha * static_cast<double>(
                                             (in_record_bytes +
                                              out_record_bytes) *
                                             (n / np)));
        tables[step.output] = out;
        stages.push_back(std::move(stage));
        break;
      }
      case PlanStep::Kind::kPersist: {
        TableInfo& info = tables[step.input];
        if (info.cached) break;  // Base tables cached at read.
        sim::SimStage stage;
        stage.name = "persist:" + step.input;
        const int64_t bytes = table_bytes_in_format(info);
        if (profile.persistence == df::PersistenceFormat::kSerialized) {
          // Encoding cost: a few ops per raw byte.
          stage.tasks = make_tasks(
              3.0 * static_cast<double>(table_deser_bytes(info)), 0, 0, 0);
        }
        stage.cache_insert_bytes = bytes;
        info.cached = true;
        info.cached_bytes = bytes;
        stages.push_back(std::move(stage));
        break;
      }
      case PlanStep::Kind::kRelease: {
        auto it = tables.find(step.input);
        if (it == tables.end()) break;
        if (it->second.cached) {
          sim::SimStage stage;
          stage.name = "release:" + step.input;
          stage.cache_release_bytes = it->second.cached_bytes;
          stages.push_back(std::move(stage));
        }
        tables.erase(it);
        break;
      }
      case PlanStep::Kind::kTrain: {
        const TableInfo& info = tables[step.input];
        const int layer = step.train_layer;
        const int64_t dim = stats.num_struct_features +
                            entry_->arch.transfer_feature_count(layer);
        const int iters = workload.training_iterations;
        double per_record_per_iter = 0;
        bool model_is_dl = false;
        switch (workload.model) {
          case DownstreamModel::kLogisticRegression:
            per_record_per_iter = 6.0 * static_cast<double>(dim);
            break;
          case DownstreamModel::kMlp: {
            const double params = static_cast<double>(dim) * 1024 +
                                  1024.0 * 1024 + 1024;
            per_record_per_iter = 6.0 * params;
            model_is_dl = true;
            break;
          }
          case DownstreamModel::kDecisionTree:
            per_record_per_iter = 64.0 * static_cast<double>(dim) /
                                  static_cast<double>(iters);
            break;
        }
        // One-time pooling/flattening of the layer tensor (g_l).
        const double pooling_flops =
            2.0 * static_cast<double>(
                      arch.layer(layer).output_shape.num_elements()) *
            static_cast<double>(n);
        sim::SimStage stage;
        stage.name = "train:" + arch.layer(layer).name;
        stage.tasks = make_tasks(
            per_record_per_iter * static_cast<double>(n) * iters +
                pooling_flops,
            0, 0, 0);
        // Every iteration re-reads the cached feature table; spilled
        // fractions hit the disk each time.
        stage.cache_read_bytes =
            (info.cached ? info.cached_bytes : 0) * iters;
        if (model_is_dl) {
          // The DL-system-trained model lives in DL Execution Memory
          // (Eq. 11 case (b)); User memory only stages feature batches.
          stage.user_mem_per_task = MiB(64);
          stage.uses_dl = true;
          stage.dl_mem_per_thread = model_mem;
          stage.dl_gpu_mem_per_thread = model_mem;
        } else {
          stage.user_mem_per_task = model_mem;
        }
        stage.driver_collect_bytes = static_cast<int64_t>(dim) * 8 * iters;
        stages.push_back(std::move(stage));
        break;
      }
    }
  }
  return stages;
}

Result<sim::SimResult> SimExecutor::Execute(const CompiledPlan& plan,
                                            const TransferWorkload& workload,
                                            const DataStats& stats,
                                            const SimExecutorConfig& config) {
  VISTA_ASSIGN_OR_RETURN(std::vector<sim::SimStage> stages,
                         BuildStages(plan, workload, stats, config));
  sim::NodeResources node = config.node;
  sim::ClusterSim cluster(config.env.num_nodes, node, config.profile.memory,
                          config.use_gpu);
  return cluster.Run(stages);
}

Result<sim::SimResult> SimExecutor::SimulatePreMaterialization(
    const TransferWorkload& workload, const DataStats& stats,
    const SimExecutorConfig& config, int64_t* out_file_bytes) {
  const dl::CnnArchitecture& arch = entry_->arch;
  const int base_layer = workload.layers.front();
  const int64_t n = stats.num_records;
  const int64_t np = config.profile.num_partitions;
  const int64_t file_bytes = MaterializedLayerFileBytes(base_layer, stats);
  if (out_file_bytes != nullptr) *out_file_bytes = file_bytes;

  std::vector<sim::SimStage> stages;
  // Read raw images.
  {
    sim::SimStage stage;
    stage.name = "read:images";
    stage.fixed_seconds =
        static_cast<double>(n) * config.image_read_overhead_seconds /
        std::pow(static_cast<double>(config.env.num_nodes), 0.8);
    const int64_t img_bytes = n * (16 + stats.avg_image_file_bytes);
    stage.tasks.resize(static_cast<size_t>(np));
    for (auto& t : stage.tasks) t.disk_read_bytes = img_bytes / np;
    stages.push_back(std::move(stage));
  }
  // Inference to the base layer + write the serialized feature file.
  {
    sim::SimStage stage;
    stage.name = "materialize:" + arch.layer(base_layer).name;
    stage.uses_dl = true;
    stage.dl_mem_per_thread = entry_->memory.runtime_cpu_bytes;
    stage.dl_gpu_mem_per_thread = entry_->memory.runtime_gpu_bytes;
    const double flops =
        static_cast<double>(arch.layer(base_layer).cumulative_flops) *
        static_cast<double>(n);
    stage.tasks.resize(static_cast<size_t>(np));
    for (auto& t : stage.tasks) {
      t.flops = flops / static_cast<double>(np);
      t.disk_write_bytes = file_bytes / np;
    }
    stage.user_mem_per_task =
        entry_->memory.serialized_bytes /
            std::max(1, config.profile.memory.cpus) +
        static_cast<int64_t>(
            config.alpha *
            static_cast<double>(
                (arch.input_shape().num_bytes() +
                 arch.layer(base_layer).output_shape.num_bytes()) *
                (n / np)));
    stages.push_back(std::move(stage));
  }
  sim::ClusterSim cluster(config.env.num_nodes, config.node,
                          config.profile.memory, config.use_gpu);
  return cluster.Run(stages);
}

std::vector<obs::Span> SimResultSpans(const sim::SimResult& result) {
  std::vector<obs::Span> spans;
  spans.reserve(result.stages.size() * 6);
  int64_t next_id = 1;
  int64_t cursor_ns = 0;
  for (const sim::StageResult& stage : result.stages) {
    obs::Span s;
    s.name = stage.name;
    s.category = "stage";
    s.id = next_id++;
    s.start_ns = cursor_ns;
    s.end_ns = cursor_ns + static_cast<int64_t>(stage.seconds * 1e9);
    const struct {
      const char* name;
      double seconds;
    } components[] = {
        {"compute", stage.compute_seconds},
        {"disk", stage.disk_seconds},
        {"network", stage.network_seconds},
        {"spill", stage.spill_seconds},
        {"overhead", stage.overhead_seconds},
    };
    // Components are laid end to end inside the stage; the barrier model
    // makes them sequential anyway.
    int64_t child_cursor = s.start_ns;
    for (const auto& c : components) {
      if (c.seconds <= 0) continue;
      obs::Span child;
      child.name = c.name;
      child.category = "component";
      child.id = next_id++;
      child.parent_id = s.id;
      child.start_ns = child_cursor;
      child.end_ns = child_cursor + static_cast<int64_t>(c.seconds * 1e9);
      child_cursor = child.end_ns;
      spans.push_back(std::move(child));
    }
    cursor_ns = s.end_ns;
    spans.push_back(std::move(s));
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::Span& a, const obs::Span& b) {
              return a.start_ns < b.start_ns;
            });
  return spans;
}

}  // namespace vista
