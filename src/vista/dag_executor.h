#ifndef VISTA_VISTA_DAG_EXECUTOR_H_
#define VISTA_VISTA_DAG_EXECUTOR_H_

#include <vector>

#include "dl/dag.h"
#include "vista/sim_executor.h"

namespace vista {

/// Cluster-scale simulation of DAG feature transfer (the Section 5.4
/// extension): executes the generalized staged plan of dl/dag.h hop by
/// hop, tracking the retained frontier tables in Storage memory the way
/// the sequential executor tracks T_i.
struct DagSimSetup {
  SystemEnv env;
  sim::NodeResources node;
  SystemProfile profile;
  DataStats data;
  int training_iterations = 10;
  double alpha = kDefaultAlpha;
  /// Deployment memory footprint per DL-thread replica of the DAG model.
  int64_t model_runtime_bytes = MiB(256);
  int64_t model_serialized_bytes = MiB(64);
};

/// Frontier policy under simulation — the DAG ablation: the generalized
/// staged plan keeps only the minimal frontier; the naive alternative
/// keeps every computed node's table alive until the end.
enum class DagFrontierPolicy {
  kMinimalFrontier,
  kKeepEverything,
};

/// Simulates transferring features from the DAG nodes in `targets`.
Result<sim::SimResult> SimulateDagTransfer(
    const dl::DagArchitecture& arch, const std::vector<int>& targets,
    const DagSimSetup& setup,
    DagFrontierPolicy policy = DagFrontierPolicy::kMinimalFrontier);

}  // namespace vista

#endif  // VISTA_VISTA_DAG_EXECUTOR_H_
