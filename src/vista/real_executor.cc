#include "vista/real_executor.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/stopwatch.h"
#include "features/synthetic.h"
#include "obs/export.h"
#include "tensor/ops.h"
#include "vista/estimator.h"

namespace vista {

namespace {

/// FLOPs of partial inference (from_layer, to_layer] for one record.
int64_t RangeFlops(const dl::CnnArchitecture& arch, int from_layer,
                   int to_layer) {
  const int64_t upto = arch.layer(to_layer).cumulative_flops;
  const int64_t before =
      from_layer < 0 ? 0 : arch.layer(from_layer).cumulative_flops;
  return upto - before;
}

/// Ops of (from_layer, to_layer] that run on the quantized int8 kernel for
/// one record (the conv/fc subset of RangeFlops).
int64_t RangeInt8Ops(const dl::CnnModel& model, int from_layer,
                     int to_layer) {
  int64_t ops = 0;
  for (int l = std::max(from_layer, -1) + 1; l <= to_layer; ++l) {
    ops += model.layer_int8_ops(l);
  }
  return ops;
}

}  // namespace

Status RealExecutorConfig::Validate() const {
  if (num_partitions < 1) {
    return Status::InvalidArgument("num_partitions must be >= 1, got " +
                                   std::to_string(num_partitions));
  }
  if (pooling_grid < 1) {
    return Status::InvalidArgument("pooling_grid must be >= 1, got " +
                                   std::to_string(pooling_grid));
  }
  if (!(test_fraction >= 0.0 && test_fraction < 1.0)) {
    return Status::InvalidArgument(
        "test_fraction must be in [0, 1), got " +
        std::to_string(test_fraction));
  }
  if (driver_memory_bytes < -1) {
    return Status::InvalidArgument(
        "driver_memory_bytes must be -1 (unlimited) or >= 0");
  }
  const int join_raw = static_cast<int>(join);
  if (join_raw < static_cast<int>(df::JoinStrategy::kShuffleHash) ||
      join_raw > static_cast<int>(df::JoinStrategy::kBroadcast)) {
    return Status::InvalidArgument("join strategy out of range");
  }
  const int fmt_raw = static_cast<int>(persistence);
  if (fmt_raw < static_cast<int>(df::PersistenceFormat::kDeserialized) ||
      fmt_raw > static_cast<int>(df::PersistenceFormat::kSerialized)) {
    return Status::InvalidArgument("persistence format out of range");
  }
  const int par_raw = static_cast<int>(inference_parallelism);
  if (par_raw < static_cast<int>(dl::CnnParallelism::kInterImage) ||
      par_raw > static_cast<int>(dl::CnnParallelism::kIntraImage)) {
    return Status::InvalidArgument("inference_parallelism out of range");
  }
  const int prec_raw = static_cast<int>(precision);
  if (prec_raw < static_cast<int>(dl::Precision::kFp32) ||
      prec_raw > static_cast<int>(dl::Precision::kInt8)) {
    return Status::InvalidArgument("precision out of range");
  }
  if (prefetch_depth < -1 || prefetch_depth > 64) {
    return Status::InvalidArgument(
        "prefetch_depth must be -1 (compute-aware), 0 (off) or a fixed "
        "depth <= 64, got " +
        std::to_string(prefetch_depth));
  }
  if (train_models) {
    if (lr.iterations < 0 || mlp.iterations < 0) {
      return Status::InvalidArgument("training iterations must be >= 0");
    }
    if (lr.learning_rate <= 0.0 || mlp.learning_rate <= 0.0) {
      return Status::InvalidArgument("learning rates must be > 0");
    }
    if (lr.reg_lambda < 0.0) {
      return Status::InvalidArgument("lr.reg_lambda must be >= 0");
    }
    if (lr.elastic_net_alpha < 0.0 || lr.elastic_net_alpha > 1.0) {
      return Status::InvalidArgument(
          "lr.elastic_net_alpha must be in [0, 1]");
    }
    for (int64_t width : mlp.hidden_sizes) {
      if (width < 1) {
        return Status::InvalidArgument("mlp hidden sizes must be >= 1");
      }
    }
    if (tree.max_depth < 1 || tree.min_samples_leaf < 1 ||
        tree.num_thresholds < 1) {
      return Status::InvalidArgument(
          "decision tree config values must be >= 1");
    }
  }
  return Status::OK();
}

Status RealExecutorConfig::Validate(const dl::CnnModel* model) const {
  VISTA_RETURN_IF_ERROR(Validate());
  if (precision == dl::Precision::kInt8 && model != nullptr &&
      !model->has_int8_calibration()) {
    return Status::InvalidArgument(
        "int8 precision configured but model '" + model->arch().name() +
        "' has no int8 calibration — run CnnModel::CalibrateInt8 on a "
        "sample batch before executing int8 plans");
  }
  return Status::OK();
}

ml::FeatureExtractor MakeTransferExtractor(int feature_slot,
                                           int pooling_grid) {
  return [feature_slot, pooling_grid](const df::Record& r,
                                      std::vector<float>* x,
                                      float* label) -> Status {
    if (r.struct_features.empty()) {
      return Status::InvalidArgument("record has no structured features");
    }
    *label = r.struct_features[0];
    x->clear();
    x->insert(x->end(), r.struct_features.begin() + 1,
              r.struct_features.end());
    if (feature_slot >= 0) {
      if (feature_slot >= r.features.size()) {
        return Status::InvalidArgument(
            "record has no feature tensor in slot " +
            std::to_string(feature_slot));
      }
      VISTA_ASSIGN_OR_RETURN(
          Tensor g,
          dl::TransferFeaturize(r.features.at(feature_slot), pooling_grid));
      x->insert(x->end(), g.data(), g.data() + g.num_elements());
    }
    return Status::OK();
  };
}

int ChoosePrefetchDepth(int64_t partition_flops, int64_t partition_bytes,
                        int64_t storage_headroom_bytes, int max_depth) {
  if (max_depth < 1) return 0;
  if (partition_bytes <= 0) partition_bytes = 1;
  const int64_t intensity = partition_flops / partition_bytes;
  int depth = intensity >= 512 ? 4 : intensity >= 64 ? 2 : 1;
  // Never buffer past the Storage region's current headroom — but never
  // below 1 either: one read-ahead block is the same transient footprint
  // the synchronous read path already takes.
  if (storage_headroom_bytes >= 0) {
    const int64_t fit = storage_headroom_bytes / partition_bytes;
    depth = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(depth, fit)));
  }
  return std::min(depth, max_depth);
}

RealExecutor::RealExecutor(df::Engine* engine, const dl::CnnModel* model)
    : engine_(engine), model_(model) {}

Result<df::Table> RealExecutor::RunInference(const PlanStep& step,
                                             const df::Table& input,
                                             const RealExecutorConfig& config,
                                             int64_t* flops,
                                             int64_t* int8_ops) {
  const dl::CnnArchitecture& arch = model_->arch();
  const int source_layer = step.source_layer;
  const int source_slot = step.source_slot;
  const std::vector<int>& produce = step.produce_layers;
  if (produce.empty()) {
    return Status::InvalidArgument("inference step produces no layers");
  }

  // FLOP accounting (per record) for the whole chain, skipping the
  // pass-through case where the first produced layer is the source itself.
  int64_t per_record_flops = 0;
  if (!(produce.size() == 1 && produce[0] == source_layer)) {
    per_record_flops =
        RangeFlops(arch, std::max(source_layer, -1), produce.back());
    if (config.precision == dl::Precision::kInt8) {
      *int8_ops += RangeInt8Ops(*model_, source_layer, produce.back()) *
                   input.num_records();
    }
  }
  *flops += per_record_flops * input.num_records();

  // Inference threading: the engine already runs partitions in parallel;
  // within a partition the pool is spent per the config knob (one task per
  // image, or parallel GEMM row tiles inside each image). ParallelFor is
  // caller-inclusive, so this nesting cannot deadlock.
  dl::CnnOptions opts;
  opts.pool = engine_->pool();
  opts.parallelism = config.inference_parallelism;
  opts.precision = config.precision;

  df::MemoryManager& memory = engine_->memory();

  // Read-ahead distance for this step. Fixed depths pass straight through;
  // compute-aware mode (-1) sizes the distance from this layer range's
  // arithmetic intensity — the same per-layer FLOP figures the "dl.flops.*"
  // counters meter — over the bytes a spilled partition would have to come
  // back as, clamped by current Storage headroom so the read-ahead never
  // out-buffers the MemoryManager budget.
  int depth = config.prefetch_depth;
  if (depth < 0) {
    const int np = std::max(input.num_partitions(), 1);
    const int64_t partition_flops =
        per_record_flops * input.num_records() / np;
    int64_t partition_bytes = input.memory_bytes() / np;
    if (partition_bytes <= 0) {
      // Everything already spilled (resident footprint ~0): estimate from
      // the source representation's per-record tensor size.
      const int64_t per_record_bytes =
          source_layer < 0
              ? arch.input_shape().num_bytes()
              : arch.layer(source_layer).output_shape.num_bytes();
      partition_bytes =
          std::max<int64_t>(1, per_record_bytes * input.num_records() / np);
    }
    int64_t headroom = memory.Available(df::MemoryRegion::kStorage);
    if (headroom != INT64_MAX) {
      // The conv kernels' per-thread scratch (packed GEMM panels — Eq. 16
      // Temp) is real memory the Storage region cannot use while this
      // hop's layers run; subtract it so read-ahead depth reflects the
      // headroom the implicit-GEMM path actually leaves free.
      int64_t conv_temp = 0;
      for (int l = std::max(source_layer + 1, 0); l <= produce.back(); ++l) {
        conv_temp =
            std::max(conv_temp, ConvTempBytes(arch, l, config.precision));
      }
      headroom = std::max<int64_t>(
          0, headroom - conv_temp * engine_->parallelism());
    }
    depth = ChoosePrefetchDepth(
        partition_flops, partition_bytes,
        headroom == INT64_MAX ? -1 : headroom,
        std::max(engine_->config().prefetch_queue_capacity, 1));
  }
  return engine_->MapPartitions(
      input,
      [&, source_layer, source_slot, produce,
       opts](std::vector<df::Record> records)
          -> Result<std::vector<df::Record>> {
        // Per-partition feature buffer charge against User memory: the
        // produced tensors of every record in the partition are live at
        // once inside the UDF (the paper's crash scenario 2).
        int64_t buffer_bytes = 0;
        for (int l : produce) {
          buffer_bytes +=
              arch.layer(l).output_shape.num_bytes() *
              static_cast<int64_t>(records.size());
        }
        VISTA_RETURN_IF_ERROR(
            memory.TryReserve(df::MemoryRegion::kUser, buffer_bytes));
        auto release = [&memory, buffer_bytes] {
          memory.Release(df::MemoryRegion::kUser, buffer_bytes);
        };

        // Gather every record's in-flight tensors (raw images or the
        // source slot) once; the whole partition then advances together
        // through the layer chain as one batch per hop. Multi-image
        // records: each image flows through the chain independently and
        // per-layer outputs are aggregated element-wise (mean), the
        // multiple-images-per-record extension.
        std::vector<std::vector<Tensor>> currents(records.size());
        std::vector<df::Record> out(records.size());
        for (size_t ri = 0; ri < records.size(); ++ri) {
          df::Record& r = records[ri];
          if (source_slot < 0) {
            if (!r.has_image()) {
              release();
              return Status::InvalidArgument(
                  "inference from raw image but record has no image");
            }
            currents[ri] = r.images;
          } else {
            if (source_slot >= r.features.size()) {
              release();
              return Status::InvalidArgument(
                  "inference source slot missing in record");
            }
            currents[ri] = {r.features.at(source_slot)};
          }
          out[ri].id = r.id;
          out[ri].struct_features = r.struct_features;
        }

        int from = source_layer;
        for (int target : produce) {
          if (target == from) {
            // Pass-through (pre-materialized base layer).
            for (size_t ri = 0; ri < records.size(); ++ri) {
              out[ri].features.Append(currents[ri].front());
            }
            continue;
          }
          std::vector<Tensor> batch;
          for (std::vector<Tensor>& imgs : currents) {
            for (Tensor& t : imgs) batch.push_back(std::move(t));
          }
          auto run = model_->RunRangeBatch(batch, from + 1, target, opts);
          if (!run.ok()) {
            release();
            return run.status();
          }
          std::vector<Tensor> advanced = std::move(run).value();
          size_t at = 0;
          for (size_t ri = 0; ri < records.size(); ++ri) {
            for (Tensor& t : currents[ri]) t = std::move(advanced[at++]);
            Tensor aggregated = currents[ri].front();
            if (currents[ri].size() > 1) {
              aggregated = currents[ri].front().Clone();
              float* acc = aggregated.mutable_data();
              for (size_t i = 1; i < currents[ri].size(); ++i) {
                const float* src = currents[ri][i].data();
                for (int64_t j = 0; j < aggregated.num_elements(); ++j) {
                  acc[j] += src[j];
                }
              }
              const float inv =
                  1.0f / static_cast<float>(currents[ri].size());
              for (int64_t j = 0; j < aggregated.num_elements(); ++j) {
                acc[j] *= inv;
              }
            }
            out[ri].features.Append(aggregated);
          }
          from = target;
        }
        release();
        return out;
      },
      depth);
}

Result<LayerRunResult> RealExecutor::RunTrain(
    const PlanStep& step, const TransferWorkload& workload,
    const df::Table& input, const RealExecutorConfig& config) {
  LayerRunResult result;
  result.layer_index = step.train_layer;
  result.layer_name = model_->arch().layer(step.train_layer).name;
  if (!config.train_models) return result;

  Stopwatch watch;
  const auto extractor =
      MakeTransferExtractor(step.feature_slot, config.pooling_grid);
  const double test_fraction = config.test_fraction;

  // Deterministic train/test split by id hash.
  auto train_split = engine_->MapPartitions(
      input, [test_fraction](std::vector<df::Record> records)
                 -> Result<std::vector<df::Record>> {
        std::vector<df::Record> out;
        for (df::Record& r : records) {
          if (!feat::IsTestId(r.id, test_fraction)) {
            out.push_back(std::move(r));
          }
        }
        return out;
      });
  VISTA_RETURN_IF_ERROR(train_split.status());
  auto test_split = engine_->MapPartitions(
      input, [test_fraction](std::vector<df::Record> records)
                 -> Result<std::vector<df::Record>> {
        std::vector<df::Record> out;
        for (df::Record& r : records) {
          if (feat::IsTestId(r.id, test_fraction)) {
            out.push_back(std::move(r));
          }
        }
        return out;
      });
  VISTA_RETURN_IF_ERROR(test_split.status());

  // Train the configured downstream model and collect test predictions.
  std::function<int(const float*)> predict;
  switch (workload.model) {
    case DownstreamModel::kLogisticRegression: {
      ml::LogisticRegressionConfig lr = config.lr;
      lr.iterations = workload.training_iterations;
      VISTA_ASSIGN_OR_RETURN(
          ml::LogisticRegressionModel model,
          ml::TrainLogisticRegression(engine_, *train_split, extractor, lr));
      predict = [model = std::move(model)](const float* x) {
        return model.Predict(x);
      };
      break;
    }
    case DownstreamModel::kMlp: {
      ml::MlpConfig mlp = config.mlp;
      mlp.iterations = workload.training_iterations;
      VISTA_ASSIGN_OR_RETURN(ml::MlpModel model,
                             ml::TrainMlp(engine_, *train_split, extractor,
                                          mlp));
      predict = [model = std::move(model)](const float* x) {
        return model.Predict(x);
      };
      break;
    }
    case DownstreamModel::kDecisionTree: {
      VISTA_ASSIGN_OR_RETURN(
          ml::DecisionTreeModel model,
          ml::TrainDecisionTree(engine_, *train_split, extractor,
                                config.tree));
      predict = [model = std::move(model)](const float* x) {
        return model.Predict(x);
      };
      break;
    }
  }

  // Evaluate on the held-out split.
  std::mutex metrics_mu;
  ml::BinaryMetrics metrics;
  auto eval = engine_->MapPartitions(
      *test_split,
      [&](std::vector<df::Record> records)
          -> Result<std::vector<df::Record>> {
        ml::BinaryMetrics local;
        std::vector<float> x;
        float label = 0;
        for (const df::Record& r : records) {
          VISTA_RETURN_IF_ERROR(extractor(r, &x, &label));
          local.Add(predict(x.data()), label > 0.5f ? 1 : 0);
        }
        std::lock_guard<std::mutex> lock(metrics_mu);
        metrics.true_positives += local.true_positives;
        metrics.false_positives += local.false_positives;
        metrics.true_negatives += local.true_negatives;
        metrics.false_negatives += local.false_negatives;
        return std::vector<df::Record>{};
      });
  VISTA_RETURN_IF_ERROR(eval.status());

  result.train_seconds = watch.ElapsedSeconds();
  result.test_metrics = metrics;
  result.test_f1 = metrics.F1();
  return result;
}

Status RealExecutor::RunSteps(const CompiledPlan& plan,
                              const TransferWorkload& workload,
                              const df::Table& t_str, const df::Table& t_img,
                              const RealExecutorConfig& config,
                              std::map<std::string, TableState>* tables_ptr,
                              RealRunResult* run_ptr) {
  std::map<std::string, TableState>& tables = *tables_ptr;
  RealRunResult& run = *run_ptr;

  // Layer pipeline: while step k runs, hint the engine to read step k+1's
  // spilled input partitions in the background. Only tables that already
  // exist are hinted (the next step's input is often the current step's
  // output, which cannot be read ahead of its own production). Hints are
  // fire-and-forget — results and fault accounting are identical with or
  // without them.
  const auto prefetch_step_inputs = [&](size_t next) {
    if (config.prefetch_depth == 0 || next >= plan.steps.size()) return;
    const PlanStep& n = plan.steps[next];
    for (const std::string* name : {&n.input, &n.input2}) {
      if (name->empty()) continue;
      auto it = tables.find(*name);
      if (it != tables.end()) engine_->PrefetchTable(it->second.table);
    }
  };

  for (size_t si = 0; si < plan.steps.size(); ++si) {
    const PlanStep& step = plan.steps[si];
    prefetch_step_inputs(si + 1);
    switch (step.kind) {
      case PlanStep::Kind::kReadStruct: {
        obs::ScopedSpan span(&engine_->tracer(), "read", "stage");
        tables[step.output] = TableState{t_str, {}, false};
        break;
      }
      case PlanStep::Kind::kReadImages: {
        obs::ScopedSpan span(&engine_->tracer(), "read", "stage");
        TableState state;
        state.table = t_img;
        if (plan.pre_materialized_base) {
          state.slots = {workload.layers.front()};
        }
        tables[step.output] = std::move(state);
        break;
      }
      case PlanStep::Kind::kJoin: {
        auto left = tables.find(step.input);
        auto right = tables.find(step.input2);
        if (left == tables.end() || right == tables.end()) {
          return Status::Internal("join references unknown table");
        }
        obs::ScopedSpan span(&engine_->tracer(), "join", "stage");
        VISTA_ASSIGN_OR_RETURN(
            df::Table joined,
            engine_->Join(left->second.table, right->second.table,
                          config.join, config.num_partitions));
        TableState state;
        state.table = std::move(joined);
        state.slots = right->second.slots;  // Features come from the right.
        tables[step.output] = std::move(state);
        break;
      }
      case PlanStep::Kind::kInference: {
        auto in = tables.find(step.input);
        if (in == tables.end()) {
          return Status::Internal("inference references unknown table");
        }
        obs::ScopedSpan span(&engine_->tracer(), "inference", "stage");
        Stopwatch watch;
        int64_t flops = 0;
        int64_t int8_ops = 0;
        VISTA_ASSIGN_OR_RETURN(
            df::Table produced,
            RunInference(step, in->second.table, config, &flops, &int8_ops));
        run.inference_flops += flops;
        run.inference_int8_ops += int8_ops;
        // Attribute inference time to the layers being produced.
        const double seconds = watch.ElapsedSeconds();
        for (int l : step.produce_layers) {
          bool found = false;
          for (LayerRunResult& lr : run.per_layer) {
            if (lr.layer_index == l) found = true;
          }
          if (!found) {
            LayerRunResult lr;
            lr.layer_index = l;
            lr.layer_name = model_->arch().layer(l).name;
            lr.inference_seconds =
                seconds / static_cast<double>(step.produce_layers.size());
            run.per_layer.push_back(std::move(lr));
          }
        }
        TableState state;
        state.table = std::move(produced);
        state.slots = step.produce_layers;
        tables[step.output] = std::move(state);
        break;
      }
      case PlanStep::Kind::kTrain: {
        auto in = tables.find(step.input);
        if (in == tables.end()) {
          return Status::Internal("train references unknown table");
        }
        obs::ScopedSpan span(&engine_->tracer(), "train", "stage");
        VISTA_ASSIGN_OR_RETURN(
            LayerRunResult lr,
            RunTrain(step, workload, in->second.table, config));
        // Merge with the inference-time entry for this layer.
        bool merged = false;
        for (LayerRunResult& existing : run.per_layer) {
          if (existing.layer_index == lr.layer_index) {
            existing.train_seconds = lr.train_seconds;
            existing.test_metrics = lr.test_metrics;
            existing.test_f1 = lr.test_f1;
            merged = true;
            break;
          }
        }
        if (!merged) run.per_layer.push_back(std::move(lr));
        break;
      }
      case PlanStep::Kind::kPersist: {
        auto in = tables.find(step.input);
        if (in == tables.end()) {
          return Status::Internal("persist references unknown table");
        }
        obs::ScopedSpan span(&engine_->tracer(), "persistence", "stage");
        // Mark before persisting: a Persist that fails partway leaves some
        // partitions in the cache, and RunOnce's cleanup must release them
        // (Unpersist is a no-op for partitions that never made it in).
        in->second.persisted = true;
        VISTA_RETURN_IF_ERROR(
            engine_->Persist(&in->second.table, config.persistence));
        break;
      }
      case PlanStep::Kind::kRelease: {
        auto in = tables.find(step.input);
        if (in == tables.end()) break;
        if (in->second.persisted) {
          engine_->Unpersist(&in->second.table);
        }
        tables.erase(in);
        break;
      }
    }
  }
  return Status::OK();
}

Result<RealRunResult> RealExecutor::RunOnce(const CompiledPlan& plan,
                                            const TransferWorkload& workload,
                                            const df::Table& t_str,
                                            const df::Table& t_img,
                                            const RealExecutorConfig& config) {
  Stopwatch total_watch;
  RealRunResult run;
  std::map<std::string, TableState> tables;
  // Slice this attempt's spans out of the (possibly shared) collector.
  const size_t span_mark = engine_->tracer().size();
  Status st = RunSteps(plan, workload, t_str, t_img, config, &tables, &run);
  // Unpersist whatever the attempt left in managed storage — on failure so
  // a degraded re-run starts from clean Storage memory, on success so
  // back-to-back runs on one engine don't accumulate pressure.
  for (auto& [name, state] : tables) {
    if (state.persisted) engine_->Unpersist(&state.table);
  }
  VISTA_RETURN_IF_ERROR(st);

  // Order per-layer results by layer index for stable reporting.
  std::sort(run.per_layer.begin(), run.per_layer.end(),
            [](const LayerRunResult& a, const LayerRunResult& b) {
              return a.layer_index < b.layer_index;
            });
  run.total_seconds = total_watch.ElapsedSeconds();
  run.engine_stats = engine_->stats();
  run.scratch_peak_bytes = run.engine_stats.scratch_peak_bytes;
  run.recovery = run.engine_stats.recovery;
  run.integrity = run.engine_stats.integrity;
  run.shuffle_ms = engine_->metrics().histogram("engine.shuffle_ms")->sum();
  run.serialize_ms =
      engine_->metrics().histogram("engine.serialize_ms")->sum();
  run.spans = engine_->tracer().SpansSince(span_mark);
  run.stage_seconds = obs::AggregateSpanSeconds(run.spans, "stage");
  return run;
}

Result<RealRunResult> RealExecutor::Run(const CompiledPlan& plan,
                                        const TransferWorkload& workload,
                                        const df::Table& t_str,
                                        const df::Table& t_img,
                                        const RealExecutorConfig& config) {
  VISTA_RETURN_IF_ERROR(config.Validate(model_));
  if (plan.precision != config.precision) {
    return Status::InvalidArgument(
        std::string("plan was compiled for ") +
        dl::PrecisionName(plan.precision) +
        " but the executor is configured for " +
        dl::PrecisionName(config.precision) +
        " — recompile the plan or align RealExecutorConfig::precision");
  }
  if (!config.auto_degrade) {
    return RunOnce(plan, workload, t_str, t_img, config);
  }

  // Degradation ladder (Section 4.4 as behavior): after a ResourceExhausted
  // crash, step down to the next-cheaper physical choice and re-run. Every
  // rung trades speed for a strictly smaller memory footprint, and the
  // Staged plan is the paper's most-reliable endpoint, so the ladder either
  // completes or proves that no configuration fits the budgets.
  RealExecutorConfig cfg = config;
  CompiledPlan current = plan;
  std::vector<std::string> degradations;
  for (;;) {
    auto result = RunOnce(current, workload, t_str, t_img, cfg);
    if (result.ok()) {
      result->degradations = degradations;
      result->recovery.degradations =
          static_cast<int64_t>(degradations.size());
      return result;
    }
    if (!result.status().IsResourceExhausted()) return result;
    if (cfg.persistence == df::PersistenceFormat::kDeserialized) {
      cfg.persistence = df::PersistenceFormat::kSerialized;
      degradations.push_back("persistence: deserialized -> serialized");
      continue;
    }
    if (cfg.join == df::JoinStrategy::kBroadcast) {
      cfg.join = df::JoinStrategy::kShuffleHash;
      degradations.push_back("join: broadcast -> shuffle");
      continue;
    }
    if (current.logical != LogicalPlan::kStaged) {
      auto staged = CompilePlan(LogicalPlan::kStaged, workload,
                                current.pre_materialized_base);
      if (staged.ok()) {
        degradations.push_back(std::string("plan: ") +
                               LogicalPlanToString(current.logical) +
                               " -> Staged");
        current = std::move(staged).value();
        continue;
      }
    }
    return result;  // Ladder exhausted: genuinely under-provisioned.
  }
}

Result<df::Table> RealExecutor::PreMaterializeBase(
    const TransferWorkload& workload, const df::Table& t_img,
    const RealExecutorConfig& config) {
  int64_t flops = 0;
  return MaterializeLayer(t_img, -1, -1, workload.layers.front(), config,
                          &flops);
}

Result<df::Table> RealExecutor::MaterializeLayer(
    const df::Table& input, int source_slot, int source_layer,
    int target_layer, const RealExecutorConfig& config, int64_t* flops) {
  VISTA_RETURN_IF_ERROR(config.Validate(model_));
  if (target_layer < 0 || target_layer >= model_->arch().num_layers()) {
    return Status::InvalidArgument("target layer out of range");
  }
  if (source_layer >= 0 && source_layer > target_layer) {
    return Status::InvalidArgument(
        "cannot materialize below the source layer (inference only runs "
        "forward)");
  }
  PlanStep step;
  step.kind = PlanStep::Kind::kInference;
  if (source_layer < 0) {
    step.source_slot = -1;
    step.source_layer = -1;
  } else {
    step.source_slot = source_slot;
    step.source_layer = source_layer;
  }
  step.produce_layers = {target_layer};
  int64_t int8_ops = 0;
  return RunInference(step, input, config, flops, &int8_ops);
}

}  // namespace vista
