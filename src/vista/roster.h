#ifndef VISTA_VISTA_ROSTER_H_
#define VISTA_VISTA_ROSTER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dl/cnn.h"
#include "dl/model_zoo.h"

namespace vista {

/// One CNN in Vista's roster: the architecture (exact layer statistics)
/// plus deployment memory footprints. Vista consults the roster instead of
/// asking users for CNN internals (Section 3.3). Custom (registered)
/// entries have no KnownCnn tag and are addressed by name.
struct RosterEntry {
  std::optional<dl::KnownCnn> cnn;
  dl::CnnArchitecture arch;
  dl::CnnMemoryStats memory;

  const std::string& name() const { return arch.name(); }
};

/// The roster of supported CNNs with cached architectures. Beyond the
/// built-in trio, arbitrary architectures can be registered (e.g. parsed
/// from the model-spec format, dl/model_parser.h) — the extension the
/// paper leaves to future work.
class Roster {
 public:
  /// Builds the default roster (AlexNet, VGG16, ResNet50).
  static Result<Roster> Default();

  /// Registers a custom architecture with its deployment memory stats.
  /// If `memory.runtime_cpu_bytes` is zero, a conservative footprint is
  /// derived from the architecture (weights + the largest layer's
  /// activations, doubled for workspace).
  Status Register(dl::CnnArchitecture arch, dl::CnnMemoryStats memory = {});

  Result<const RosterEntry*> Lookup(dl::KnownCnn cnn) const;
  /// Finds an entry by architecture name (works for built-ins and customs).
  Result<const RosterEntry*> LookupByName(const std::string& name) const;
  const std::vector<RosterEntry>& entries() const { return entries_; }

 private:
  std::vector<RosterEntry> entries_;
};

/// The declarative statement of a feature transfer workload
/// (Section 3.2): CNN f, layer indices L, and the downstream model M.
enum class DownstreamModel {
  kLogisticRegression,
  kMlp,
  kDecisionTree,
};

const char* DownstreamModelToString(DownstreamModel model);

struct TransferWorkload {
  dl::KnownCnn cnn = dl::KnownCnn::kAlexNet;
  /// Logical layer indices of interest, ascending (bottom-most first).
  std::vector<int> layers;
  DownstreamModel model = DownstreamModel::kLogisticRegression;
  int training_iterations = 10;
  /// Inference precision for the transfer: int8 runs the quantized kernel
  /// path and shrinks every materialized intermediate 4x, which the size
  /// estimator and optimizer account for (it can flip plan decisions).
  dl::Precision precision = dl::Precision::kFp32;

  /// Builds the workload for "explore the top |L| layers of f" — the
  /// paper's API shape.
  static Result<TransferWorkload> TopLayers(const Roster& roster,
                                            dl::KnownCnn cnn, int num_layers,
                                            DownstreamModel model =
                                                DownstreamModel::kLogisticRegression);
};

/// Statistics of the input data the user registers with Vista
/// (Table 1(A): Tstr, Timg plus "statistics about the data").
struct DataStats {
  int64_t num_records = 0;
  /// Structured features per record, including the label.
  int64_t num_struct_features = 0;
  /// Average compressed (on-disk) size of one raw image, e.g. JPEG.
  int64_t avg_image_file_bytes = 14 * 1024;
  /// Decoded image tensor shape is taken from the CNN's input shape.
  /// Fraction of nonzero values in CNN feature layers (drives the
  /// serialized/compressed size model; the paper measures 13%-36%).
  double feature_density = 0.35;
};

}  // namespace vista

#endif  // VISTA_VISTA_ROSTER_H_
