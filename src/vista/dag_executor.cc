#include "vista/dag_executor.h"

#include <algorithm>
#include <cmath>

namespace vista {
namespace {

/// Pooled transfer-feature count of a DAG node (grid max pooling for
/// convolutional outputs, as for sequential CNNs).
int64_t DagTransferFeatures(const dl::DagNodeStat& node) {
  if (!node.convolutional) return node.output_shape.num_elements();
  const int64_t grid_h = std::min<int64_t>(2, node.output_shape.dim(1));
  const int64_t grid_w = std::min<int64_t>(2, node.output_shape.dim(2));
  return node.output_shape.dim(0) * grid_h * grid_w;
}

}  // namespace

Result<sim::SimResult> SimulateDagTransfer(const dl::DagArchitecture& arch,
                                           const std::vector<int>& targets,
                                           const DagSimSetup& setup,
                                           DagFrontierPolicy policy) {
  VISTA_ASSIGN_OR_RETURN(dl::DagStagedPlan plan,
                         dl::PlanStagedDag(arch, targets));
  const int64_t n = setup.data.num_records;
  const int64_t np = setup.profile.num_partitions;
  const double alpha = setup.alpha;
  const int cpus = setup.profile.memory.cpus;

  auto make_tasks = [&](double flops, int64_t dread) {
    std::vector<sim::SimTask> tasks(static_cast<size_t>(np));
    for (auto& t : tasks) {
      t.flops = flops / static_cast<double>(np);
      t.disk_read_bytes = dread / np;
    }
    return tasks;
  };
  auto table_bytes = [&](int64_t per_record_payload) {
    return static_cast<int64_t>(alpha * static_cast<double>(n) *
                                static_cast<double>(16 + per_record_payload));
  };

  std::vector<sim::SimStage> stages;
  // Read the base tables (struct is joined with the first target table;
  // its cost is tiny next to the images).
  {
    sim::SimStage read;
    read.name = "read:images";
    read.fixed_seconds =
        static_cast<double>(n) * 0.010 /
        std::pow(static_cast<double>(setup.env.num_nodes), 0.8);
    const int64_t img_bytes = n * (16 + setup.data.avg_image_file_bytes);
    read.tasks = make_tasks(0, img_bytes);
    read.cache_insert_bytes = img_bytes +
                              n * (16 + 4 * setup.data.num_struct_features);
    stages.push_back(std::move(read));
  }

  int64_t prev_frontier_table_bytes = 0;
  int64_t keep_everything_bytes = 0;
  for (const dl::DagStagedHop& hop : plan.hops) {
    // Inference hop: compute the hop's nodes for every record.
    sim::SimStage infer;
    infer.name = "dag-inference:" + arch.node(hop.target).name;
    infer.uses_dl = true;
    infer.dl_mem_per_thread = setup.model_runtime_bytes;
    double flops = 0;
    for (int node : hop.compute_nodes) {
      flops += static_cast<double>(arch.node(node).flops);
    }
    infer.tasks = make_tasks(flops * static_cast<double>(n), 0);
    // Per-thread UDF buffers: previous frontier + everything computed in
    // the hop.
    int64_t hop_record_bytes = arch.input_shape().num_bytes();
    for (int node : hop.compute_nodes) {
      hop_record_bytes += arch.node(node).output_shape.num_bytes();
    }
    infer.user_mem_per_task =
        setup.model_serialized_bytes / std::max(1, cpus) +
        static_cast<int64_t>(alpha * static_cast<double>(hop_record_bytes) *
                             static_cast<double>(n / np));
    infer.cache_read_bytes = prev_frontier_table_bytes;

    // Frontier bookkeeping: the new kept tables replace the old ones
    // (minimal policy), or accumulate (keep-everything ablation).
    int64_t new_frontier_bytes;
    if (policy == DagFrontierPolicy::kMinimalFrontier) {
      new_frontier_bytes = table_bytes(hop.keep_bytes);
      infer.cache_release_bytes = prev_frontier_table_bytes;
      infer.cache_insert_bytes = new_frontier_bytes;
    } else {
      for (int node : hop.compute_nodes) {
        keep_everything_bytes +=
            table_bytes(arch.node(node).output_shape.num_bytes());
      }
      new_frontier_bytes = keep_everything_bytes;
      infer.cache_insert_bytes =
          new_frontier_bytes - prev_frontier_table_bytes;
    }
    prev_frontier_table_bytes = new_frontier_bytes;
    stages.push_back(std::move(infer));

    // Downstream training on [X, g(target features)].
    sim::SimStage train;
    train.name = "dag-train:" + arch.node(hop.target).name;
    const int64_t dim = setup.data.num_struct_features +
                        DagTransferFeatures(arch.node(hop.target));
    train.tasks = make_tasks(6.0 * static_cast<double>(dim) *
                                 static_cast<double>(n) *
                                 setup.training_iterations,
                             0);
    const int64_t target_table =
        table_bytes(arch.node(hop.target).output_shape.num_bytes());
    train.cache_read_bytes = target_table * setup.training_iterations;
    train.user_mem_per_task = dim * 8 * 3 + kMiB;
    train.driver_collect_bytes = dim * 8 * setup.training_iterations;
    stages.push_back(std::move(train));
  }

  sim::ClusterSim cluster(setup.env.num_nodes, setup.node,
                          setup.profile.memory);
  return cluster.Run(stages);
}

}  // namespace vista
