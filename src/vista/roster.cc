#include "vista/roster.h"

#include <algorithm>

#include "common/bytes.h"

namespace vista {

Result<Roster> Roster::Default() {
  Roster roster;
  for (dl::KnownCnn cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                           dl::KnownCnn::kResNet50}) {
    RosterEntry entry;
    entry.cnn = cnn;
    VISTA_ASSIGN_OR_RETURN(entry.arch, dl::BuildArch(cnn));
    VISTA_ASSIGN_OR_RETURN(entry.memory, dl::LookupMemoryStats(cnn));
    roster.entries_.push_back(std::move(entry));
  }
  return roster;
}

Status Roster::Register(dl::CnnArchitecture arch,
                        dl::CnnMemoryStats memory) {
  for (const RosterEntry& entry : entries_) {
    if (entry.name() == arch.name()) {
      return Status::AlreadyExists("roster already has a CNN named '" +
                                   arch.name() + "'");
    }
  }
  if (memory.serialized_bytes == 0) {
    memory.serialized_bytes = arch.serialized_bytes();
  }
  if (memory.runtime_cpu_bytes == 0) {
    // Conservative: weights plus twice the largest activation (input +
    // output buffers of the widest layer), plus framework overhead.
    int64_t max_activation = 0;
    for (const dl::LayerStat& layer : arch.layers()) {
      max_activation =
          std::max(max_activation, layer.output_shape.num_bytes());
    }
    memory.runtime_cpu_bytes =
        memory.serialized_bytes + 2 * max_activation + MiB(64);
  }
  if (memory.runtime_gpu_bytes == 0) {
    memory.runtime_gpu_bytes = memory.runtime_cpu_bytes * 2;
  }
  RosterEntry entry;
  entry.cnn = std::nullopt;
  entry.arch = std::move(arch);
  entry.memory = memory;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<const RosterEntry*> Roster::Lookup(dl::KnownCnn cnn) const {
  for (const RosterEntry& entry : entries_) {
    if (entry.cnn.has_value() && *entry.cnn == cnn) return &entry;
  }
  return Status::NotFound(std::string("CNN not in roster: ") +
                          dl::KnownCnnToString(cnn));
}

Result<const RosterEntry*> Roster::LookupByName(
    const std::string& name) const {
  for (const RosterEntry& entry : entries_) {
    if (entry.name() == name) return &entry;
  }
  return Status::NotFound("no CNN named '" + name + "' in the roster");
}

const char* DownstreamModelToString(DownstreamModel model) {
  switch (model) {
    case DownstreamModel::kLogisticRegression:
      return "LogisticRegression";
    case DownstreamModel::kMlp:
      return "MLP";
    case DownstreamModel::kDecisionTree:
      return "DecisionTree";
  }
  return "?";
}

Result<TransferWorkload> TransferWorkload::TopLayers(const Roster& roster,
                                                     dl::KnownCnn cnn,
                                                     int num_layers,
                                                     DownstreamModel model) {
  VISTA_ASSIGN_OR_RETURN(const RosterEntry* entry, roster.Lookup(cnn));
  TransferWorkload workload;
  workload.cnn = cnn;
  VISTA_ASSIGN_OR_RETURN(workload.layers, entry->arch.TopLayers(num_layers));
  workload.model = model;
  return workload;
}

}  // namespace vista
