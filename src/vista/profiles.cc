#include "vista/profiles.h"

#include <algorithm>

namespace vista {

const char* PdSystemToString(PdSystem system) {
  switch (system) {
    case PdSystem::kSparkLike:
      return "Spark";
    case PdSystem::kIgniteLike:
      return "Ignite";
  }
  return "?";
}

SystemProfile SparkDefaultProfile(const SystemEnv& env, int cpus,
                                  int64_t num_records) {
  (void)env;
  SystemProfile p;
  p.name = "Spark-defaults/cpu" + std::to_string(cpus);
  p.pd = PdSystem::kSparkLike;
  p.memory.heap_bytes = GiB(29);
  p.memory.jvm_base_bytes = GiB(1);
  // Spark defaults: 40% of heap to User, 60% shared Storage/Execution;
  // model the split as half-and-half of the shared pool.
  p.memory.user_bytes = static_cast<int64_t>(0.4 * GiB(29));
  p.memory.storage_bytes = static_cast<int64_t>(0.36 * GiB(29));
  p.memory.core_bytes = static_cast<int64_t>(0.24 * GiB(29));
  p.memory.offheap_storage_bytes = 0;
  p.memory.offheap_static = false;
  p.memory.allow_disk_spill = true;
  p.memory.cpus = cpus;
  // Spark's default: max(shuffle default, input splits from ~100 small
  // image files per grouped split).
  p.num_partitions = std::max<int64_t>(200, num_records / 100);
  p.join = df::JoinStrategy::kShuffleHash;
  p.persistence = df::PersistenceFormat::kDeserialized;
  return p;
}

SystemProfile IgniteDefaultProfile(const SystemEnv& env, int cpus) {
  (void)env;
  SystemProfile p;
  p.name = "Ignite-defaults/cpu" + std::to_string(cpus);
  p.pd = PdSystem::kIgniteLike;
  p.memory.heap_bytes = GiB(4);
  p.memory.jvm_base_bytes = static_cast<int64_t>(1.2 * kGiB);
  // Unified in-heap User+Core pool (Figure 4(C)).
  p.memory.user_bytes = static_cast<int64_t>(1.4 * kGiB);
  p.memory.core_bytes = static_cast<int64_t>(1.4 * kGiB);
  p.memory.storage_bytes = GiB(25);
  p.memory.offheap_storage_bytes = GiB(25);
  p.memory.offheap_static = true;
  p.memory.allow_disk_spill = false;  // Memory-only mode.
  p.memory.cpus = cpus;
  p.num_partitions = 1024;
  p.join = df::JoinStrategy::kShuffleHash;
  p.persistence = df::PersistenceFormat::kSerialized;  // Binary format.
  return p;
}

SystemProfile VistaProfile(const SystemEnv& env, PdSystem pd,
                           const OptimizerDecisions& decisions,
                           const OptimizerParams& params) {
  (void)env;
  SystemProfile p;
  p.name = std::string("Vista/") + PdSystemToString(pd);
  p.pd = pd;
  p.memory.user_bytes = decisions.mem_user;
  p.memory.core_bytes = params.mem_core;
  p.memory.storage_bytes = decisions.mem_storage;
  if (pd == PdSystem::kIgniteLike) {
    p.memory.heap_bytes = decisions.mem_user + params.mem_core + GiB(1);
    p.memory.offheap_storage_bytes = decisions.mem_storage;
    p.memory.offheap_static = true;
    // Vista enables Ignite's disk-backed storage so that estimated
    // overflow degrades to spills.
    p.memory.allow_disk_spill = true;
  } else {
    p.memory.heap_bytes = decisions.mem_user + params.mem_core +
                          decisions.mem_storage + GiB(1);
    p.memory.offheap_storage_bytes = 0;
    p.memory.offheap_static = false;
    p.memory.allow_disk_spill = true;
  }
  p.memory.jvm_base_bytes = GiB(1);
  p.memory.cpus = decisions.cpu;
  p.num_partitions = decisions.num_partitions;
  p.join = decisions.join;
  p.persistence = decisions.persistence;
  return p;
}

SystemProfile ExplicitProfile(const SystemEnv& env, PdSystem pd, int cpus,
                              int64_t dl_mem_per_thread, int64_t user_bytes,
                              int64_t num_partitions) {
  SystemProfile p;
  p.name = std::string(PdSystemToString(pd)) + "-explicit/cpu" +
           std::to_string(cpus);
  p.pd = pd;
  const int64_t dl_total = dl_mem_per_thread * cpus;
  const int64_t worker =
      env.node_memory_bytes - GiB(3) - dl_total - user_bytes;
  p.memory.user_bytes = user_bytes;
  p.memory.core_bytes = static_cast<int64_t>(2.4 * kGiB);
  p.memory.storage_bytes =
      std::max<int64_t>(GiB(1), worker - p.memory.core_bytes);
  if (pd == PdSystem::kIgniteLike) {
    p.memory.heap_bytes = user_bytes + p.memory.core_bytes + GiB(1);
    p.memory.offheap_storage_bytes = p.memory.storage_bytes;
    p.memory.offheap_static = true;
    p.memory.allow_disk_spill = false;
    p.persistence = df::PersistenceFormat::kSerialized;
  } else {
    p.memory.heap_bytes =
        user_bytes + p.memory.core_bytes + p.memory.storage_bytes + GiB(1);
    p.memory.allow_disk_spill = true;
    p.persistence = df::PersistenceFormat::kDeserialized;
  }
  p.memory.jvm_base_bytes = GiB(1);
  p.memory.cpus = cpus;
  p.num_partitions = num_partitions;
  p.join = df::JoinStrategy::kShuffleHash;
  return p;
}

}  // namespace vista
