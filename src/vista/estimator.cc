#include "vista/estimator.h"

#include <algorithm>

#include "dl/op_spec.h"
#include "tensor/gemm_kernel.h"

namespace vista {
namespace {

int64_t RoundUpTo(int64_t x, int64_t multiple) {
  return (x + multiple - 1) / multiple * multiple;
}

/// Packed-panel scratch bytes for one conv group lowered to GEMM with
/// m = out_channels/groups, n = h_out*w_out, k = c/groups * kernel^2 —
/// mirroring the Acquire sizes of gemm_kernel.cc's panel drivers (the
/// panels are shared across groups, so one group's figure is the conv's).
int64_t ImplicitPanelBytes(int64_t m, int64_t n, int64_t k, bool int8) {
  if (int8) {
    const int64_t kc4 = RoundUpTo(std::min(k, kGemmKcInt8), 4);
    const int64_t pack_b = RoundUpTo(std::min(n, kGemmNC), kGemmNR) * kc4;
    const int64_t pack_a = RoundUpTo(std::min(m, kGemmMC), kGemmMR) * kc4;
    // AcquireBytes rounds byte requests up to whole floats.
    return RoundUpTo(pack_b, 4) + RoundUpTo(pack_a, 4);
  }
  const int64_t kc = std::min(k, kGemmKC);
  const int64_t pack_b = RoundUpTo(std::min(n, kGemmNC), kGemmNR) * kc * 4;
  const int64_t pack_a =
      RoundUpTo(std::min(m, kGemmMC), kGemmMR) * kGemmKC * 4;
  return pack_b + pack_a;
}

/// Scratch bytes for one convolution over a (c, h, w) input. `materialized`
/// adds the legacy explicit-path buffers: the fp32 im2col expansion
/// (Slot::kIm2Col) and, for int8, the quantized staging copy
/// (Slot::kQuantAct).
int64_t SingleConvTemp(int64_t c, int64_t h, int64_t w, int kernel,
                       int stride, int pad, int groups, int64_t oc,
                       bool int8, bool materialized) {
  if (groups < 1) groups = 1;
  if (kernel < 1 || stride < 1 || c <= 0 || oc <= 0) return 0;
  const int64_t rows = (c / groups) * kernel * kernel;
  const int64_t h_out = (h + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w + 2 * pad - kernel) / stride + 1;
  if (h_out <= 0 || w_out <= 0) return 0;
  const int64_t spatial = h_out * w_out;
  int64_t bytes = ImplicitPanelBytes(oc / groups, spatial, rows, int8);
  if (int8) bytes += oc * 4;  // Combined dequant scales (Slot::kScales).
  if (materialized) {
    bytes += groups * rows * spatial * 4;
    if (int8) bytes += RoundUpTo(groups * rows * spatial, 4);
  }
  return bytes;
}

/// Max conv scratch across the convs a single op runs. Bottleneck-internal
/// convs stay fp32 at any workload precision (ApplyPrimitive quantizes
/// only standalone conv/fc primitives).
int64_t OpConvTempBytes(const dl::OpSpec& op, const Shape& in, bool int8,
                        bool materialized) {
  if (in.rank() != 3) return 0;
  const int64_t c = in.dim(0);
  const int64_t h = in.dim(1);
  const int64_t w = in.dim(2);
  switch (op.kind) {
    case dl::OpKind::kConv:
      return SingleConvTemp(c, h, w, op.kernel, op.stride, op.pad,
                            std::max(1, op.groups), op.out_channels, int8,
                            materialized);
    case dl::OpKind::kBottleneck: {
      const int64_t mid = op.mid_channels;
      const int64_t out = op.out_channels;
      const int64_t h1 = (h - 1) / op.stride + 1;
      const int64_t w1 = (w - 1) / op.stride + 1;
      int64_t peak = SingleConvTemp(c, h, w, 1, op.stride, 0, 1, mid,
                                    /*int8=*/false, materialized);
      peak = std::max(peak, SingleConvTemp(mid, h1, w1, 3, 1, 1, 1, mid,
                                           /*int8=*/false, materialized));
      peak = std::max(peak, SingleConvTemp(mid, h1, w1, 1, 1, 0, 1, out,
                                           /*int8=*/false, materialized));
      if (op.project) {
        peak = std::max(peak, SingleConvTemp(c, h, w, 1, op.stride, 0, 1,
                                             out, /*int8=*/false,
                                             materialized));
      }
      return peak;
    }
    default:
      return 0;
  }
}

int64_t LayerConvTemp(const dl::CnnArchitecture& arch, int layer_index,
                      dl::Precision precision, bool materialized) {
  if (layer_index < 0 || layer_index >= arch.num_layers()) return 0;
  Shape in = layer_index == 0 ? arch.input_shape()
                              : arch.layer(layer_index - 1).output_shape;
  const bool int8 = precision == dl::Precision::kInt8;
  int64_t peak = 0;
  for (const dl::OpSpec& op : arch.layer_spec(layer_index).ops) {
    peak = std::max(peak, OpConvTempBytes(op, in, int8, materialized));
    auto stat = dl::AnalyzeOp(op, in);
    if (!stat.ok()) break;  // Built architectures never hit this.
    in = stat->output_shape;
  }
  return peak;
}

}  // namespace

int64_t ConvTempBytes(const dl::CnnArchitecture& arch, int layer_index,
                      dl::Precision precision) {
  return LayerConvTemp(arch, layer_index, precision, /*materialized=*/false);
}

int64_t ConvIm2ColTempBytes(const dl::CnnArchitecture& arch, int layer_index,
                            dl::Precision precision) {
  return LayerConvTemp(arch, layer_index, precision, /*materialized=*/true);
}

int64_t LayerFeatureBytes(const dl::CnnArchitecture& arch, int layer_index,
                          dl::Precision precision) {
  const int64_t elem_bytes = precision == dl::Precision::kInt8 ? 1 : 4;
  return arch.layer(layer_index).output_shape.num_elements() * elem_bytes;
}

Result<SizeEstimates> EstimateSizes(const RosterEntry& entry,
                                    const TransferWorkload& workload,
                                    const DataStats& stats, double alpha) {
  if (workload.layers.empty()) {
    return Status::InvalidArgument("workload has no layers");
  }
  for (int l : workload.layers) {
    if (l < 0 || l >= entry.arch.num_layers()) {
      return Status::InvalidArgument("layer index out of range: " +
                                     std::to_string(l));
    }
  }
  const int64_t n = stats.num_records;
  SizeEstimates est;

  // Tungsten-style record overheads: 8 B key + 8 B header per
  // variable-length field (Figure 14).
  est.t_str_bytes = n * (8 + 8 + 4 * stats.num_struct_features);
  est.t_img_file_bytes = n * (8 + 8 + stats.avg_image_file_bytes);
  est.t_img_tensor_bytes =
      n * (8 + 8 + entry.arch.input_shape().num_bytes());

  // Materialized intermediates carry features at the workload's inference
  // precision (int8 features are exactly 1/4 the bytes); the record-key
  // and field-header overheads do not shrink.
  int64_t eager_record_payload = 0;
  for (int l : workload.layers) {
    const int64_t feature_bytes =
        LayerFeatureBytes(entry.arch, l, workload.precision);
    const int64_t ti = static_cast<int64_t>(
                           alpha * static_cast<double>(
                                       n * (8 + 8 + feature_bytes))) +
                       est.t_str_bytes;
    est.t_i_bytes.push_back(ti);
    // Serialized: sparse pairs cost 8 B per nonzero; capped by dense.
    const int64_t sparse_bytes = static_cast<int64_t>(
        stats.feature_density * 2.0 * static_cast<double>(feature_bytes));
    const int64_t ser_feature = std::min(feature_bytes, sparse_bytes);
    est.t_i_serialized_bytes.push_back(n * (8 + 8 + ser_feature) +
                                       est.t_str_bytes);
    eager_record_payload += 8 + feature_bytes;
  }
  est.eager_table_bytes =
      static_cast<int64_t>(alpha *
                           static_cast<double>(n * (8 + eager_record_payload))) +
      est.t_str_bytes;

  // Peak UDF (input + output) record buffers across staged hops. These
  // stay fp32 regardless of workload precision: the int8 path keeps layer
  // boundaries (the tensors a UDF holds in flight) in fp32 and only
  // materialized/serialized features shrink.
  const int64_t img_record = entry.arch.input_shape().num_bytes();
  int64_t peak_udf =
      img_record + LayerFeatureBytes(entry.arch, workload.layers[0]);
  int64_t eager_out = 0;
  for (size_t i = 0; i < workload.layers.size(); ++i) {
    eager_out += LayerFeatureBytes(entry.arch, workload.layers[i]);
    if (i + 1 < workload.layers.size()) {
      peak_udf = std::max(
          peak_udf, LayerFeatureBytes(entry.arch, workload.layers[i]) +
                        LayerFeatureBytes(entry.arch,
                                          workload.layers[i + 1]));
    }
  }
  est.udf_record_bytes = peak_udf;
  est.eager_udf_record_bytes = img_record + eager_out;

  // Eq. 16 Temp term: staged inference runs every logical layer from the
  // image through max(L), so the per-thread conv scratch high-water is the
  // max over that range — implicit-GEMM packed panels on the hot path,
  // with the legacy materialized-im2col figure alongside for A/B
  // accounting and the footprint-reduction ratio.
  const int max_layer =
      *std::max_element(workload.layers.begin(), workload.layers.end());
  for (int l = 0; l <= max_layer; ++l) {
    est.conv_temp_bytes = std::max(
        est.conv_temp_bytes, ConvTempBytes(entry.arch, l, workload.precision));
    est.conv_temp_im2col_bytes =
        std::max(est.conv_temp_im2col_bytes,
                 ConvIm2ColTempBytes(entry.arch, l, workload.precision));
  }

  est.s_single = *std::max_element(est.t_i_bytes.begin(),
                                   est.t_i_bytes.end());
  if (est.t_i_bytes.size() == 1) {
    est.s_double = est.s_single;
  } else {
    int64_t best = 0;
    for (size_t i = 0; i + 1 < est.t_i_bytes.size(); ++i) {
      best = std::max(best, est.t_i_bytes[i] + est.t_i_bytes[i + 1] -
                                est.t_str_bytes);
    }
    est.s_double = best;
  }
  return est;
}

int64_t EstimateModelMemoryBytes(const RosterEntry& entry,
                                 const TransferWorkload& workload,
                                 const DataStats& stats) {
  int64_t max_features = 0;
  for (int l : workload.layers) {
    max_features =
        std::max(max_features, entry.arch.transfer_feature_count(l));
  }
  const int64_t dim = stats.num_struct_features + max_features;
  switch (workload.model) {
    case DownstreamModel::kLogisticRegression:
      // Weights + gradient accumulators + optimizer scratch (double
      // precision).
      return dim * 8 * 3 + kMiB;
    case DownstreamModel::kMlp: {
      // Paper's Fig. 7(B) MLP: two 1024-unit hidden layers.
      const int64_t params = dim * 1024 + 1024 * 1024 + 1024;
      return params * 8 * 3 + kMiB;
    }
    case DownstreamModel::kDecisionTree:
      // Histograms per feature dominate.
      return dim * 256 + kMiB;
  }
  return kMiB;
}

}  // namespace vista
