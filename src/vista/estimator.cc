#include "vista/estimator.h"

#include <algorithm>

namespace vista {

int64_t LayerFeatureBytes(const dl::CnnArchitecture& arch, int layer_index,
                          dl::Precision precision) {
  const int64_t elem_bytes = precision == dl::Precision::kInt8 ? 1 : 4;
  return arch.layer(layer_index).output_shape.num_elements() * elem_bytes;
}

Result<SizeEstimates> EstimateSizes(const RosterEntry& entry,
                                    const TransferWorkload& workload,
                                    const DataStats& stats, double alpha) {
  if (workload.layers.empty()) {
    return Status::InvalidArgument("workload has no layers");
  }
  for (int l : workload.layers) {
    if (l < 0 || l >= entry.arch.num_layers()) {
      return Status::InvalidArgument("layer index out of range: " +
                                     std::to_string(l));
    }
  }
  const int64_t n = stats.num_records;
  SizeEstimates est;

  // Tungsten-style record overheads: 8 B key + 8 B header per
  // variable-length field (Figure 14).
  est.t_str_bytes = n * (8 + 8 + 4 * stats.num_struct_features);
  est.t_img_file_bytes = n * (8 + 8 + stats.avg_image_file_bytes);
  est.t_img_tensor_bytes =
      n * (8 + 8 + entry.arch.input_shape().num_bytes());

  // Materialized intermediates carry features at the workload's inference
  // precision (int8 features are exactly 1/4 the bytes); the record-key
  // and field-header overheads do not shrink.
  int64_t eager_record_payload = 0;
  for (int l : workload.layers) {
    const int64_t feature_bytes =
        LayerFeatureBytes(entry.arch, l, workload.precision);
    const int64_t ti = static_cast<int64_t>(
                           alpha * static_cast<double>(
                                       n * (8 + 8 + feature_bytes))) +
                       est.t_str_bytes;
    est.t_i_bytes.push_back(ti);
    // Serialized: sparse pairs cost 8 B per nonzero; capped by dense.
    const int64_t sparse_bytes = static_cast<int64_t>(
        stats.feature_density * 2.0 * static_cast<double>(feature_bytes));
    const int64_t ser_feature = std::min(feature_bytes, sparse_bytes);
    est.t_i_serialized_bytes.push_back(n * (8 + 8 + ser_feature) +
                                       est.t_str_bytes);
    eager_record_payload += 8 + feature_bytes;
  }
  est.eager_table_bytes =
      static_cast<int64_t>(alpha *
                           static_cast<double>(n * (8 + eager_record_payload))) +
      est.t_str_bytes;

  // Peak UDF (input + output) record buffers across staged hops. These
  // stay fp32 regardless of workload precision: the int8 path keeps layer
  // boundaries (the tensors a UDF holds in flight) in fp32 and only
  // materialized/serialized features shrink.
  const int64_t img_record = entry.arch.input_shape().num_bytes();
  int64_t peak_udf =
      img_record + LayerFeatureBytes(entry.arch, workload.layers[0]);
  int64_t eager_out = 0;
  for (size_t i = 0; i < workload.layers.size(); ++i) {
    eager_out += LayerFeatureBytes(entry.arch, workload.layers[i]);
    if (i + 1 < workload.layers.size()) {
      peak_udf = std::max(
          peak_udf, LayerFeatureBytes(entry.arch, workload.layers[i]) +
                        LayerFeatureBytes(entry.arch,
                                          workload.layers[i + 1]));
    }
  }
  est.udf_record_bytes = peak_udf;
  est.eager_udf_record_bytes = img_record + eager_out;

  est.s_single = *std::max_element(est.t_i_bytes.begin(),
                                   est.t_i_bytes.end());
  if (est.t_i_bytes.size() == 1) {
    est.s_double = est.s_single;
  } else {
    int64_t best = 0;
    for (size_t i = 0; i + 1 < est.t_i_bytes.size(); ++i) {
      best = std::max(best, est.t_i_bytes[i] + est.t_i_bytes[i + 1] -
                                est.t_str_bytes);
    }
    est.s_double = best;
  }
  return est;
}

int64_t EstimateModelMemoryBytes(const RosterEntry& entry,
                                 const TransferWorkload& workload,
                                 const DataStats& stats) {
  int64_t max_features = 0;
  for (int l : workload.layers) {
    max_features =
        std::max(max_features, entry.arch.transfer_feature_count(l));
  }
  const int64_t dim = stats.num_struct_features + max_features;
  switch (workload.model) {
    case DownstreamModel::kLogisticRegression:
      // Weights + gradient accumulators + optimizer scratch (double
      // precision).
      return dim * 8 * 3 + kMiB;
    case DownstreamModel::kMlp: {
      // Paper's Fig. 7(B) MLP: two 1024-unit hidden layers.
      const int64_t params = dim * 1024 + 1024 * 1024 + 1024;
      return params * 8 * 3 + kMiB;
    }
    case DownstreamModel::kDecisionTree:
      // Histograms per feature dominate.
      return dim * 256 + kMiB;
  }
  return kMiB;
}

}  // namespace vista
