#ifndef VISTA_VISTA_EXPERIMENTS_H_
#define VISTA_VISTA_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "vista/sim_executor.h"
#include "vista/vista.h"

namespace vista {

/// A Section-5 experiment setting: cluster, PD system, dataset statistics,
/// and workload. Shared by the test suite and the benchmark harnesses.
struct ExperimentSetup {
  SystemEnv env;
  sim::NodeResources node;
  bool use_gpu = false;
  PdSystem pd = PdSystem::kSparkLike;
  dl::KnownCnn cnn = dl::KnownCnn::kAlexNet;
  int num_layers = 4;
  DataStats data;
  DownstreamModel model = DownstreamModel::kLogisticRegression;
  int training_iterations = 10;
};

/// Result of running one approach of Figure 6/7.
struct ApproachResult {
  std::string approach;
  sim::SimResult result;
  /// Time spent pre-materializing the base layer (Lazy-5 w/ Pre-mat only);
  /// reported separately, as in the paper's Figure 6 hatched bars.
  double pre_mat_seconds = 0;
};

/// The approaches compared in Figures 6 and 7(A):
/// Lazy-1, Lazy-5, Lazy-7 (naive, default system configs),
/// Lazy-5+Pre-mat and Eager (strong baselines with explicitly apportioned
/// memory), and Vista.
std::vector<std::string> StandardApproaches();

/// Runs one approach by name. Baselines run on default/explicit system
/// profiles; "Vista" runs the optimizer + Staged plan. Crashes are reported
/// inside ApproachResult::result, not as a failed Status.
Result<ApproachResult> RunApproach(const ExperimentSetup& setup,
                                   const std::string& approach);

/// Drill-down runner (Figures 9-12): explicit logical/physical plan and
/// system knobs. `num_partitions` <= 0 lets the optimizer's partitioning
/// rule pick.
struct DrillDownConfig {
  LogicalPlan plan = LogicalPlan::kStaged;
  df::JoinStrategy join = df::JoinStrategy::kShuffleHash;
  df::PersistenceFormat persistence = df::PersistenceFormat::kDeserialized;
  int cpu = 4;
  int64_t num_partitions = 0;
};

Result<sim::SimResult> RunDrillDown(const ExperimentSetup& setup,
                                    const DrillDownConfig& config);

/// Foods / Amazon experiment data statistics (Section 5), with an optional
/// record-replication scale factor (the drill-downs' "2X", "8X", ...).
DataStats FoodsDataStats(double scale = 1.0);
DataStats AmazonDataStats(double scale = 1.0);

/// The paper's layer selections: AlexNet |L|=4, VGG16 |L|=3, ResNet50
/// |L|=5 (Section 5, Workloads).
int PaperNumLayers(dl::KnownCnn cnn);

}  // namespace vista

#endif  // VISTA_VISTA_EXPERIMENTS_H_
