#ifndef VISTA_VISTA_PLANS_H_
#define VISTA_VISTA_PLANS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "vista/roster.h"

namespace vista {

/// The logical execution plans of Figure 5. "Reordered" pulls the key-key
/// join below CNN inference (BJ = before-join inference input is the joined
/// table); the plain variants join after inference (AJ).
enum class LogicalPlan {
  kLazy,             // Fig. 5(A): the de-facto manual approach.
  kLazyReordered,    // Fig. 5(B).
  kEager,            // Fig. 5(C): all layers in one go.
  kEagerReordered,   // Fig. 5(D).
  kStaged,           // Fig. 5(E)/AJ: Vista's plan.
  kStagedReordered,  // Staged/BJ drill-down variant (Section 5.3).
};

const char* LogicalPlanToString(LogicalPlan plan);

/// One step of a compiled plan. Steps operate on named table refs; the
/// record layout of each table is implied by the compiler: structured
/// features travel with the records once joined, and the TensorList of an
/// inference output holds exactly `produce_layers` (ascending), so a train
/// step addresses its layer by TensorList slot.
struct PlanStep {
  enum class Kind {
    /// Bind the structured base table to `output`.
    kReadStruct,
    /// Bind the images base table to `output`.
    kReadImages,
    /// Key-key join of `input` (struct side) with `input2` (feature/image
    /// side) into `output`.
    kJoin,
    /// Partial CNN inference: read tensors from `input` (the raw image if
    /// source_slot == -1, else TensorList slot `source_slot` holding layer
    /// `source_layer`), run layers (source_layer, produce_layers.back()],
    /// and write the tensors of `produce_layers` into `output`.
    kInference,
    /// Train the downstream model on [X, g(features[feature_slot])] of
    /// `input`; `train_layer` names the CNN layer for reporting.
    kTrain,
    /// Put `input` under managed storage (format chosen by the physical
    /// planner).
    kPersist,
    /// Drop `input` from storage.
    kRelease,
  };

  Kind kind;
  std::string input;
  std::string input2;
  std::string output;
  int source_slot = -1;
  int source_layer = -1;
  std::vector<int> produce_layers;
  int feature_slot = -1;
  int train_layer = -1;

  std::string ToString() const;
};

/// A compiled logical plan: ordered steps plus bookkeeping for reporting.
struct CompiledPlan {
  LogicalPlan logical;
  std::vector<PlanStep> steps;
  /// True when inference starts from a pre-materialized base layer table
  /// instead of raw images (Appendix B).
  bool pre_materialized_base = false;
  /// Inference precision the plan was compiled for (stamped from the
  /// workload); executors run every kInference step at this precision.
  dl::Precision precision = dl::Precision::kFp32;

  std::string ToString() const;
};

/// Compiles `plan` for `workload`. When `pre_materialized_base` is set, the
/// images table is assumed to already hold the bottom-most requested
/// layer's tensors (materialized beforehand), and all inference starts
/// there.
Result<CompiledPlan> CompilePlan(LogicalPlan plan,
                                 const TransferWorkload& workload,
                                 bool pre_materialized_base = false);

}  // namespace vista

#endif  // VISTA_VISTA_PLANS_H_
