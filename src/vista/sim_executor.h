#ifndef VISTA_VISTA_SIM_EXECUTOR_H_
#define VISTA_VISTA_SIM_EXECUTOR_H_

#include <vector>

#include "obs/trace.h"
#include "sim/cluster.h"
#include "vista/estimator.h"
#include "vista/plans.h"
#include "vista/profiles.h"
#include "vista/roster.h"

namespace vista {

/// Configuration of a simulated cluster run.
struct SimExecutorConfig {
  SystemEnv env;
  sim::NodeResources node;
  /// Run CNN inference on the node GPU (Fig. 7(A)); requires
  /// node.gpu_memory_bytes > 0.
  bool use_gpu = false;
  SystemProfile profile;
  /// Deserialized managed-object blowup factor (Table 1(C) α).
  double alpha = kDefaultAlpha;
  /// Seconds of metadata overhead per small image file read (the HDFS
  /// "small files" problem, Section 5.3).
  double image_read_overhead_seconds = 0.010;
};

/// Translates compiled feature-transfer plans into cluster-simulator stages
/// and runs them — the role the real Spark/Ignite-TF deployment plays for
/// the paper's runtime experiments. The cost structure (FLOPs, bytes moved,
/// spills, region pressure) is computed from the same roster statistics and
/// size estimator the optimizer uses.
class SimExecutor {
 public:
  explicit SimExecutor(const RosterEntry* entry) : entry_(entry) {}

  /// Simulates `plan` end to end.
  Result<sim::SimResult> Execute(const CompiledPlan& plan,
                                 const TransferWorkload& workload,
                                 const DataStats& stats,
                                 const SimExecutorConfig& config);

  /// Builds (without running) the stage list for `plan` — exposed for
  /// tests and for benches that want stage-level reporting.
  Result<std::vector<sim::SimStage>> BuildStages(
      const CompiledPlan& plan, const TransferWorkload& workload,
      const DataStats& stats, const SimExecutorConfig& config);

  /// Appendix B: simulates materializing the workload's bottom-most layer
  /// from raw images to distributed files. Returns the result plus the
  /// serialized file size via `out_file_bytes`.
  Result<sim::SimResult> SimulatePreMaterialization(
      const TransferWorkload& workload, const DataStats& stats,
      const SimExecutorConfig& config, int64_t* out_file_bytes);

  /// Serialized on-disk bytes of a materialized layer table (Table 2).
  int64_t MaterializedLayerFileBytes(int layer, const DataStats& stats) const;

 private:
  const RosterEntry* entry_;
};

/// Converts a simulated run's stage results into synthetic sequential trace
/// spans: one "stage"-category span per stage laid end to end on the
/// simulated timeline, with "component" child spans for the compute / disk /
/// network / spill / overhead cost slices. Lets sim-based benches feed the
/// same obs exporters (ProfileJson, ChromeTraceJson) as real runs.
std::vector<obs::Span> SimResultSpans(const sim::SimResult& result);

}  // namespace vista

#endif  // VISTA_VISTA_SIM_EXECUTOR_H_
