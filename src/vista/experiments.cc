#include "vista/experiments.h"

#include <algorithm>

namespace vista {
namespace {

/// Builds the workload + roster entry for a setup.
struct Resolved {
  Roster roster;
  const RosterEntry* entry;
  TransferWorkload workload;
};

Result<Resolved> Resolve(const ExperimentSetup& setup) {
  VISTA_ASSIGN_OR_RETURN(Roster roster, Roster::Default());
  Resolved r{std::move(roster), nullptr, {}};
  VISTA_ASSIGN_OR_RETURN(r.entry, r.roster.Lookup(setup.cnn));
  VISTA_ASSIGN_OR_RETURN(
      r.workload, TransferWorkload::TopLayers(r.roster, setup.cnn,
                                              setup.num_layers, setup.model));
  r.workload.training_iterations = setup.training_iterations;
  return r;
}

SimExecutorConfig MakeSimConfig(const ExperimentSetup& setup,
                                SystemProfile profile) {
  SimExecutorConfig config;
  config.env = setup.env;
  config.node = setup.node;
  config.use_gpu = setup.use_gpu;
  config.profile = std::move(profile);
  return config;
}

/// "Explicitly apportioned" baseline profile at a requested parallelism:
/// the strong baselines get optimizer-quality memory apportioning (the
/// paper gives Lazy-5+Pre-mat and Eager parts of Vista's machinery) but a
/// fixed plan. The cpu is lowered if the DL replicas cannot physically fit.
SystemProfile ApportionedProfile(const ExperimentSetup& setup,
                                 const Resolved& r, int want_cpu,
                                 const SizeEstimates& est) {
  OptimizerParams params;
  int cpu = want_cpu;
  const int64_t f_mem = setup.use_gpu
                            ? r.entry->memory.runtime_gpu_bytes
                            : r.entry->memory.runtime_cpu_bytes;
  while (cpu > 1) {
    const int64_t dl = static_cast<int64_t>(cpu) *
                       r.entry->memory.runtime_cpu_bytes;
    const int64_t gpu = static_cast<int64_t>(cpu) * f_mem;
    const bool cpu_fits = params.mem_os_rsv + dl + params.mem_core +
                              GiB(2) <
                          setup.env.node_memory_bytes;
    const bool gpu_fits = !setup.use_gpu ||
                          gpu < setup.env.gpu_memory_bytes;
    if (cpu_fits && gpu_fits) break;
    --cpu;
  }
  // Budget UDF buffers for the worst case across the baseline plans: the
  // Eager plan holds the decoded image plus every produced layer at once.
  const int64_t udf_record =
      std::max(est.udf_record_bytes, est.eager_udf_record_bytes);
  const int64_t udf_table = static_cast<int64_t>(
      params.alpha * static_cast<double>(setup.data.num_records) *
      static_cast<double>(udf_record));
  const int64_t np = ComputeNumPartitions(
      std::max(est.s_single, udf_table), cpu, setup.env.num_nodes,
      params.p_max);
  const int64_t partition = (udf_table + np - 1) / np;
  const int64_t user =
      r.entry->memory.serialized_bytes +
      static_cast<int64_t>(1.1 * cpu * static_cast<double>(partition));
  return ExplicitProfile(setup.env, setup.pd, cpu,
                         r.entry->memory.runtime_cpu_bytes, user, np);
}

}  // namespace

std::vector<std::string> StandardApproaches() {
  return {"Lazy-1", "Lazy-5", "Lazy-7", "Lazy-5+Pre-mat", "Eager", "Vista"};
}

DataStats FoodsDataStats(double scale) {
  DataStats stats;
  stats.num_records = static_cast<int64_t>(20000 * scale);
  stats.num_struct_features = 130;
  stats.avg_image_file_bytes = 14 * 1024;
  // AlexNet features measured at 13% nonzero; VGG/ResNet ~36% (Appendix A).
  stats.feature_density = 0.35;
  return stats;
}

DataStats AmazonDataStats(double scale) {
  DataStats stats;
  stats.num_records = static_cast<int64_t>(200000 * scale);
  stats.num_struct_features = 200;
  stats.avg_image_file_bytes = 14 * 1024;
  stats.feature_density = 0.35;
  return stats;
}

int PaperNumLayers(dl::KnownCnn cnn) {
  switch (cnn) {
    case dl::KnownCnn::kAlexNet:
      return 4;
    case dl::KnownCnn::kVgg16:
      return 3;
    case dl::KnownCnn::kResNet50:
      return 5;
  }
  return 3;
}

Result<ApproachResult> RunApproach(const ExperimentSetup& setup,
                                   const std::string& approach) {
  VISTA_ASSIGN_OR_RETURN(Resolved r, Resolve(setup));
  SimExecutor executor(r.entry);
  ApproachResult out;
  out.approach = approach;

  auto default_profile = [&](int cpus) {
    return setup.pd == PdSystem::kSparkLike
               ? SparkDefaultProfile(setup.env, cpus,
                                     setup.data.num_records)
               : IgniteDefaultProfile(setup.env, cpus);
  };

  if (approach == "Lazy-1" || approach == "Lazy-5" ||
      approach == "Lazy-7") {
    const int cpus = approach == "Lazy-1" ? 1
                     : approach == "Lazy-5" ? 5
                                            : 7;
    VISTA_ASSIGN_OR_RETURN(CompiledPlan plan,
                           CompilePlan(LogicalPlan::kLazy, r.workload));
    VISTA_ASSIGN_OR_RETURN(
        out.result,
        executor.Execute(plan, r.workload, setup.data,
                         MakeSimConfig(setup, default_profile(cpus))));
    return out;
  }

  VISTA_ASSIGN_OR_RETURN(SizeEstimates est,
                         EstimateSizes(*r.entry, r.workload, setup.data));

  if (approach == "Lazy-5+Pre-mat") {
    SystemProfile profile = ApportionedProfile(setup, r, 5, est);
    SimExecutorConfig config = MakeSimConfig(setup, profile);
    int64_t file_bytes = 0;
    VISTA_ASSIGN_OR_RETURN(
        sim::SimResult pre,
        executor.SimulatePreMaterialization(r.workload, setup.data, config,
                                            &file_bytes));
    out.pre_mat_seconds = pre.total_seconds;
    if (pre.crashed()) {
      out.result = pre;
      return out;
    }
    VISTA_ASSIGN_OR_RETURN(
        CompiledPlan plan,
        CompilePlan(LogicalPlan::kLazy, r.workload,
                    /*pre_materialized_base=*/true));
    VISTA_ASSIGN_OR_RETURN(
        out.result, executor.Execute(plan, r.workload, setup.data, config));
    return out;
  }

  if (approach == "Eager") {
    SystemProfile profile = ApportionedProfile(setup, r, 5, est);
    VISTA_ASSIGN_OR_RETURN(CompiledPlan plan,
                           CompilePlan(LogicalPlan::kEager, r.workload));
    VISTA_ASSIGN_OR_RETURN(
        out.result, executor.Execute(plan, r.workload, setup.data,
                                     MakeSimConfig(setup, profile)));
    return out;
  }

  if (approach == "Vista") {
    Vista::Options options;
    options.env = setup.env;
    options.cnn = setup.cnn;
    options.num_layers = setup.num_layers;
    options.model = setup.model;
    options.training_iterations = setup.training_iterations;
    options.data = setup.data;
    auto vista = Vista::Create(options);
    if (!vista.ok()) {
      // Infeasible environments are reported, not crashed: Vista tells the
      // user to provision more memory instead of attempting to run.
      return vista.status();
    }
    VISTA_ASSIGN_OR_RETURN(
        out.result, vista->ExecuteSimulated(setup.pd, setup.node,
                                            setup.use_gpu));
    return out;
  }

  return Status::InvalidArgument("unknown approach: " + approach);
}

Result<sim::SimResult> RunDrillDown(const ExperimentSetup& setup,
                                    const DrillDownConfig& config) {
  VISTA_ASSIGN_OR_RETURN(Resolved r, Resolve(setup));
  VISTA_ASSIGN_OR_RETURN(SizeEstimates est,
                         EstimateSizes(*r.entry, r.workload, setup.data));
  OptimizerParams params;
  const bool eager = config.plan == LogicalPlan::kEager ||
                     config.plan == LogicalPlan::kEagerReordered;
  const int64_t udf_record =
      eager ? est.eager_udf_record_bytes : est.udf_record_bytes;
  const int64_t udf_table = static_cast<int64_t>(
      params.alpha * static_cast<double>(setup.data.num_records) *
      static_cast<double>(udf_record));
  const int64_t np =
      config.num_partitions > 0
          ? config.num_partitions
          : ComputeNumPartitions(std::max(est.s_single, udf_table),
                                 config.cpu, setup.env.num_nodes,
                                 params.p_max);
  const int64_t partition = (udf_table + np - 1) / np;
  const int64_t user =
      r.entry->memory.serialized_bytes +
      static_cast<int64_t>(1.1 * config.cpu *
                           static_cast<double>(partition));
  SystemProfile profile =
      ExplicitProfile(setup.env, setup.pd, config.cpu,
                      r.entry->memory.runtime_cpu_bytes, user, np);
  profile.join = config.join;
  profile.persistence = config.persistence;

  SimExecutor executor(r.entry);
  VISTA_ASSIGN_OR_RETURN(CompiledPlan plan,
                         CompilePlan(config.plan, r.workload));
  return executor.Execute(plan, r.workload, setup.data,
                          MakeSimConfig(setup, profile));
}

}  // namespace vista
