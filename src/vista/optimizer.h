#ifndef VISTA_VISTA_OPTIMIZER_H_
#define VISTA_VISTA_OPTIMIZER_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "dataflow/engine.h"
#include "vista/estimator.h"
#include "vista/roster.h"

namespace vista {

/// Fixed-but-adjustable optimizer parameters (Table 1(C)).
struct OptimizerParams {
  /// Operating System Reserved Memory.
  int64_t mem_os_rsv = GiB(3);
  /// Core Memory per best-practice guidelines.
  int64_t mem_core = static_cast<int64_t>(2.4 * static_cast<double>(kGiB));
  /// Maximum size of a data partition.
  int64_t p_max = MiB(100);
  /// Maximum broadcast size.
  int64_t b_max = MiB(100);
  /// Cap recommended for cpu.
  int cpu_max = 8;
  /// Fudge factor for size blowup of binary feature vectors as managed
  /// objects.
  double alpha = 2.0;
  /// True when the downstream model M executes inside the DL system
  /// (e.g. an MLP trained by the DL system) rather than in PD User memory.
  bool model_in_dl_memory = false;
  /// Charge DL Execution Memory for the legacy materialized-im2col conv
  /// path (full patch-matrix expansion per thread) instead of the
  /// implicit-GEMM packed panels. Exists for A/B accounting and to test
  /// that the Eq. 16 Temp term actually moves plan choices; production
  /// kernels run implicit, so leave this false.
  bool materialized_im2col = false;
};

/// The decisions Vista sets (Table 1(B)).
struct OptimizerDecisions {
  int64_t mem_storage = 0;
  int64_t mem_user = 0;
  int64_t mem_dl = 0;
  int cpu = 0;
  int64_t num_partitions = 0;
  df::JoinStrategy join = df::JoinStrategy::kShuffleHash;
  df::PersistenceFormat persistence = df::PersistenceFormat::kDeserialized;

  std::string ToString() const;
};

/// Algorithm 1: linear search on cpu satisfying constraints (9)-(15).
/// Returns ResourceExhausted when System Memory cannot satisfy the
/// constraints for any cpu (the user should provision more memory).
Result<OptimizerDecisions> OptimizeFeatureTransfer(
    const SystemEnv& env, const RosterEntry& entry,
    const TransferWorkload& workload, const DataStats& stats,
    const OptimizerParams& params = {});

/// Eq. 13-14 helper: the smallest multiple of (cpu x num_nodes) such that
/// partitions stay under p_max (procedure NumPartitions in Algorithm 1).
int64_t ComputeNumPartitions(int64_t s_single, int cpu, int num_nodes,
                             int64_t p_max);

}  // namespace vista

#endif  // VISTA_VISTA_OPTIMIZER_H_
