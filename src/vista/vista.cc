#include "vista/vista.h"

#include <sstream>

namespace vista {

Result<Vista> Vista::Create(const Options& options) {
  Vista v;
  v.options_ = options;
  VISTA_ASSIGN_OR_RETURN(Roster roster, Roster::Default());
  v.roster_ = std::make_shared<Roster>(std::move(roster));
  VISTA_ASSIGN_OR_RETURN(v.entry_, v.roster_->Lookup(options.cnn));
  VISTA_ASSIGN_OR_RETURN(
      v.workload_, TransferWorkload::TopLayers(*v.roster_, options.cnn,
                                               options.num_layers,
                                               options.model));
  v.workload_.training_iterations = options.training_iterations;
  OptimizerParams params = options.optimizer;
  params.model_in_dl_memory = options.model == DownstreamModel::kMlp;
  VISTA_ASSIGN_OR_RETURN(
      v.decisions_, OptimizeFeatureTransfer(options.env, *v.entry_,
                                            v.workload_, options.data,
                                            params));
  VISTA_ASSIGN_OR_RETURN(
      v.estimates_,
      EstimateSizes(*v.entry_, v.workload_, options.data, params.alpha));
  return v;
}

Result<CompiledPlan> Vista::Plan() const {
  return CompilePlan(LogicalPlan::kStaged, workload_);
}

Result<sim::SimResult> Vista::ExecuteSimulated(PdSystem pd,
                                               const sim::NodeResources& node,
                                               bool use_gpu) const {
  VISTA_ASSIGN_OR_RETURN(CompiledPlan plan, Plan());
  SimExecutorConfig config;
  config.env = options_.env;
  config.node = node;
  config.use_gpu = use_gpu;
  config.profile = VistaProfile(options_.env, pd, decisions_,
                                options_.optimizer);
  config.alpha = options_.optimizer.alpha;
  SimExecutor executor(entry_);
  return executor.Execute(plan, workload_, options_.data, config);
}

Result<RealRunResult> Vista::ExecuteReal(df::Engine* engine,
                                         const dl::CnnModel* model,
                                         const df::Table& t_str,
                                         const df::Table& t_img,
                                         int num_partitions) const {
  VISTA_ASSIGN_OR_RETURN(CompiledPlan plan, Plan());
  // The micro model's layer topology mirrors the full architecture, so the
  // workload's layer indices must exist in it.
  TransferWorkload workload = workload_;
  if (model->arch().num_layers() != entry_->arch.num_layers()) {
    VISTA_ASSIGN_OR_RETURN(workload.layers,
                           model->arch().TopLayers(options_.num_layers));
    VISTA_ASSIGN_OR_RETURN(plan, CompilePlan(LogicalPlan::kStaged, workload));
  }
  RealExecutorConfig config;
  config.join = decisions_.join;
  config.persistence = decisions_.persistence;
  config.num_partitions = num_partitions;
  // The paper's reliability guarantee: if the optimizer's choices still hit
  // memory pressure at runtime, degrade the physical plan and keep going
  // rather than crash.
  config.auto_degrade = true;
  RealExecutor executor(engine, model);
  return executor.Run(plan, workload, t_str, t_img, config);
}


Result<std::string> Vista::Explain(PdSystem pd,
                                   const sim::NodeResources& node) const {
  std::ostringstream os;
  os << "=== Vista EXPLAIN ===\n";
  os << "workload: " << entry_->name() << ", layers";
  for (int l : workload_.layers) {
    os << " " << entry_->arch.layer(l).name;
  }
  os << ", downstream " << DownstreamModelToString(workload_.model) << " x"
     << workload_.training_iterations << " iterations\n";
  os << "data: " << options_.data.num_records << " records, "
     << options_.data.num_struct_features << " structured features\n";
  os << "cluster: " << options_.env.num_nodes << " nodes x "
     << FormatBytes(options_.env.node_memory_bytes) << ", "
     << options_.env.cores_per_node << " cores ("
     << PdSystemToString(pd) << "-like)\n\n";

  os << "--- size estimates (Eq. 16, alpha=" << options_.optimizer.alpha
     << ") ---\n";
  os << "Tstr " << FormatBytes(estimates_.t_str_bytes) << "; Timg(files) "
     << FormatBytes(estimates_.t_img_file_bytes) << "; Timg(decoded) "
     << FormatBytes(estimates_.t_img_tensor_bytes) << "\n";
  for (size_t i = 0; i < workload_.layers.size(); ++i) {
    os << "T[" << entry_->arch.layer(workload_.layers[i]).name
       << "]: " << FormatBytes(estimates_.t_i_bytes[i]) << " deser. / "
       << FormatBytes(estimates_.t_i_serialized_bytes[i]) << " ser.\n";
  }
  os << "s_single " << FormatBytes(estimates_.s_single) << "; s_double "
     << FormatBytes(estimates_.s_double) << "; Eager table "
     << FormatBytes(estimates_.eager_table_bytes) << "\n\n";

  os << "--- optimizer decisions (Algorithm 1) ---\n"
     << decisions_.ToString() << "\n\n";

  VISTA_ASSIGN_OR_RETURN(CompiledPlan plan, Plan());
  os << "--- logical plan ---\n" << plan.ToString() << "\n";

  os << "--- predicted timeline ---\n";
  SimExecutorConfig config;
  config.env = options_.env;
  config.node = node;
  config.profile = VistaProfile(options_.env, pd, decisions_,
                                options_.optimizer);
  config.alpha = options_.optimizer.alpha;
  SimExecutor executor(entry_);
  VISTA_ASSIGN_OR_RETURN(
      sim::SimResult result,
      executor.Execute(plan, workload_, options_.data, config));
  for (const auto& stage : result.stages) {
    if (stage.seconds < 0.05) continue;  // Skip bookkeeping stages.
    os << "  " << stage.name << ": " << FormatDuration(stage.seconds);
    if (stage.spill_seconds > 0.05) {
      os << " (incl. " << FormatDuration(stage.spill_seconds)
         << " of spill IO)";
    }
    os << "\n";
  }
  os << "predicted total: " << FormatDuration(result.total_seconds);
  if (result.spill_bytes_written > 0) {
    os << ", spilling " << FormatBytes(result.spill_bytes_written);
  }
  os << "\n";
  return os.str();
}

}  // namespace vista
