#ifndef VISTA_VISTA_ESTIMATOR_H_
#define VISTA_VISTA_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "vista/roster.h"

namespace vista {

/// The cluster environment handed to Vista (Table 1(A)).
struct SystemEnv {
  int num_nodes = 8;
  int64_t node_memory_bytes = GiB(32);
  int cores_per_node = 8;
  /// GPU memory per node; 0 when the cluster has no GPUs.
  int64_t gpu_memory_bytes = 0;
};

/// Intermediate-table size estimates (Appendix A, Eq. 16). All sizes are
/// cluster totals in bytes.
struct SizeEstimates {
  /// Base tables.
  int64_t t_str_bytes = 0;
  /// Raw images as stored (compressed files on distributed storage).
  int64_t t_img_file_bytes = 0;
  /// Raw images decoded into tensors (what inference reads).
  int64_t t_img_tensor_bytes = 0;
  /// Deserialized size of each intermediate table T_i (i indexes the
  /// workload's layer list L, ascending). T_i carries the full feature
  /// tensor of layer L[i] plus the joined structured features.
  std::vector<int64_t> t_i_bytes;
  /// Serialized/compressed size of each T_i (density-scaled sparse
  /// encoding).
  std::vector<int64_t> t_i_serialized_bytes;
  /// Eager's single materialized table holding every layer of L at once.
  int64_t eager_table_bytes = 0;
  /// Peak single-table and adjacent-pair sizes (Eqs. 5-6).
  int64_t s_single = 0;
  int64_t s_double = 0;
  /// Peak per-record UDF buffer bytes during staged execution: the largest
  /// (input tensor + produced tensor) pair across inference hops, counting
  /// the decoded image for the first hop. Drives the User-memory term of
  /// Eq. 10 ("buffers to read inputs, and to hold features created by CNN
  /// inference") and the partitioning rule.
  int64_t udf_record_bytes = 0;
  /// Same for the Eager plan (image input + every layer's output at once).
  int64_t eager_udf_record_bytes = 0;
  /// Eq. 16 Temp term: per-thread kernel-scratch high-water across every
  /// logical layer the staged inference runs (0 .. max(L)) at the
  /// workload's precision — the packed GEMM panels of the implicit-GEMM
  /// conv path. Multiply by the thread count for a per-node figure.
  int64_t conv_temp_bytes = 0;
  /// The same walk under the legacy materialized-im2col conv path (full
  /// patch-matrix expansion + panels, plus the int8 staging copy). Kept
  /// for A/B accounting (OptimizerParams::materialized_im2col) and as the
  /// footprint-reduction denominator the benches report.
  int64_t conv_temp_im2col_bytes = 0;
};

/// Fudge factor for the blowup of binary feature vectors as managed-heap
/// objects (Table 1(C), default 2).
inline constexpr double kDefaultAlpha = 2.0;

/// Computes all size estimates for running `workload` over data with
/// `stats` (Eq. 16 with fudge factor `alpha`).
Result<SizeEstimates> EstimateSizes(const RosterEntry& entry,
                                    const TransferWorkload& workload,
                                    const DataStats& stats,
                                    double alpha = kDefaultAlpha);

/// Per-record bytes of the full feature tensor of `layer_index` at the
/// given inference precision: 4 bytes/element for fp32, exactly 1/4 of
/// that (1 byte/element) for int8 — quantized intermediates are what the
/// optimizer sizes when the workload runs int8.
int64_t LayerFeatureBytes(const dl::CnnArchitecture& arch, int layer_index,
                          dl::Precision precision = dl::Precision::kFp32);

/// Per-thread scratch (Temp-region) bytes the implicit-GEMM conv kernels
/// need to run logical layer `layer_index`: the maximum over the layer's
/// conv ops (including bottleneck-internal convs, which stay fp32 at any
/// workload precision) of the packed A + packed B panel footprint, sized
/// exactly as gemm_kernel.cc's drivers acquire them. Non-conv layers
/// return 0.
int64_t ConvTempBytes(const dl::CnnArchitecture& arch, int layer_index,
                      dl::Precision precision = dl::Precision::kFp32);

/// The same walk under the legacy materialized-im2col path: the full
/// C/g*k^2 x H_out*W_out expansion (plus the quantize staging copy for
/// int8) on top of the packed panels — what Temp accounting charged before
/// the conv kernels went implicit.
int64_t ConvIm2ColTempBytes(const dl::CnnArchitecture& arch, int layer_index,
                            dl::Precision precision = dl::Precision::kFp32);

/// Downstream-model memory footprint |M|_mem: proportional to the total
/// feature dimensionality (structured + the largest pooled CNN layer in L),
/// Section 4.3.
int64_t EstimateModelMemoryBytes(const RosterEntry& entry,
                                 const TransferWorkload& workload,
                                 const DataStats& stats);

}  // namespace vista

#endif  // VISTA_VISTA_ESTIMATOR_H_
