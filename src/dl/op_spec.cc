#include "dl/op_spec.h"

#include <algorithm>

#include "tensor/ops.h"

namespace vista::dl {

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kConv:
      return "Conv";
    case OpKind::kMaxPool:
      return "MaxPool";
    case OpKind::kAvgPool:
      return "AvgPool";
    case OpKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case OpKind::kLrn:
      return "LRN";
    case OpKind::kFc:
      return "FC";
    case OpKind::kFlatten:
      return "Flatten";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kBottleneck:
      return "Bottleneck";
  }
  return "?";
}

namespace {

Result<OpStat> AnalyzeConv(const OpSpec& spec, const Shape& in) {
  if (in.rank() != 3) {
    return Status::InvalidArgument("Conv expects CHW input, got " +
                                   in.ToString());
  }
  const int64_t c = in.dim(0), h = in.dim(1), w = in.dim(2);
  const int64_t groups = std::max(1, spec.groups);
  if (c % groups != 0 || spec.out_channels % groups != 0) {
    return Status::InvalidArgument("Conv channels not divisible by groups");
  }
  if (spec.kernel > h + 2 * spec.pad || spec.kernel > w + 2 * spec.pad) {
    return Status::InvalidArgument("Conv kernel larger than padded input");
  }
  const int64_t h_out = (h + 2 * spec.pad - spec.kernel) / spec.stride + 1;
  const int64_t w_out = (w + 2 * spec.pad - spec.kernel) / spec.stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Conv output would be empty");
  }
  OpStat stat;
  stat.output_shape = Shape{spec.out_channels, h_out, w_out};
  stat.flops = Conv2DFlops(c / groups, spec.out_channels, h_out, w_out,
                           spec.kernel);
  if (spec.relu) stat.flops += stat.output_shape.num_elements();
  stat.param_count =
      spec.out_channels * (c / groups) * spec.kernel * spec.kernel +
      spec.out_channels;
  return stat;
}

Result<OpStat> AnalyzePool(const OpSpec& spec, const Shape& in) {
  if (in.rank() != 3) {
    return Status::InvalidArgument("Pool expects CHW input, got " +
                                   in.ToString());
  }
  const int64_t c = in.dim(0), h = in.dim(1), w = in.dim(2);
  if (spec.window > h + 2 * spec.pad || spec.window > w + 2 * spec.pad) {
    return Status::InvalidArgument("Pool window larger than padded input");
  }
  const int64_t h_out = (h + 2 * spec.pad - spec.window) / spec.stride + 1;
  const int64_t w_out = (w + 2 * spec.pad - spec.window) / spec.stride + 1;
  if (h_out <= 0 || w_out <= 0) {
    return Status::InvalidArgument("Pool output would be empty");
  }
  OpStat stat;
  stat.output_shape = Shape{c, h_out, w_out};
  stat.flops =
      stat.output_shape.num_elements() * spec.window * spec.window;
  return stat;
}

Result<OpStat> AnalyzeBottleneck(const OpSpec& spec, const Shape& in) {
  if (in.rank() != 3) {
    return Status::InvalidArgument("Bottleneck expects CHW input, got " +
                                   in.ToString());
  }
  const int64_t c = in.dim(0), h = in.dim(1), w = in.dim(2);
  const int64_t mid = spec.mid_channels;
  const int64_t out = spec.out_channels;
  const int64_t h_out = (h - 1) / spec.stride + 1;
  const int64_t w_out = (w - 1) / spec.stride + 1;

  OpStat stat;
  stat.output_shape = Shape{out, h_out, w_out};
  // conv1: 1x1, stride s, c -> mid.
  stat.flops += Conv2DFlops(c, mid, h_out, w_out, 1);
  stat.param_count += c * mid + mid;       // weights + bias
  stat.param_count += 2 * mid;             // bn scale/shift
  // conv2: 3x3, pad 1, mid -> mid.
  stat.flops += Conv2DFlops(mid, mid, h_out, w_out, 3);
  stat.param_count += mid * mid * 9 + mid + 2 * mid;
  // conv3: 1x1, mid -> out.
  stat.flops += Conv2DFlops(mid, out, h_out, w_out, 1);
  stat.param_count += mid * out + out + 2 * out;
  if (spec.project) {
    // Projection shortcut: 1x1 conv, stride s, c -> out, plus BN.
    stat.flops += Conv2DFlops(c, out, h_out, w_out, 1);
    stat.param_count += c * out + out + 2 * out;
  }
  // Residual add + final ReLU.
  stat.flops += 2 * stat.output_shape.num_elements();
  return stat;
}

}  // namespace

Result<OpStat> AnalyzeOp(const OpSpec& spec, const Shape& in) {
  switch (spec.kind) {
    case OpKind::kConv:
      return AnalyzeConv(spec, in);
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
      return AnalyzePool(spec, in);
    case OpKind::kGlobalAvgPool: {
      if (in.rank() != 3) {
        return Status::InvalidArgument("GlobalAvgPool expects CHW input");
      }
      OpStat stat;
      stat.output_shape = Shape{in.dim(0)};
      stat.flops = in.num_elements();
      return stat;
    }
    case OpKind::kLrn: {
      OpStat stat;
      stat.output_shape = in;
      // ~8 FLOPs per element (square, sum window, pow, divide).
      stat.flops = in.num_elements() * 8;
      return stat;
    }
    case OpKind::kFc: {
      OpStat stat;
      stat.output_shape = Shape{spec.out_channels};
      stat.flops =
          FullyConnectedFlops(in.num_elements(), spec.out_channels);
      if (spec.relu) stat.flops += spec.out_channels;
      stat.param_count =
          in.num_elements() * spec.out_channels + spec.out_channels;
      return stat;
    }
    case OpKind::kFlatten: {
      OpStat stat;
      stat.output_shape = Shape{in.num_elements()};
      return stat;
    }
    case OpKind::kSoftmax: {
      OpStat stat;
      stat.output_shape = in;
      stat.flops = in.num_elements() * 3;
      return stat;
    }
    case OpKind::kBottleneck:
      return AnalyzeBottleneck(spec, in);
  }
  return Status::Internal("unhandled OpKind");
}

}  // namespace vista::dl
