#include "dl/cnn.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace vista::dl {

Result<int> CnnArchitecture::FindLayer(const std::string& name) const {
  for (int i = 0; i < num_layers(); ++i) {
    if (stats_[i].name == name) return i;
  }
  return Status::NotFound("no layer named '" + name + "' in " + name_);
}

Result<std::vector<int>> CnnArchitecture::TopLayers(int k) const {
  if (k < 1 || k > num_layers()) {
    return Status::InvalidArgument(
        "TopLayers: k=" + std::to_string(k) + " out of range for " + name_ +
        " with " + std::to_string(num_layers()) + " layers");
  }
  std::vector<int> out;
  out.reserve(k);
  for (int i = num_layers() - k; i < num_layers(); ++i) out.push_back(i);
  return out;
}

int64_t CnnArchitecture::total_params() const {
  int64_t n = 0;
  for (const auto& s : stats_) n += s.param_count;
  return n;
}

int64_t CnnArchitecture::transfer_feature_count(int layer_index,
                                                int grid) const {
  const LayerStat& s = stats_[layer_index];
  if (!s.convolutional) return s.output_shape.num_elements();
  const int64_t h = s.output_shape.dim(1);
  const int64_t w = s.output_shape.dim(2);
  const int64_t gh = std::min<int64_t>(grid, h);
  const int64_t gw = std::min<int64_t>(grid, w);
  return s.output_shape.dim(0) * gh * gw;
}

CnnBuilder::CnnBuilder(std::string name, Shape input_shape) {
  arch_.name_ = std::move(name);
  arch_.input_shape_ = std::move(input_shape);
}

CnnBuilder& CnnBuilder::BeginLayer(std::string name) {
  FinishLayer();
  current_.name = std::move(name);
  layer_open_ = true;
  return *this;
}

void CnnBuilder::FinishLayer() {
  if (layer_open_) {
    arch_.specs_.push_back(std::move(current_));
    current_ = LogicalLayerSpec{};
    layer_open_ = false;
  }
}

CnnBuilder& CnnBuilder::Conv(int64_t filters, int kernel, int stride, int pad,
                             bool relu, int groups) {
  OpSpec op;
  op.kind = OpKind::kConv;
  op.out_channels = filters;
  op.kernel = kernel;
  op.stride = stride;
  op.pad = pad;
  op.relu = relu;
  op.groups = groups;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::MaxPool(int window, int stride, int pad) {
  OpSpec op;
  op.kind = OpKind::kMaxPool;
  op.window = window;
  op.stride = stride;
  op.pad = pad;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::AvgPool(int window, int stride, int pad) {
  OpSpec op;
  op.kind = OpKind::kAvgPool;
  op.window = window;
  op.stride = stride;
  op.pad = pad;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::GlobalAvgPool() {
  OpSpec op;
  op.kind = OpKind::kGlobalAvgPool;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::Lrn() {
  OpSpec op;
  op.kind = OpKind::kLrn;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::Fc(int64_t units, bool relu) {
  OpSpec op;
  op.kind = OpKind::kFc;
  op.out_channels = units;
  op.relu = relu;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::Flatten() {
  OpSpec op;
  op.kind = OpKind::kFlatten;
  current_.ops.push_back(op);
  return *this;
}

CnnBuilder& CnnBuilder::Bottleneck(int64_t mid_channels, int64_t out_channels,
                                   int stride, bool project) {
  OpSpec op;
  op.kind = OpKind::kBottleneck;
  op.mid_channels = mid_channels;
  op.out_channels = out_channels;
  op.stride = stride;
  op.relu = true;
  op.project = project;
  current_.ops.push_back(op);
  return *this;
}

Result<CnnArchitecture> CnnBuilder::Build() {
  FinishLayer();
  if (arch_.specs_.empty()) {
    return Status::InvalidArgument("CNN '" + arch_.name_ + "' has no layers");
  }
  Shape shape = arch_.input_shape_;
  int64_t cumulative = 0;
  arch_.stats_.clear();
  arch_.stats_.reserve(arch_.specs_.size());
  for (const LogicalLayerSpec& layer : arch_.specs_) {
    if (layer.ops.empty()) {
      return Status::InvalidArgument("layer '" + layer.name +
                                     "' has no ops in " + arch_.name_);
    }
    LayerStat stat;
    stat.name = layer.name;
    for (OpSpec op : layer.ops) {
      // FC on a non-vector input implies a flatten, as in the builder API.
      if (op.kind == OpKind::kFc && shape.rank() != 1) {
        shape = Shape{shape.num_elements()};
      }
      VISTA_ASSIGN_OR_RETURN(OpStat op_stat, AnalyzeOp(op, shape));
      stat.flops += op_stat.flops;
      stat.param_count += op_stat.param_count;
      shape = op_stat.output_shape;
    }
    cumulative += stat.flops;
    stat.cumulative_flops = cumulative;
    stat.output_shape = shape;
    stat.convolutional = shape.rank() == 3;
    arch_.stats_.push_back(std::move(stat));
  }
  return std::move(arch_);
}

Result<CnnModel> CnnModel::Instantiate(const CnnArchitecture& arch,
                                       uint64_t seed, WeightInit init) {
  CnnModel model;
  model.arch_ = std::make_shared<CnnArchitecture>(arch);
  Rng rng(seed);
  Shape shape = arch.input_shape();
  bool first_conv = true;
  for (int li = 0; li < arch.num_layers(); ++li) {
    LayerInstance layer;
    int64_t quant_flops = 0;
    for (OpSpec op : arch.layer_spec(li).ops) {
      if (op.kind == OpKind::kFc && shape.rank() != 1) {
        shape = Shape{shape.num_elements()};
      }
      VISTA_ASSIGN_OR_RETURN(
          PrimitiveInstance prim,
          InstantiatePrimitive(op, shape, &rng, init, &first_conv));
      VISTA_ASSIGN_OR_RETURN(OpStat stat, AnalyzeOp(op, shape));
      if (op.kind == OpKind::kConv || op.kind == OpKind::kFc) {
        quant_flops += stat.flops;
      }
      shape = stat.output_shape;
      layer.primitives.push_back(std::move(prim));
    }
    model.layers_.push_back(std::move(layer));
    model.layer_quant_flops_.push_back(quant_flops);
  }
  return model;
}

Result<Tensor> CnnModel::Run(const Tensor& image) const {
  return RunRange(image, 0, arch_->num_layers() - 1);
}

Result<Tensor> CnnModel::RunRange(const Tensor& input, int from, int to,
                                  ThreadPool* pool) const {
  CnnOptions opts;
  opts.pool = pool;
  return RunRange(input, from, to, opts);
}

Result<Tensor> CnnModel::RunRange(const Tensor& input, int from, int to,
                                  const CnnOptions& opts) const {
  ThreadPool* pool = opts.pool;
  if (opts.precision == Precision::kInt8 && !int8_calibrated_) {
    return Status::FailedPrecondition(
        "RunRange: int8 precision requested for " + arch_->name() +
        " but the model has no calibration (run CalibrateInt8 first)");
  }
  if (from < 0 || to >= arch_->num_layers() || from > to) {
    return Status::InvalidArgument(
        "RunRange: bad layer range [" + std::to_string(from) + ", " +
        std::to_string(to) + "] for " + arch_->name());
  }
  const Shape& expected = from == 0
                              ? arch_->input_shape()
                              : arch_->layer(from - 1).output_shape;
  if (input.shape() != expected &&
      input.num_elements() != expected.num_elements()) {
    return Status::InvalidArgument(
        "RunRange: input shape " + input.shape().ToString() +
        " is not shape-compatible with layer " + std::to_string(from) +
        " of " + arch_->name() + " (expected " + expected.ToString() + ")");
  }
  // Flattened inputs (e.g. features stored as vectors in the dataflow
  // engine) are reshaped back to the layer's expected tensor shape.
  Tensor t = input.shape() == expected
                 ? input
                 : Tensor(expected, std::vector<float>(
                                        input.data(),
                                        input.data() + input.num_elements()));
  const bool int8 = opts.precision == Precision::kInt8;
  for (int li = from; li <= to; ++li) {
    obs::ScopedLatency latency(
        layer_forward_ms_.empty() ? nullptr : layer_forward_ms_[li]);
    if (!layer_flops_.empty()) layer_flops_[li]->Add(arch_->layer(li).flops);
    if (int8 && !layer_int8_ops_.empty()) {
      layer_int8_ops_[li]->Add(layer_quant_flops_[li]);
    }
    for (const PrimitiveInstance& prim : layers_[li].primitives) {
      VISTA_ASSIGN_OR_RETURN(t, ApplyPrimitive(prim, t, pool,
                                               opts.precision));
    }
  }
  return t;
}

Result<std::vector<Tensor>> CnnModel::RunRangeBatch(
    const std::vector<Tensor>& inputs, int from, int to,
    const CnnOptions& opts) const {
  std::vector<Tensor> out(inputs.size());
  if (inputs.empty()) return out;
  ThreadPool* pool = opts.pool;
  const bool inter = opts.parallelism == CnnParallelism::kInterImage &&
                     pool != nullptr && pool->num_threads() > 1 &&
                     inputs.size() > 1;
  if (!inter) {
    // Serial over images; a non-null pool is spent inside each kernel.
    CnnOptions intra = opts;
    for (size_t i = 0; i < inputs.size(); ++i) {
      VISTA_ASSIGN_OR_RETURN(out[i], RunRange(inputs[i], from, to, intra));
    }
    return out;
  }
  // One task per image, each with serial kernels; failures land in
  // per-image Status slots (pool tasks must not throw).
  CnnOptions per_image = opts;
  per_image.pool = nullptr;
  std::vector<Status> statuses(inputs.size());
  pool->ParallelFor(static_cast<int64_t>(inputs.size()), [&](int64_t i) {
    auto run = RunRange(inputs[i], from, to, per_image);
    if (run.ok()) {
      out[i] = std::move(run).value();
    } else {
      statuses[i] = run.status();
    }
  });
  for (const Status& s : statuses) {
    VISTA_RETURN_IF_ERROR(s);
  }
  return out;
}

void CnnModel::EnableProfiling(obs::Registry* registry) {
  layer_forward_ms_.clear();
  layer_flops_.clear();
  layer_int8_ops_.clear();
  if (registry == nullptr) return;
  layer_forward_ms_.reserve(arch_->num_layers());
  layer_flops_.reserve(arch_->num_layers());
  layer_int8_ops_.reserve(arch_->num_layers());
  for (int i = 0; i < arch_->num_layers(); ++i) {
    const std::string suffix = arch_->name() + "." + arch_->layer(i).name;
    layer_forward_ms_.push_back(
        registry->histogram("dl.forward_ms." + suffix));
    layer_flops_.push_back(registry->counter("dl.flops." + suffix));
    layer_int8_ops_.push_back(registry->counter("dl.int8_ops." + suffix));
  }
}

std::vector<const Tensor*> CnnModel::weight_tensors() const {
  std::vector<const Tensor*> out;
  for (const LayerInstance& layer : layers_) {
    for (const PrimitiveInstance& prim : layer.primitives) {
      for (const Tensor& w : prim.weights) out.push_back(&w);
    }
  }
  return out;
}

Status CnnModel::SetWeights(const std::vector<Tensor>& weights) {
  size_t at = 0;
  for (LayerInstance& layer : layers_) {
    for (PrimitiveInstance& prim : layer.primitives) {
      for (Tensor& w : prim.weights) {
        if (at >= weights.size()) {
          return Status::InvalidArgument(
              "SetWeights: too few tensors (" +
              std::to_string(weights.size()) + ")");
        }
        if (weights[at].shape() != w.shape()) {
          return Status::InvalidArgument(
              "SetWeights: shape mismatch at tensor " + std::to_string(at) +
              ": " + weights[at].shape().ToString() + " vs " +
              w.shape().ToString());
        }
        w = weights[at++];
      }
      // Quantized copies and scales were derived from the old weights.
      prim.quant = PrimitiveInstance::QuantState{};
    }
  }
  if (at != weights.size()) {
    return Status::InvalidArgument("SetWeights: too many tensors");
  }
  int8_calibrated_ = false;
  return Status::OK();
}

Status CnnModel::CalibrateInt8(const std::vector<Tensor>& images) {
  if (images.empty()) {
    return Status::InvalidArgument(
        "CalibrateInt8: empty calibration batch for " + arch_->name());
  }
  // Pass 1: fp32 forward over the batch, recording the max-abs of every
  // kConv/kFc primitive's input — the per-tensor symmetric activation
  // scale. (kFc flattens, which does not change the max-abs.)
  std::vector<std::vector<float>> max_abs(layers_.size());
  for (size_t li = 0; li < layers_.size(); ++li) {
    max_abs[li].assign(layers_[li].primitives.size(), 0.0f);
  }
  const Shape& expected = arch_->input_shape();
  for (const Tensor& image : images) {
    if (image.shape() != expected &&
        image.num_elements() != expected.num_elements()) {
      return Status::InvalidArgument(
          "CalibrateInt8: image shape " + image.shape().ToString() +
          " is not shape-compatible with " + arch_->name() + " input " +
          expected.ToString());
    }
    Tensor t = image.shape() == expected
                   ? image
                   : Tensor(expected,
                            std::vector<float>(
                                image.data(),
                                image.data() + image.num_elements()));
    for (size_t li = 0; li < layers_.size(); ++li) {
      for (size_t pi = 0; pi < layers_[li].primitives.size(); ++pi) {
        const PrimitiveInstance& prim = layers_[li].primitives[pi];
        if (prim.spec.kind == OpKind::kConv ||
            prim.spec.kind == OpKind::kFc) {
          max_abs[li][pi] = std::max(
              max_abs[li][pi], MaxAbs(t.data(), t.num_elements()));
        }
        VISTA_ASSIGN_OR_RETURN(t, ApplyPrimitive(prim, t));
      }
    }
  }
  // Pass 2: quantize each kConv/kFc weight tensor per output channel and
  // bind the calibrated activation scale.
  for (size_t li = 0; li < layers_.size(); ++li) {
    for (size_t pi = 0; pi < layers_[li].primitives.size(); ++pi) {
      PrimitiveInstance& prim = layers_[li].primitives[pi];
      if (prim.spec.kind != OpKind::kConv && prim.spec.kind != OpKind::kFc) {
        continue;
      }
      VISTA_ASSIGN_OR_RETURN(QuantizedWeights qw,
                             QuantizeWeightsPerChannel(prim.weights[0]));
      prim.quant.weights = std::move(qw);
      prim.quant.act_scale = SymmetricScale(max_abs[li][pi]);
      prim.quant.ready = true;
    }
  }
  int8_calibrated_ = true;
  return Status::OK();
}

Result<Tensor> TransferFeaturize(const Tensor& layer_output, int grid) {
  if (layer_output.shape().rank() == 3) {
    VISTA_ASSIGN_OR_RETURN(Tensor pooled, GridMaxPool(layer_output, grid));
    return pooled.Flatten();
  }
  return layer_output.Flatten();
}

}  // namespace vista::dl
