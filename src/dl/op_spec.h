#ifndef VISTA_DL_OP_SPEC_H_
#define VISTA_DL_OP_SPEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "tensor/shape.h"

namespace vista::dl {

/// Primitive operations composing CNN layers. A paper-sense "layer"
/// (Definition 3.4) is a *logical* layer: a named run of primitives, e.g.
/// AlexNet's conv1 = Conv+ReLU+LRN+MaxPool, or one ResNet bottleneck block.
enum class OpKind {
  kConv,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kLrn,
  kFc,
  kFlatten,
  kSoftmax,
  /// A full ResNet bottleneck residual block (1x1 -> 3x3 -> 1x1 convs with
  /// batch norm and a skip connection, optionally projected).
  kBottleneck,
};

const char* OpKindToString(OpKind kind);

/// Declarative description of one primitive op. Which fields are meaningful
/// depends on `kind`; unused fields stay at their defaults.
struct OpSpec {
  OpKind kind = OpKind::kConv;
  /// Conv filter count / FC units / bottleneck output channels.
  int64_t out_channels = 0;
  /// Bottleneck squeeze width (the 1x1/3x3 channel count).
  int64_t mid_channels = 0;
  int kernel = 0;
  int stride = 1;
  int pad = 0;
  /// Grouped convolution (AlexNet's conv2/4/5 use 2 groups).
  int groups = 1;
  /// Pooling window (max/avg pool).
  int window = 0;
  /// Fused ReLU after conv/fc/bottleneck output.
  bool relu = false;
  /// Bottleneck: use a projection (1x1 conv) shortcut instead of identity.
  bool project = false;
};

/// Analytic properties of an op applied to a given input shape.
struct OpStat {
  Shape output_shape;
  /// Multiply-accumulate FLOPs (2 per MAC); pooling/activation counted as
  /// one FLOP per output element.
  int64_t flops = 0;
  /// Number of learned parameters (weights + biases + BN scale/shift).
  int64_t param_count = 0;
};

/// Computes output shape, FLOPs, and parameter count of `spec` applied to an
/// input of shape `input`. Pure and cheap: used to derive full-size model
/// statistics without allocating weights.
Result<OpStat> AnalyzeOp(const OpSpec& spec, const Shape& input);

}  // namespace vista::dl

#endif  // VISTA_DL_OP_SPEC_H_
