#include "dl/model_parser.h"

#include <map>
#include <sstream>
#include <vector>

namespace vista::dl {
namespace {

/// Splits a line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Parses "key=value" arguments after the op keyword.
Result<std::map<std::string, std::string>> ParseArgs(
    const std::vector<std::string>& tokens, size_t first, int line_no) {
  std::map<std::string, std::string> args;
  for (size_t i = first; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tokens[i].size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected key=value, got '" +
          tokens[i] + "'");
    }
    args[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return args;
}

Result<int64_t> GetInt(const std::map<std::string, std::string>& args,
                       const std::string& key, int line_no,
                       int64_t fallback = -1) {
  auto it = args.find(key);
  if (it == args.end()) {
    if (fallback >= 0) return fallback;
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": missing required argument '" + key +
                                   "'");
  }
  try {
    size_t pos = 0;
    const int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size() || v < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad integer for '" + key + "'");
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad integer for '" + key + "'");
  }
}

Result<bool> GetBool(const std::map<std::string, std::string>& args,
                     const std::string& key, int line_no, bool fallback) {
  auto it = args.find(key);
  if (it == args.end()) return fallback;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  return Status::InvalidArgument("line " + std::to_string(line_no) +
                                 ": expected true/false for '" + key + "'");
}

/// Checks that no unknown keys were passed.
Status CheckKeys(const std::map<std::string, std::string>& args,
                 std::initializer_list<const char*> allowed, int line_no) {
  for (const auto& [key, value] : args) {
    (void)value;
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) ok = true;
    }
    if (!ok) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown argument '" + key + "'");
    }
  }
  return Status::OK();
}

Result<Shape> ParseShape(const std::string& text, int line_no) {
  std::vector<int64_t> dims;
  std::string current;
  for (char ch : text + "x") {
    if (ch == 'x') {
      if (current.empty()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad shape '" + text + "'");
      }
      try {
        dims.push_back(std::stoll(current));
      } catch (...) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad shape '" + text + "'");
      }
      current.clear();
    } else {
      current += ch;
    }
  }
  if (dims.size() != 3) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": input shape must be CxHxW");
  }
  return Shape(std::move(dims));
}

}  // namespace

Result<CnnArchitecture> ParseCnnSpec(const std::string& spec) {
  std::istringstream input(spec);
  std::string line;
  int line_no = 0;

  std::unique_ptr<CnnBuilder> builder;
  bool layer_open = false;

  while (std::getline(input, line)) {
    ++line_no;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "cnn") {
      if (builder != nullptr) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": duplicate 'cnn' header");
      }
      if (tokens.size() != 4 || tokens[2] != "input") {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'cnn <name> input <C>x<H>x<W>'");
      }
      VISTA_ASSIGN_OR_RETURN(Shape shape, ParseShape(tokens[3], line_no));
      builder = std::make_unique<CnnBuilder>(tokens[1], shape);
      continue;
    }
    if (builder == nullptr) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": spec must start with a 'cnn' header");
    }

    if (keyword == "layer") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'layer <name>'");
      }
      builder->BeginLayer(tokens[1]);
      layer_open = true;
      continue;
    }
    if (!layer_open) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": op '" + keyword +
                                     "' before any 'layer'");
    }

    VISTA_ASSIGN_OR_RETURN(auto args, ParseArgs(tokens, 1, line_no));
    if (keyword == "conv") {
      VISTA_RETURN_IF_ERROR(CheckKeys(
          args, {"filters", "kernel", "stride", "pad", "relu", "groups"},
          line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t filters,
                             GetInt(args, "filters", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t kernel, GetInt(args, "kernel", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t stride,
                             GetInt(args, "stride", line_no, 1));
      VISTA_ASSIGN_OR_RETURN(int64_t pad, GetInt(args, "pad", line_no, 0));
      VISTA_ASSIGN_OR_RETURN(bool relu, GetBool(args, "relu", line_no, true));
      VISTA_ASSIGN_OR_RETURN(int64_t groups,
                             GetInt(args, "groups", line_no, 1));
      builder->Conv(filters, static_cast<int>(kernel),
                    static_cast<int>(stride), static_cast<int>(pad), relu,
                    static_cast<int>(groups));
    } else if (keyword == "maxpool" || keyword == "avgpool") {
      VISTA_RETURN_IF_ERROR(
          CheckKeys(args, {"window", "stride", "pad"}, line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t window, GetInt(args, "window", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t stride, GetInt(args, "stride", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t pad, GetInt(args, "pad", line_no, 0));
      if (keyword == "maxpool") {
        builder->MaxPool(static_cast<int>(window), static_cast<int>(stride),
                         static_cast<int>(pad));
      } else {
        builder->AvgPool(static_cast<int>(window), static_cast<int>(stride),
                         static_cast<int>(pad));
      }
    } else if (keyword == "gap") {
      VISTA_RETURN_IF_ERROR(CheckKeys(args, {}, line_no));
      builder->GlobalAvgPool();
    } else if (keyword == "lrn") {
      VISTA_RETURN_IF_ERROR(CheckKeys(args, {}, line_no));
      builder->Lrn();
    } else if (keyword == "fc") {
      VISTA_RETURN_IF_ERROR(CheckKeys(args, {"units", "relu"}, line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t units, GetInt(args, "units", line_no));
      VISTA_ASSIGN_OR_RETURN(bool relu, GetBool(args, "relu", line_no, true));
      builder->Fc(units, relu);
    } else if (keyword == "flatten") {
      VISTA_RETURN_IF_ERROR(CheckKeys(args, {}, line_no));
      builder->Flatten();
    } else if (keyword == "bottleneck") {
      VISTA_RETURN_IF_ERROR(
          CheckKeys(args, {"mid", "out", "stride", "project"}, line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t mid, GetInt(args, "mid", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t out, GetInt(args, "out", line_no));
      VISTA_ASSIGN_OR_RETURN(int64_t stride,
                             GetInt(args, "stride", line_no, 1));
      VISTA_ASSIGN_OR_RETURN(bool project,
                             GetBool(args, "project", line_no, false));
      builder->Bottleneck(mid, out, static_cast<int>(stride), project);
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown op '" + keyword + "'");
    }
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("empty CNN spec");
  }
  return builder->Build();
}

std::string CnnSpecToString(const CnnArchitecture& arch) {
  std::ostringstream os;
  const Shape& in = arch.input_shape();
  os << "cnn " << arch.name() << " input " << in.dim(0) << "x" << in.dim(1)
     << "x" << in.dim(2) << "\n";
  for (int li = 0; li < arch.num_layers(); ++li) {
    os << "layer " << arch.layer(li).name << "\n";
    for (const OpSpec& op : arch.layer_spec(li).ops) {
      switch (op.kind) {
        case OpKind::kConv:
          os << "  conv filters=" << op.out_channels
             << " kernel=" << op.kernel << " stride=" << op.stride
             << " pad=" << op.pad
             << " relu=" << (op.relu ? "true" : "false");
          if (op.groups > 1) os << " groups=" << op.groups;
          os << "\n";
          break;
        case OpKind::kMaxPool:
          os << "  maxpool window=" << op.window << " stride=" << op.stride
             << " pad=" << op.pad << "\n";
          break;
        case OpKind::kAvgPool:
          os << "  avgpool window=" << op.window << " stride=" << op.stride
             << " pad=" << op.pad << "\n";
          break;
        case OpKind::kGlobalAvgPool:
          os << "  gap\n";
          break;
        case OpKind::kLrn:
          os << "  lrn\n";
          break;
        case OpKind::kFc:
          os << "  fc units=" << op.out_channels
             << " relu=" << (op.relu ? "true" : "false") << "\n";
          break;
        case OpKind::kFlatten:
          os << "  flatten\n";
          break;
        case OpKind::kSoftmax:
          break;  // Not representable; never emitted by builders.
        case OpKind::kBottleneck:
          os << "  bottleneck mid=" << op.mid_channels
             << " out=" << op.out_channels << " stride=" << op.stride
             << " project=" << (op.project ? "true" : "false") << "\n";
          break;
      }
    }
  }
  return os.str();
}

}  // namespace vista::dl
