#ifndef VISTA_DL_PRIMITIVE_H_
#define VISTA_DL_PRIMITIVE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dl/op_spec.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace vista {
class ThreadPool;
}

namespace vista::dl {

/// Numeric precision of a forward pass. kInt8 runs calibrated kConv/kFc
/// primitives on the quantized packed GEMM (tensor/gemm_kernel.h) with
/// fp32 layer boundaries; every other primitive (including kBottleneck,
/// whose interleaved batch norms keep it fp32) is unaffected.
enum class Precision : int {
  kFp32 = 0,
  kInt8 = 1,
};

/// Short stable name for metrics/plan printing: "fp32" / "int8".
const char* PrecisionName(Precision p);

/// Weight initialization schemes for instantiated models.
enum class WeightInit {
  /// He-normal everywhere. Produces generic random-projection features.
  kHe,
  /// He-normal, except the first convolution which gets a bank of Gabor
  /// filters (orientation/frequency selective). This mimics the oriented
  /// edge detectors that ImageNet training produces in early layers and is
  /// the documented stand-in for pretrained weights (DESIGN.md §2).
  kGaborFirstConv,
};

/// An instantiated primitive op: its spec, the input shape it was bound to,
/// and its weight tensors (layout depends on the op kind; see
/// primitive.cc). Shared by the sequential CnnModel and the DagModel.
struct PrimitiveInstance {
  OpSpec spec;
  Shape input_shape;
  std::vector<Tensor> weights;

  /// Int8 lowering state, populated by CnnModel::CalibrateInt8 for kConv
  /// and kFc primitives: the per-output-channel quantized weight tensor
  /// and the calibrated symmetric scale of this primitive's input
  /// activations. ready == false until calibration runs (and again after
  /// SetWeights, which invalidates it).
  struct QuantState {
    QuantizedWeights weights;
    float act_scale = 0.0f;
    bool ready = false;
  };
  QuantState quant;
};

/// Allocates and initializes the weights of `op` for an input of `shape`.
/// `first_conv` tracks whether the model's very first convolution is still
/// pending (consumed by the Gabor initialization); pass the same flag
/// across all of a model's primitives.
Result<PrimitiveInstance> InstantiatePrimitive(const OpSpec& op,
                                               const Shape& shape, Rng* rng,
                                               WeightInit init,
                                               bool* first_conv);

/// Executes one primitive on `input`. The input must be shape-compatible
/// with the shape the primitive was instantiated for. A non-null `pool`
/// parallelizes the convolution GEMMs across their row tiles (intra-image
/// parallelism); convolution ReLUs are fused into the GEMM epilogue either
/// way. Precision::kInt8 routes calibrated kConv/kFc primitives through
/// the quantized GEMM (FailedPrecondition if the primitive was never
/// calibrated); other primitive kinds ignore the precision.
Result<Tensor> ApplyPrimitive(const PrimitiveInstance& prim,
                              const Tensor& input, ThreadPool* pool = nullptr,
                              Precision precision = Precision::kFp32);

}  // namespace vista::dl

#endif  // VISTA_DL_PRIMITIVE_H_
