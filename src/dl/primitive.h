#ifndef VISTA_DL_PRIMITIVE_H_
#define VISTA_DL_PRIMITIVE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dl/op_spec.h"
#include "tensor/tensor.h"

namespace vista {
class ThreadPool;
}

namespace vista::dl {

/// Weight initialization schemes for instantiated models.
enum class WeightInit {
  /// He-normal everywhere. Produces generic random-projection features.
  kHe,
  /// He-normal, except the first convolution which gets a bank of Gabor
  /// filters (orientation/frequency selective). This mimics the oriented
  /// edge detectors that ImageNet training produces in early layers and is
  /// the documented stand-in for pretrained weights (DESIGN.md §2).
  kGaborFirstConv,
};

/// An instantiated primitive op: its spec, the input shape it was bound to,
/// and its weight tensors (layout depends on the op kind; see
/// primitive.cc). Shared by the sequential CnnModel and the DagModel.
struct PrimitiveInstance {
  OpSpec spec;
  Shape input_shape;
  std::vector<Tensor> weights;
};

/// Allocates and initializes the weights of `op` for an input of `shape`.
/// `first_conv` tracks whether the model's very first convolution is still
/// pending (consumed by the Gabor initialization); pass the same flag
/// across all of a model's primitives.
Result<PrimitiveInstance> InstantiatePrimitive(const OpSpec& op,
                                               const Shape& shape, Rng* rng,
                                               WeightInit init,
                                               bool* first_conv);

/// Executes one primitive on `input`. The input must be shape-compatible
/// with the shape the primitive was instantiated for. A non-null `pool`
/// parallelizes the convolution GEMMs across their row tiles (intra-image
/// parallelism); convolution ReLUs are fused into the GEMM epilogue either
/// way.
Result<Tensor> ApplyPrimitive(const PrimitiveInstance& prim,
                              const Tensor& input,
                              ThreadPool* pool = nullptr);

}  // namespace vista::dl

#endif  // VISTA_DL_PRIMITIVE_H_
