#ifndef VISTA_DL_MODEL_ZOO_H_
#define VISTA_DL_MODEL_ZOO_H_

#include <string>

#include "common/status.h"
#include "dl/cnn.h"

namespace vista::dl {

/// The roster of well-known CNNs supported for feature transfer
/// (Section 3.2: AlexNet, VGG16, ResNet50 — "due to their popularity in real
/// feature transfer applications").
enum class KnownCnn {
  kAlexNet,
  kVgg16,
  kResNet50,
};

const char* KnownCnnToString(KnownCnn cnn);
Result<KnownCnn> KnownCnnFromString(const std::string& name);

/// Full-size AlexNet (Krizhevsky et al.): input 3x227x227, logical layers
/// conv1..conv5, fc6, fc7, fc8. ~61M parameters.
Result<CnnArchitecture> AlexNetArch();

/// Full-size VGG16 (Simonyan & Zisserman): input 3x224x224, logical layers
/// conv1..conv5 (the five conv blocks), fc6, fc7, fc8. ~138M parameters.
Result<CnnArchitecture> Vgg16Arch();

/// Full-size ResNet50 (He et al.): input 3x224x224, logical layers conv1,
/// conv2_1..conv2_3, conv3_1..conv3_4, conv4_1..conv4_6, conv5_1..conv5_3,
/// fc6 (global average pool + 1000-way FC, named fc6 to match the paper's
/// Figure 8 labels). ~25.5M parameters.
Result<CnnArchitecture> ResNet50Arch();

/// Builds the full-size architecture for a roster CNN.
Result<CnnArchitecture> BuildArch(KnownCnn cnn);

/// Scaled-down runnable counterparts with the same layer topology pattern
/// and the same logical layer names, over 3x32x32 inputs. Used by tests,
/// examples, and the accuracy experiments, where real numerics matter but
/// full-size inference cost does not.
Result<CnnArchitecture> MicroAlexNetArch();
Result<CnnArchitecture> MicroVgg16Arch();
Result<CnnArchitecture> MicroResNet50Arch();
Result<CnnArchitecture> BuildMicroArch(KnownCnn cnn);

/// Memory footprint statistics of a roster CNN as deployed on the DL system
/// (Table 1's |f|_ser, |f|_mem, |f|_mem_gpu). Serialized size is exact
/// (float32 params); runtime footprints are calibrated per DESIGN.md to the
/// behaviour the paper reports (per-replica process footprint including
/// activation workspace).
struct CnnMemoryStats {
  int64_t serialized_bytes = 0;
  int64_t runtime_cpu_bytes = 0;
  int64_t runtime_gpu_bytes = 0;
};

Result<CnnMemoryStats> LookupMemoryStats(KnownCnn cnn);

}  // namespace vista::dl

#endif  // VISTA_DL_MODEL_ZOO_H_
