#include "dl/primitive.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace vista::dl {
namespace {

/// Builds a bank of Gabor filters: `filters` orientations x frequencies over
/// `channels` input channels, each kernel x kernel. The documented stand-in
/// for the oriented edge/texture detectors of pretrained first conv layers.
Tensor GaborFilterBank(int64_t filters, int64_t channels, int kernel,
                       Rng* rng) {
  Tensor w(Shape{filters, channels, kernel, kernel});
  float* data = w.mutable_data();
  const double pi = 3.14159265358979323846;
  const int orientations = 8;
  for (int64_t f = 0; f < filters; ++f) {
    const double theta = pi * static_cast<double>(f % orientations) /
                         static_cast<double>(orientations);
    // Wavelengths cycle through a small set of scales per orientation.
    const double lambda =
        2.0 + 2.0 * static_cast<double>((f / orientations) % 3);
    const double sigma = 0.5 * lambda;
    const double gamma = 0.75;
    const double phase = rng->NextDouble(0.0, pi);
    const double center = (kernel - 1) / 2.0;
    for (int64_t c = 0; c < channels; ++c) {
      // Small per-channel weighting so color carries some signal too.
      const double cw = 0.5 + rng->NextDouble();
      for (int y = 0; y < kernel; ++y) {
        for (int x = 0; x < kernel; ++x) {
          const double xr = (x - center) * std::cos(theta) +
                            (y - center) * std::sin(theta);
          const double yr = -(x - center) * std::sin(theta) +
                            (y - center) * std::cos(theta);
          const double envelope = std::exp(
              -(xr * xr + gamma * gamma * yr * yr) / (2.0 * sigma * sigma));
          const double carrier = std::cos(2.0 * pi * xr / lambda + phase);
          data[((f * channels + c) * kernel + y) * kernel + x] =
              static_cast<float>(cw * envelope * carrier);
        }
      }
    }
  }
  return w;
}

Tensor HeInit(Shape shape, int64_t fan_in, Rng* rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(std::max<int64_t>(1, fan_in)));
  return Tensor::RandomGaussian(std::move(shape), rng, stddev);
}

}  // namespace

const char* PrecisionName(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

Result<PrimitiveInstance> InstantiatePrimitive(const OpSpec& op,
                                               const Shape& shape, Rng* rng,
                                               WeightInit init,
                                               bool* first_conv) {
  PrimitiveInstance prim;
  prim.spec = op;
  prim.input_shape = shape;
  const int64_t c_in = shape.rank() == 3 ? shape.dim(0) : 0;
  switch (op.kind) {
    case OpKind::kConv: {
      const int64_t c_per_group = c_in / std::max(1, op.groups);
      const int64_t fan_in = c_per_group * op.kernel * op.kernel;
      if (*first_conv && init == WeightInit::kGaborFirstConv) {
        prim.weights.push_back(
            GaborFilterBank(op.out_channels, c_per_group, op.kernel, rng));
      } else {
        prim.weights.push_back(HeInit(
            Shape{op.out_channels, c_per_group, op.kernel, op.kernel},
            fan_in, rng));
      }
      prim.weights.push_back(Tensor::Zeros(Shape{op.out_channels}));
      *first_conv = false;
      break;
    }
    case OpKind::kFc: {
      const int64_t in_dim = shape.num_elements();
      prim.weights.push_back(
          HeInit(Shape{op.out_channels, in_dim}, in_dim, rng));
      prim.weights.push_back(Tensor::Zeros(Shape{op.out_channels}));
      break;
    }
    case OpKind::kBottleneck: {
      const int64_t mid = op.mid_channels;
      const int64_t out = op.out_channels;
      // conv1 1x1 (c_in -> mid) + bn.
      prim.weights.push_back(HeInit(Shape{mid, c_in, 1, 1}, c_in, rng));
      prim.weights.push_back(Tensor::Zeros(Shape{mid}));
      prim.weights.push_back(Tensor::Full(Shape{mid}, 1.0f));
      prim.weights.push_back(Tensor::Zeros(Shape{mid}));
      // conv2 3x3 (mid -> mid) + bn.
      prim.weights.push_back(HeInit(Shape{mid, mid, 3, 3}, mid * 9, rng));
      prim.weights.push_back(Tensor::Zeros(Shape{mid}));
      prim.weights.push_back(Tensor::Full(Shape{mid}, 1.0f));
      prim.weights.push_back(Tensor::Zeros(Shape{mid}));
      // conv3 1x1 (mid -> out) + bn. The final BN scale starts small so
      // residual variance does not compound across blocks (the usual
      // residual-branch down-scaling at initialization).
      prim.weights.push_back(HeInit(Shape{out, mid, 1, 1}, mid, rng));
      prim.weights.push_back(Tensor::Zeros(Shape{out}));
      prim.weights.push_back(Tensor::Full(Shape{out}, 0.2f));
      prim.weights.push_back(Tensor::Zeros(Shape{out}));
      if (op.project) {
        prim.weights.push_back(HeInit(Shape{out, c_in, 1, 1}, c_in, rng));
        prim.weights.push_back(Tensor::Zeros(Shape{out}));
        prim.weights.push_back(Tensor::Full(Shape{out}, 1.0f));
        prim.weights.push_back(Tensor::Zeros(Shape{out}));
      }
      *first_conv = false;
      break;
    }
    default:
      break;  // No weights.
  }
  return prim;
}

Result<Tensor> ApplyPrimitive(const PrimitiveInstance& prim,
                              const Tensor& input, ThreadPool* pool,
                              Precision precision) {
  const OpSpec& op = prim.spec;
  const bool int8 = precision == Precision::kInt8 &&
                    (op.kind == OpKind::kConv || op.kind == OpKind::kFc);
  if (int8 && !prim.quant.ready) {
    return Status::FailedPrecondition(
        "int8 inference requested but primitive '" +
        std::string(OpKindToString(op.kind)) +
        "' has no calibration (run CnnModel::CalibrateInt8 first)");
  }
  switch (op.kind) {
    case OpKind::kConv:
      // ReLU rides the GEMM epilogue: no separate output pass.
      if (int8) {
        return Conv2DGemmInt8(input, prim.quant.weights, prim.weights[1],
                              op.stride, op.pad, std::max(1, op.groups),
                              op.relu, prim.quant.act_scale, pool);
      }
      return Conv2DGemmImplicit(input, prim.weights[0], prim.weights[1],
                                op.stride, op.pad, std::max(1, op.groups),
                                op.relu, pool);
    case OpKind::kMaxPool:
      return MaxPool2D(input, op.window, op.stride, op.pad);
    case OpKind::kAvgPool:
      return AvgPool2D(input, op.window, op.stride, op.pad);
    case OpKind::kGlobalAvgPool:
      return GlobalAvgPool(input);
    case OpKind::kLrn:
      return LocalResponseNorm(input);
    case OpKind::kFc: {
      Tensor x = input.shape().rank() == 1 ? input : input.Flatten();
      if (int8) {
        // ReLU is fused into the quantized epilogue.
        return FullyConnectedInt8(x, prim.quant.weights, prim.weights[1],
                                  op.relu, prim.quant.act_scale);
      }
      VISTA_ASSIGN_OR_RETURN(
          Tensor out, FullyConnected(x, prim.weights[0], prim.weights[1]));
      if (op.relu) out = Relu(out);
      return out;
    }
    case OpKind::kFlatten:
      return input.Flatten();
    case OpKind::kSoftmax:
      return Softmax(input);
    case OpKind::kBottleneck: {
      // Batch norm follows each conv, so ReLU cannot be fused here; the
      // pool still parallelizes the three (or four) GEMMs.
      const auto& w = prim.weights;
      VISTA_ASSIGN_OR_RETURN(
          Tensor h1, Conv2DGemmImplicit(input, w[0], w[1], op.stride, 0, 1,
                                        /*relu=*/false, pool));
      VISTA_ASSIGN_OR_RETURN(h1, BatchNormInference(h1, w[2], w[3]));
      h1 = Relu(h1);
      VISTA_ASSIGN_OR_RETURN(
          Tensor h2,
          Conv2DGemmImplicit(h1, w[4], w[5], 1, 1, 1, /*relu=*/false, pool));
      VISTA_ASSIGN_OR_RETURN(h2, BatchNormInference(h2, w[6], w[7]));
      h2 = Relu(h2);
      VISTA_ASSIGN_OR_RETURN(
          Tensor h3,
          Conv2DGemmImplicit(h2, w[8], w[9], 1, 0, 1, /*relu=*/false, pool));
      VISTA_ASSIGN_OR_RETURN(h3, BatchNormInference(h3, w[10], w[11]));
      Tensor skip = input;
      if (op.project) {
        VISTA_ASSIGN_OR_RETURN(
            skip, Conv2DGemmImplicit(input, w[12], w[13], op.stride, 0, 1,
                                     /*relu=*/false, pool));
        VISTA_ASSIGN_OR_RETURN(skip, BatchNormInference(skip, w[14], w[15]));
      }
      VISTA_ASSIGN_OR_RETURN(Tensor sum, Add(h3, skip));
      return Relu(sum);
    }
  }
  return Status::Internal("unhandled OpKind in ApplyPrimitive");
}

}  // namespace vista::dl
