#ifndef VISTA_DL_WEIGHTS_IO_H_
#define VISTA_DL_WEIGHTS_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dl/cnn.h"
#include "dl/dag.h"

namespace vista::dl {

/// Serialized model weights — the |f|_ser artifact of Table 1. The format
/// stores the architecture (as a model-spec string for sequential CNNs) and
/// every weight tensor in instantiation order, so a saved model reloads to
/// bit-identical inference anywhere. This is how "pretrained" weights move
/// between sessions in this codebase.

/// Serializes a CnnModel's weights (with its architecture spec) to a byte
/// blob.
Result<std::vector<uint8_t>> SerializeCnnModel(const CnnModel& model);

/// Reconstructs a CnnModel from a blob produced by SerializeCnnModel.
Result<CnnModel> DeserializeCnnModel(const std::vector<uint8_t>& blob);

/// File convenience wrappers.
Status SaveCnnModel(const CnnModel& model, const std::string& path);
Result<CnnModel> LoadCnnModel(const std::string& path);

}  // namespace vista::dl

#endif  // VISTA_DL_WEIGHTS_IO_H_
