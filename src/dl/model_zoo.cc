#include "dl/model_zoo.h"

#include "common/bytes.h"

namespace vista::dl {

const char* KnownCnnToString(KnownCnn cnn) {
  switch (cnn) {
    case KnownCnn::kAlexNet:
      return "AlexNet";
    case KnownCnn::kVgg16:
      return "VGG16";
    case KnownCnn::kResNet50:
      return "ResNet50";
  }
  return "?";
}

Result<KnownCnn> KnownCnnFromString(const std::string& name) {
  if (name == "AlexNet") return KnownCnn::kAlexNet;
  if (name == "VGG16") return KnownCnn::kVgg16;
  if (name == "ResNet50") return KnownCnn::kResNet50;
  return Status::NotFound("unknown CNN '" + name +
                          "' (roster: AlexNet, VGG16, ResNet50)");
}

Result<CnnArchitecture> AlexNetArch() {
  CnnBuilder b("AlexNet", Shape{3, 227, 227});
  b.BeginLayer("conv1").Conv(96, 11, 4, 0).Lrn().MaxPool(3, 2);
  b.BeginLayer("conv2").Conv(256, 5, 1, 2, true, /*groups=*/2)
      .Lrn()
      .MaxPool(3, 2);
  b.BeginLayer("conv3").Conv(384, 3, 1, 1);
  b.BeginLayer("conv4").Conv(384, 3, 1, 1, true, /*groups=*/2);
  b.BeginLayer("conv5").Conv(256, 3, 1, 1, true, /*groups=*/2).MaxPool(3, 2);
  b.BeginLayer("fc6").Fc(4096);
  b.BeginLayer("fc7").Fc(4096);
  b.BeginLayer("fc8").Fc(1000, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> Vgg16Arch() {
  CnnBuilder b("VGG16", Shape{3, 224, 224});
  b.BeginLayer("conv1")
      .Conv(64, 3, 1, 1)
      .Conv(64, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv2")
      .Conv(128, 3, 1, 1)
      .Conv(128, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv3")
      .Conv(256, 3, 1, 1)
      .Conv(256, 3, 1, 1)
      .Conv(256, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv4")
      .Conv(512, 3, 1, 1)
      .Conv(512, 3, 1, 1)
      .Conv(512, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv5")
      .Conv(512, 3, 1, 1)
      .Conv(512, 3, 1, 1)
      .Conv(512, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("fc6").Fc(4096);
  b.BeginLayer("fc7").Fc(4096);
  b.BeginLayer("fc8").Fc(1000, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> ResNet50Arch() {
  CnnBuilder b("ResNet50", Shape{3, 224, 224});
  b.BeginLayer("conv1").Conv(64, 7, 2, 3).MaxPool(3, 2, 1);
  // conv2_x: 3 bottlenecks, 64->256.
  b.BeginLayer("conv2_1").Bottleneck(64, 256, 1, /*project=*/true);
  b.BeginLayer("conv2_2").Bottleneck(64, 256, 1, false);
  b.BeginLayer("conv2_3").Bottleneck(64, 256, 1, false);
  // conv3_x: 4 bottlenecks, 128->512.
  b.BeginLayer("conv3_1").Bottleneck(128, 512, 2, true);
  b.BeginLayer("conv3_2").Bottleneck(128, 512, 1, false);
  b.BeginLayer("conv3_3").Bottleneck(128, 512, 1, false);
  b.BeginLayer("conv3_4").Bottleneck(128, 512, 1, false);
  // conv4_x: 6 bottlenecks, 256->1024.
  b.BeginLayer("conv4_1").Bottleneck(256, 1024, 2, true);
  b.BeginLayer("conv4_2").Bottleneck(256, 1024, 1, false);
  b.BeginLayer("conv4_3").Bottleneck(256, 1024, 1, false);
  b.BeginLayer("conv4_4").Bottleneck(256, 1024, 1, false);
  b.BeginLayer("conv4_5").Bottleneck(256, 1024, 1, false);
  b.BeginLayer("conv4_6").Bottleneck(256, 1024, 1, false);
  // conv5_x: 3 bottlenecks, 512->2048.
  b.BeginLayer("conv5_1").Bottleneck(512, 2048, 2, true);
  b.BeginLayer("conv5_2").Bottleneck(512, 2048, 1, false);
  b.BeginLayer("conv5_3").Bottleneck(512, 2048, 1, false);
  // The paper's Figure 8 calls the pooled top of ResNet50 "fc_6".
  b.BeginLayer("fc6").GlobalAvgPool().Fc(1000, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> BuildArch(KnownCnn cnn) {
  switch (cnn) {
    case KnownCnn::kAlexNet:
      return AlexNetArch();
    case KnownCnn::kVgg16:
      return Vgg16Arch();
    case KnownCnn::kResNet50:
      return ResNet50Arch();
  }
  return Status::Internal("unhandled KnownCnn");
}

Result<CnnArchitecture> MicroAlexNetArch() {
  CnnBuilder b("MicroAlexNet", Shape{3, 32, 32});
  b.BeginLayer("conv1").Conv(12, 5, 1, 2).Lrn().MaxPool(3, 2);
  b.BeginLayer("conv2").Conv(24, 3, 1, 1).Lrn().MaxPool(3, 2);
  b.BeginLayer("conv3").Conv(32, 3, 1, 1);
  b.BeginLayer("conv4").Conv(32, 3, 1, 1);
  b.BeginLayer("conv5").Conv(24, 3, 1, 1).MaxPool(3, 2);
  b.BeginLayer("fc6").Fc(64);
  b.BeginLayer("fc7").Fc(48);
  b.BeginLayer("fc8").Fc(16, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> MicroVgg16Arch() {
  CnnBuilder b("MicroVGG16", Shape{3, 32, 32});
  b.BeginLayer("conv1").Conv(8, 3, 1, 1).Conv(8, 3, 1, 1).MaxPool(2, 2);
  b.BeginLayer("conv2").Conv(16, 3, 1, 1).Conv(16, 3, 1, 1).MaxPool(2, 2);
  b.BeginLayer("conv3")
      .Conv(32, 3, 1, 1)
      .Conv(32, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv4")
      .Conv(48, 3, 1, 1)
      .Conv(48, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("conv5")
      .Conv(48, 3, 1, 1)
      .Conv(48, 3, 1, 1)
      .MaxPool(2, 2);
  b.BeginLayer("fc6").Fc(64);
  b.BeginLayer("fc7").Fc(48);
  b.BeginLayer("fc8").Fc(16, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> MicroResNet50Arch() {
  CnnBuilder b("MicroResNet50", Shape{3, 32, 32});
  b.BeginLayer("conv1").Conv(8, 3, 1, 1).MaxPool(3, 2, 1);
  b.BeginLayer("conv2_1").Bottleneck(8, 32, 1, true);
  b.BeginLayer("conv3_1").Bottleneck(16, 64, 2, true);
  b.BeginLayer("conv4_1").Bottleneck(32, 128, 2, true);
  b.BeginLayer("conv4_6").Bottleneck(32, 128, 1, false);
  b.BeginLayer("conv5_1").Bottleneck(64, 256, 2, true);
  b.BeginLayer("conv5_2").Bottleneck(64, 256, 1, false);
  b.BeginLayer("conv5_3").Bottleneck(64, 256, 1, false);
  b.BeginLayer("fc6").GlobalAvgPool().Fc(16, /*relu=*/false);
  return b.Build();
}

Result<CnnArchitecture> BuildMicroArch(KnownCnn cnn) {
  switch (cnn) {
    case KnownCnn::kAlexNet:
      return MicroAlexNetArch();
    case KnownCnn::kVgg16:
      return MicroVgg16Arch();
    case KnownCnn::kResNet50:
      return MicroResNet50Arch();
  }
  return Status::Internal("unhandled KnownCnn");
}

Result<CnnMemoryStats> LookupMemoryStats(KnownCnn cnn) {
  // Serialized sizes are the exact float32 parameter sizes of the
  // architectures above. Runtime footprints are per-replica process
  // footprints (weights + activation workspace + framework overhead),
  // calibrated so the crash behaviour of Section 5.1 reproduces; see
  // DESIGN.md §2 and EXPERIMENTS.md.
  CnnMemoryStats stats;
  switch (cnn) {
    case KnownCnn::kAlexNet:
      stats.serialized_bytes = MiB(233);
      stats.runtime_cpu_bytes = MiB(250);
      stats.runtime_gpu_bytes = MiB(1230);
      return stats;
    case KnownCnn::kVgg16:
      stats.serialized_bytes = MiB(528);
      stats.runtime_cpu_bytes = MiB(6350);
      stats.runtime_gpu_bytes = MiB(4400);
      return stats;
    case KnownCnn::kResNet50:
      stats.serialized_bytes = MiB(98);
      stats.runtime_cpu_bytes = MiB(390);
      stats.runtime_gpu_bytes = MiB(1540);
      return stats;
  }
  return Status::Internal("unhandled KnownCnn");
}

}  // namespace vista::dl
