#include "dl/weights_io.h"

#include <cstdio>
#include <cstring>

#include "dl/model_parser.h"

namespace vista::dl {
namespace {

constexpr char kMagic[8] = {'V', 'C', 'N', 'N', '0', '0', '0', '1'};

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

Status ReadBytes(const std::vector<uint8_t>& blob, size_t* offset, void* dst,
                 size_t bytes) {
  if (*offset + bytes > blob.size()) {
    return Status::InvalidArgument("weights blob truncated");
  }
  std::memcpy(dst, blob.data() + *offset, bytes);
  *offset += bytes;
  return Status::OK();
}

}  // namespace

Result<std::vector<uint8_t>> SerializeCnnModel(const CnnModel& model) {
  std::vector<uint8_t> blob;
  blob.insert(blob.end(), kMagic, kMagic + sizeof(kMagic));
  const std::string spec = CnnSpecToString(model.arch());
  PutU32(static_cast<uint32_t>(spec.size()), &blob);
  blob.insert(blob.end(), spec.begin(), spec.end());

  const std::vector<const Tensor*> weights = model.weight_tensors();
  PutU32(static_cast<uint32_t>(weights.size()), &blob);
  for (const Tensor* w : weights) {
    PutU32(static_cast<uint32_t>(w->shape().rank()), &blob);
    for (int d = 0; d < w->shape().rank(); ++d) {
      PutI64(w->shape().dim(d), &blob);
    }
    const size_t at = blob.size();
    blob.resize(at + static_cast<size_t>(w->num_bytes()));
    std::memcpy(blob.data() + at, w->data(),
                static_cast<size_t>(w->num_bytes()));
  }
  return blob;
}

Result<CnnModel> DeserializeCnnModel(const std::vector<uint8_t>& blob) {
  size_t offset = 0;
  char magic[sizeof(kMagic)];
  VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a Vista CNN weights blob");
  }
  uint32_t spec_len = 0;
  VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, &spec_len, 4));
  if (offset + spec_len > blob.size()) {
    return Status::InvalidArgument("weights blob truncated (spec)");
  }
  const std::string spec(blob.begin() + offset,
                         blob.begin() + offset + spec_len);
  offset += spec_len;
  VISTA_ASSIGN_OR_RETURN(CnnArchitecture arch, ParseCnnSpec(spec));
  // Instantiate with arbitrary seed, then overwrite every weight.
  VISTA_ASSIGN_OR_RETURN(CnnModel model, CnnModel::Instantiate(arch, 0));

  uint32_t num_tensors = 0;
  VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, &num_tensors, 4));
  std::vector<Tensor> weights;
  weights.reserve(num_tensors);
  for (uint32_t i = 0; i < num_tensors; ++i) {
    uint32_t rank = 0;
    VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, &rank, 4));
    if (rank > 8) return Status::InvalidArgument("bad tensor rank");
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, &dims[d], 8));
      if (dims[d] <= 0) return Status::InvalidArgument("bad tensor dim");
    }
    Tensor t{Shape(std::move(dims))};
    VISTA_RETURN_IF_ERROR(ReadBytes(blob, &offset, t.mutable_data(),
                                    static_cast<size_t>(t.num_bytes())));
    weights.push_back(std::move(t));
  }
  if (offset != blob.size()) {
    return Status::InvalidArgument("trailing bytes in weights blob");
  }
  VISTA_RETURN_IF_ERROR(model.SetWeights(weights));
  return model;
}

Status SaveCnnModel(const CnnModel& model, const std::string& path) {
  VISTA_ASSIGN_OR_RETURN(std::vector<uint8_t> blob,
                         SerializeCnnModel(model));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (written != blob.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<CnnModel> LoadCnnModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> blob(static_cast<size_t>(size));
  const size_t read = std::fread(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (read != blob.size()) return Status::IOError("short read from " + path);
  return DeserializeCnnModel(blob);
}

}  // namespace vista::dl
