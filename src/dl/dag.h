#ifndef VISTA_DL_DAG_H_
#define VISTA_DL_DAG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dl/cnn.h"
#include "dl/primitive.h"

namespace vista::dl {

/// DAG-structured feature-transfer models — the extension the paper leaves
/// to future work (Section 5.4): "a feature layer in BERT depends on
/// multiple input layers and supporting it requires generalizing our staged
/// materialization plan to support arbitrary DAG architectures". This
/// module provides (1) a validated DAG architecture with per-node
/// statistics, (2) a runnable DagModel with partial inference from any
/// materialized frontier, and (3) PlanStagedDag — the generalized staged
/// materialization plan that never recomputes a node and keeps the minimal
/// frontier alive between hops.

/// How a node with multiple inputs combines them before applying its ops.
enum class MergeOp {
  /// Single (or raw) input; no merging.
  kNone,
  /// Channel-wise concatenation for CHW inputs (equal H and W), element
  /// concatenation for vectors — DenseNet-style aggregation.
  kConcat,
  /// Element-wise addition (equal shapes) — residual/BERT-style
  /// aggregation.
  kAdd,
};

const char* MergeOpToString(MergeOp merge);

/// One logical node of the DAG: where its inputs come from, how they merge,
/// and the primitive ops applied to the merged tensor. An empty `inputs`
/// list means the node consumes the raw model input.
struct DagNodeSpec {
  std::string name;
  std::vector<int> inputs;
  MergeOp merge = MergeOp::kNone;
  std::vector<OpSpec> ops;
};

/// Analytic statistics of a DAG node.
struct DagNodeStat {
  std::string name;
  Shape output_shape;
  int64_t flops = 0;
  int64_t param_count = 0;
  bool convolutional = false;
};

/// A validated DAG of logical layers. Nodes are stored in topological
/// order (every input index is smaller than the node's own index).
class DagArchitecture {
 public:
  /// Validates the node list (topological references, merge/shape
  /// compatibility) and computes all statistics.
  static Result<DagArchitecture> Create(std::string name, Shape input_shape,
                                        std::vector<DagNodeSpec> nodes);

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  int num_nodes() const { return static_cast<int>(stats_.size()); }
  const DagNodeStat& node(int i) const { return stats_[i]; }
  const DagNodeSpec& node_spec(int i) const { return specs_[i]; }
  /// Nodes that consume node i's output.
  const std::vector<int>& consumers(int i) const { return consumers_[i]; }

  Result<int> FindNode(const std::string& name) const;
  int64_t total_params() const;

  /// All ancestors of `node` (nodes whose outputs are transitively needed),
  /// excluding `node` itself, ascending.
  std::vector<int> Ancestors(int node) const;

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<DagNodeSpec> specs_;
  std::vector<DagNodeStat> stats_;
  std::vector<std::vector<int>> consumers_;
};

/// An instantiated, runnable DAG model.
class DagModel {
 public:
  static Result<DagModel> Instantiate(const DagArchitecture& arch,
                                      uint64_t seed,
                                      WeightInit init = WeightInit::kHe);

  const DagArchitecture& arch() const { return *arch_; }

  /// Partial DAG inference: computes the outputs of every node in
  /// `targets`, reusing the tensors in `available` (node index -> output;
  /// the raw input goes under index kRawInput). Only the missing part of
  /// the DAG is evaluated. Fails (FailedPrecondition) if a required value
  /// can be reached neither from `available` nor from the raw input.
  /// A non-null `pool` parallelizes each node's convolution GEMMs across
  /// their row tiles (the DAG itself is evaluated sequentially in
  /// dependency order).
  static constexpr int kRawInput = -1;
  Result<std::map<int, Tensor>> Compute(const std::map<int, Tensor>& available,
                                        const std::vector<int>& targets,
                                        ThreadPool* pool = nullptr) const;

  /// Convenience: full inference of one node from the raw input.
  Result<Tensor> ComputeFromInput(const Tensor& input, int target,
                                  ThreadPool* pool = nullptr) const;

 private:
  struct NodeInstance {
    std::vector<PrimitiveInstance> primitives;
  };

  Result<Tensor> EvalNode(int node, std::map<int, Tensor>* memo,
                          ThreadPool* pool) const;

  std::shared_ptr<const DagArchitecture> arch_;
  std::vector<NodeInstance> nodes_;
};

/// One hop of the generalized staged plan: materialize `target`, computing
/// exactly `compute_nodes` (none of which was computed before), then retain
/// only `keep_after` for later hops.
struct DagStagedHop {
  int target = -1;
  std::vector<int> compute_nodes;
  std::vector<int> keep_after;
  /// Per-record bytes of the retained frontier after this hop (includes
  /// the raw input while any un-computed node still needs it).
  int64_t keep_bytes = 0;
};

/// The generalized staged materialization plan for a set of target feature
/// nodes: hops in topological target order; no node is ever computed twice;
/// the frontier retained between hops is the minimal set whose consumers
/// are not all finished.
struct DagStagedPlan {
  std::vector<DagStagedHop> hops;
  int64_t peak_keep_bytes = 0;
  /// Total FLOPs per record (equals computing every needed node once).
  int64_t total_flops = 0;
};

Result<DagStagedPlan> PlanStagedDag(const DagArchitecture& arch,
                                    std::vector<int> targets);

/// A runnable DenseNet-flavored DAG (dense connectivity within a block) for
/// tests and examples, over 3x32x32 inputs.
Result<DagArchitecture> MicroDenseNetDag();

/// A BERT-flavored encoder stack sketch: fc blocks with additive skip
/// aggregation, whose top "feature layers" each depend on multiple lower
/// layers (Section 5.4's motivating case). Input is a flattened embedding.
Result<DagArchitecture> MicroSkipEncoderDag();

}  // namespace vista::dl

#endif  // VISTA_DL_DAG_H_
