#include "dl/dag.h"

#include <algorithm>
#include <set>

#include "tensor/ops.h"

namespace vista::dl {
namespace {

/// Shape of merged inputs, with compatibility validation.
Result<Shape> MergedShape(const std::vector<Shape>& shapes, MergeOp merge,
                          const std::string& node_name) {
  if (shapes.empty()) {
    return Status::Internal("MergedShape with no inputs");
  }
  if (shapes.size() == 1) return shapes[0];
  if (merge == MergeOp::kNone) {
    return Status::InvalidArgument("node '" + node_name +
                                   "' has multiple inputs but no merge op");
  }
  if (merge == MergeOp::kAdd) {
    for (size_t i = 1; i < shapes.size(); ++i) {
      if (shapes[i] != shapes[0]) {
        return Status::InvalidArgument(
            "node '" + node_name + "': add-merge shape mismatch " +
            shapes[0].ToString() + " vs " + shapes[i].ToString());
      }
    }
    return shapes[0];
  }
  // Concat.
  if (shapes[0].rank() == 3) {
    int64_t channels = 0;
    for (const Shape& s : shapes) {
      if (s.rank() != 3 || s.dim(1) != shapes[0].dim(1) ||
          s.dim(2) != shapes[0].dim(2)) {
        return Status::InvalidArgument(
            "node '" + node_name +
            "': concat-merge needs CHW inputs with equal H,W");
      }
      channels += s.dim(0);
    }
    return Shape{channels, shapes[0].dim(1), shapes[0].dim(2)};
  }
  int64_t length = 0;
  for (const Shape& s : shapes) {
    if (s.rank() != 1) {
      return Status::InvalidArgument(
          "node '" + node_name + "': concat-merge of mixed ranks");
    }
    length += s.dim(0);
  }
  return Shape{length};
}

/// Merges input tensors per the merge op (shapes pre-validated).
Result<Tensor> MergeTensors(const std::vector<Tensor>& inputs, MergeOp merge,
                            const Shape& merged_shape) {
  if (inputs.size() == 1) return inputs[0];
  if (merge == MergeOp::kAdd) {
    Tensor out = inputs[0].Clone();
    for (size_t i = 1; i < inputs.size(); ++i) {
      VISTA_ASSIGN_OR_RETURN(out, Add(out, inputs[i]));
    }
    return out;
  }
  // Concat: channel-major layout makes CHW channel concatenation (and
  // vector concatenation) a flat copy in input order.
  Tensor out(merged_shape);
  float* dst = out.mutable_data();
  int64_t at = 0;
  for (const Tensor& t : inputs) {
    std::copy(t.data(), t.data() + t.num_elements(), dst + at);
    at += t.num_elements();
  }
  return out;
}

}  // namespace

const char* MergeOpToString(MergeOp merge) {
  switch (merge) {
    case MergeOp::kNone:
      return "none";
    case MergeOp::kConcat:
      return "concat";
    case MergeOp::kAdd:
      return "add";
  }
  return "?";
}

Result<DagArchitecture> DagArchitecture::Create(
    std::string name, Shape input_shape, std::vector<DagNodeSpec> nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("DAG '" + name + "' has no nodes");
  }
  DagArchitecture arch;
  arch.name_ = std::move(name);
  arch.input_shape_ = std::move(input_shape);
  arch.consumers_.resize(nodes.size());

  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    const DagNodeSpec& spec = nodes[i];
    if (spec.name.empty()) {
      return Status::InvalidArgument("DAG node " + std::to_string(i) +
                                     " has no name");
    }
    for (int j = 0; j < i; ++j) {
      if (nodes[j].name == spec.name) {
        return Status::InvalidArgument("duplicate DAG node name '" +
                                       spec.name + "'");
      }
    }
    std::vector<Shape> input_shapes;
    if (spec.inputs.empty()) {
      input_shapes.push_back(arch.input_shape_);
    } else {
      for (int input : spec.inputs) {
        if (input < 0 || input >= i) {
          return Status::InvalidArgument(
              "node '" + spec.name + "' references node " +
              std::to_string(input) +
              " which is not an earlier node (topological order required)");
        }
        input_shapes.push_back(arch.stats_[input].output_shape);
        arch.consumers_[input].push_back(i);
      }
    }
    VISTA_ASSIGN_OR_RETURN(Shape shape,
                           MergedShape(input_shapes, spec.merge, spec.name));
    DagNodeStat stat;
    stat.name = spec.name;
    if (spec.merge == MergeOp::kAdd && spec.inputs.size() > 1) {
      stat.flops += shape.num_elements() *
                    static_cast<int64_t>(spec.inputs.size() - 1);
    }
    for (OpSpec op : spec.ops) {
      if (op.kind == OpKind::kFc && shape.rank() != 1) {
        shape = Shape{shape.num_elements()};
      }
      VISTA_ASSIGN_OR_RETURN(OpStat op_stat, AnalyzeOp(op, shape));
      stat.flops += op_stat.flops;
      stat.param_count += op_stat.param_count;
      shape = op_stat.output_shape;
    }
    stat.output_shape = shape;
    stat.convolutional = shape.rank() == 3;
    arch.stats_.push_back(std::move(stat));
    arch.specs_.push_back(spec);
  }
  return arch;
}

Result<int> DagArchitecture::FindNode(const std::string& name) const {
  for (int i = 0; i < num_nodes(); ++i) {
    if (stats_[i].name == name) return i;
  }
  return Status::NotFound("no DAG node named '" + name + "' in " + name_);
}

int64_t DagArchitecture::total_params() const {
  int64_t n = 0;
  for (const auto& s : stats_) n += s.param_count;
  return n;
}

std::vector<int> DagArchitecture::Ancestors(int node) const {
  std::set<int> seen;
  std::vector<int> frontier = specs_[node].inputs;
  while (!frontier.empty()) {
    const int n = frontier.back();
    frontier.pop_back();
    if (!seen.insert(n).second) continue;
    for (int input : specs_[n].inputs) frontier.push_back(input);
  }
  return std::vector<int>(seen.begin(), seen.end());
}

Result<DagModel> DagModel::Instantiate(const DagArchitecture& arch,
                                       uint64_t seed, WeightInit init) {
  DagModel model;
  model.arch_ = std::make_shared<DagArchitecture>(arch);
  Rng rng(seed);
  bool first_conv = true;
  for (int i = 0; i < arch.num_nodes(); ++i) {
    const DagNodeSpec& spec = arch.node_spec(i);
    std::vector<Shape> input_shapes;
    if (spec.inputs.empty()) {
      input_shapes.push_back(arch.input_shape());
    } else {
      for (int input : spec.inputs) {
        input_shapes.push_back(arch.node(input).output_shape);
      }
    }
    VISTA_ASSIGN_OR_RETURN(Shape shape,
                           MergedShape(input_shapes, spec.merge, spec.name));
    NodeInstance node;
    for (OpSpec op : spec.ops) {
      if (op.kind == OpKind::kFc && shape.rank() != 1) {
        shape = Shape{shape.num_elements()};
      }
      VISTA_ASSIGN_OR_RETURN(
          PrimitiveInstance prim,
          InstantiatePrimitive(op, shape, &rng, init, &first_conv));
      VISTA_ASSIGN_OR_RETURN(OpStat stat, AnalyzeOp(op, shape));
      shape = stat.output_shape;
      node.primitives.push_back(std::move(prim));
    }
    model.nodes_.push_back(std::move(node));
  }
  return model;
}

Result<Tensor> DagModel::EvalNode(int node, std::map<int, Tensor>* memo,
                                  ThreadPool* pool) const {
  auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  const DagNodeSpec& spec = arch_->node_spec(node);

  std::vector<Tensor> inputs;
  if (spec.inputs.empty()) {
    auto raw = memo->find(kRawInput);
    if (raw == memo->end()) {
      return Status::FailedPrecondition(
          "node '" + spec.name +
          "' needs the raw input, which is not available");
    }
    inputs.push_back(raw->second);
  } else {
    for (int input : spec.inputs) {
      VISTA_ASSIGN_OR_RETURN(Tensor value, EvalNode(input, memo, pool));
      inputs.push_back(std::move(value));
    }
  }
  std::vector<Shape> shapes;
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  VISTA_ASSIGN_OR_RETURN(Shape merged_shape,
                         MergedShape(shapes, spec.merge, spec.name));
  VISTA_ASSIGN_OR_RETURN(Tensor value,
                         MergeTensors(inputs, spec.merge, merged_shape));
  for (const PrimitiveInstance& prim : nodes_[node].primitives) {
    VISTA_ASSIGN_OR_RETURN(value, ApplyPrimitive(prim, value, pool));
  }
  memo->emplace(node, value);
  return value;
}

Result<std::map<int, Tensor>> DagModel::Compute(
    const std::map<int, Tensor>& available, const std::vector<int>& targets,
    ThreadPool* pool) const {
  std::map<int, Tensor> memo = available;
  std::map<int, Tensor> out;
  for (int target : targets) {
    if (target < 0 || target >= arch_->num_nodes()) {
      return Status::InvalidArgument("bad DAG target index " +
                                     std::to_string(target));
    }
    VISTA_ASSIGN_OR_RETURN(Tensor value, EvalNode(target, &memo, pool));
    out.emplace(target, std::move(value));
  }
  return out;
}

Result<Tensor> DagModel::ComputeFromInput(const Tensor& input, int target,
                                          ThreadPool* pool) const {
  std::map<int, Tensor> available;
  available.emplace(kRawInput, input);
  VISTA_ASSIGN_OR_RETURN(auto values, Compute(available, {target}, pool));
  return values.at(target);
}

Result<DagStagedPlan> PlanStagedDag(const DagArchitecture& arch,
                                    std::vector<int> targets) {
  if (targets.empty()) {
    return Status::InvalidArgument("no target nodes");
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (int t : targets) {
    if (t < 0 || t >= arch.num_nodes()) {
      return Status::InvalidArgument("bad DAG target index " +
                                     std::to_string(t));
    }
  }

  // Everything transitively needed by any target.
  std::set<int> needed(targets.begin(), targets.end());
  for (int t : targets) {
    for (int a : arch.Ancestors(t)) needed.insert(a);
  }

  DagStagedPlan plan;
  std::set<int> computed;
  for (int target : targets) {
    DagStagedHop hop;
    hop.target = target;
    // Compute every not-yet-computed needed ancestor of this target, plus
    // the target itself, in topological (index) order.
    const std::vector<int> ancestors = arch.Ancestors(target);
    std::set<int> want(ancestors.begin(), ancestors.end());
    want.insert(target);
    for (int n : want) {
      if (needed.count(n) > 0 && computed.count(n) == 0) {
        hop.compute_nodes.push_back(n);
        plan.total_flops += arch.node(n).flops;
      }
    }
    for (int n : hop.compute_nodes) computed.insert(n);

    // Frontier: computed nodes with at least one needed, not-yet-computed
    // consumer.
    bool raw_still_needed = false;
    for (int n : needed) {
      if (computed.count(n) == 0 && arch.node_spec(n).inputs.empty()) {
        raw_still_needed = true;
      }
      // Nodes whose ancestors include a raw-input node that is not yet
      // computed also keep the raw input alive transitively; covered by
      // the check above because that raw-consuming ancestor is in `needed`.
    }
    for (int n : computed) {
      bool has_open_consumer = false;
      for (int consumer : arch.consumers(n)) {
        if (needed.count(consumer) > 0 && computed.count(consumer) == 0) {
          has_open_consumer = true;
          break;
        }
      }
      if (has_open_consumer) hop.keep_after.push_back(n);
    }
    hop.keep_bytes = raw_still_needed ? arch.input_shape().num_bytes() : 0;
    for (int n : hop.keep_after) {
      hop.keep_bytes += arch.node(n).output_shape.num_bytes();
    }
    plan.peak_keep_bytes = std::max(plan.peak_keep_bytes, hop.keep_bytes);
    plan.hops.push_back(std::move(hop));
  }
  return plan;
}

Result<DagArchitecture> MicroDenseNetDag() {
  auto conv = [](int64_t filters, int kernel, int stride, int pad) {
    OpSpec op;
    op.kind = OpKind::kConv;
    op.out_channels = filters;
    op.kernel = kernel;
    op.stride = stride;
    op.pad = pad;
    op.relu = true;
    return op;
  };
  OpSpec pool;
  pool.kind = OpKind::kMaxPool;
  pool.window = 2;
  pool.stride = 2;
  OpSpec gap;
  gap.kind = OpKind::kGlobalAvgPool;
  OpSpec fc;
  fc.kind = OpKind::kFc;
  fc.out_channels = 16;
  fc.relu = false;

  std::vector<DagNodeSpec> nodes;
  // Stem: raw input -> 8x16x16.
  nodes.push_back({"stem", {}, MergeOp::kNone, {conv(8, 3, 1, 1), pool}});
  // Dense block: each node sees the concatenation of all previous outputs.
  nodes.push_back({"dense1", {0}, MergeOp::kNone, {conv(8, 3, 1, 1)}});
  nodes.push_back({"dense2", {0, 1}, MergeOp::kConcat, {conv(8, 3, 1, 1)}});
  nodes.push_back(
      {"dense3", {0, 1, 2}, MergeOp::kConcat, {conv(8, 3, 1, 1)}});
  // Transition + head.
  nodes.push_back(
      {"transition", {0, 1, 2, 3}, MergeOp::kConcat, {conv(16, 1, 1, 0),
                                                      pool}});
  nodes.push_back({"head", {4}, MergeOp::kNone, {gap, fc}});
  return DagArchitecture::Create("MicroDenseNet", Shape{3, 32, 32},
                                 std::move(nodes));
}

Result<DagArchitecture> MicroSkipEncoderDag() {
  auto fc = [](int64_t units, bool relu) {
    OpSpec op;
    op.kind = OpKind::kFc;
    op.out_channels = units;
    op.relu = relu;
    return op;
  };
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"embed", {}, MergeOp::kNone, {fc(32, true)}});
  nodes.push_back({"enc1", {0}, MergeOp::kNone, {fc(32, true)}});
  nodes.push_back({"enc2", {1}, MergeOp::kNone, {fc(32, true)}});
  nodes.push_back({"enc3", {2}, MergeOp::kNone, {fc(32, true)}});
  // Aggregated feature layers, each depending on multiple encoder levels
  // (the BERT-style case of Section 5.4).
  nodes.push_back({"agg12", {1, 2}, MergeOp::kAdd, {}});
  nodes.push_back({"agg123", {1, 2, 3}, MergeOp::kAdd, {}});
  nodes.push_back({"cls", {3}, MergeOp::kNone, {fc(8, false)}});
  return DagArchitecture::Create("MicroSkipEncoder", Shape{48},
                                 std::move(nodes));
}

}  // namespace vista::dl
