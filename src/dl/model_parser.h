#ifndef VISTA_DL_MODEL_PARSER_H_
#define VISTA_DL_MODEL_PARSER_H_

#include <string>

#include "common/status.h"
#include "dl/cnn.h"

namespace vista::dl {

/// Parses a CNN architecture from Vista's model-spec text format — the
/// "arbitrary CNNs" extension the paper leaves to future work (Section 5.4:
/// supporting CNNs beyond the roster requires analyzing the DL system's
/// computational graphs; this format is the declarative equivalent).
///
/// Grammar (line-oriented; '#' starts a comment):
///
///   cnn <name> input <C>x<H>x<W>
///   layer <name>
///     conv filters=<n> kernel=<k> [stride=<s>] [pad=<p>] [relu=<bool>]
///          [groups=<g>]
///     maxpool window=<w> stride=<s> [pad=<p>]
///     avgpool window=<w> stride=<s> [pad=<p>]
///     gap                                   # global average pooling
///     lrn
///     fc units=<n> [relu=<bool>]
///     flatten
///     bottleneck mid=<m> out=<n> [stride=<s>] [project=<bool>]
///   layer <name>
///     ...
///
/// Every layer introduced with `layer` becomes one logical layer (a feature
/// transfer point). The parsed architecture is validated by shape
/// propagation exactly like the built-in roster models.
Result<CnnArchitecture> ParseCnnSpec(const std::string& spec);

/// Renders an architecture back into the model-spec format (round-trips
/// through ParseCnnSpec).
std::string CnnSpecToString(const CnnArchitecture& arch);

}  // namespace vista::dl

#endif  // VISTA_DL_MODEL_PARSER_H_
