#ifndef VISTA_DL_CNN_H_
#define VISTA_DL_CNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dl/op_spec.h"
#include "dl/primitive.h"
#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace vista {
class ThreadPool;
}

namespace vista::dl {

/// How batched partial inference spends a thread pool (the engine's `cpu`
/// knob, spent one of two ways).
enum class CnnParallelism {
  /// One task per image; each image's kernels run single-threaded. Best
  /// throughput when the batch is at least as wide as the pool.
  kInterImage,
  /// Images run in order; each convolution parallelizes its GEMM row tiles
  /// across the pool. Best latency for small batches or huge layers.
  kIntraImage,
};

/// Threading and precision choices for RunRange/RunRangeBatch. Null pool =
/// serial everything.
struct CnnOptions {
  ThreadPool* pool = nullptr;
  CnnParallelism parallelism = CnnParallelism::kInterImage;
  /// Numeric precision of the forward pass. kInt8 requires the model to be
  /// calibrated first (CnnModel::CalibrateInt8); kConv/kFc primitives then
  /// run on the quantized packed GEMM with fp32 layer boundaries.
  Precision precision = Precision::kFp32;
};

/// Analytic statistics of one logical layer (a paper-sense CNN layer f_i).
struct LayerStat {
  std::string name;
  Shape output_shape;
  /// FLOPs of this logical layer alone.
  int64_t flops = 0;
  /// FLOPs of f̂_i = f_i ∘ ... ∘ f_1 (inference from the raw image through
  /// this layer). This is what makes Lazy's redundancy quantifiable.
  int64_t cumulative_flops = 0;
  int64_t param_count = 0;
  /// True if the output is a CHW feature map (the paper then applies grid
  /// max pooling before flattening, footnote 4).
  bool convolutional = false;
};

/// Declarative description of one logical layer: a named run of primitives.
struct LogicalLayerSpec {
  std::string name;
  std::vector<OpSpec> ops;
};

/// A CNN architecture: input shape + ordered logical layers, with all
/// statistics (shapes, FLOPs, parameters) computed analytically. Building an
/// architecture allocates no weights, so the full-size AlexNet/VGG16/ResNet50
/// definitions are cheap; they power the optimizer and the simulator.
class CnnArchitecture {
 public:
  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }

  int num_layers() const { return static_cast<int>(stats_.size()); }
  const LayerStat& layer(int i) const { return stats_[i]; }
  const std::vector<LayerStat>& layers() const { return stats_; }
  const LogicalLayerSpec& layer_spec(int i) const { return specs_[i]; }

  /// Index of the layer named `name`, or NotFound.
  Result<int> FindLayer(const std::string& name) const;

  /// Indices of the top `k` logical layers, ordered bottom-up (the paper's
  /// L, "starting from the top most layer"). E.g. k=4 on AlexNet yields
  /// {conv5, fc6, fc7, fc8}.
  Result<std::vector<int>> TopLayers(int k) const;

  int64_t total_params() const;
  int64_t total_flops() const { return stats_.back().cumulative_flops; }
  /// Size of the serialized model file (float32 weights).
  int64_t serialized_bytes() const { return total_params() * 4; }

  /// Number of features g_l(f̂_l(I)) contributes after the paper's
  /// dimensionality reduction: conv layers are grid-max-pooled to
  /// grid x grid x depth, others flattened as-is.
  int64_t transfer_feature_count(int layer_index, int grid = 2) const;

 private:
  friend class CnnBuilder;
  std::string name_;
  Shape input_shape_;
  std::vector<LogicalLayerSpec> specs_;
  std::vector<LayerStat> stats_;
};

/// Fluent builder for CnnArchitecture.
///
///   CnnBuilder b("AlexNet", Shape{3, 227, 227});
///   b.BeginLayer("conv1").Conv(96, 11, 4, 0).Lrn().MaxPool(3, 2);
///   ...
///   VISTA_ASSIGN_OR_RETURN(auto arch, b.Build());
class CnnBuilder {
 public:
  CnnBuilder(std::string name, Shape input_shape);

  CnnBuilder& BeginLayer(std::string name);
  /// Convolution with fused ReLU (pass relu=false for linear convs);
  /// `groups` > 1 selects grouped convolution (AlexNet conv2/4/5).
  CnnBuilder& Conv(int64_t filters, int kernel, int stride, int pad,
                   bool relu = true, int groups = 1);
  CnnBuilder& MaxPool(int window, int stride, int pad = 0);
  CnnBuilder& AvgPool(int window, int stride, int pad = 0);
  CnnBuilder& GlobalAvgPool();
  CnnBuilder& Lrn();
  /// Fully connected with fused ReLU by default; an implicit flatten is
  /// applied if the running shape is not rank-1.
  CnnBuilder& Fc(int64_t units, bool relu = true);
  CnnBuilder& Flatten();
  /// ResNet bottleneck block; `project` selects a projected shortcut.
  CnnBuilder& Bottleneck(int64_t mid_channels, int64_t out_channels,
                         int stride, bool project);

  /// Validates every op against the propagated shapes and produces the
  /// architecture. The builder is consumed.
  Result<CnnArchitecture> Build();

 private:
  void FinishLayer();

  CnnArchitecture arch_;
  LogicalLayerSpec current_;
  bool layer_open_ = false;
};

/// An instantiated, runnable CNN: architecture + weights.
///
/// This is the DL-system substrate: Vista's executors call RunRange to
/// perform *partial CNN inference* f̂_{i→j} (Definition 3.7).
class CnnModel {
 public:
  /// Allocates and initializes weights for `arch` deterministically from
  /// `seed`. Memory cost is arch.serialized_bytes(); callers instantiate
  /// micro variants in tests and full models only when truly running them.
  static Result<CnnModel> Instantiate(const CnnArchitecture& arch,
                                      uint64_t seed,
                                      WeightInit init = WeightInit::kHe);

  const CnnArchitecture& arch() const { return *arch_; }

  /// Full inference f(t): raw image through the last logical layer.
  Result<Tensor> Run(const Tensor& image) const;

  /// Partial inference f̂_{from→to}: `input` must be the output of logical
  /// layer `from - 1` (or the raw image iff from == 0); runs logical layers
  /// [from, to] inclusive. A non-null `pool` parallelizes each convolution
  /// across its GEMM row tiles (intra-image parallelism).
  Result<Tensor> RunRange(const Tensor& input, int from, int to,
                          ThreadPool* pool = nullptr) const;

  /// RunRange with full options: `opts.pool` parallelizes kernels
  /// (intra-image; `opts.parallelism` is a batch-level knob and is ignored
  /// here) and `opts.precision` selects the numeric path.
  /// FailedPrecondition when int8 is requested without calibration.
  Result<Tensor> RunRange(const Tensor& input, int from, int to,
                          const CnnOptions& opts) const;

  /// Batched partial inference: RunRange over every tensor in `inputs`,
  /// spending `opts.pool` per `opts.parallelism` — either one pool task per
  /// image (kInterImage) or pool-parallel kernels inside each image in turn
  /// (kIntraImage). Results are positionally aligned with `inputs`; the
  /// first per-image failure aborts the batch.
  Result<std::vector<Tensor>> RunRangeBatch(const std::vector<Tensor>& inputs,
                                            int from, int to,
                                            const CnnOptions& opts = {}) const;

  /// f̂_l: raw image through logical layer `to`.
  Result<Tensor> RunTo(const Tensor& image, int to) const {
    return RunRange(image, 0, to);
  }

  /// All weight tensors in instantiation order (layer-major,
  /// primitive-major). Used by dl/weights_io.h.
  std::vector<const Tensor*> weight_tensors() const;

  /// Replaces every weight with the tensors in `weights` (must match
  /// weight_tensors() in count and shapes). Used when loading serialized
  /// models. Invalidates any int8 calibration (scales were computed for
  /// the old weights).
  Status SetWeights(const std::vector<Tensor>& weights);

  /// Calibrates the model for int8 inference: one fp32 forward pass per
  /// calibration image records each kConv/kFc primitive's input max-abs
  /// (per-tensor symmetric activation scale), then every such primitive's
  /// weight tensor is quantized per output channel. Idempotent;
  /// recalibrating replaces the scales. The batch must be non-empty and
  /// shape-compatible with the architecture's input.
  Status CalibrateInt8(const std::vector<Tensor>& images);

  /// True once CalibrateInt8 has succeeded (and the weights have not been
  /// replaced since).
  bool has_int8_calibration() const { return int8_calibrated_; }

  /// Turns on per-layer forward profiling: every subsequent RunRange
  /// records each logical layer's wall time into a
  /// "dl.forward_ms.<arch>.<layer>" histogram and adds the layer's analytic
  /// FLOPs to a "dl.flops.<arch>.<layer>" counter in `registry`
  /// (instruments resolved here, once) — the counters divide into the
  /// histograms for achieved per-layer GFLOP/s. Int8 runs additionally add
  /// the layer's quantizable (kConv/kFc) ops to a
  /// "dl.int8_ops.<arch>.<layer>" counter. Null disables profiling again.
  /// The registry must outlive the model.
  void EnableProfiling(obs::Registry* registry);

  /// Analytic ops of logical layer `i` that run on the quantized kernel
  /// under int8 (its kConv/kFc primitives; kBottleneck stays fp32). This
  /// is what the dl.int8_ops counters add per int8 forward.
  int64_t layer_int8_ops(int i) const { return layer_quant_flops_[i]; }

 private:
  struct LayerInstance {
    std::vector<PrimitiveInstance> primitives;
  };

  std::shared_ptr<const CnnArchitecture> arch_;
  std::vector<LayerInstance> layers_;
  /// Per-layer analytic ops attributable to kConv/kFc primitives — the
  /// part an int8 run executes on the quantized kernel.
  std::vector<int64_t> layer_quant_flops_;
  bool int8_calibrated_ = false;
  /// One histogram + FLOP counter per logical layer when profiling is
  /// enabled; empty otherwise (RunRange then skips all timing work).
  std::vector<obs::Histogram*> layer_forward_ms_;
  std::vector<obs::Counter*> layer_flops_;
  std::vector<obs::Counter*> layer_int8_ops_;
};

/// The paper's g_l ∘ (optional pooling): reduces a convolutional layer
/// output to a grid x grid x depth tensor via max pooling, then flattens;
/// non-convolutional outputs are flattened directly.
Result<Tensor> TransferFeaturize(const Tensor& layer_output, int grid = 2);

}  // namespace vista::dl

#endif  // VISTA_DL_CNN_H_
