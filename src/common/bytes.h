#ifndef VISTA_COMMON_BYTES_H_
#define VISTA_COMMON_BYTES_H_

#include <cstdint>
#include <string>

namespace vista {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

constexpr int64_t KiB(double n) { return static_cast<int64_t>(n * kKiB); }
constexpr int64_t MiB(double n) { return static_cast<int64_t>(n * kMiB); }
constexpr int64_t GiB(double n) { return static_cast<int64_t>(n * kGiB); }

/// Renders a byte count as a short human-readable string, e.g. "2.4 GiB".
std::string FormatBytes(int64_t bytes);

/// Renders seconds as "1.2 s" / "3.4 min" style strings for bench output.
std::string FormatDuration(double seconds);

}  // namespace vista

#endif  // VISTA_COMMON_BYTES_H_
