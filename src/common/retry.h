#ifndef VISTA_COMMON_RETRY_H_
#define VISTA_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace vista {

/// Bounded-attempt retry with exponential backoff and deterministic jitter.
///
/// Production dataflow systems treat task failure as routine; this policy
/// is the knob set the engine applies to map-partition tasks, shuffle
/// sends, and spill I/O. Backoff jitter is a pure function of (task key,
/// attempt), never wall-clock or a global RNG, so a given failure schedule
/// always produces the same retry schedule — the whole fault-tolerance
/// layer stays exactly reproducible.
struct RetryPolicy {
  /// Total tries including the first one. 1 disables retries.
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is
  ///   base_backoff_ms * multiplier^(k-1) * (1 +- jitter)
  /// capped at max_backoff_ms. The local engine defaults are tiny: we model
  /// the *policy*, not datacenter latencies, and tests must stay fast.
  double base_backoff_ms = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 20.0;
  /// Jitter fraction in [0, 1): the backoff is scaled by a deterministic
  /// factor drawn from [1 - jitter, 1 + jitter).
  double jitter_fraction = 0.5;
  /// Which codes are worth retrying. Transient faults (kUnavailable) and
  /// flaky storage (kIOError) are; budget violations (kResourceExhausted)
  /// are not — those need plan degradation, not persistence.
  bool (*retryable)(const Status&) = nullptr;
};

/// Default retryable predicate: kUnavailable and kIOError.
bool DefaultRetryable(const Status& status);

/// True when `status` should be retried under `policy`.
bool IsRetryable(const RetryPolicy& policy, const Status& status);

/// Deterministic jittered backoff (milliseconds) before retry `attempt`
/// (0-based index of the attempt that just failed). Pure in (policy, key,
/// attempt).
double BackoffMs(const RetryPolicy& policy, uint64_t key, int attempt);

/// Sleeps for BackoffMs(...). Split out so tests can compute without
/// sleeping.
void SleepForBackoff(const RetryPolicy& policy, uint64_t key, int attempt);

/// Counters describing how much recovery work a run performed. Threaded
/// from SpillManager/Engine up through EngineStats and RealRunResult so
/// tests and benches can assert on recovery behavior.
struct RecoveryStats {
  /// Failed attempts that were retried (tasks, shuffle reads, spill I/O).
  int64_t retries = 0;
  /// Partitions rebuilt from lineage after their data was unreadable.
  int64_t recomputed_partitions = 0;
  /// Faults the FaultInjector actually fired.
  int64_t injected_faults = 0;
  /// Plan-degradation steps taken by the executor.
  int64_t degradations = 0;

  void Merge(const RecoveryStats& other) {
    retries += other.retries;
    recomputed_partitions += other.recomputed_partitions;
    injected_faults += other.injected_faults;
    degradations += other.degradations;
  }
  std::string ToString() const;
};

/// Runs `fn` under `policy`: up to max_attempts tries, sleeping the
/// jittered backoff between them. `key` seeds the jitter (use a stable task
/// id). Each retried failure increments `*retries` when non-null.
Status RunWithRetry(const RetryPolicy& policy, uint64_t key,
                    const std::function<Status()>& fn,
                    std::atomic<int64_t>* retries = nullptr);

/// Result-returning variant of RunWithRetry.
template <typename T>
Result<T> RunResultWithRetry(const RetryPolicy& policy, uint64_t key,
                             const std::function<Result<T>()>& fn,
                             std::atomic<int64_t>* retries = nullptr) {
  for (int attempt = 0;; ++attempt) {
    Result<T> result = fn();
    if (result.ok()) return result;
    if (attempt + 1 >= policy.max_attempts ||
        !IsRetryable(policy, result.status())) {
      return result;
    }
    if (retries != nullptr) retries->fetch_add(1);
    SleepForBackoff(policy, key, attempt);
  }
}

}  // namespace vista

#endif  // VISTA_COMMON_RETRY_H_
