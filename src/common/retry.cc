#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace vista {
namespace {

/// splitmix64 finalizer: the repo-wide stable hash.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

bool DefaultRetryable(const Status& status) {
  // kDataLoss is deliberately absent: a checksum-verified corrupt block
  // stays corrupt on re-read, so the retry budget would be wasted — the
  // engine routes data loss to lineage recomputation instead.
  return status.IsUnavailable() || status.IsIOError();
}

bool IsRetryable(const RetryPolicy& policy, const Status& status) {
  if (status.ok()) return false;
  return policy.retryable != nullptr ? policy.retryable(status)
                                     : DefaultRetryable(status);
}

double BackoffMs(const RetryPolicy& policy, uint64_t key, int attempt) {
  double backoff = policy.base_backoff_ms;
  for (int i = 0; i < attempt; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, policy.max_backoff_ms);
  if (policy.jitter_fraction > 0) {
    const uint64_t h = Mix64(key * 0x100000001b3ULL + static_cast<uint64_t>(attempt));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + policy.jitter_fraction * (2.0 * u - 1.0);
  }
  return std::max(backoff, 0.0);
}

void SleepForBackoff(const RetryPolicy& policy, uint64_t key, int attempt) {
  const double ms = BackoffMs(policy, key, attempt);
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::string RecoveryStats::ToString() const {
  std::ostringstream os;
  os << "retries " << retries << ", recomputed " << recomputed_partitions
     << ", injected " << injected_faults << ", degradations " << degradations;
  return os.str();
}

Status RunWithRetry(const RetryPolicy& policy, uint64_t key,
                    const std::function<Status()>& fn,
                    std::atomic<int64_t>* retries) {
  for (int attempt = 0;; ++attempt) {
    Status st = fn();
    if (st.ok()) return st;
    if (attempt + 1 >= policy.max_attempts || !IsRetryable(policy, st)) {
      return st;
    }
    if (retries != nullptr) retries->fetch_add(1);
    SleepForBackoff(policy, key, attempt);
  }
}

}  // namespace vista
