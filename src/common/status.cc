#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace vista {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieOkStatusAsError() {
  std::fprintf(stderr, "FATAL: constructed Result<T> from an OK Status\n");
  std::abort();
}

}  // namespace internal
}  // namespace vista
