#include "common/fault_injector.h"

namespace vista {
namespace {

uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  switch (site) {
    case FaultSite::kMapTask:
      return "map-task";
    case FaultSite::kShuffleSend:
      return "shuffle-send";
    case FaultSite::kSpillWrite:
      return "spill-write";
    case FaultSite::kSpillRead:
      return "spill-read";
    case FaultSite::kMemorySpike:
      return "memory-spike";
    case FaultSite::kSpillBitFlip:
      return "spill-bit-flip";
    case FaultSite::kSpillTornWrite:
      return "spill-torn-write";
    case FaultSite::kSpillStaleRead:
      return "spill-stale-read";
    case FaultSite::kSpillNoSpace:
      return "spill-enospc";
    case FaultSite::kSpillReadDelay:
      return "spill-read-delay";
  }
  return "?";
}

double FaultInjectorConfig::Rate(FaultSite site) const {
  switch (site) {
    case FaultSite::kMapTask:
      return map_task_failure_rate;
    case FaultSite::kShuffleSend:
      return shuffle_failure_rate;
    case FaultSite::kSpillWrite:
      return spill_write_failure_rate;
    case FaultSite::kSpillRead:
      return spill_read_failure_rate;
    case FaultSite::kMemorySpike:
      return memory_spike_rate;
    case FaultSite::kSpillBitFlip:
      return spill_bit_flip_rate;
    case FaultSite::kSpillTornWrite:
      return spill_torn_write_rate;
    case FaultSite::kSpillStaleRead:
      return spill_stale_read_rate;
    case FaultSite::kSpillNoSpace:
      return spill_enospc_rate;
    case FaultSite::kSpillReadDelay:
      return spill_read_delay_rate;
  }
  return 0;
}

FaultInjector::FaultInjector(FaultInjectorConfig config)
    : config_(config) {
  for (auto& c : counts_) c.store(0);
}

bool FaultInjector::ShouldInject(FaultSite site, uint64_t key) const {
  const double rate = config_.Rate(site);
  if (rate <= 0) return false;
  if (rate >= 1.0) return true;
  // Independent stable draw per (seed, site, key).
  const uint64_t h = Mix64(config_.seed ^ Mix64(
      key * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(site)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

Status FaultInjector::MaybeFail(FaultSite site, uint64_t key,
                                const std::string& detail) {
  if (!ShouldInject(site, key)) return Status::OK();
  counts_[static_cast<int>(site)].fetch_add(1);
  const std::string msg = std::string("injected ") + FaultSiteToString(site) +
                          " fault" + (detail.empty() ? "" : " (" + detail + ")");
  switch (site) {
    case FaultSite::kSpillWrite:
    case FaultSite::kSpillRead:
    case FaultSite::kSpillNoSpace:
      return Status::IOError(msg);
    case FaultSite::kMapTask:
    case FaultSite::kShuffleSend:
    case FaultSite::kMemorySpike:
      return Status::Unavailable(msg);
    case FaultSite::kSpillBitFlip:
    case FaultSite::kSpillTornWrite:
    case FaultSite::kSpillStaleRead:
    case FaultSite::kSpillReadDelay:
      // Mutation sites never fail the operation in-line; the corruption is
      // applied to the bytes and surfaces later as kDataLoss on read (or,
      // for the delay site, the stall is applied and the read succeeds).
      return Status::DataLoss(msg);
  }
  return Status::Unavailable(msg);
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (const auto& c : counts_) total += c.load();
  return total;
}

}  // namespace vista
