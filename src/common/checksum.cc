#include "common/checksum.h"

#include <cstring>
#include <sstream>

namespace vista {
namespace {

/// CRC32C reflected polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte that sits k positions deeper in the message.
/// Built once at first use (cheap: 8*256 iterations).
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

/// Portable slice-by-8: consumes 8 bytes per iteration through the eight
/// tables, then finishes byte-at-a-time. `crc` is pre-inverted state.
uint32_t CrcSw(uint32_t crc, const uint8_t* p, size_t size) {
  const Tables& tb = tables();
  while (size >= 8) {
    uint32_t lo;
    std::memcpy(&lo, p, 4);
    lo ^= crc;
    uint32_t hi;
    std::memcpy(&hi, p + 4, 4);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VISTA_CRC32C_HW 1

/// SSE4.2 path: one crc32q per 8 bytes. The target attribute scopes the
/// instruction to this function, keeping the binary portable to baseline
/// x86-64 — same pattern as the GEMM micro-kernel's ISA clones, with an
/// explicit one-time CPU check instead of an ifunc because the two bodies
/// differ (instruction vs tables).
__attribute__((target("sse4.2")))
uint32_t CrcHw(uint32_t crc, const uint8_t* p, size_t size) {
  uint64_t c = crc;
  while (size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    size -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (size-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool DetectHw() { return __builtin_cpu_supports("sse4.2"); }
#else
#define VISTA_CRC32C_HW 0
bool DetectHw() { return false; }
#endif

/// Resolved once; every call after the first is a direct indirect call.
using CrcFn = uint32_t (*)(uint32_t, const uint8_t*, size_t);

CrcFn ResolveCrcFn() {
#if VISTA_CRC32C_HW
  if (DetectHw()) return &CrcHw;
#endif
  return &CrcSw;
}

CrcFn crc_fn() {
  static const CrcFn kFn = ResolveCrcFn();
  return kFn;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  return ~crc_fn()(~crc, static_cast<const uint8_t*>(data), size);
}

bool Crc32cIsHardwareAccelerated() {
#if VISTA_CRC32C_HW
  return DetectHw();
#else
  return false;
#endif
}

std::string IntegrityStats::ToString() const {
  std::ostringstream os;
  os << "verified=" << blocks_verified
     << " checksum_failures=" << checksum_failures
     << " torn_writes=" << torn_writes_detected
     << " recomputes=" << recomputes_triggered;
  return os.str();
}

}  // namespace vista
