#ifndef VISTA_COMMON_STATUS_H_
#define VISTA_COMMON_STATUS_H_

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace vista {

/// Error categories used across the Vista codebase.
///
/// The set intentionally mirrors the failure taxonomy of the paper's
/// Section 4.1 where it matters: memory-related failures are reported as
/// `kOutOfMemory` (allocation-level) or `kResourceExhausted`
/// (budget/apportioning-level) so that callers can distinguish a hard
/// allocation failure from a planned-capacity violation.
///
/// Failure routing taxonomy (see DESIGN.md "Data integrity & durability"):
///   - transient (kUnavailable, kIOError): retrying may succeed — the retry
///     layer's bounded-backoff loop owns these.
///   - data loss (kDataLoss): the bytes are provably wrong (checksum
///     mismatch, torn frame, stale block). Retrying a corrupt read is
///     wasted work, so this code is never retried; the only cure is
///     lineage recomputation (or failing the query — never silent use).
///   - caller error (kInvalidArgument): malformed input; neither retry nor
///     recompute applies.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfMemory = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
  /// Transient failure (lost task, flaky I/O, injected fault): the operation
  /// is expected to succeed on retry. The retry layer (common/retry.h)
  /// treats this code as retryable by default.
  kUnavailable = 10,
  /// Unrecoverable corruption detected by verify-on-read: checksum
  /// mismatch, torn/truncated frame, or stale block. Non-retryable by
  /// design — the engine routes it to lineage recomputation instead.
  kDataLoss = 11,
  /// The request's deadline elapsed before execution started; the work was
  /// shed rather than run pointlessly.
  kDeadlineExceeded = 12,
};

/// Returns a stable human-readable name for `code` (e.g. "OutOfMemory").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value payload.
///
/// `Status` is cheap to copy in the OK case (a single pointer compare against
/// null); error states carry a code and message on the heap. This is the
/// standard Arrow/RocksDB-style alternative to exceptions, which this
/// codebase does not use across API boundaries.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder, analogous to arrow::Result / absl::StatusOr.
///
/// Invariant: exactly one of {value, error-status} is engaged. Accessing
/// `value()` on an error Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return my_value;` in functions returning
  /// Result<T>. Implicit from a Status likewise allows `return SomeError();`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    AbortIfOk();
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    AbortIfError();
    return *value_;
  }
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;
  void AbortIfOk() const;

  std::optional<T> value_;
  Status status_ = Status::OK();
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieOkStatusAsError();
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBadResultAccess(status_);
}

template <typename T>
void Result<T>::AbortIfOk() const {
  if (status_.ok()) internal::DieOkStatusAsError();
}

}  // namespace vista

/// Propagates a non-OK Status from an expression.
#define VISTA_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::vista::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define VISTA_CONCAT_IMPL(x, y) x##y
#define VISTA_CONCAT(x, y) VISTA_CONCAT_IMPL(x, y)

/// Evaluates a Result<T>-returning expression; on success assigns the value
/// to `lhs`, on failure propagates the Status.
#define VISTA_ASSIGN_OR_RETURN(lhs, expr)                          \
  VISTA_ASSIGN_OR_RETURN_IMPL(VISTA_CONCAT(_res_, __LINE__), lhs, expr)

#define VISTA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // VISTA_COMMON_STATUS_H_
