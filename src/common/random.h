#ifndef VISTA_COMMON_RANDOM_H_
#define VISTA_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace vista {

/// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
/// needed: weight initialization, synthetic data generation, shuffles.
///
/// All Vista experiments are seeded, so runs are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n) { return NextUint64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace vista

#endif  // VISTA_COMMON_RANDOM_H_
