#ifndef VISTA_COMMON_LOGGING_H_
#define VISTA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vista {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; tests may lower it to kDebug.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line emitter; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace vista

#define VISTA_LOG_INTERNAL(level)                                          \
  ::vista::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define VISTA_LOG(severity)                                                 \
  !(static_cast<int>(::vista::LogLevel::k##severity) >=                     \
    static_cast<int>(::vista::GetLogLevel()))                               \
      ? (void)0                                                             \
      : ::vista::internal::Voidify() &                                      \
            VISTA_LOG_INTERNAL(::vista::LogLevel::k##severity)

/// CHECK-style invariant assertion: active in all build types. Use for
/// programming errors, never for recoverable conditions (return Status for
/// those).
#define VISTA_CHECK(cond)                                                   \
  (cond) ? (void)0                                                          \
         : ::vista::internal::Voidify() &                                   \
               ::vista::internal::FatalLogMessage(__FILE__, __LINE__)       \
                   .stream()                                                \
               << "Check failed: " #cond " "

#define VISTA_CHECK_EQ(a, b) VISTA_CHECK((a) == (b))
#define VISTA_CHECK_NE(a, b) VISTA_CHECK((a) != (b))
#define VISTA_CHECK_LT(a, b) VISTA_CHECK((a) < (b))
#define VISTA_CHECK_LE(a, b) VISTA_CHECK((a) <= (b))
#define VISTA_CHECK_GT(a, b) VISTA_CHECK((a) > (b))
#define VISTA_CHECK_GE(a, b) VISTA_CHECK((a) >= (b))

#define VISTA_DCHECK(cond) VISTA_CHECK(cond)

#endif  // VISTA_COMMON_LOGGING_H_
