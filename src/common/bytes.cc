#include "common/bytes.h"

#include <cmath>
#include <cstdio>

namespace vista {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (std::llabs(bytes) >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (std::llabs(bytes) >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (std::llabs(bytes) >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  }
  return buf;
}

}  // namespace vista
