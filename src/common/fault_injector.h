#ifndef VISTA_COMMON_FAULT_INJECTOR_H_
#define VISTA_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace vista {

/// Where a fault can be injected into the dataflow stack.
enum class FaultSite : int {
  /// A map-partitions task fails before producing output (lost executor).
  kMapTask = 0,
  /// A shuffle-side partition read fails (lost shuffle block).
  kShuffleSend = 1,
  /// A spill-file write fails (disk full / flaky volume).
  kSpillWrite = 2,
  /// A spill-file read-back fails (corrupt or lost spill block).
  kSpillRead = 3,
  /// A transient memory spike rejects a cache insert this instant.
  kMemorySpike = 4,
  /// Silent corruption: one payload bit of a durably-written spill block is
  /// flipped on disk (bit rot). The write reports success; only
  /// verify-on-read can catch it. Mutation site — applied by SpillManager,
  /// counted via CountInjected.
  kSpillBitFlip = 5,
  /// Torn write: the block file is truncated mid-frame after the write
  /// "succeeded" (a crash between write and durability outside the atomic
  /// rename protocol). Mutation site.
  kSpillTornWrite = 6,
  /// Stale read-back: an overwrite never reaches the device, so reads
  /// return the previous generation of the block (firmware/page-cache
  /// lies). Modelled by framing the new payload under the old sequence
  /// number. Mutation site; only fires on overwrites.
  kSpillStaleRead = 7,
  /// The device is out of space: the write attempt fails up front with
  /// IOError (ENOSPC), before any bytes land. Retryable like other I/O.
  kSpillNoSpace = 8,
  /// Delayed I/O: a spill-file read-back succeeds but stalls for
  /// `spill_read_delay_ms` first (a congested volume / slow device).
  /// Mutation-style site — SpillManager applies the sleep itself and
  /// records it via CountInjected; the read still returns good bytes, so
  /// this site exercises overlap (prefetch must hide the stall) rather
  /// than recovery.
  kSpillReadDelay = 9,
};

inline constexpr int kNumFaultSites = 10;

const char* FaultSiteToString(FaultSite site);

/// Per-site injection probabilities, all in [0, 1]. Zero everywhere (the
/// default) makes the injector inert and free on the hot path.
struct FaultInjectorConfig {
  uint64_t seed = 0;
  double map_task_failure_rate = 0;
  double shuffle_failure_rate = 0;
  double spill_write_failure_rate = 0;
  double spill_read_failure_rate = 0;
  double memory_spike_rate = 0;
  /// Integrity-fault rates (all durable-block mutations or write-time
  /// errors; see the FaultSite docs above).
  double spill_bit_flip_rate = 0;
  double spill_torn_write_rate = 0;
  double spill_stale_read_rate = 0;
  double spill_enospc_rate = 0;
  /// Delayed-I/O injection: probability that a spill read stalls, and for
  /// how long. The stall is wall-clock only — data and counters are
  /// untouched — so it models slow storage for the prefetch/overlap tests
  /// and benches without perturbing any integrity accounting.
  double spill_read_delay_rate = 0;
  double spill_read_delay_ms = 2.0;

  double Rate(FaultSite site) const;
};

/// Deterministic, seeded fault injection.
///
/// Every decision is a pure function of (seed, site, key): callers pass a
/// stable key identifying the unit of work (partition index, spill key)
/// combined with the attempt number, so the failure schedule is identical
/// across runs and independent of thread interleaving. That makes every
/// failure path in Engine, SpillManager, and StorageCache testable and the
/// recovery counters exactly reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultInjectorConfig& config() const { return config_; }

  /// Replaces the rates/seed. Counters are preserved. Not thread-safe
  /// against concurrent ShouldInject calls; reconfigure between engine ops
  /// (tests flip rates on a quiesced engine).
  void Configure(const FaultInjectorConfig& config) { config_ = config; }

  /// Pure decision: does the fault at (site, key) fire? Does not count.
  bool ShouldInject(FaultSite site, uint64_t key) const;

  /// Returns the injected failure Status for `site` if (site, key) fires
  /// (incrementing the site's counter), OK otherwise. `detail` is appended
  /// to the error message.
  Status MaybeFail(FaultSite site, uint64_t key, const std::string& detail);

  /// For mutation sites (bit flip, torn write, stale read): the caller asks
  /// ShouldInject, applies the mutation itself, then records it here so the
  /// injected counters stay exact for the chaos suite's accounting.
  void CountInjected(FaultSite site) {
    counts_[static_cast<int>(site)].fetch_add(1);
  }

  int64_t injected(FaultSite site) const {
    return counts_[static_cast<int>(site)].load();
  }
  int64_t total_injected() const;

  /// Combines a unit-of-work id with an attempt number into a decision key,
  /// so each retry of the same task draws an independent fault decision.
  static uint64_t TaskKey(uint64_t unit, int attempt) {
    return unit * 1000003ULL + static_cast<uint64_t>(attempt);
  }

 private:
  FaultInjectorConfig config_;
  std::atomic<int64_t> counts_[kNumFaultSites];
};

}  // namespace vista

#endif  // VISTA_COMMON_FAULT_INJECTOR_H_
