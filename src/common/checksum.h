#ifndef VISTA_COMMON_CHECKSUM_H_
#define VISTA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace vista {

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over `size` bytes starting at
/// `data`. This is the checksum guarding every durable block and serialized
/// partition blob: unlike CRC32 (IEEE) it has a hardware instruction on
/// every x86-64-v2 machine, and unlike a simple sum it detects all 1- and
/// 2-bit errors and all burst errors up to 32 bits — the bit-rot and
/// torn-write shapes the integrity plane exists to catch.
///
/// Dispatch mirrors the GEMM micro-kernel's ISA pattern (tensor/gemm_kernel):
/// an SSE4.2 `crc32q` path selected once at runtime via CPU detection, with
/// a portable slice-by-8 table fallback for other compilers/architectures.
/// The hardware path runs at tens of GB/s, so verify-on-read is effectively
/// free next to decode and disk I/O.
uint32_t Crc32c(const void* data, size_t size);

/// Incremental form: extends `crc` (a previous Crc32c/Crc32cExtend result,
/// or 0 for an empty prefix) with `size` more bytes. Crc32cExtend(0, d, n)
/// == Crc32c(d, n), and checksumming a buffer in chunks gives the same
/// result as one shot.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// True when the SSE4.2 hardware path is in use (informational; exported so
/// tests can force-compare both paths and benches can report which ran).
bool Crc32cIsHardwareAccelerated();

/// Data-integrity counters threaded from the obs registry ("integrity.*"
/// instruments) into EngineStats and RealRunResult, next to RecoveryStats.
/// The invariant the corruption-chaos suite pins: under injected faults,
/// checksum_failures equals the number of corrupt blocks read back, and
/// every failure either triggered a lineage recompute (recomputes_triggered)
/// or surfaced to the caller as kDataLoss — never a silent wrong result.
struct IntegrityStats {
  /// Blocks whose checksum was verified successfully on read.
  int64_t blocks_verified = 0;
  /// Verification failures of any kind (bit rot, torn write, stale block).
  int64_t checksum_failures = 0;
  /// The subset of failures that were truncated/half-written frames — a
  /// crash mid-write that the atomic-rename protocol should make
  /// impossible outside fault injection.
  int64_t torn_writes_detected = 0;
  /// Lineage recomputations triggered specifically by kDataLoss (corrupt
  /// data), as opposed to lost/unreadable blocks.
  int64_t recomputes_triggered = 0;

  void Merge(const IntegrityStats& other) {
    blocks_verified += other.blocks_verified;
    checksum_failures += other.checksum_failures;
    torn_writes_detected += other.torn_writes_detected;
    recomputes_triggered += other.recomputes_triggered;
  }
  std::string ToString() const;
};

}  // namespace vista

#endif  // VISTA_COMMON_CHECKSUM_H_
