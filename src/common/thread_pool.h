#ifndef VISTA_COMMON_THREAD_POOL_H_
#define VISTA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vista {

/// Fixed-size worker pool used by the local dataflow engine to model the
/// per-worker degree of parallelism (the paper's `cpu` knob).
///
/// Tasks are plain std::function<void()>; failures must be communicated
/// through captured state (e.g. a Status slot per task), never by throwing.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including pool threads.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  ///
  /// Caller-inclusive: the calling thread claims iterations alongside the
  /// workers, so nested calls from inside a pool task always make progress
  /// even when every worker is busy — kernels may parallelize inside engine
  /// map tasks without deadlock. Iterations are claimed from a shared
  /// atomic counter (self-balancing for skewed per-iteration cost).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace vista

#endif  // VISTA_COMMON_THREAD_POOL_H_
