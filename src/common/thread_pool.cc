#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"

namespace vista {

ThreadPool::ThreadPool(int num_threads) {
  VISTA_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VISTA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1) {
    // Single iteration: run inline, skip all coordination.
    fn(0);
    return;
  }
  // Shared loop state outlives this frame via shared_ptr: helper tasks that
  // only start after the loop has finished (the caller drained it alone)
  // still observe next >= n through valid memory and return without ever
  // touching `fn`, which is only dereferenced for claims made before the
  // caller's exit condition (next >= n and in_flight == 0) became true.
  struct LoopState {
    explicit LoopState(int64_t n, const std::function<void(int64_t)>& fn)
        : n(n), fn(&fn) {}
    const int64_t n;
    const std::function<void(int64_t)>* fn;
    std::atomic<int64_t> next{0};
    std::atomic<int> in_flight{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<LoopState>(n, fn);
  // The caller participates too, so submit at most enough helpers to fill
  // the rest of the pool (and never more than the remaining iterations).
  const int64_t helpers = std::min<int64_t>(num_threads() - 1, n - 1);
  for (int64_t w = 0; w < helpers; ++w) {
    Submit([state] {
      // All loop-state atomics are seq_cst: the caller's exit check below
      // relies on the total order (register-before-claim here implies
      // visible-at-wait there) to never return while a claim is running.
      state->in_flight.fetch_add(1);
      for (int64_t i = state->next.fetch_add(1); i < state->n;
           i = state->next.fetch_add(1)) {
        (*state->fn)(i);
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->in_flight.fetch_sub(1) == 1) {
        state->done.notify_all();
      }
    });
  }
  // Caller-inclusive claim loop: guarantees forward progress even when all
  // workers are blocked in nested ParallelFor calls of their own.
  for (int64_t i = state->next.fetch_add(1); i < n;
       i = state->next.fetch_add(1)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock,
                   [&] { return state->in_flight.load() == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vista
