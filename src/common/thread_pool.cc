#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace vista {

ThreadPool::ThreadPool(int num_threads) {
  VISTA_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    VISTA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  std::atomic<int64_t> next{0};
  const int workers = num_threads();
  int done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (int w = 0; w < workers; ++w) {
    Submit([&] {
      for (int64_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
      // The ++done must be the worker's last touch of this frame and must
      // happen under the mutex: once done == workers the waiter may return
      // and destroy everything captured by reference, so no access — not
      // even of `workers` — may follow outside the critical section.
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == workers) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == workers; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace vista
