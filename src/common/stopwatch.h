#ifndef VISTA_COMMON_STOPWATCH_H_
#define VISTA_COMMON_STOPWATCH_H_

#include <chrono>

namespace vista {

/// Wall-clock stopwatch for coarse timing of real-mode executions.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vista

#endif  // VISTA_COMMON_STOPWATCH_H_
