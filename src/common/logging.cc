#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace vista {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes whole log lines across threads.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::lock_guard<std::mutex> lock(LogMutex());
  (level_ >= LogLevel::kWarning ? std::cerr : std::clog) << stream_.str();
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str();
  }
  std::abort();
}

}  // namespace internal
}  // namespace vista
