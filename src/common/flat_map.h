#ifndef VISTA_COMMON_FLAT_MAP_H_
#define VISTA_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vista {

/// Open-addressing hash table from int64 keys to V with linear probing.
///
/// Purpose-built for the engine's join build sides, which are
/// insert-then-probe-only: reserve once, emplace every build record, probe
/// for every probe record, throw the table away. Compared to
/// std::unordered_map this stores all slots in one contiguous allocation
/// (no per-node heap traffic) and probes sequentially (cache-friendly), so
/// both the build and the probe phases touch far fewer cache lines.
///
/// Semantics match the subset of unordered_map the joins use:
///  - emplace keeps the first value inserted for a key (returns false on
///    duplicates), like unordered_map::emplace;
///  - find returns a pointer to the mapped value or nullptr.
/// There is no erase. V must be default-constructible and movable.
template <typename V>
class FlatMap {
 public:
  FlatMap() = default;
  explicit FlatMap(size_t expected) { reserve(expected); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grows capacity so `expected` insertions stay under the load factor.
  void reserve(size_t expected) {
    size_t cap = kMinCapacity;
    while (cap * 7 < expected * 10) cap <<= 1;  // Load factor <= 0.7.
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Inserts (key, value) if the key is absent. Returns true when inserted,
  /// false when the key was already present (first value wins).
  bool emplace(int64_t key, V value) {
    if ((size_ + 1) * 10 > slots_.size() * 7) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    size_t i = Hash(key) & mask_;
    while (used_[i]) {
      if (slots_[i].first == key) return false;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].first = key;
    slots_[i].second = std::move(value);
    ++size_;
    return true;
  }

  /// Pointer to the value mapped to `key`, or nullptr. Stable until the
  /// next emplace/reserve.
  const V* find(int64_t key) const {
    if (slots_.empty()) return nullptr;
    size_t i = Hash(key) & mask_;
    while (used_[i]) {
      if (slots_[i].first == key) return &slots_[i].second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  /// splitmix64 finalizer: strong enough that linear probing stays O(1)
  /// even on sequential ids.
  static size_t Hash(int64_t key) {
    uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  void Rehash(size_t cap) {
    std::vector<std::pair<int64_t, V>> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(cap);
    used_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) {
        emplace(old_slots[i].first, std::move(old_slots[i].second));
      }
    }
  }

  std::vector<std::pair<int64_t, V>> slots_;
  /// Occupancy bitmap, kept separate so probing scans densely even when V
  /// is large.
  std::vector<uint8_t> used_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace vista

#endif  // VISTA_COMMON_FLAT_MAP_H_
