#ifndef VISTA_ML_SCALER_H_
#define VISTA_ML_SCALER_H_

#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"
#include "ml/logistic_regression.h"

namespace vista::ml {

/// Per-feature standardization (zero mean, unit variance), fitted with one
/// partition-parallel pass over a table. CNN feature layers and structured
/// features live on very different scales; standardizing stabilizes the
/// gradient-descent downstream models.
class StandardScaler {
 public:
  /// Fits means and standard deviations over the features produced by
  /// `extract`. Constant features get a unit standard deviation so the
  /// transform never divides by ~zero.
  static Result<StandardScaler> Fit(df::Engine* engine,
                                    const df::Table& table,
                                    const FeatureExtractor& extract);

  int64_t dim() const { return static_cast<int64_t>(mean_.size()); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// In-place transform: x <- (x - mean) / stddev. `x` must have dim()
  /// elements.
  Status Transform(std::vector<float>* x) const;

  /// Composes this scaler with an extractor: the returned extractor yields
  /// standardized features. The scaler is captured by value.
  FeatureExtractor Wrap(FeatureExtractor inner) const;

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace vista::ml

#endif  // VISTA_ML_SCALER_H_
