#include "ml/mlp.h"

#include <cmath>
#include <mutex>

namespace vista::ml {
namespace {

double Sigmoid(double z) {
  if (z >= 0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

double MlpModel::Forward(
    const float* x, std::vector<std::vector<double>>* activations) const {
  std::vector<double> current(input_dim_);
  for (int64_t i = 0; i < input_dim_; ++i) current[i] = x[i];
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(current);
  }
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    std::vector<double> next(layer.out);
    for (int64_t r = 0; r < layer.out; ++r) {
      double acc = layer.b[r];
      const double* wr = layer.w.data() + r * layer.in;
      for (int64_t c = 0; c < layer.in; ++c) acc += wr[c] * current[c];
      // Hidden layers are ReLU; the final layer stays linear (sigmoid is
      // applied to the scalar output below).
      next[r] = li + 1 < layers_.size() ? std::max(0.0, acc) : acc;
    }
    current = std::move(next);
    if (activations != nullptr) activations->push_back(current);
  }
  return Sigmoid(current[0]);
}

double MlpModel::PredictProbability(const float* x) const {
  return Forward(x, nullptr);
}

int64_t MlpModel::MemoryBytes() const {
  int64_t bytes = 64;
  for (const Layer& layer : layers_) {
    bytes += static_cast<int64_t>(layer.w.size() + layer.b.size()) * 8;
  }
  return bytes;
}

Result<MlpModel> TrainMlp(df::Engine* engine, const df::Table& table,
                          const FeatureExtractor& extract,
                          const MlpConfig& config) {
  if (table.num_records() == 0) {
    return Status::InvalidArgument("cannot train on an empty table");
  }
  // Infer input dimensionality.
  int64_t dim = -1;
  for (const auto& p : table.partitions) {
    if (p->num_records() == 0) continue;
    VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> records,
                           engine->cache().ReadThrough(p));
    std::vector<float> x;
    float label = 0;
    VISTA_RETURN_IF_ERROR(extract(records.front(), &x, &label));
    dim = static_cast<int64_t>(x.size());
    break;
  }
  if (dim <= 0) {
    return Status::InvalidArgument("feature extractor produced no features");
  }

  MlpModel model;
  model.input_dim_ = dim;
  Rng rng(config.seed);
  int64_t in_dim = dim;
  for (int64_t hidden : config.hidden_sizes) {
    MlpModel::Layer layer;
    layer.in = in_dim;
    layer.out = hidden;
    layer.w.resize(in_dim * hidden);
    layer.b.assign(hidden, 0.0);
    const double stddev = std::sqrt(2.0 / static_cast<double>(in_dim));
    for (double& v : layer.w) v = rng.NextGaussian() * stddev;
    model.layers_.push_back(std::move(layer));
    in_dim = hidden;
  }
  // Output layer: single logit.
  MlpModel::Layer out_layer;
  out_layer.in = in_dim;
  out_layer.out = 1;
  out_layer.w.resize(in_dim);
  out_layer.b.assign(1, 0.0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (double& v : out_layer.w) v = rng.NextGaussian() * stddev;
  model.layers_.push_back(std::move(out_layer));

  const int64_t n = table.num_records();
  const size_t num_layers = model.layers_.size();

  for (int iter = 0; iter < config.iterations; ++iter) {
    // Zero-initialized gradient accumulators mirroring layer shapes.
    std::vector<std::vector<double>> grad_w(num_layers);
    std::vector<std::vector<double>> grad_b(num_layers);
    for (size_t li = 0; li < num_layers; ++li) {
      grad_w[li].assign(model.layers_[li].w.size(), 0.0);
      grad_b[li].assign(model.layers_[li].b.size(), 0.0);
    }
    std::mutex merge_mu;

    auto pass = engine->MapPartitions(
        table,
        [&](std::vector<df::Record> records)
            -> Result<std::vector<df::Record>> {
          std::vector<std::vector<double>> lw(num_layers), lb(num_layers);
          for (size_t li = 0; li < num_layers; ++li) {
            lw[li].assign(model.layers_[li].w.size(), 0.0);
            lb[li].assign(model.layers_[li].b.size(), 0.0);
          }
          std::vector<float> x;
          float label = 0;
          std::vector<std::vector<double>> acts;
          for (const df::Record& r : records) {
            VISTA_RETURN_IF_ERROR(extract(r, &x, &label));
            const double p = model.Forward(x.data(), &acts);
            // dL/dlogit for sigmoid + cross-entropy.
            std::vector<double> delta{p - static_cast<double>(label)};
            for (int li = static_cast<int>(num_layers) - 1; li >= 0; --li) {
              const MlpModel::Layer& layer = model.layers_[li];
              const std::vector<double>& input = acts[li];
              std::vector<double> next_delta(layer.in, 0.0);
              for (int64_t r_out = 0; r_out < layer.out; ++r_out) {
                const double d = delta[r_out];
                if (d == 0.0) continue;
                double* gw = lw[li].data() + r_out * layer.in;
                const double* wr = layer.w.data() + r_out * layer.in;
                for (int64_t c = 0; c < layer.in; ++c) {
                  gw[c] += d * input[c];
                  next_delta[c] += d * wr[c];
                }
                lb[li][r_out] += d;
              }
              if (li > 0) {
                // Gate by the ReLU derivative of the previous activation.
                for (int64_t c = 0; c < layer.in; ++c) {
                  if (acts[li][c] <= 0.0) next_delta[c] = 0.0;
                }
              }
              delta = std::move(next_delta);
            }
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          for (size_t li = 0; li < num_layers; ++li) {
            for (size_t i = 0; i < lw[li].size(); ++i) {
              grad_w[li][i] += lw[li][i];
            }
            for (size_t i = 0; i < lb[li].size(); ++i) {
              grad_b[li][i] += lb[li][i];
            }
          }
          return std::vector<df::Record>{};
        });
    VISTA_RETURN_IF_ERROR(pass.status());

    const double scale = config.learning_rate / static_cast<double>(n);
    for (size_t li = 0; li < num_layers; ++li) {
      MlpModel::Layer& layer = model.layers_[li];
      for (size_t i = 0; i < layer.w.size(); ++i) {
        layer.w[i] -= scale * grad_w[li][i];
      }
      for (size_t i = 0; i < layer.b.size(); ++i) {
        layer.b[i] -= scale * grad_b[li][i];
      }
    }
  }
  return model;
}

}  // namespace vista::ml
