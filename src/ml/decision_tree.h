#ifndef VISTA_ML_DECISION_TREE_H_
#define VISTA_ML_DECISION_TREE_H_

#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"
#include "ml/logistic_regression.h"

namespace vista::ml {

/// CART binary classification tree with Gini impurity (the paper's
/// "conventional decision tree" downstream model, Section 5.2). Trained
/// driver-side on collected features, as MLlib's single-tree trainer
/// effectively does for moderate data.
struct DecisionTreeConfig {
  int max_depth = 5;
  int min_samples_leaf = 8;
  /// Number of candidate thresholds examined per feature (quantile cuts).
  int num_thresholds = 16;
};

class DecisionTreeModel {
 public:
  DecisionTreeModel() = default;

  int Predict(const float* x) const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

 private:
  friend Result<DecisionTreeModel> TrainDecisionTree(
      df::Engine*, const df::Table&, const FeatureExtractor&,
      const DecisionTreeConfig&);

  struct Node {
    bool leaf = true;
    int prediction = 0;
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;   // x[feature] <= threshold
    int right = -1;  // x[feature] > threshold
    int node_depth = 0;
  };

  std::vector<Node> nodes_;
};

/// Trains a decision tree over `table`.
Result<DecisionTreeModel> TrainDecisionTree(df::Engine* engine,
                                            const df::Table& table,
                                            const FeatureExtractor& extract,
                                            const DecisionTreeConfig& config);

}  // namespace vista::ml

#endif  // VISTA_ML_DECISION_TREE_H_
