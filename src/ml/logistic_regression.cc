#include "ml/logistic_regression.h"

#include <cmath>
#include <mutex>

namespace vista::ml {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Sign(double v) { return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0); }

}  // namespace

double LogisticRegressionModel::PredictProbability(const float* x) const {
  double z = bias_;
  for (int64_t i = 0; i < dim(); ++i) z += weights_[i] * x[i];
  return Sigmoid(z);
}

Result<LogisticRegressionModel> TrainLogisticRegression(
    df::Engine* engine, const df::Table& table,
    const FeatureExtractor& extract,
    const LogisticRegressionConfig& config) {
  if (table.num_records() == 0) {
    return Status::InvalidArgument("cannot train on an empty table");
  }

  // Infer dimensionality from the first nonempty partition.
  int64_t dim = -1;
  for (const auto& p : table.partitions) {
    if (p->num_records() == 0) continue;
    VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> records,
                           engine->cache().ReadThrough(p));
    std::vector<float> x;
    float label = 0;
    VISTA_RETURN_IF_ERROR(extract(records.front(), &x, &label));
    dim = static_cast<int64_t>(x.size());
    break;
  }
  if (dim <= 0) {
    return Status::InvalidArgument("feature extractor produced no features");
  }

  std::vector<double> weights(dim, 0.0);
  double bias = 0.0;
  const int64_t n = table.num_records();

  for (int iter = 0; iter < config.iterations; ++iter) {
    std::vector<double> grad(dim, 0.0);
    double grad_bias = 0.0;
    std::mutex merge_mu;
    Status extract_status = Status::OK();

    // Partition-parallel gradient pass; each task accumulates a local
    // gradient and merges it once, mirroring a distributed tree-aggregate.
    auto pass = engine->MapPartitions(
        table,
        [&](std::vector<df::Record> records)
            -> Result<std::vector<df::Record>> {
          std::vector<double> local(dim, 0.0);
          double local_bias = 0.0;
          std::vector<float> x;
          float label = 0;
          for (const df::Record& r : records) {
            VISTA_RETURN_IF_ERROR(extract(r, &x, &label));
            if (static_cast<int64_t>(x.size()) != dim) {
              return Status::InvalidArgument(
                  "inconsistent feature dimensionality: got " +
                  std::to_string(x.size()) + ", expected " +
                  std::to_string(dim));
            }
            double z = bias;
            for (int64_t i = 0; i < dim; ++i) z += weights[i] * x[i];
            const double err = Sigmoid(z) - static_cast<double>(label);
            for (int64_t i = 0; i < dim; ++i) {
              local[i] += err * x[i];
            }
            local_bias += err;
          }
          {
            std::lock_guard<std::mutex> lock(merge_mu);
            for (int64_t i = 0; i < dim; ++i) grad[i] += local[i];
            grad_bias += local_bias;
          }
          return std::vector<df::Record>{};
        });
    VISTA_RETURN_IF_ERROR(pass.status());
    VISTA_RETURN_IF_ERROR(extract_status);

    const double scale = 1.0 / static_cast<double>(n);
    const double l1 = config.reg_lambda * config.elastic_net_alpha;
    const double l2 = config.reg_lambda * (1.0 - config.elastic_net_alpha);
    for (int64_t i = 0; i < dim; ++i) {
      const double g =
          grad[i] * scale + l1 * Sign(weights[i]) + l2 * weights[i];
      weights[i] -= config.learning_rate * g;
    }
    bias -= config.learning_rate * grad_bias * scale;
  }
  return LogisticRegressionModel(std::move(weights), bias);
}

Result<double> LogisticLogLoss(df::Engine* engine, const df::Table& table,
                               const FeatureExtractor& extract,
                               const LogisticRegressionModel& model) {
  double loss = 0.0;
  int64_t n = 0;
  std::mutex mu;
  auto pass = engine->MapPartitions(
      table,
      [&](std::vector<df::Record> records)
          -> Result<std::vector<df::Record>> {
        double local = 0.0;
        int64_t count = 0;
        std::vector<float> x;
        float label = 0;
        for (const df::Record& r : records) {
          VISTA_RETURN_IF_ERROR(extract(r, &x, &label));
          const double p = model.PredictProbability(x.data());
          const double eps = 1e-12;
          local -= label > 0.5 ? std::log(p + eps) : std::log(1 - p + eps);
          ++count;
        }
        std::lock_guard<std::mutex> lock(mu);
        loss += local;
        n += count;
        return std::vector<df::Record>{};
      });
  VISTA_RETURN_IF_ERROR(pass.status());
  if (n == 0) return Status::InvalidArgument("empty table");
  return loss / static_cast<double>(n);
}

}  // namespace vista::ml
