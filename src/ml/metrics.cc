#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace vista::ml {

double BinaryMetrics::Accuracy() const {
  const int64_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(n);
}

double BinaryMetrics::Precision() const {
  const int64_t denom = true_positives + false_positives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double BinaryMetrics::Recall() const {
  const int64_t denom = true_positives + false_negatives;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double BinaryMetrics::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

void BinaryMetrics::Add(int predicted, int actual) {
  const bool pred_pos = predicted != 0;
  const bool act_pos = actual != 0;
  if (pred_pos && act_pos) {
    ++true_positives;
  } else if (pred_pos && !act_pos) {
    ++false_positives;
  } else if (!pred_pos && act_pos) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& actual) {
  VISTA_CHECK_EQ(scores.size(), actual.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  // Average ranks (1-based), with ties sharing the mean rank.
  std::vector<double> rank(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double mean_rank = (static_cast<double>(i) +
                              static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mean_rank;
    i = j + 1;
  }
  double positive_rank_sum = 0;
  int64_t positives = 0;
  for (size_t k = 0; k < actual.size(); ++k) {
    if (actual[k] != 0) {
      positive_rank_sum += rank[k];
      ++positives;
    }
  }
  const int64_t negatives = static_cast<int64_t>(actual.size()) - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * negatives);
}

BinaryMetrics EvaluateBinary(const std::vector<int>& predicted,
                             const std::vector<int>& actual) {
  VISTA_CHECK_EQ(predicted.size(), actual.size());
  BinaryMetrics m;
  for (size_t i = 0; i < predicted.size(); ++i) {
    m.Add(predicted[i], actual[i]);
  }
  return m;
}

}  // namespace vista::ml
