#ifndef VISTA_ML_METRICS_H_
#define VISTA_ML_METRICS_H_

#include <cstdint>
#include <vector>

namespace vista::ml {

/// Confusion counts and derived metrics for binary classification.
struct BinaryMetrics {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  int64_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 when undefined.
  double F1() const;

  void Add(int predicted, int actual);
};

/// Computes metrics from parallel prediction/label vectors (values are
/// 0/1; anything nonzero counts as positive).
BinaryMetrics EvaluateBinary(const std::vector<int>& predicted,
                             const std::vector<int>& actual);

/// Area under the ROC curve from predicted probabilities (the
/// Mann-Whitney U formulation, ties counted half). Returns 0.5 when one
/// class is absent.
double RocAuc(const std::vector<double>& scores,
              const std::vector<int>& actual);

}  // namespace vista::ml

#endif  // VISTA_ML_METRICS_H_
