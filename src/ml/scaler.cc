#include "ml/scaler.h"

#include <cmath>
#include <mutex>

namespace vista::ml {

Result<StandardScaler> StandardScaler::Fit(df::Engine* engine,
                                           const df::Table& table,
                                           const FeatureExtractor& extract) {
  if (table.num_records() == 0) {
    return Status::InvalidArgument("cannot fit a scaler on an empty table");
  }
  std::mutex mu;
  std::vector<double> sum, sum_sq;
  int64_t count = 0;
  auto pass = engine->MapPartitions(
      table,
      [&](std::vector<df::Record> records)
          -> Result<std::vector<df::Record>> {
        std::vector<double> local_sum, local_sq;
        int64_t local_count = 0;
        std::vector<float> x;
        float label = 0;
        for (const df::Record& r : records) {
          VISTA_RETURN_IF_ERROR(extract(r, &x, &label));
          if (local_sum.empty()) {
            local_sum.assign(x.size(), 0.0);
            local_sq.assign(x.size(), 0.0);
          }
          if (local_sum.size() != x.size()) {
            return Status::InvalidArgument(
                "inconsistent feature dimensionality while fitting scaler");
          }
          for (size_t i = 0; i < x.size(); ++i) {
            local_sum[i] += x[i];
            local_sq[i] += static_cast<double>(x[i]) * x[i];
          }
          ++local_count;
        }
        if (local_count > 0) {
          std::lock_guard<std::mutex> lock(mu);
          if (sum.empty()) {
            sum.assign(local_sum.size(), 0.0);
            sum_sq.assign(local_sum.size(), 0.0);
          }
          if (sum.size() != local_sum.size()) {
            return Status::InvalidArgument(
                "inconsistent feature dimensionality across partitions");
          }
          for (size_t i = 0; i < sum.size(); ++i) {
            sum[i] += local_sum[i];
            sum_sq[i] += local_sq[i];
          }
          count += local_count;
        }
        return std::vector<df::Record>{};
      });
  VISTA_RETURN_IF_ERROR(pass.status());
  if (count == 0 || sum.empty()) {
    return Status::InvalidArgument("scaler saw no feature vectors");
  }
  StandardScaler scaler;
  scaler.mean_.resize(sum.size());
  scaler.stddev_.resize(sum.size());
  for (size_t i = 0; i < sum.size(); ++i) {
    const double mean = sum[i] / static_cast<double>(count);
    const double variance =
        std::max(0.0, sum_sq[i] / static_cast<double>(count) - mean * mean);
    scaler.mean_[i] = mean;
    // Relative floor: the sum-of-squares formula cancels catastrophically
    // for (near-)constant features, so anything within noise of zero is
    // treated as constant.
    const double stddev = std::sqrt(variance);
    scaler.stddev_[i] =
        stddev <= 1e-5 * std::max(1.0, std::fabs(mean)) ? 1.0 : stddev;
  }
  return scaler;
}

Status StandardScaler::Transform(std::vector<float>* x) const {
  if (static_cast<int64_t>(x->size()) != dim()) {
    return Status::InvalidArgument(
        "Transform: feature vector has " + std::to_string(x->size()) +
        " entries, scaler fitted for " + std::to_string(dim()));
  }
  for (size_t i = 0; i < x->size(); ++i) {
    (*x)[i] = static_cast<float>(((*x)[i] - mean_[i]) / stddev_[i]);
  }
  return Status::OK();
}

FeatureExtractor StandardScaler::Wrap(FeatureExtractor inner) const {
  StandardScaler scaler = *this;
  return [scaler, inner = std::move(inner)](const df::Record& r,
                                            std::vector<float>* x,
                                            float* label) -> Status {
    VISTA_RETURN_IF_ERROR(inner(r, x, label));
    return scaler.Transform(x);
  };
}

}  // namespace vista::ml
