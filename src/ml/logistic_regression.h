#ifndef VISTA_ML_LOGISTIC_REGRESSION_H_
#define VISTA_ML_LOGISTIC_REGRESSION_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "dataflow/engine.h"

namespace vista::ml {

/// Maps a dataflow record to a training example: fills `*x` with the
/// feature vector and `*label` with the binary target (0/1). The extractor
/// must produce the same dimensionality for every record.
using FeatureExtractor =
    std::function<Status(const df::Record&, std::vector<float>* x,
                         float* label)>;

/// Configuration for elastic-net logistic regression trained with full-batch
/// gradient descent over a partitioned table (the paper's downstream M,
/// Section 5: "logistic regression with elastic net regularization with
/// α = 0.5 and a regularization value of 0.01", 10 iterations).
struct LogisticRegressionConfig {
  int iterations = 10;
  double learning_rate = 0.3;
  /// Overall regularization strength λ.
  double reg_lambda = 0.01;
  /// Elastic-net mixing α: 1 = pure L1, 0 = pure L2.
  double elastic_net_alpha = 0.5;
};

/// A trained binary logistic regression model.
class LogisticRegressionModel {
 public:
  LogisticRegressionModel() = default;
  LogisticRegressionModel(std::vector<double> weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}

  int64_t dim() const { return static_cast<int64_t>(weights_.size()); }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// P(y = 1 | x). `x` must have dim() elements.
  double PredictProbability(const float* x) const;
  int Predict(const float* x) const {
    return PredictProbability(x) >= 0.5 ? 1 : 0;
  }

  /// In-memory footprint of the model (the optimizer's |M|_mem input).
  int64_t MemoryBytes() const { return dim() * 8 + 64; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Trains logistic regression over `table` with partition-parallel gradient
/// computation on `engine`. Feature dimensionality is inferred from the
/// first record. Labels must be 0/1.
Result<LogisticRegressionModel> TrainLogisticRegression(
    df::Engine* engine, const df::Table& table,
    const FeatureExtractor& extract, const LogisticRegressionConfig& config);

/// Evaluates log-loss of a model over a table (diagnostic).
Result<double> LogisticLogLoss(df::Engine* engine, const df::Table& table,
                               const FeatureExtractor& extract,
                               const LogisticRegressionModel& model);

}  // namespace vista::ml

#endif  // VISTA_ML_LOGISTIC_REGRESSION_H_
