#ifndef VISTA_ML_MLP_H_
#define VISTA_ML_MLP_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dataflow/engine.h"
#include "ml/logistic_regression.h"

namespace vista::ml {

/// Multi-layer perceptron for binary classification (ReLU hidden layers,
/// sigmoid output, cross-entropy loss), trained with synchronous
/// partition-parallel full-batch gradient descent — the shape of the
/// paper's TF/Horovod downstream MLP (Section 5.1, Fig. 7(B)).
struct MlpConfig {
  std::vector<int64_t> hidden_sizes = {64, 64};
  int iterations = 10;
  double learning_rate = 0.1;
  uint64_t seed = 42;
};

class MlpModel {
 public:
  MlpModel() = default;

  /// P(y = 1 | x).
  double PredictProbability(const float* x) const;
  int Predict(const float* x) const {
    return PredictProbability(x) >= 0.5 ? 1 : 0;
  }

  int64_t input_dim() const { return input_dim_; }
  /// In-memory footprint (the optimizer's |M|_mem when M is a DL model).
  int64_t MemoryBytes() const;

 private:
  friend Result<MlpModel> TrainMlp(df::Engine*, const df::Table&,
                                   const FeatureExtractor&,
                                   const MlpConfig&);
  struct Layer {
    // Row-major (out x in) weights and per-unit bias.
    std::vector<double> w;
    std::vector<double> b;
    int64_t in = 0, out = 0;
  };

  /// Forward pass storing per-layer activations (post-ReLU); returns the
  /// output probability.
  double Forward(const float* x,
                 std::vector<std::vector<double>>* activations) const;

  std::vector<Layer> layers_;
  int64_t input_dim_ = 0;
};

/// Trains an MLP over a partitioned table. Labels must be 0/1.
Result<MlpModel> TrainMlp(df::Engine* engine, const df::Table& table,
                          const FeatureExtractor& extract,
                          const MlpConfig& config);

}  // namespace vista::ml

#endif  // VISTA_ML_MLP_H_
