#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>

namespace vista::ml {
namespace {

struct TrainingData {
  std::vector<std::vector<float>> x;
  std::vector<int> y;
  int64_t dim = 0;
};

double GiniFromCounts(int64_t pos, int64_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

int DecisionTreeModel::Predict(const float* x) const {
  if (nodes_.empty()) return 0;
  int idx = 0;
  for (;;) {
    const Node& node = nodes_[idx];
    if (node.leaf) return node.prediction;
    idx = x[node.feature] <= node.threshold ? node.left : node.right;
  }
}

int DecisionTreeModel::depth() const {
  int d = 0;
  for (const Node& node : nodes_) d = std::max(d, node.node_depth);
  return d;
}

Result<DecisionTreeModel> TrainDecisionTree(
    df::Engine* engine, const df::Table& table,
    const FeatureExtractor& extract, const DecisionTreeConfig& config) {
  TrainingData data;
  for (const auto& p : table.partitions) {
    VISTA_ASSIGN_OR_RETURN(std::vector<df::Record> records,
                           engine->cache().ReadThrough(p));
    std::vector<float> x;
    float label = 0;
    for (const df::Record& r : records) {
      VISTA_RETURN_IF_ERROR(extract(r, &x, &label));
      if (data.dim == 0) data.dim = static_cast<int64_t>(x.size());
      if (static_cast<int64_t>(x.size()) != data.dim) {
        return Status::InvalidArgument(
            "inconsistent feature dimensionality in decision tree input");
      }
      data.x.push_back(x);
      data.y.push_back(label > 0.5f ? 1 : 0);
    }
  }
  if (data.x.empty()) {
    return Status::InvalidArgument("cannot train on an empty table");
  }

  DecisionTreeModel model;
  // Recursive splitting over index subsets, managed iteratively with an
  // explicit stack of (node index, row indices, depth).
  struct Work {
    int node;
    std::vector<int64_t> rows;
    int depth;
  };
  std::vector<Work> stack;
  model.nodes_.push_back(DecisionTreeModel::Node{});
  {
    std::vector<int64_t> all(data.x.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    stack.push_back(Work{0, std::move(all), 0});
  }

  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();
    DecisionTreeModel::Node& node = model.nodes_[work.node];
    node.node_depth = work.depth;

    int64_t pos = 0;
    for (int64_t row : work.rows) pos += data.y[row];
    const int64_t total = static_cast<int64_t>(work.rows.size());
    node.prediction = pos * 2 >= total ? 1 : 0;

    const double parent_gini = GiniFromCounts(pos, total);
    if (work.depth >= config.max_depth || parent_gini == 0.0 ||
        total < 2 * config.min_samples_leaf) {
      node.leaf = true;
      continue;
    }

    // Best split search: quantile thresholds per feature.
    double best_gain = 1e-9;
    int best_feature = -1;
    float best_threshold = 0.0f;
    std::vector<float> values(total);
    for (int64_t f = 0; f < data.dim; ++f) {
      for (int64_t i = 0; i < total; ++i) {
        values[i] = data.x[work.rows[i]][f];
      }
      std::vector<float> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front() == sorted.back()) continue;  // Constant feature.
      for (int t = 1; t <= config.num_thresholds; ++t) {
        const size_t qi = static_cast<size_t>(
            static_cast<double>(t) /
            static_cast<double>(config.num_thresholds + 1) *
            static_cast<double>(total - 1));
        const float threshold = sorted[qi];
        if (threshold == sorted.back()) continue;
        int64_t left_n = 0, left_pos = 0;
        for (int64_t i = 0; i < total; ++i) {
          if (values[i] <= threshold) {
            ++left_n;
            left_pos += data.y[work.rows[i]];
          }
        }
        const int64_t right_n = total - left_n;
        if (left_n < config.min_samples_leaf ||
            right_n < config.min_samples_leaf) {
          continue;
        }
        const int64_t right_pos = pos - left_pos;
        const double child_gini =
            (static_cast<double>(left_n) * GiniFromCounts(left_pos, left_n) +
             static_cast<double>(right_n) *
                 GiniFromCounts(right_pos, right_n)) /
            static_cast<double>(total);
        const double gain = parent_gini - child_gini;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }

    if (best_feature < 0) {
      node.leaf = true;
      continue;
    }

    std::vector<int64_t> left_rows, right_rows;
    for (int64_t row : work.rows) {
      if (data.x[row][best_feature] <= best_threshold) {
        left_rows.push_back(row);
      } else {
        right_rows.push_back(row);
      }
    }
    node.leaf = false;
    node.feature = best_feature;
    node.threshold = best_threshold;
    const int left_idx = static_cast<int>(model.nodes_.size());
    model.nodes_.push_back(DecisionTreeModel::Node{});
    const int right_idx = static_cast<int>(model.nodes_.size());
    model.nodes_.push_back(DecisionTreeModel::Node{});
    // Note: `node` reference may dangle after push_back; reindex.
    model.nodes_[work.node].left = left_idx;
    model.nodes_[work.node].right = right_idx;
    stack.push_back(Work{left_idx, std::move(left_rows), work.depth + 1});
    stack.push_back(Work{right_idx, std::move(right_rows), work.depth + 1});
  }
  return model;
}

}  // namespace vista::ml
