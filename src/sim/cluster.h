#ifndef VISTA_SIM_CLUSTER_H_
#define VISTA_SIM_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace vista::sim {

/// Hardware resources of one worker node (defaults mirror the paper's
/// CloudLab testbed: 8 cores, 32 GB RAM, HDD, GbE).
struct NodeResources {
  int cores = 8;
  int64_t memory_bytes = GiB(32);
  int64_t gpu_memory_bytes = 0;  // 0 = no GPU on the node.
  /// Aggregate CNN-inference throughput of the whole node when all cores
  /// are engaged (the DL system uses every core regardless of the worker's
  /// configured parallelism — Section 4.3 footnote).
  double node_peak_gflops = 40.0;
  double gpu_gflops = 600.0;
  double disk_read_mbps = 140.0;
  double disk_write_mbps = 110.0;
  double network_mbps = 110.0;  // ~1 GbE effective payload rate.
};

/// The worker memory apportioning under simulation — the concrete outcome
/// of either a manual/default configuration or the Vista optimizer
/// (Table 1(B)), mapped per Figure 4.
struct WorkerMemoryModel {
  /// What the OS and auxiliary daemons actually occupy at runtime.
  int64_t os_actual_bytes = GiB(1);
  /// Configured heap of the dataflow worker (Spark executor JVM heap or
  /// Ignite JVM heap).
  int64_t heap_bytes = GiB(29);
  /// Ignite-style static off-heap storage; 0 for Spark-style in-heap
  /// storage.
  int64_t offheap_storage_bytes = 0;
  /// True when the storage region is statically committed (Ignite):
  /// the full region counts against physical memory at all times.
  bool offheap_static = false;
  /// Region budgets (per worker).
  int64_t storage_bytes = GiB(15);
  int64_t user_bytes = GiB(10);
  int64_t core_bytes = static_cast<int64_t>(2.4 * 1024) * kMiB;
  /// Heap committed regardless of data (runtime structures).
  int64_t jvm_base_bytes = GiB(1);
  /// False = memory-only mode: storage pressure crashes instead of
  /// spilling (Ignite memory-only, as in the paper's setup).
  bool allow_disk_spill = true;
  /// Worker degree of parallelism (execution threads; each CNN-inference
  /// thread holds its own DL model replica).
  int cpus = 8;
  int64_t driver_memory_bytes = GiB(8);
};

/// One task of a stage (one partition's worth of work).
struct SimTask {
  double flops = 0;
  int64_t disk_read_bytes = 0;
  int64_t disk_write_bytes = 0;
  int64_t shuffle_bytes = 0;
};

/// One barrier-synchronized stage of the workload.
struct SimStage {
  std::string name;
  std::vector<SimTask> tasks;
  /// True when the stage runs CNN (partial) inference: compute scales with
  /// the DL system's saturating multi-core curve and each of the worker's
  /// `cpus` threads holds a DL model replica of `dl_mem_per_thread` bytes.
  bool uses_dl = false;
  int64_t dl_mem_per_thread = 0;
  int64_t dl_gpu_mem_per_thread = 0;
  /// Per concurrently-running task demands on the worker regions.
  int64_t user_mem_per_task = 0;
  int64_t core_mem_per_task = 0;
  /// Cluster-total bytes read from previously cached tables.
  int64_t cache_read_bytes = 0;
  /// Cluster-total bytes newly cached when the stage completes.
  int64_t cache_insert_bytes = 0;
  /// Cluster-total cached bytes released before the stage starts.
  int64_t cache_release_bytes = 0;
  /// Bytes pulled to the driver at the end of the stage.
  int64_t driver_collect_bytes = 0;
  /// Extra constant latency (e.g. broadcast distribution).
  double fixed_seconds = 0;
};

/// Crash taxonomy of Section 4.1.
enum class CrashScenario {
  kNone,
  kDlMemoryBlowup,       // (1) OS kills the workload.
  kInsufficientUserMemory,  // (2) UDF OOM.
  kOversizedPartitions,  // (3) execution memory exceeded.
  kInsufficientDriverMemory,  // (4) driver OOM.
  kStorageExhausted,     // memory-only storage overflow (Ignite Eager).
};

const char* CrashScenarioToString(CrashScenario scenario);

/// Per-stage timing breakdown.
struct StageResult {
  std::string name;
  double seconds = 0;
  double compute_seconds = 0;
  double disk_seconds = 0;
  double network_seconds = 0;
  double spill_seconds = 0;
  double overhead_seconds = 0;
};

/// Outcome of simulating a workload.
struct SimResult {
  /// OK, or ResourceExhausted/OutOfMemory describing the crash.
  Status status = Status::OK();
  CrashScenario crash = CrashScenario::kNone;
  /// Stage where the crash occurred (empty if none).
  std::string crashed_stage;
  double total_seconds = 0;
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  std::vector<StageResult> stages;

  bool crashed() const { return crash != CrashScenario::kNone; }
};

/// Discrete cluster simulator: runs barrier-synchronized stages over
/// homogeneous nodes with the paper's region-based memory model; disk
/// spills and crash scenarios emerge from the ledger, not from flags.
class ClusterSim {
 public:
  ClusterSim(int num_nodes, NodeResources node, WorkerMemoryModel memory,
             bool use_gpu = false);

  /// Simulates the stages in order. Always returns a SimResult; a crash is
  /// reported in SimResult::status/crash with the partial timing up to the
  /// crash point.
  SimResult Run(const std::vector<SimStage>& stages);

  /// The DL system's saturating multi-core speedup curve, normalized to 1.0
  /// at 8 cores (Fig. 12(C): plateau around 4 cores).
  static double DlCoreScaling(int cpus);

  int num_nodes() const { return num_nodes_; }
  const NodeResources& node() const { return node_; }
  const WorkerMemoryModel& memory() const { return memory_; }

 private:
  /// Returns the crash scenario triggered by the stage's memory demands, or
  /// kNone. May schedule storage evictions (spills) as a side effect.
  CrashScenario CheckMemory(const SimStage& stage, int64_t* evict_bytes);

  int num_nodes_;
  NodeResources node_;
  WorkerMemoryModel memory_;
  bool use_gpu_;

  // Cluster-total storage ledger.
  int64_t storage_resident_bytes_ = 0;
  int64_t storage_spilled_bytes_ = 0;
};

}  // namespace vista::sim

#endif  // VISTA_SIM_CLUSTER_H_
