#include "sim/cluster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vista::sim {

const char* CrashScenarioToString(CrashScenario scenario) {
  switch (scenario) {
    case CrashScenario::kNone:
      return "none";
    case CrashScenario::kDlMemoryBlowup:
      return "DL Execution Memory blowup (OS killed workload)";
    case CrashScenario::kInsufficientUserMemory:
      return "insufficient User memory (UDF out-of-memory)";
    case CrashScenario::kOversizedPartitions:
      return "execution memory exceeded (data partitions too large)";
    case CrashScenario::kInsufficientDriverMemory:
      return "insufficient Driver memory";
    case CrashScenario::kStorageExhausted:
      return "storage exhausted in memory-only mode";
  }
  return "?";
}

ClusterSim::ClusterSim(int num_nodes, NodeResources node,
                       WorkerMemoryModel memory, bool use_gpu)
    : num_nodes_(num_nodes),
      node_(node),
      memory_(memory),
      use_gpu_(use_gpu) {
  VISTA_CHECK_GE(num_nodes_, 1);
  VISTA_CHECK_GE(memory_.cpus, 1);
}

double ClusterSim::DlCoreScaling(int cpus) {
  // Saturating speedup: the DL system already parallelizes one invocation
  // across the node, so extra worker threads mostly overlap framework
  // overheads. Plateaus near 4 cores, ~1.0 at 8 (Fig. 12(C)).
  auto curve = [](double c) { return 1.0 - std::exp(-c / 2.5); };
  return curve(cpus) / curve(8.0);
}

CrashScenario ClusterSim::CheckMemory(const SimStage& stage,
                                      int64_t* evict_bytes) {
  *evict_bytes = 0;

  // (2) Insufficient User memory: every execution thread needs its
  // per-task UDF scratch simultaneously.
  const int64_t user_need =
      stage.user_mem_per_task * static_cast<int64_t>(memory_.cpus);
  if (user_need > memory_.user_bytes) {
    return CrashScenario::kInsufficientUserMemory;
  }

  // (3) Oversized partitions: Core (execution) memory demand. Spark-like
  // deployments can borrow from Storage by evicting cached partitions to
  // disk; static off-heap (Ignite-like) cannot.
  const int64_t core_need =
      stage.core_mem_per_task * static_cast<int64_t>(memory_.cpus);
  if (memory_.offheap_static) {
    // User and Core are one unified in-heap region (Figure 4(C)).
    if (core_need + user_need > memory_.core_bytes + memory_.user_bytes) {
      return CrashScenario::kOversizedPartitions;
    }
  } else if (core_need > memory_.core_bytes) {
    const int64_t deficit_cluster =
        (core_need - memory_.core_bytes) * num_nodes_;
    const int64_t evictable = storage_resident_bytes_;
    if (deficit_cluster <= evictable && memory_.allow_disk_spill) {
      *evict_bytes = deficit_cluster;
    } else {
      return CrashScenario::kOversizedPartitions;
    }
  }

  // (1) DL Execution Memory blowup: OS + committed dataflow memory +
  // per-thread DL replicas must fit in physical memory.
  if (stage.uses_dl) {
    const int64_t dl_need =
        stage.dl_mem_per_thread * static_cast<int64_t>(memory_.cpus);
    int64_t committed;
    if (memory_.offheap_static) {
      committed = memory_.heap_bytes + memory_.offheap_storage_bytes;
    } else {
      const int64_t resident_per_node =
          storage_resident_bytes_ / num_nodes_;
      committed = std::min(
          memory_.heap_bytes,
          memory_.jvm_base_bytes + resident_per_node +
              std::min(user_need, memory_.user_bytes) +
              std::min(core_need, memory_.core_bytes));
    }
    if (memory_.os_actual_bytes + committed + dl_need >
        node_.memory_bytes) {
      return CrashScenario::kDlMemoryBlowup;
    }
    if (use_gpu_) {
      const int64_t gpu_need = stage.dl_gpu_mem_per_thread *
                               static_cast<int64_t>(memory_.cpus);
      if (gpu_need > node_.gpu_memory_bytes) {
        return CrashScenario::kDlMemoryBlowup;
      }
    }
  }

  // (4) Driver memory.
  if (stage.driver_collect_bytes > memory_.driver_memory_bytes) {
    return CrashScenario::kInsufficientDriverMemory;
  }

  return CrashScenario::kNone;
}

SimResult ClusterSim::Run(const std::vector<SimStage>& stages) {
  SimResult result;
  storage_resident_bytes_ = 0;
  storage_spilled_bytes_ = 0;
  const double read_bw = node_.disk_read_mbps * 1e6;
  const double write_bw = node_.disk_write_mbps * 1e6;
  const double net_bw = node_.network_mbps * 1e6;
  const int64_t storage_capacity =
      memory_.storage_bytes * static_cast<int64_t>(num_nodes_);

  for (const SimStage& stage : stages) {
    StageResult sr;
    sr.name = stage.name;

    // Free cached tables this stage no longer needs, proportionally from
    // the resident and spilled pools.
    if (stage.cache_release_bytes > 0) {
      const int64_t cached =
          storage_resident_bytes_ + storage_spilled_bytes_;
      const int64_t release =
          std::min(stage.cache_release_bytes, cached);
      if (cached > 0) {
        const int64_t from_spill = static_cast<int64_t>(
            static_cast<double>(release) * storage_spilled_bytes_ / cached);
        storage_spilled_bytes_ -= from_spill;
        storage_resident_bytes_ -= release - from_spill;
      }
    }

    int64_t evict_bytes = 0;
    const CrashScenario crash = CheckMemory(stage, &evict_bytes);
    if (crash != CrashScenario::kNone) {
      result.crash = crash;
      result.crashed_stage = stage.name;
      result.status = Status::ResourceExhausted(
          std::string(CrashScenarioToString(crash)) + " in stage '" +
          stage.name + "'");
      result.stages.push_back(std::move(sr));
      return result;
    }

    int64_t spill_write = 0;
    int64_t spill_read = 0;

    // Core-borrowing evictions scheduled by the memory check.
    if (evict_bytes > 0) {
      storage_resident_bytes_ -= evict_bytes;
      storage_spilled_bytes_ += evict_bytes;
      spill_write += evict_bytes;
    }

    // Reads of cached inputs: the spilled fraction comes from disk.
    if (stage.cache_read_bytes > 0) {
      const int64_t cached =
          storage_resident_bytes_ + storage_spilled_bytes_;
      if (cached > 0 && storage_spilled_bytes_ > 0) {
        spill_read += static_cast<int64_t>(
            static_cast<double>(stage.cache_read_bytes) *
            storage_spilled_bytes_ / cached);
      }
    }

    // New cached output: overflow spills (or crashes in memory-only mode).
    if (stage.cache_insert_bytes > 0) {
      const int64_t avail =
          std::max<int64_t>(0, storage_capacity - storage_resident_bytes_);
      const int64_t fit = std::min(stage.cache_insert_bytes, avail);
      storage_resident_bytes_ += fit;
      const int64_t excess = stage.cache_insert_bytes - fit;
      if (excess > 0) {
        if (!memory_.allow_disk_spill) {
          result.crash = CrashScenario::kStorageExhausted;
          result.crashed_stage = stage.name;
          result.status = Status::ResourceExhausted(
              std::string(
                  CrashScenarioToString(CrashScenario::kStorageExhausted)) +
              " in stage '" + stage.name + "'");
          result.stages.push_back(std::move(sr));
          return result;
        }
        storage_spilled_bytes_ += excess;
        spill_write += excess;
      }
    }

    // ---- Timing. Tasks round-robin over nodes; per-node serial phases.
    const int total_tasks = static_cast<int>(stage.tasks.size());
    double max_node_seconds = 0;
    double max_compute = 0, max_disk = 0, max_net = 0;
    for (int n = 0; n < num_nodes_; ++n) {
      double flops = 0;
      int64_t dread = 0, dwrite = 0, shuffle = 0;
      int ntasks = 0;
      for (int t = n; t < total_tasks; t += num_nodes_) {
        flops += stage.tasks[t].flops;
        dread += stage.tasks[t].disk_read_bytes;
        dwrite += stage.tasks[t].disk_write_bytes;
        shuffle += stage.tasks[t].shuffle_bytes;
        ++ntasks;
      }
      double compute = 0;
      if (flops > 0) {
        if (stage.uses_dl) {
          const double gflops =
              use_gpu_ ? node_.gpu_gflops
                       : node_.node_peak_gflops * DlCoreScaling(memory_.cpus);
          compute = flops / (gflops * 1e9);
        } else {
          const double per_core = node_.node_peak_gflops /
                                  static_cast<double>(node_.cores);
          const int parallelism =
              std::max(1, std::min(memory_.cpus, ntasks));
          compute = flops / (per_core * parallelism * 1e9);
        }
      }
      const double disk = static_cast<double>(dread) / read_bw +
                          static_cast<double>(dwrite) / write_bw;
      const double net = static_cast<double>(shuffle) / net_bw;
      max_compute = std::max(max_compute, compute);
      max_disk = std::max(max_disk, disk);
      max_net = std::max(max_net, net);
      max_node_seconds = std::max(max_node_seconds, compute + disk + net);
    }

    // Spill traffic is spread uniformly over the nodes' disks.
    const double spill_seconds =
        (static_cast<double>(spill_write) / num_nodes_) / write_bw +
        (static_cast<double>(spill_read) / num_nodes_) / read_bw;

    // Driver-side costs: collecting partial results over the network plus
    // per-task scheduling overhead (which explodes past ~2000 tasks when
    // status messages start being compressed — Section 5.3).
    const double collect_seconds =
        static_cast<double>(stage.driver_collect_bytes) / net_bw;
    double per_task_overhead = 0.004;
    if (total_tasks > 2000) per_task_overhead += 0.012;
    const double overhead_seconds =
        total_tasks * per_task_overhead + stage.fixed_seconds;

    sr.compute_seconds = max_compute;
    sr.disk_seconds = max_disk;
    sr.network_seconds = max_net + collect_seconds;
    sr.spill_seconds = spill_seconds;
    sr.overhead_seconds = overhead_seconds;
    sr.seconds = max_node_seconds + spill_seconds + collect_seconds +
                 overhead_seconds;
    result.total_seconds += sr.seconds;
    result.spill_bytes_written += spill_write;
    result.spill_bytes_read += spill_read;
    result.stages.push_back(std::move(sr));
  }
  return result;
}

}  // namespace vista::sim
