#include "features/hog.h"

#include <cmath>
#include <vector>

namespace vista::feat {

int64_t HogFeatureLength(int64_t height, int64_t width,
                         const HogConfig& config) {
  const int64_t cells_y = height / config.cell_size;
  const int64_t cells_x = width / config.cell_size;
  const int64_t blocks_y = cells_y - config.block_size + 1;
  const int64_t blocks_x = cells_x - config.block_size + 1;
  if (blocks_y <= 0 || blocks_x <= 0) return 0;
  return blocks_y * blocks_x * config.block_size * config.block_size *
         config.num_bins;
}

Result<Tensor> HogFeatures(const Tensor& image, const HogConfig& config) {
  if (image.shape().rank() != 3) {
    return Status::InvalidArgument("HOG expects a CHW image tensor, got " +
                                   image.shape().ToString());
  }
  const int64_t c = image.shape().dim(0);
  const int64_t h = image.shape().dim(1);
  const int64_t w = image.shape().dim(2);
  const int64_t cells_y = h / config.cell_size;
  const int64_t cells_x = w / config.cell_size;
  const int64_t blocks_y = cells_y - config.block_size + 1;
  const int64_t blocks_x = cells_x - config.block_size + 1;
  if (blocks_y <= 0 || blocks_x <= 0) {
    return Status::InvalidArgument("image too small for HOG configuration");
  }

  // Grayscale conversion: channel mean.
  std::vector<float> gray(h * w, 0.0f);
  const float* data = image.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < h * w; ++i) {
      gray[i] += data[ch * h * w + i] / static_cast<float>(c);
    }
  }

  // Per-cell orientation histograms with magnitude weighting and linear
  // interpolation between adjacent bins.
  std::vector<double> cell_hist(cells_y * cells_x * config.num_bins, 0.0);
  const double bin_width = 180.0 / config.num_bins;
  for (int64_t y = 0; y < cells_y * config.cell_size; ++y) {
    for (int64_t x = 0; x < cells_x * config.cell_size; ++x) {
      const float left = x > 0 ? gray[y * w + x - 1] : gray[y * w + x];
      const float right = x < w - 1 ? gray[y * w + x + 1] : gray[y * w + x];
      const float up = y > 0 ? gray[(y - 1) * w + x] : gray[y * w + x];
      const float down =
          y < h - 1 ? gray[(y + 1) * w + x] : gray[y * w + x];
      const double gx = right - left;
      const double gy = down - up;
      const double mag = std::sqrt(gx * gx + gy * gy);
      if (mag == 0.0) continue;
      double angle = std::atan2(gy, gx) * 180.0 / 3.14159265358979323846;
      if (angle < 0) angle += 180.0;
      if (angle >= 180.0) angle -= 180.0;
      const double bin_pos = angle / bin_width - 0.5;
      int b0 = static_cast<int>(std::floor(bin_pos));
      const double frac = bin_pos - b0;
      int b1 = b0 + 1;
      if (b0 < 0) b0 += config.num_bins;
      if (b1 >= config.num_bins) b1 -= config.num_bins;
      const int64_t cy = y / config.cell_size;
      const int64_t cx = x / config.cell_size;
      double* hist =
          cell_hist.data() + (cy * cells_x + cx) * config.num_bins;
      hist[b0] += mag * (1.0 - frac);
      hist[b1] += mag * frac;
    }
  }

  // Block normalization (L2-hys style without clipping: plain L2).
  const int64_t block_len =
      config.block_size * config.block_size * config.num_bins;
  Tensor out(Shape{blocks_y * blocks_x * block_len});
  float* o = out.mutable_data();
  int64_t at = 0;
  for (int64_t by = 0; by < blocks_y; ++by) {
    for (int64_t bx = 0; bx < blocks_x; ++bx) {
      double norm_sq = 1e-12;
      for (int dy = 0; dy < config.block_size; ++dy) {
        for (int dx = 0; dx < config.block_size; ++dx) {
          const double* hist =
              cell_hist.data() +
              ((by + dy) * cells_x + (bx + dx)) * config.num_bins;
          for (int b = 0; b < config.num_bins; ++b) {
            norm_sq += hist[b] * hist[b];
          }
        }
      }
      const double inv_norm = 1.0 / std::sqrt(norm_sq);
      for (int dy = 0; dy < config.block_size; ++dy) {
        for (int dx = 0; dx < config.block_size; ++dx) {
          const double* hist =
              cell_hist.data() +
              ((by + dy) * cells_x + (bx + dx)) * config.num_bins;
          for (int b = 0; b < config.num_bins; ++b) {
            o[at++] = static_cast<float>(hist[b] * inv_norm);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace vista::feat
