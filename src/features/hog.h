#ifndef VISTA_FEATURES_HOG_H_
#define VISTA_FEATURES_HOG_H_

#include "common/status.h"
#include "tensor/tensor.h"

namespace vista::feat {

/// Histogram-of-Oriented-Gradients parameters (Dalal & Triggs [31]); the
/// paper's traditional hand-crafted baseline in Figure 8.
struct HogConfig {
  int cell_size = 8;
  int block_size = 2;  // cells per block side
  int num_bins = 9;    // unsigned orientation bins over [0, 180)
};

/// Computes the HOG descriptor of a CHW image tensor (channels are averaged
/// to grayscale first). Output is a rank-1 feature vector whose length
/// depends on image size and config.
Result<Tensor> HogFeatures(const Tensor& image, const HogConfig& config = {});

/// Descriptor length for an image of the given height/width.
int64_t HogFeatureLength(int64_t height, int64_t width,
                         const HogConfig& config = {});

}  // namespace vista::feat

#endif  // VISTA_FEATURES_HOG_H_
