#ifndef VISTA_FEATURES_SYNTHETIC_H_
#define VISTA_FEATURES_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/record.h"

namespace vista::feat {

/// Specification of a synthetic multimodal dataset (DESIGN.md §2: stand-in
/// for the paper's Foods and Amazon datasets). Each example has a binary
/// label, a structured feature vector, and a CHW image; the label signal is
/// split across both modalities so that multimodal features genuinely lift
/// downstream accuracy (reproducing Figure 8's ordering).
struct MultimodalDatasetSpec {
  std::string name = "synthetic";
  int64_t num_records = 1000;
  /// Structured features excluding the label.
  int num_struct_features = 130;
  /// Of those, how many actually carry class signal (the rest are noise).
  int num_informative_struct = 8;
  /// Square image side (images are 3 x size x size).
  int image_size = 32;
  /// Scale of the class-dependent structured shift (relative to unit noise).
  double struct_signal = 0.6;
  /// Strength of class-dependent image texture.
  double image_signal = 1.0;
  /// Images generated per record (the paper's setting is 1; >1 exercises
  /// the multi-image extension: same class parameters, fresh noise and
  /// patch placement per image).
  int images_per_record = 1;
  uint64_t seed = 7;
};

/// Paper-matched statistics (sizes only; content is synthetic). Foods:
/// ~20k records x 130 structured features. Amazon: ~200k records x 200
/// engineered features (100 Doc2Vec + 100 PCA of categories).
MultimodalDatasetSpec FoodsSpec();
MultimodalDatasetSpec AmazonSpec();

/// A generated dataset: Tstr(ID, X) with the label stored as the first
/// structured feature, and Timg(ID, I).
struct MultimodalDataset {
  std::vector<df::Record> t_str;
  std::vector<df::Record> t_img;
};

/// Deterministically generates the dataset for `spec`.
///
/// Image content: a textured background plus oriented stripe patches whose
/// orientation/frequency distribution depends on the class, with a weak
/// class-correlated color tint. Oriented texture is visible to HOG, while
/// multi-scale nonlinear summaries (CNN features) capture strictly more,
/// giving the Figure 8 ordering struct < struct+HOG < struct+CNN.
Result<MultimodalDataset> GenerateMultimodal(const MultimodalDatasetSpec& spec);

/// Convenience: the label convention used by generated tables.
inline float LabelOf(const df::Record& r) {
  return r.struct_features.empty() ? 0.0f : r.struct_features[0];
}

/// Splits record ids deterministically into train/test by hashing
/// (test_fraction of ids land in the test set).
bool IsTestId(int64_t id, double test_fraction, uint64_t seed = 13);

}  // namespace vista::feat

#endif  // VISTA_FEATURES_SYNTHETIC_H_
