#include "features/synthetic.h"

#include <cmath>

#include "common/random.h"

namespace vista::feat {

MultimodalDatasetSpec FoodsSpec() {
  MultimodalDatasetSpec spec;
  spec.name = "Foods";
  spec.num_records = 20000;
  spec.num_struct_features = 130;
  spec.num_informative_struct = 10;
  spec.image_size = 227;
  spec.seed = 101;
  return spec;
}

MultimodalDatasetSpec AmazonSpec() {
  MultimodalDatasetSpec spec;
  spec.name = "Amazon";
  spec.num_records = 200000;
  spec.num_struct_features = 200;
  spec.num_informative_struct = 12;
  spec.image_size = 227;
  spec.seed = 202;
  return spec;
}

namespace {

/// Paints an oriented sinusoidal stripe patch onto the image.
void PaintStripePatch(float* img, int size, int cy, int cx, int radius,
                      double theta, double wavelength, double amplitude,
                      const float tint[3]) {
  const double ct = std::cos(theta);
  const double st = std::sin(theta);
  for (int y = std::max(0, cy - radius);
       y < std::min(size, cy + radius); ++y) {
    for (int x = std::max(0, cx - radius);
         x < std::min(size, cx + radius); ++x) {
      const double dy = y - cy;
      const double dx = x - cx;
      const double dist_sq = dx * dx + dy * dy;
      if (dist_sq > static_cast<double>(radius) * radius) continue;
      const double falloff =
          std::exp(-dist_sq / (0.5 * radius * radius));
      const double phase = (dx * ct + dy * st) * 2.0 *
                           3.14159265358979323846 / wavelength;
      const double v = amplitude * falloff * std::cos(phase);
      for (int c = 0; c < 3; ++c) {
        img[(c * size + y) * size + x] += static_cast<float>(v * tint[c]);
      }
    }
  }
}

}  // namespace

Result<MultimodalDataset> GenerateMultimodal(
    const MultimodalDatasetSpec& spec) {
  if (spec.num_records <= 0 || spec.num_struct_features <= 0 ||
      spec.image_size < 8) {
    return Status::InvalidArgument("bad dataset spec");
  }
  if (spec.num_informative_struct > spec.num_struct_features) {
    return Status::InvalidArgument(
        "num_informative_struct exceeds num_struct_features");
  }
  if (spec.images_per_record < 1) {
    return Status::InvalidArgument("images_per_record must be >= 1");
  }
  Rng rng(spec.seed);

  // Class-conditional structured means for the informative block.
  std::vector<double> mean0(spec.num_informative_struct);
  std::vector<double> mean1(spec.num_informative_struct);
  for (int i = 0; i < spec.num_informative_struct; ++i) {
    mean0[i] = rng.NextGaussian() * 0.5;
    mean1[i] = mean0[i] + spec.struct_signal * (rng.NextBool(0.5) ? 1 : -1);
  }

  MultimodalDataset out;
  out.t_str.reserve(spec.num_records);
  out.t_img.reserve(spec.num_records);
  const int size = spec.image_size;

  for (int64_t id = 0; id < spec.num_records; ++id) {
    const int label = rng.NextBool(0.5) ? 1 : 0;

    // --- Structured record.
    df::Record rs;
    rs.id = id;
    rs.struct_features.reserve(spec.num_struct_features + 1);
    rs.struct_features.push_back(static_cast<float>(label));
    const auto& mean = label == 1 ? mean1 : mean0;
    for (int i = 0; i < spec.num_struct_features; ++i) {
      double v = rng.NextGaussian();
      if (i < spec.num_informative_struct) v += mean[i];
      rs.struct_features.push_back(static_cast<float>(v));
    }
    out.t_str.push_back(std::move(rs));

    // --- Image record.
    df::Record ri;
    ri.id = id;
    for (int copy = 0; copy < spec.images_per_record; ++copy) {
    Tensor img(Shape{3, size, size});
    float* data = img.mutable_data();
    // Low-amplitude background noise.
    for (int64_t i = 0; i < img.num_elements(); ++i) {
      data[i] = static_cast<float>(rng.NextGaussian() * 0.15);
    }
    // Weak class-correlated color tint (visible to color-aware features,
    // invisible to HOG which is grayscale-gradient based).
    const float class_tint = static_cast<float>(
        (label == 1 ? 0.1 : -0.1) * spec.image_signal);
    for (int64_t i = 0; i < static_cast<int64_t>(size) * size; ++i) {
      data[i] += class_tint;                           // R
      data[2 * size * size + i] -= class_tint;         // B
    }
    // Oriented texture patches: class 1 favors steep, high-frequency
    // stripes; class 0 favors shallow, low-frequency stripes. Overlap in
    // the sampling keeps the task non-trivial.
    const int num_patches = 3 + static_cast<int>(rng.NextUint64(3));
    for (int p = 0; p < num_patches; ++p) {
      const double base_theta = label == 1 ? 1.2 : 0.3;
      const double theta = base_theta + rng.NextGaussian() * 0.35;
      const double wavelength =
          (label == 1 ? 3.0 : 6.5) * (1.0 + 0.2 * rng.NextGaussian());
      const int radius = size / 5 + static_cast<int>(rng.NextUint64(size / 5));
      const int cy = static_cast<int>(rng.NextUint64(size));
      const int cx = static_cast<int>(rng.NextUint64(size));
      float tint[3] = {1.0f, 1.0f, 1.0f};
      // Class-correlated chroma of the texture itself.
      tint[label == 1 ? 0 : 2] += 0.5f;
      PaintStripePatch(data, size, cy, cx, radius, theta,
                       std::max(2.0, wavelength),
                       spec.image_signal * (0.8 + 0.3 * rng.NextDouble()),
                       tint);
    }
    ri.images.push_back(std::move(img));
    }
    out.t_img.push_back(std::move(ri));
  }
  return out;
}

bool IsTestId(int64_t id, double test_fraction, uint64_t seed) {
  uint64_t z = static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL + seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u =
      static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < test_fraction;
}

}  // namespace vista::feat
