# Empty dependencies file for model_parser_test.
# This may be replaced when dependencies are built.
