file(REMOVE_RECURSE
  "CMakeFiles/model_parser_test.dir/model_parser_test.cc.o"
  "CMakeFiles/model_parser_test.dir/model_parser_test.cc.o.d"
  "model_parser_test"
  "model_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
