file(REMOVE_RECURSE
  "CMakeFiles/dag_executor_test.dir/dag_executor_test.cc.o"
  "CMakeFiles/dag_executor_test.dir/dag_executor_test.cc.o.d"
  "dag_executor_test"
  "dag_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
