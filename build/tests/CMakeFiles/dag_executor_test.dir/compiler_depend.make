# Empty compiler generated dependencies file for dag_executor_test.
# This may be replaced when dependencies are built.
