file(REMOVE_RECURSE
  "CMakeFiles/vista_api_test.dir/vista_api_test.cc.o"
  "CMakeFiles/vista_api_test.dir/vista_api_test.cc.o.d"
  "vista_api_test"
  "vista_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
