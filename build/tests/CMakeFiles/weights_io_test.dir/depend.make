# Empty dependencies file for weights_io_test.
# This may be replaced when dependencies are built.
