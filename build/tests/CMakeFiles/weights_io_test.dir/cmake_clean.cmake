file(REMOVE_RECURSE
  "CMakeFiles/weights_io_test.dir/weights_io_test.cc.o"
  "CMakeFiles/weights_io_test.dir/weights_io_test.cc.o.d"
  "weights_io_test"
  "weights_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weights_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
