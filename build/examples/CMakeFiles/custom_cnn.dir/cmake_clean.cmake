file(REMOVE_RECURSE
  "CMakeFiles/custom_cnn.dir/custom_cnn.cpp.o"
  "CMakeFiles/custom_cnn.dir/custom_cnn.cpp.o.d"
  "custom_cnn"
  "custom_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
