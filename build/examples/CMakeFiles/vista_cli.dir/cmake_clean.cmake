file(REMOVE_RECURSE
  "CMakeFiles/vista_cli.dir/vista_cli.cpp.o"
  "CMakeFiles/vista_cli.dir/vista_cli.cpp.o.d"
  "vista_cli"
  "vista_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
