# Empty compiler generated dependencies file for vista_cli.
# This may be replaced when dependencies are built.
