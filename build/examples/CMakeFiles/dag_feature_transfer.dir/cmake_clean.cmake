file(REMOVE_RECURSE
  "CMakeFiles/dag_feature_transfer.dir/dag_feature_transfer.cpp.o"
  "CMakeFiles/dag_feature_transfer.dir/dag_feature_transfer.cpp.o.d"
  "dag_feature_transfer"
  "dag_feature_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_feature_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
