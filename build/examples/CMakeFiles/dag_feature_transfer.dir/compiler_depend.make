# Empty compiler generated dependencies file for dag_feature_transfer.
# This may be replaced when dependencies are built.
