file(REMOVE_RECURSE
  "CMakeFiles/product_recommender.dir/product_recommender.cpp.o"
  "CMakeFiles/product_recommender.dir/product_recommender.cpp.o.d"
  "product_recommender"
  "product_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
