# Empty dependencies file for product_recommender.
# This may be replaced when dependencies are built.
