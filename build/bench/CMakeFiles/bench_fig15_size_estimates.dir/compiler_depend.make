# Empty compiler generated dependencies file for bench_fig15_size_estimates.
# This may be replaced when dependencies are built.
