file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_size_estimates.dir/bench_fig15_size_estimates.cc.o"
  "CMakeFiles/bench_fig15_size_estimates.dir/bench_fig15_size_estimates.cc.o.d"
  "bench_fig15_size_estimates"
  "bench_fig15_size_estimates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_size_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
