file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_tft_beam.dir/bench_fig7b_tft_beam.cc.o"
  "CMakeFiles/bench_fig7b_tft_beam.dir/bench_fig7b_tft_beam.cc.o.d"
  "bench_fig7b_tft_beam"
  "bench_fig7b_tft_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_tft_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
