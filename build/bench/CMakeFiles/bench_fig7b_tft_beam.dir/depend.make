# Empty dependencies file for bench_fig7b_tft_beam.
# This may be replaced when dependencies are built.
