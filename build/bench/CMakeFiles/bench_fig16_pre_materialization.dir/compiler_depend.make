# Empty compiler generated dependencies file for bench_fig16_pre_materialization.
# This may be replaced when dependencies are built.
