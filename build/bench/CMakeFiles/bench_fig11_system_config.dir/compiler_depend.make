# Empty compiler generated dependencies file for bench_fig11_system_config.
# This may be replaced when dependencies are built.
