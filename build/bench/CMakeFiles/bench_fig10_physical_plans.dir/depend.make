# Empty dependencies file for bench_fig10_physical_plans.
# This may be replaced when dependencies are built.
