
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7a_gpu.cc" "bench/CMakeFiles/bench_fig7a_gpu.dir/bench_fig7a_gpu.cc.o" "gcc" "bench/CMakeFiles/bench_fig7a_gpu.dir/bench_fig7a_gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vista/CMakeFiles/vista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/vista_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/vista_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vista_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/vista_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vista_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vista_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vista_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
