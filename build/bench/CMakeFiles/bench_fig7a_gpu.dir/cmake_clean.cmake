file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_gpu.dir/bench_fig7a_gpu.cc.o"
  "CMakeFiles/bench_fig7a_gpu.dir/bench_fig7a_gpu.cc.o.d"
  "bench_fig7a_gpu"
  "bench_fig7a_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
