# Empty compiler generated dependencies file for bench_fig9_logical_plans.
# This may be replaced when dependencies are built.
