file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_logical_plans.dir/bench_fig9_logical_plans.cc.o"
  "CMakeFiles/bench_fig9_logical_plans.dir/bench_fig9_logical_plans.cc.o.d"
  "bench_fig9_logical_plans"
  "bench_fig9_logical_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_logical_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
