# Empty compiler generated dependencies file for vista_tensor.
# This may be replaced when dependencies are built.
