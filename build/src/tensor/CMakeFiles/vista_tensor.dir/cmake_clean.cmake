file(REMOVE_RECURSE
  "CMakeFiles/vista_tensor.dir/gemm.cc.o"
  "CMakeFiles/vista_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/vista_tensor.dir/ops.cc.o"
  "CMakeFiles/vista_tensor.dir/ops.cc.o.d"
  "CMakeFiles/vista_tensor.dir/shape.cc.o"
  "CMakeFiles/vista_tensor.dir/shape.cc.o.d"
  "CMakeFiles/vista_tensor.dir/tensor.cc.o"
  "CMakeFiles/vista_tensor.dir/tensor.cc.o.d"
  "libvista_tensor.a"
  "libvista_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
