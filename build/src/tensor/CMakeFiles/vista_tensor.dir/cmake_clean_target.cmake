file(REMOVE_RECURSE
  "libvista_tensor.a"
)
