
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vista/dag_executor.cc" "src/vista/CMakeFiles/vista_core.dir/dag_executor.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/dag_executor.cc.o.d"
  "/root/repo/src/vista/estimator.cc" "src/vista/CMakeFiles/vista_core.dir/estimator.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/estimator.cc.o.d"
  "/root/repo/src/vista/experiments.cc" "src/vista/CMakeFiles/vista_core.dir/experiments.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/experiments.cc.o.d"
  "/root/repo/src/vista/optimizer.cc" "src/vista/CMakeFiles/vista_core.dir/optimizer.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/optimizer.cc.o.d"
  "/root/repo/src/vista/plans.cc" "src/vista/CMakeFiles/vista_core.dir/plans.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/plans.cc.o.d"
  "/root/repo/src/vista/profiles.cc" "src/vista/CMakeFiles/vista_core.dir/profiles.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/profiles.cc.o.d"
  "/root/repo/src/vista/real_executor.cc" "src/vista/CMakeFiles/vista_core.dir/real_executor.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/real_executor.cc.o.d"
  "/root/repo/src/vista/roster.cc" "src/vista/CMakeFiles/vista_core.dir/roster.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/roster.cc.o.d"
  "/root/repo/src/vista/sim_executor.cc" "src/vista/CMakeFiles/vista_core.dir/sim_executor.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/sim_executor.cc.o.d"
  "/root/repo/src/vista/vista.cc" "src/vista/CMakeFiles/vista_core.dir/vista.cc.o" "gcc" "src/vista/CMakeFiles/vista_core.dir/vista.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/vista_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/vista_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/vista_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/vista_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vista_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/vista_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vista_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
