file(REMOVE_RECURSE
  "CMakeFiles/vista_core.dir/dag_executor.cc.o"
  "CMakeFiles/vista_core.dir/dag_executor.cc.o.d"
  "CMakeFiles/vista_core.dir/estimator.cc.o"
  "CMakeFiles/vista_core.dir/estimator.cc.o.d"
  "CMakeFiles/vista_core.dir/experiments.cc.o"
  "CMakeFiles/vista_core.dir/experiments.cc.o.d"
  "CMakeFiles/vista_core.dir/optimizer.cc.o"
  "CMakeFiles/vista_core.dir/optimizer.cc.o.d"
  "CMakeFiles/vista_core.dir/plans.cc.o"
  "CMakeFiles/vista_core.dir/plans.cc.o.d"
  "CMakeFiles/vista_core.dir/profiles.cc.o"
  "CMakeFiles/vista_core.dir/profiles.cc.o.d"
  "CMakeFiles/vista_core.dir/real_executor.cc.o"
  "CMakeFiles/vista_core.dir/real_executor.cc.o.d"
  "CMakeFiles/vista_core.dir/roster.cc.o"
  "CMakeFiles/vista_core.dir/roster.cc.o.d"
  "CMakeFiles/vista_core.dir/sim_executor.cc.o"
  "CMakeFiles/vista_core.dir/sim_executor.cc.o.d"
  "CMakeFiles/vista_core.dir/vista.cc.o"
  "CMakeFiles/vista_core.dir/vista.cc.o.d"
  "libvista_core.a"
  "libvista_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
