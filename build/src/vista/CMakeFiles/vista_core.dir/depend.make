# Empty dependencies file for vista_core.
# This may be replaced when dependencies are built.
