file(REMOVE_RECURSE
  "libvista_core.a"
)
