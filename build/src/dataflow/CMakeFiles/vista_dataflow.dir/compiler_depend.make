# Empty compiler generated dependencies file for vista_dataflow.
# This may be replaced when dependencies are built.
