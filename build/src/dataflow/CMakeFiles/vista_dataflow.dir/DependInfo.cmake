
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/cache.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/cache.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/cache.cc.o.d"
  "/root/repo/src/dataflow/engine.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/engine.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/engine.cc.o.d"
  "/root/repo/src/dataflow/io.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/io.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/io.cc.o.d"
  "/root/repo/src/dataflow/memory.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/memory.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/memory.cc.o.d"
  "/root/repo/src/dataflow/partition.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/partition.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/partition.cc.o.d"
  "/root/repo/src/dataflow/record.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/record.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/record.cc.o.d"
  "/root/repo/src/dataflow/spill.cc" "src/dataflow/CMakeFiles/vista_dataflow.dir/spill.cc.o" "gcc" "src/dataflow/CMakeFiles/vista_dataflow.dir/spill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vista_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vista_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
