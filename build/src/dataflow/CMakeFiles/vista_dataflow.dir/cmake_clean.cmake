file(REMOVE_RECURSE
  "CMakeFiles/vista_dataflow.dir/cache.cc.o"
  "CMakeFiles/vista_dataflow.dir/cache.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/engine.cc.o"
  "CMakeFiles/vista_dataflow.dir/engine.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/io.cc.o"
  "CMakeFiles/vista_dataflow.dir/io.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/memory.cc.o"
  "CMakeFiles/vista_dataflow.dir/memory.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/partition.cc.o"
  "CMakeFiles/vista_dataflow.dir/partition.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/record.cc.o"
  "CMakeFiles/vista_dataflow.dir/record.cc.o.d"
  "CMakeFiles/vista_dataflow.dir/spill.cc.o"
  "CMakeFiles/vista_dataflow.dir/spill.cc.o.d"
  "libvista_dataflow.a"
  "libvista_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
