file(REMOVE_RECURSE
  "libvista_dataflow.a"
)
