# Empty dependencies file for vista_sim.
# This may be replaced when dependencies are built.
