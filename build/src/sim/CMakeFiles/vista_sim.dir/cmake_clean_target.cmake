file(REMOVE_RECURSE
  "libvista_sim.a"
)
