file(REMOVE_RECURSE
  "CMakeFiles/vista_sim.dir/cluster.cc.o"
  "CMakeFiles/vista_sim.dir/cluster.cc.o.d"
  "libvista_sim.a"
  "libvista_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
