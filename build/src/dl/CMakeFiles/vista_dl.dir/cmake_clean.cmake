file(REMOVE_RECURSE
  "CMakeFiles/vista_dl.dir/cnn.cc.o"
  "CMakeFiles/vista_dl.dir/cnn.cc.o.d"
  "CMakeFiles/vista_dl.dir/dag.cc.o"
  "CMakeFiles/vista_dl.dir/dag.cc.o.d"
  "CMakeFiles/vista_dl.dir/model_parser.cc.o"
  "CMakeFiles/vista_dl.dir/model_parser.cc.o.d"
  "CMakeFiles/vista_dl.dir/model_zoo.cc.o"
  "CMakeFiles/vista_dl.dir/model_zoo.cc.o.d"
  "CMakeFiles/vista_dl.dir/op_spec.cc.o"
  "CMakeFiles/vista_dl.dir/op_spec.cc.o.d"
  "CMakeFiles/vista_dl.dir/primitive.cc.o"
  "CMakeFiles/vista_dl.dir/primitive.cc.o.d"
  "CMakeFiles/vista_dl.dir/weights_io.cc.o"
  "CMakeFiles/vista_dl.dir/weights_io.cc.o.d"
  "libvista_dl.a"
  "libvista_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
