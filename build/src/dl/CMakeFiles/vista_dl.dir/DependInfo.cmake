
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/cnn.cc" "src/dl/CMakeFiles/vista_dl.dir/cnn.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/cnn.cc.o.d"
  "/root/repo/src/dl/dag.cc" "src/dl/CMakeFiles/vista_dl.dir/dag.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/dag.cc.o.d"
  "/root/repo/src/dl/model_parser.cc" "src/dl/CMakeFiles/vista_dl.dir/model_parser.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/model_parser.cc.o.d"
  "/root/repo/src/dl/model_zoo.cc" "src/dl/CMakeFiles/vista_dl.dir/model_zoo.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/model_zoo.cc.o.d"
  "/root/repo/src/dl/op_spec.cc" "src/dl/CMakeFiles/vista_dl.dir/op_spec.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/op_spec.cc.o.d"
  "/root/repo/src/dl/primitive.cc" "src/dl/CMakeFiles/vista_dl.dir/primitive.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/primitive.cc.o.d"
  "/root/repo/src/dl/weights_io.cc" "src/dl/CMakeFiles/vista_dl.dir/weights_io.cc.o" "gcc" "src/dl/CMakeFiles/vista_dl.dir/weights_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/vista_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vista_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
