# Empty compiler generated dependencies file for vista_dl.
# This may be replaced when dependencies are built.
