file(REMOVE_RECURSE
  "libvista_dl.a"
)
