file(REMOVE_RECURSE
  "libvista_features.a"
)
