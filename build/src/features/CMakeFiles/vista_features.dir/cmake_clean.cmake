file(REMOVE_RECURSE
  "CMakeFiles/vista_features.dir/hog.cc.o"
  "CMakeFiles/vista_features.dir/hog.cc.o.d"
  "CMakeFiles/vista_features.dir/synthetic.cc.o"
  "CMakeFiles/vista_features.dir/synthetic.cc.o.d"
  "libvista_features.a"
  "libvista_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
