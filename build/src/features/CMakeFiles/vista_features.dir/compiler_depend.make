# Empty compiler generated dependencies file for vista_features.
# This may be replaced when dependencies are built.
