file(REMOVE_RECURSE
  "CMakeFiles/vista_ml.dir/decision_tree.cc.o"
  "CMakeFiles/vista_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/vista_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/vista_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/vista_ml.dir/metrics.cc.o"
  "CMakeFiles/vista_ml.dir/metrics.cc.o.d"
  "CMakeFiles/vista_ml.dir/mlp.cc.o"
  "CMakeFiles/vista_ml.dir/mlp.cc.o.d"
  "CMakeFiles/vista_ml.dir/scaler.cc.o"
  "CMakeFiles/vista_ml.dir/scaler.cc.o.d"
  "libvista_ml.a"
  "libvista_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
