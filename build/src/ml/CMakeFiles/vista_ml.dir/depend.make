# Empty dependencies file for vista_ml.
# This may be replaced when dependencies are built.
