file(REMOVE_RECURSE
  "libvista_ml.a"
)
