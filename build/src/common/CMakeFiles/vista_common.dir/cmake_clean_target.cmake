file(REMOVE_RECURSE
  "libvista_common.a"
)
