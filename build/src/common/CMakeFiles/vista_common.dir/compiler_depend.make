# Empty compiler generated dependencies file for vista_common.
# This may be replaced when dependencies are built.
