file(REMOVE_RECURSE
  "CMakeFiles/vista_common.dir/bytes.cc.o"
  "CMakeFiles/vista_common.dir/bytes.cc.o.d"
  "CMakeFiles/vista_common.dir/logging.cc.o"
  "CMakeFiles/vista_common.dir/logging.cc.o.d"
  "CMakeFiles/vista_common.dir/status.cc.o"
  "CMakeFiles/vista_common.dir/status.cc.o.d"
  "CMakeFiles/vista_common.dir/thread_pool.cc.o"
  "CMakeFiles/vista_common.dir/thread_pool.cc.o.d"
  "libvista_common.a"
  "libvista_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vista_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
