#include <gtest/gtest.h>

#include <algorithm>

#include "features/synthetic.h"
#include "vista/estimator.h"
#include "vista/optimizer.h"

namespace vista {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto roster = Roster::Default();
    ASSERT_TRUE(roster.ok());
    roster_ = std::make_unique<Roster>(std::move(roster).value());
  }

  DataStats Foods() {
    DataStats stats;
    stats.num_records = 20000;
    stats.num_struct_features = 130;
    return stats;
  }

  DataStats Amazon() {
    DataStats stats;
    stats.num_records = 200000;
    stats.num_struct_features = 200;
    return stats;
  }

  TransferWorkload Workload(dl::KnownCnn cnn, int layers) {
    auto w = TransferWorkload::TopLayers(*roster_, cnn, layers);
    EXPECT_TRUE(w.ok());
    return *w;
  }

  const RosterEntry& Entry(dl::KnownCnn cnn) {
    return **roster_->Lookup(cnn);
  }

  std::unique_ptr<Roster> roster_;
};

TEST_F(OptimizerTest, EstimatorMatchesEq16) {
  // |Ti| = alpha*(8+8+4*|g(f(I))|)*n + |Tstr| with full feature tensors.
  const auto& entry = Entry(dl::KnownCnn::kAlexNet);
  TransferWorkload w = Workload(dl::KnownCnn::kAlexNet, 2);  // fc7, fc8.
  DataStats stats = Foods();
  auto est = EstimateSizes(entry, w, stats, 2.0);
  ASSERT_TRUE(est.ok());
  const int64_t t_str = 20000 * (16 + 4 * 130);
  EXPECT_EQ(est->t_str_bytes, t_str);
  // fc7 has 4096 features.
  EXPECT_EQ(est->t_i_bytes[0],
            2 * 20000 * (16 + 4096LL * 4) + t_str);
  EXPECT_EQ(est->s_single,
            std::max(est->t_i_bytes[0], est->t_i_bytes[1]));
}

TEST_F(OptimizerTest, SDoubleIsAdjacentPairPeak) {
  const auto& entry = Entry(dl::KnownCnn::kResNet50);
  TransferWorkload w = Workload(dl::KnownCnn::kResNet50, 5);
  auto est = EstimateSizes(entry, w, Foods());
  ASSERT_TRUE(est.ok());
  // conv4_6 + conv5_1 dominate adjacent pairs.
  EXPECT_EQ(est->s_double,
            est->t_i_bytes[0] + est->t_i_bytes[1] - est->t_str_bytes);
  EXPECT_GT(est->s_double, est->s_single);
}

TEST_F(OptimizerTest, SerializedEstimatesAreSmaller) {
  const auto& entry = Entry(dl::KnownCnn::kResNet50);
  TransferWorkload w = Workload(dl::KnownCnn::kResNet50, 5);
  auto est = EstimateSizes(entry, w, Foods());
  ASSERT_TRUE(est.ok());
  for (size_t i = 0; i < est->t_i_bytes.size(); ++i) {
    EXPECT_LT(est->t_i_serialized_bytes[i], est->t_i_bytes[i]);
  }
}

TEST_F(OptimizerTest, EagerTableDominatesEveryTi) {
  const auto& entry = Entry(dl::KnownCnn::kAlexNet);
  TransferWorkload w = Workload(dl::KnownCnn::kAlexNet, 4);
  auto est = EstimateSizes(entry, w, Foods());
  ASSERT_TRUE(est.ok());
  for (int64_t ti : est->t_i_bytes) {
    EXPECT_GE(est->eager_table_bytes, ti);
  }
}

TEST_F(OptimizerTest, PicksSevenCoresForAlexNetOnFoods) {
  SystemEnv env;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kAlexNet),
                                   Workload(dl::KnownCnn::kAlexNet, 4),
                                   Foods());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->cpu, 7);  // Section 5.3: AlexNet -> 7.
}

TEST_F(OptimizerTest, PicksSevenCoresForResNetOnFoods) {
  SystemEnv env;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kResNet50),
                                   Workload(dl::KnownCnn::kResNet50, 5),
                                   Foods());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->cpu, 7);  // Section 5.3: ResNet50 -> 7.
}

TEST_F(OptimizerTest, PicksFourCoresForVggOnFoods) {
  SystemEnv env;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kVgg16),
                                   Workload(dl::KnownCnn::kVgg16, 3),
                                   Foods());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->cpu, 4);  // Section 5.3: VGG16 -> 4 (CNN memory blowup).
}

TEST_F(OptimizerTest, ConstraintsHoldAcrossWorkloads) {
  SystemEnv env;
  OptimizerParams params;
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    for (const DataStats& stats : {Foods(), Amazon()}) {
      const auto& entry = Entry(cnn);
      const int max_layers = cnn == dl::KnownCnn::kVgg16 ? 3 : 4;
      TransferWorkload w = Workload(cnn, max_layers);
      auto d = OptimizeFeatureTransfer(env, entry, w, stats, params);
      ASSERT_TRUE(d.ok()) << entry.name();
      auto est = EstimateSizes(entry, w, stats, params.alpha);
      ASSERT_TRUE(est.ok());
      // Eq. 9: 1 <= cpu <= min(cpu_sys, cpu_max) - 1.
      EXPECT_GE(d->cpu, 1);
      EXPECT_LE(d->cpu, 7);
      // Eq. 13: np a positive multiple of cpu * nnodes.
      EXPECT_GT(d->num_partitions, 0);
      EXPECT_EQ(d->num_partitions % (d->cpu * env.num_nodes), 0);
      // Eq. 14: partitions bounded by p_max.
      EXPECT_LT((est->s_single + d->num_partitions - 1) / d->num_partitions,
                params.p_max);
      // Eq. 12: regions fit in system memory.
      EXPECT_LT(params.mem_os_rsv + d->mem_dl + d->mem_user +
                    params.mem_core + d->mem_storage,
                env.node_memory_bytes + 1);
      EXPECT_GT(d->mem_storage, 0);
    }
  }
}

TEST_F(OptimizerTest, BroadcastChosenForSmallStructTable) {
  SystemEnv env;
  DataStats small = Foods();  // 20000 * ~536 B ~= 10 MB < 100 MB.
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kAlexNet),
                                   Workload(dl::KnownCnn::kAlexNet, 4),
                                   small);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->join, df::JoinStrategy::kBroadcast);
}

TEST_F(OptimizerTest, ShuffleChosenForLargeStructTable) {
  SystemEnv env;
  DataStats big = Foods();
  big.num_struct_features = 10000;  // 20000 * 40 KB = 800 MB > 100 MB.
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kAlexNet),
                                   Workload(dl::KnownCnn::kAlexNet, 4), big);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->join, df::JoinStrategy::kShuffleHash);
}

TEST_F(OptimizerTest, SerializedWhenIntermediatesExceedStorage) {
  SystemEnv env;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kResNet50),
                                   Workload(dl::KnownCnn::kResNet50, 5),
                                   Amazon());
  ASSERT_TRUE(d.ok());
  // Amazon/ResNet50 intermediates dwarf per-worker storage.
  EXPECT_EQ(d->persistence, df::PersistenceFormat::kSerialized);
}

TEST_F(OptimizerTest, DeserializedWhenIntermediatesFit) {
  SystemEnv env;
  DataStats tiny = Foods();
  tiny.num_records = 1000;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kAlexNet),
                                   Workload(dl::KnownCnn::kAlexNet, 4),
                                   tiny);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->persistence, df::PersistenceFormat::kDeserialized);
}

TEST_F(OptimizerTest, Int8FeatureBytesAreExactlyQuarterOfFp32) {
  for (auto cnn : {dl::KnownCnn::kAlexNet, dl::KnownCnn::kVgg16,
                   dl::KnownCnn::kResNet50}) {
    const auto& entry = Entry(cnn);
    TransferWorkload w = Workload(cnn, cnn == dl::KnownCnn::kVgg16 ? 3 : 4);
    for (int l : w.layers) {
      EXPECT_EQ(LayerFeatureBytes(entry.arch, l, dl::Precision::kInt8) * 4,
                LayerFeatureBytes(entry.arch, l, dl::Precision::kFp32))
          << entry.name() << " layer " << l;
    }
  }
}

TEST_F(OptimizerTest, Int8EstimatorShrinksFeaturePayloadOnly) {
  // Eq. 16 under int8: the feature payload drops to 1 byte/element while
  // the record key overhead and the structured table stay fp32-sized.
  const auto& entry = Entry(dl::KnownCnn::kAlexNet);
  TransferWorkload w = Workload(dl::KnownCnn::kAlexNet, 2);  // fc7, fc8.
  w.precision = dl::Precision::kInt8;
  auto est = EstimateSizes(entry, w, Foods(), 2.0);
  ASSERT_TRUE(est.ok());
  const int64_t t_str = 20000 * (16 + 4 * 130);
  EXPECT_EQ(est->t_str_bytes, t_str);
  EXPECT_EQ(est->t_i_bytes[0], 2 * 20000 * (16 + 4096LL * 1) + t_str);

  TransferWorkload w32 = Workload(dl::KnownCnn::kAlexNet, 2);
  auto est32 = EstimateSizes(entry, w32, Foods(), 2.0);
  ASSERT_TRUE(est32.ok());
  // The UDF inference buffers stay fp32 (the quantized path keeps layer
  // outputs in fp32 between hops), so that term must not shrink.
  EXPECT_EQ(est->udf_record_bytes, est32->udf_record_bytes);
  EXPECT_LT(est->s_double, est32->s_double);
}

TEST_F(OptimizerTest, Int8FlipsPersistenceToDeserialized) {
  // Twin of SerializedWhenIntermediatesExceedStorage: the same
  // ResNet50-on-Amazon workload whose fp32 intermediates overflow the
  // per-worker storage region fits once int8 quarters the feature bytes,
  // so the optimizer flips the persistence format.
  SystemEnv env;
  TransferWorkload w32 = Workload(dl::KnownCnn::kResNet50, 5);
  auto d32 = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kResNet50),
                                     w32, Amazon());
  ASSERT_TRUE(d32.ok());
  ASSERT_EQ(d32->persistence, df::PersistenceFormat::kSerialized);

  TransferWorkload w8 = Workload(dl::KnownCnn::kResNet50, 5);
  w8.precision = dl::Precision::kInt8;
  auto d8 = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kResNet50),
                                    w8, Amazon());
  ASSERT_TRUE(d8.ok());
  EXPECT_EQ(d8->persistence, df::PersistenceFormat::kDeserialized);
}

TEST_F(OptimizerTest, InfeasibleOnTinyNodes) {
  SystemEnv env;
  env.node_memory_bytes = GiB(8);  // Too small for VGG replicas + regions.
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kVgg16),
                                   Workload(dl::KnownCnn::kVgg16, 3),
                                   Foods());
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(d.status().IsResourceExhausted());
}

TEST_F(OptimizerTest, GpuConstraintLowersParallelism) {
  SystemEnv cpu_env;
  SystemEnv gpu_env;
  gpu_env.gpu_memory_bytes = GiB(12);
  const auto& entry = Entry(dl::KnownCnn::kVgg16);
  TransferWorkload w = Workload(dl::KnownCnn::kVgg16, 3);
  auto with_gpu = OptimizeFeatureTransfer(gpu_env, entry, w, Foods());
  ASSERT_TRUE(with_gpu.ok());
  // Eq. 15: cpu * |f|_mem_gpu < 12 GB with VGG16's GPU footprint.
  EXPECT_LT(with_gpu->cpu * entry.memory.runtime_gpu_bytes,
            gpu_env.gpu_memory_bytes);
}

TEST_F(OptimizerTest, NumPartitionsHelper) {
  // ceil(s_single / (p_max * total_cores)) * total_cores.
  EXPECT_EQ(ComputeNumPartitions(GiB(10), 5, 8, MiB(100)), 3 * 40);
  EXPECT_EQ(ComputeNumPartitions(1, 4, 2, MiB(100)), 8);
}

TEST_F(OptimizerTest, DecisionsToStringIsInformative) {
  SystemEnv env;
  auto d = OptimizeFeatureTransfer(env, Entry(dl::KnownCnn::kAlexNet),
                                   Workload(dl::KnownCnn::kAlexNet, 4),
                                   Foods());
  ASSERT_TRUE(d.ok());
  const std::string s = d->ToString();
  EXPECT_NE(s.find("cpu="), std::string::npos);
  EXPECT_NE(s.find("join="), std::string::npos);
}

TEST_F(OptimizerTest, ModelMemoryScalesWithLargestLayer) {
  const auto& alex = Entry(dl::KnownCnn::kAlexNet);
  const auto& resnet = Entry(dl::KnownCnn::kResNet50);
  TransferWorkload wa = Workload(dl::KnownCnn::kAlexNet, 4);
  TransferWorkload wr = Workload(dl::KnownCnn::kResNet50, 5);
  // ResNet50's top-5 includes conv4_6 whose pooled features (4096)
  // match AlexNet's fc layers; both are modest for LR.
  EXPECT_GT(EstimateModelMemoryBytes(resnet, wr, Foods()), 0);
  EXPECT_GT(EstimateModelMemoryBytes(alex, wa, Foods()), 0);
  // MLP models are much bigger than LR.
  TransferWorkload mlp = wa;
  mlp.model = DownstreamModel::kMlp;
  EXPECT_GT(EstimateModelMemoryBytes(alex, mlp, Foods()),
            10 * EstimateModelMemoryBytes(alex, wa, Foods()));
}

TEST_F(OptimizerTest, ConvTempEstimatesReflectImplicitGemm) {
  // The Eq. 16 Temp term under implicit GEMM is two packed panels; the
  // legacy materialized-im2col figure on VGG16's 224x224 3x3 convs is a
  // full ~115 MB patch matrix on top of them — at least the 4x reduction
  // the kernel tests measure, in practice far more.
  const auto& entry = Entry(dl::KnownCnn::kVgg16);
  TransferWorkload w = Workload(dl::KnownCnn::kVgg16, 2);
  auto est = EstimateSizes(entry, w, Foods());
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->conv_temp_bytes, 0);
  EXPECT_GE(est->conv_temp_im2col_bytes, 4 * est->conv_temp_bytes);
  // Layer-level: the per-layer walk agrees with the workload maximum.
  int64_t peak = 0;
  for (int l = 0; l < entry.arch.num_layers(); ++l) {
    peak = std::max(peak, ConvTempBytes(entry.arch, l));
  }
  EXPECT_EQ(peak, est->conv_temp_bytes);
}

TEST_F(OptimizerTest, MaterializedIm2ColTempFlipsPlanChoice) {
  // The Temp term must actually move plan decisions: charging the legacy
  // materialized-im2col scratch to DL Execution Memory shrinks Storage by
  // x * ~115 MB on VGG16, which at some node size crosses the
  // s_double-per-worker line and flips persistence to serialized (or
  // costs a thread of cpu). Sweep node memory and require at least one
  // flip, with the memory accounting ordered correctly everywhere.
  const auto& entry = Entry(dl::KnownCnn::kVgg16);
  TransferWorkload w = Workload(dl::KnownCnn::kVgg16, 2);
  DataStats stats = Amazon();
  OptimizerParams implicit_params;
  OptimizerParams legacy_params;
  legacy_params.materialized_im2col = true;
  bool flipped = false;
  for (int64_t mem = GiB(6); mem <= GiB(48); mem += MiB(256)) {
    SystemEnv env;
    env.node_memory_bytes = mem;
    auto a = OptimizeFeatureTransfer(env, entry, w, stats, implicit_params);
    auto b = OptimizeFeatureTransfer(env, entry, w, stats, legacy_params);
    if (!a.ok() || !b.ok()) continue;
    if (a->cpu == b->cpu) {
      EXPECT_GT(b->mem_dl, a->mem_dl);
      EXPECT_LT(b->mem_storage, a->mem_storage);
    }
    if (a->persistence != b->persistence || a->cpu != b->cpu) flipped = true;
  }
  EXPECT_TRUE(flipped)
      << "materialized-im2col Temp accounting never changed a plan";
}

}  // namespace
}  // namespace vista
