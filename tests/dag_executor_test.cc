#include <gtest/gtest.h>

#include "vista/dag_executor.h"

namespace vista {
namespace {

/// A DAG whose retained frontier matters at scale: a wide trunk feeding
/// several aggregated feature heads.
Result<dl::DagArchitecture> WideTrunkDag() {
  using dl::DagNodeSpec;
  using dl::MergeOp;
  auto conv = [](int64_t filters, int kernel, int stride, int pad) {
    dl::OpSpec op;
    op.kind = dl::OpKind::kConv;
    op.out_channels = filters;
    op.kernel = kernel;
    op.stride = stride;
    op.pad = pad;
    op.relu = true;
    return op;
  };
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"stem", {}, MergeOp::kNone, {conv(64, 7, 2, 3)}});
  nodes.push_back({"trunk1", {0}, MergeOp::kNone, {conv(128, 3, 1, 1)}});
  nodes.push_back({"trunk2", {1}, MergeOp::kNone, {conv(128, 3, 2, 1)}});
  nodes.push_back({"head_a", {1, 2}, MergeOp::kNone, {}});
  // head_a is invalid without merge; fix to concat via downsample mismatch
  // -- use trunk2-only heads instead.
  nodes.pop_back();
  nodes.push_back({"head_a", {2}, MergeOp::kNone, {conv(64, 1, 1, 0)}});
  nodes.push_back({"head_b", {2}, MergeOp::kNone, {conv(64, 1, 1, 0)}});
  nodes.push_back({"head_c", {2}, MergeOp::kNone, {conv(64, 1, 1, 0)}});
  return dl::DagArchitecture::Create("WideTrunk", Shape{3, 64, 64},
                                     std::move(nodes));
}

DagSimSetup DefaultSetup() {
  DagSimSetup setup;
  setup.data.num_records = 20000;
  setup.data.num_struct_features = 130;
  setup.profile = SparkDefaultProfile(setup.env, 4);
  // Trunk activations are large per record; keep partitions small enough
  // for the per-thread UDF buffers (the optimizer's Eq. 14 would do this).
  setup.profile.num_partitions = 1024;
  return setup;
}

TEST(DagExecutorTest, SimulatesMinimalFrontierPlan) {
  auto arch = WideTrunkDag();
  ASSERT_TRUE(arch.ok()) << arch.status().ToString();
  auto result = SimulateDagTransfer(*arch, {3, 4, 5}, DefaultSetup());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->crashed()) << result->status.ToString();
  EXPECT_GT(result->total_seconds, 0);
  // One inference + one train stage per target, plus the read stage.
  int inference = 0, train = 0;
  for (const auto& stage : result->stages) {
    if (stage.name.rfind("dag-inference:", 0) == 0) ++inference;
    if (stage.name.rfind("dag-train:", 0) == 0) ++train;
  }
  EXPECT_EQ(inference, 3);
  EXPECT_EQ(train, 3);
}

TEST(DagExecutorTest, FirstHopDominates) {
  // The trunk is computed once, in the first hop; later heads are cheap —
  // the DAG analogue of the sequential staged plan's shape (Table 3).
  auto arch = WideTrunkDag();
  ASSERT_TRUE(arch.ok());
  auto result = SimulateDagTransfer(*arch, {3, 4, 5}, DefaultSetup());
  ASSERT_TRUE(result.ok());
  // Compare compute time (scheduling overhead is flat per stage).
  double first_hop = 0, later_hops = 0;
  for (const auto& stage : result->stages) {
    if (stage.name == "dag-inference:head_a") {
      first_hop = stage.compute_seconds;
    }
    if (stage.name == "dag-inference:head_b" ||
        stage.name == "dag-inference:head_c") {
      later_hops += stage.compute_seconds;
    }
  }
  EXPECT_GT(first_hop, 5 * later_hops);
}

TEST(DagExecutorTest, MinimalFrontierBeatsKeepEverythingAtScale) {
  // The ablation: at a scale where keeping every computed node's table
  // overflows Storage, the minimal frontier avoids (or greatly reduces)
  // spills — the very point of generalized staged materialization.
  auto arch = WideTrunkDag();
  ASSERT_TRUE(arch.ok());
  DagSimSetup setup = DefaultSetup();
  setup.data.num_records = 200000;  // Amazon scale.
  auto minimal = SimulateDagTransfer(*arch, {3, 4, 5}, setup,
                                     DagFrontierPolicy::kMinimalFrontier);
  auto keep_all = SimulateDagTransfer(*arch, {3, 4, 5}, setup,
                                      DagFrontierPolicy::kKeepEverything);
  ASSERT_TRUE(minimal.ok());
  ASSERT_TRUE(keep_all.ok());
  ASSERT_FALSE(minimal->crashed());
  EXPECT_LT(minimal->spill_bytes_written, keep_all->spill_bytes_written);
  EXPECT_LE(minimal->total_seconds, keep_all->total_seconds);
}

TEST(DagExecutorTest, RejectsBadTargets) {
  auto arch = WideTrunkDag();
  ASSERT_TRUE(arch.ok());
  EXPECT_FALSE(SimulateDagTransfer(*arch, {}, DefaultSetup()).ok());
  EXPECT_FALSE(SimulateDagTransfer(*arch, {42}, DefaultSetup()).ok());
}

}  // namespace
}  // namespace vista
