#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/retry.h"
#include "dataflow/engine.h"
#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "vista/real_executor.h"

namespace vista {
namespace {

// ---------------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicyTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 16.0;
  policy.jitter_fraction = 0.5;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double a = BackoffMs(policy, 7, attempt);
    const double b = BackoffMs(policy, 7, attempt);
    EXPECT_DOUBLE_EQ(a, b);  // Pure function of (policy, key, attempt).
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, policy.max_backoff_ms * (1.0 + policy.jitter_fraction));
  }
  // Different keys jitter differently (with overwhelming probability).
  bool any_differ = false;
  for (uint64_t key = 0; key < 16; ++key) {
    if (BackoffMs(policy, key, 1) != BackoffMs(policy, key + 1, 1)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(RetryPolicyTest, DefaultRetryablePredicate) {
  RetryPolicy policy;
  EXPECT_TRUE(IsRetryable(policy, Status::Unavailable("lost task")));
  EXPECT_TRUE(IsRetryable(policy, Status::IOError("flaky disk")));
  EXPECT_FALSE(IsRetryable(policy, Status::ResourceExhausted("budget")));
  EXPECT_FALSE(IsRetryable(policy, Status::InvalidArgument("bug")));
  EXPECT_FALSE(IsRetryable(policy, Status::OK()));
}

TEST(RetryPolicyTest, RunWithRetryRecoversFromTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 0.0;
  std::atomic<int64_t> retries{0};
  int calls = 0;
  Status st = RunWithRetry(
      policy, 1,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status::Unavailable("transient") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.load(), 2);
}

TEST(RetryPolicyTest, RunWithRetryGivesUpAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.0;
  std::atomic<int64_t> retries{0};
  int calls = 0;
  Status st = RunWithRetry(
      policy, 1,
      [&]() -> Status {
        ++calls;
        return Status::IOError("always");
      },
      &retries);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries.load(), 2);
}

TEST(RetryPolicyTest, NonRetryableFailsWithoutRetry) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  Status st = RunWithRetry(policy, 1, [&]() -> Status {
    ++calls;
    return Status::ResourceExhausted("budget violation");
  });
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeed) {
  FaultInjectorConfig config;
  config.seed = 17;
  config.map_task_failure_rate = 0.3;
  FaultInjector a(config);
  FaultInjector b(config);
  config.seed = 18;
  FaultInjector c(config);
  bool differs_across_seeds = false;
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.ShouldInject(FaultSite::kMapTask, key),
              b.ShouldInject(FaultSite::kMapTask, key));
    if (a.ShouldInject(FaultSite::kMapTask, key) !=
        c.ShouldInject(FaultSite::kMapTask, key)) {
      differs_across_seeds = true;
    }
  }
  EXPECT_TRUE(differs_across_seeds);
}

TEST(FaultInjectorTest, RateEndpointsAndProportion) {
  FaultInjectorConfig config;
  config.seed = 5;
  config.spill_read_failure_rate = 0.2;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.ShouldInject(FaultSite::kMapTask, 123));  // Rate 0.
  int fired = 0;
  const int n = 10000;
  for (int key = 0; key < n; ++key) {
    if (injector.ShouldInject(FaultSite::kSpillRead, key)) ++fired;
  }
  EXPECT_GT(fired, n * 0.15);
  EXPECT_LT(fired, n * 0.25);

  config.spill_read_failure_rate = 1.0;
  injector.Configure(config);
  EXPECT_TRUE(injector.ShouldInject(FaultSite::kSpillRead, 42));
}

TEST(FaultInjectorTest, MaybeFailCodesAndCounters) {
  FaultInjectorConfig config;
  config.spill_write_failure_rate = 1.0;
  config.map_task_failure_rate = 1.0;
  FaultInjector injector(config);
  Status w = injector.MaybeFail(FaultSite::kSpillWrite, 0, "test");
  EXPECT_TRUE(w.IsIOError());
  Status t = injector.MaybeFail(FaultSite::kMapTask, 0, "test");
  EXPECT_TRUE(t.IsUnavailable());
  EXPECT_EQ(injector.injected(FaultSite::kSpillWrite), 1);
  EXPECT_EQ(injector.injected(FaultSite::kMapTask), 1);
  EXPECT_EQ(injector.total_injected(), 2);
  EXPECT_TRUE(injector.MaybeFail(FaultSite::kSpillRead, 0, "rate 0").ok());
}

// ---------------------------------------------------------------------------
// SpillManager under injected I/O faults

TEST(SpillFaultTest, ExhaustedWriteRetriesSurfaceAsIOError) {
  df::SpillManager spill("/tmp/vista_fault_spill_a");
  FaultInjectorConfig config;
  config.spill_write_failure_rate = 1.0;
  FaultInjector injector(config);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.0;
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(policy);

  Status st = spill.Write(7, {1, 2, 3});
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(spill.io_retries(), 2);  // Two retried attempts, then give up.
  EXPECT_EQ(spill.num_spills(), 0);  // Failed writes are never recorded.
  EXPECT_TRUE(spill.Read(7).status().IsNotFound());
}

TEST(SpillFaultTest, TransientWriteFaultRecoversViaRetry) {
  // Pick a seed whose (key 7) schedule is fail-then-succeed, so the test is
  // deterministic and meaningful.
  FaultInjectorConfig config;
  config.spill_write_failure_rate = 0.5;
  uint64_t chosen = 0;
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    config.seed = seed;
    FaultInjector probe(config);
    if (probe.ShouldInject(FaultSite::kSpillWrite,
                           FaultInjector::TaskKey(7, 0)) &&
        !probe.ShouldInject(FaultSite::kSpillWrite,
                            FaultInjector::TaskKey(7, 1))) {
      chosen = seed;
      break;
    }
  }
  config.seed = chosen;
  FaultInjector injector(config);
  df::SpillManager spill("/tmp/vista_fault_spill_b");
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 0.0;
  spill.set_fault_injector(&injector);
  spill.set_retry_policy(policy);

  const std::vector<uint8_t> blob = {9, 8, 7, 6};
  ASSERT_TRUE(spill.Write(7, blob).ok());
  EXPECT_EQ(spill.io_retries(), 1);
  EXPECT_EQ(injector.injected(FaultSite::kSpillWrite), 1);
  auto read = spill.Read(7);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, blob);
}

// ---------------------------------------------------------------------------
// MemoryManager: concurrent reserve/release keeps accounting exact

TEST(MemoryRaceTest, PeakTrackingIsConsistentUnderContention) {
  df::MemoryBudgets budgets;
  budgets.core = 1000;
  df::MemoryManager memory(budgets);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memory] {
      for (int i = 0; i < kIters; ++i) {
        if (memory.TryReserve(df::MemoryRegion::kCore, 100).ok()) {
          memory.Release(df::MemoryRegion::kCore, 100);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(memory.Used(df::MemoryRegion::kCore), 0);
  // Successful reservations existed, so the peak saw at least one and the
  // budget was never exceeded.
  EXPECT_GE(memory.Peak(df::MemoryRegion::kCore), 100);
  EXPECT_LE(memory.Peak(df::MemoryRegion::kCore), 1000);
}

// ---------------------------------------------------------------------------
// Engine-level fault tolerance

df::Table MakeNumbersTable(df::Engine* engine, int n, int partitions) {
  std::vector<df::Record> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {static_cast<float>(i), static_cast<float>(2 * i)};
    records.push_back(std::move(r));
  }
  return engine->MakeTable(std::move(records), partitions).value();
}

df::Engine::MapPartitionsFn DoubleFirstFeature() {
  return [](std::vector<df::Record> records)
             -> Result<std::vector<df::Record>> {
    for (df::Record& r : records) r.struct_features[0] *= 2.0f;
    return records;
  };
}

std::vector<float> CollectFirstFeatures(df::Engine* engine,
                                        const df::Table& table, int n) {
  auto rows = engine->Collect(table);
  EXPECT_TRUE(rows.ok());
  std::vector<float> values(n, 0.0f);
  for (const df::Record& r : *rows) {
    values[r.id] = r.struct_features[0];
  }
  return values;
}

TEST(EngineFaultTest, MapPartitionsRetriesAndStaysBitIdentical) {
  df::EngineConfig clean_config;
  clean_config.cpus_per_worker = 4;
  df::Engine clean(clean_config);
  df::Table clean_in = MakeNumbersTable(&clean, 500, 8);
  auto clean_out = clean.MapPartitions(clean_in, DoubleFirstFeature());
  ASSERT_TRUE(clean_out.ok());
  const auto expected = CollectFirstFeatures(&clean, *clean_out, 500);

  auto run_faulted = [&](uint64_t seed) {
    df::EngineConfig config;
    config.cpus_per_worker = 4;
    config.faults.seed = seed;
    config.faults.map_task_failure_rate = 0.2;
    config.retry.max_attempts = 8;
    config.retry.base_backoff_ms = 0.0;
    df::Engine engine(config);
    df::Table in = MakeNumbersTable(&engine, 500, 8);
    auto out = engine.MapPartitions(in, DoubleFirstFeature());
    EXPECT_TRUE(out.ok()) << out.status();
    auto values = CollectFirstFeatures(&engine, *out, 500);
    return std::make_pair(values, engine.stats().recovery);
  };

  auto [values1, recovery1] = run_faulted(13);
  EXPECT_EQ(values1, expected);  // Retried tasks reproduce exact output.
  EXPECT_GT(recovery1.retries, 0);
  EXPECT_GT(recovery1.injected_faults, 0);

  // Determinism: the same seed yields the same failure schedule and the
  // same recovery counters; a different seed yields a different schedule.
  auto [values2, recovery2] = run_faulted(13);
  EXPECT_EQ(values2, expected);
  EXPECT_EQ(recovery1.retries, recovery2.retries);
  EXPECT_EQ(recovery1.injected_faults, recovery2.injected_faults);
  EXPECT_EQ(recovery1.recomputed_partitions, recovery2.recomputed_partitions);
}

TEST(EngineFaultTest, TaskFailuresExhaustingRetriesFailTheJob) {
  df::EngineConfig config;
  config.faults.map_task_failure_rate = 1.0;
  config.retry.max_attempts = 2;
  config.retry.base_backoff_ms = 0.0;
  df::Engine engine(config);
  df::Table in = MakeNumbersTable(&engine, 50, 4);
  auto out = engine.MapPartitions(in, DoubleFirstFeature());
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsUnavailable());
  EXPECT_GT(engine.stats().recovery.retries, 0);
}

TEST(EngineFaultTest, LostSpillIsRecomputedFromLineage) {
  df::EngineConfig config;
  config.cpus_per_worker = 2;
  config.budgets.storage = 2 * 1024;  // Tiny: every persist spills.
  config.retry.max_attempts = 2;
  config.retry.base_backoff_ms = 0.0;
  df::Engine engine(config);
  df::Table in = MakeNumbersTable(&engine, 400, 4);
  auto derived = engine.MapPartitions(in, DoubleFirstFeature());
  ASSERT_TRUE(derived.ok());
  ASSERT_TRUE(
      engine.Persist(&*derived, df::PersistenceFormat::kSerialized).ok());
  ASSERT_GT(engine.stats().num_spills, 0);

  // Every spill read-back now fails: the only way to serve reads is to
  // rebuild the lost partitions from their parent via lineage.
  FaultInjectorConfig faults = engine.fault_injector().config();
  faults.spill_read_failure_rate = 1.0;
  engine.fault_injector().Configure(faults);

  const auto values = CollectFirstFeatures(&engine, *derived, 400);
  for (int i = 0; i < 400; ++i) {
    EXPECT_FLOAT_EQ(values[i], 2.0f * i);
  }
  const auto recovery = engine.stats().recovery;
  EXPECT_GT(recovery.recomputed_partitions, 0);
  EXPECT_GT(recovery.injected_faults, 0);
}

// ---------------------------------------------------------------------------
// End-to-end feature transfer under fault injection and degradation

struct Fixture {
  std::unique_ptr<df::Engine> engine;
  std::unique_ptr<dl::CnnModel> model;
  df::Table t_str;
  df::Table t_img;
  TransferWorkload workload;

  static Fixture Make(df::EngineConfig engine_config = {},
                      int num_records = 150) {
    Fixture f;
    if (engine_config.num_workers == 1 &&
        engine_config.cpus_per_worker == 2) {
      engine_config.cpus_per_worker = 4;
    }
    f.engine = std::make_unique<df::Engine>(engine_config);
    auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
    EXPECT_TRUE(arch.ok());
    auto model =
        dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
    EXPECT_TRUE(model.ok());
    f.model = std::make_unique<dl::CnnModel>(std::move(model).value());

    feat::MultimodalDatasetSpec spec;
    spec.num_records = num_records;
    spec.num_struct_features = 12;
    spec.image_size = 32;
    spec.seed = 3;
    auto data = feat::GenerateMultimodal(spec);
    EXPECT_TRUE(data.ok());
    f.t_str = f.engine->MakeTable(std::move(data->t_str), 6).value();
    f.t_img = f.engine->MakeTable(std::move(data->t_img), 6).value();

    f.workload.cnn = dl::KnownCnn::kAlexNet;
    f.workload.layers = arch->TopLayers(3).value();
    f.workload.model = DownstreamModel::kLogisticRegression;
    // 25 iterations trains past the degenerate all-negative classifier, so
    // the bit-identical comparisons below compare nonzero metrics.
    f.workload.training_iterations = 25;
    return f;
  }
};

RealExecutorConfig FastConfig() {
  RealExecutorConfig config;
  config.num_partitions = 6;
  config.lr.iterations = 25;
  return config;
}

/// Per-layer (TP, FP, FN, F1) — the full downstream-model outcome, so two
/// runs compare bit-identically or not at all.
std::vector<std::tuple<int64_t, int64_t, int64_t, double>> LayerF1s(
    const RealRunResult& result) {
  std::vector<std::tuple<int64_t, int64_t, int64_t, double>> out;
  double max_f1 = 0;
  for (const auto& layer : result.per_layer) {
    out.emplace_back(layer.test_metrics.true_positives,
                     layer.test_metrics.false_positives,
                     layer.test_metrics.false_negatives, layer.test_f1);
    max_f1 = std::max(max_f1, layer.test_f1);
  }
  // Guard against vacuous equality: a degenerate classifier scores 0
  // everywhere and would make any two runs "identical".
  EXPECT_GT(max_f1, 0.0);
  return out;
}

TEST(EndToEndFaultTest, FeatureTransferSurvivesInjectedTaskFailures) {
  Fixture clean = Fixture::Make();
  RealExecutor clean_exec(clean.engine.get(), clean.model.get());
  auto plan = CompilePlan(LogicalPlan::kStaged, clean.workload);
  ASSERT_TRUE(plan.ok());
  auto clean_run = clean_exec.Run(*plan, clean.workload, clean.t_str,
                                  clean.t_img, FastConfig());
  ASSERT_TRUE(clean_run.ok());
  EXPECT_EQ(clean_run->recovery.retries, 0);

  df::EngineConfig faulted_config;
  faulted_config.faults.seed = 7;
  faulted_config.faults.map_task_failure_rate = 0.2;
  faulted_config.retry.max_attempts = 8;
  faulted_config.retry.base_backoff_ms = 0.0;
  Fixture faulted = Fixture::Make(faulted_config);
  RealExecutor faulted_exec(faulted.engine.get(), faulted.model.get());
  auto faulted_run = faulted_exec.Run(*plan, faulted.workload, faulted.t_str,
                                      faulted.t_img, FastConfig());
  ASSERT_TRUE(faulted_run.ok()) << faulted_run.status();
  EXPECT_GT(faulted_run->recovery.retries, 0);
  EXPECT_GT(faulted_run->recovery.injected_faults, 0);
  // The Section 5.2 invariant holds through recovery: identical downstream
  // models, so identical (bit-exact) test metrics.
  EXPECT_EQ(LayerF1s(*faulted_run), LayerF1s(*clean_run));
}

TEST(EndToEndFaultTest, RecoveryCountersAreDeterministicAcrossRuns) {
  auto run_once = [] {
    df::EngineConfig config;
    config.faults.seed = 7;
    config.faults.map_task_failure_rate = 0.2;
    config.retry.max_attempts = 8;
    config.retry.base_backoff_ms = 0.0;
    Fixture f = Fixture::Make(config);
    RealExecutor executor(f.engine.get(), f.model.get());
    auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
    EXPECT_TRUE(plan.ok());
    auto run = executor.Run(*plan, f.workload, f.t_str, f.t_img,
                            FastConfig());
    EXPECT_TRUE(run.ok()) << run.status();
    return run->recovery;
  };
  const RecoveryStats a = run_once();
  const RecoveryStats b = run_once();
  EXPECT_GT(a.retries, 0);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.injected_faults, b.injected_faults);
  EXPECT_EQ(a.recomputed_partitions, b.recomputed_partitions);
}

/// Storage budget (bytes) that fits the Staged plan's working set but not
/// Eager's all-layers tables, for the fixtures above. Measured peaks for
/// 150 records of 32x32 micro-AlexNet, 3 layers: Lazy 51,000; Staged
/// 94,200 deserialized / 91,636 serialized; Eager 175,800 deserialized /
/// 172,508 serialized. 120,000 leaves ~27% headroom over Staged and sits
/// ~30% under Eager in either format, so Eager crashes all the way down
/// the persistence rung and only the plan rung saves it.
int64_t TightStorageBudget() { return 120'000; }

TEST(DegradationTest, EagerCrashesWithoutDegradationAndSurvivesWithIt) {
  df::EngineConfig memory_only;
  memory_only.allow_spill = false;
  memory_only.budgets.storage = TightStorageBudget();

  // Without degradation: the paper's crash scenario.
  Fixture crash = Fixture::Make(memory_only);
  RealExecutor crash_exec(crash.engine.get(), crash.model.get());
  auto eager_plan = CompilePlan(LogicalPlan::kEager, crash.workload);
  ASSERT_TRUE(eager_plan.ok());
  auto crashed = crash_exec.Run(*eager_plan, crash.workload, crash.t_str,
                                crash.t_img, FastConfig());
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(crashed.status().IsResourceExhausted());

  // With degradation: same budget, same plan requested, run completes and
  // reports the ladder steps it took.
  Fixture degrade = Fixture::Make(memory_only);
  RealExecutor degrade_exec(degrade.engine.get(), degrade.model.get());
  RealExecutorConfig config = FastConfig();
  config.auto_degrade = true;
  auto recovered = degrade_exec.Run(*eager_plan, degrade.workload,
                                    degrade.t_str, degrade.t_img, config);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_FALSE(recovered->degradations.empty());
  EXPECT_EQ(recovered->recovery.degradations,
            static_cast<int64_t>(recovered->degradations.size()));
  EXPECT_EQ(recovered->degradations.back(), "plan: Eager/AJ -> Staged");

  // Degraded output is still bit-identical to an unconstrained clean run.
  Fixture clean = Fixture::Make();
  RealExecutor clean_exec(clean.engine.get(), clean.model.get());
  auto clean_run = clean_exec.Run(*eager_plan, clean.workload, clean.t_str,
                                  clean.t_img, FastConfig());
  ASSERT_TRUE(clean_run.ok());
  EXPECT_EQ(LayerF1s(*recovered), LayerF1s(*clean_run));
}

// The Section 4.1/4.4 crash-scenario matrix: each logical plan under a
// tight Storage budget, with and without spilling. Spark-like deployments
// (spills allowed) always complete; memory-only (Ignite-like) deployments
// crash the all-layers plans unless degradation steps in — and every
// completed run stays bit-identical to an unconstrained clean run.
struct MatrixCase {
  LogicalPlan plan;
  bool allow_spill;
  /// Expected without auto-degradation.
  bool expect_completes;
};

class CrashMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CrashMatrixTest, PlansFailDegradeAndRecoverAsExpected) {
  const MatrixCase c = GetParam();
  Fixture clean = Fixture::Make();
  RealExecutor clean_exec(clean.engine.get(), clean.model.get());
  auto plan = CompilePlan(c.plan, clean.workload);
  ASSERT_TRUE(plan.ok());
  auto clean_run = clean_exec.Run(*plan, clean.workload, clean.t_str,
                                  clean.t_img, FastConfig());
  ASSERT_TRUE(clean_run.ok());

  df::EngineConfig tight;
  tight.allow_spill = c.allow_spill;
  tight.budgets.storage = TightStorageBudget();

  Fixture plain = Fixture::Make(tight);
  RealExecutor plain_exec(plain.engine.get(), plain.model.get());
  auto plain_run = plain_exec.Run(*plan, plain.workload, plain.t_str,
                                  plain.t_img, FastConfig());
  EXPECT_EQ(plain_run.ok(), c.expect_completes)
      << (plain_run.ok() ? "completed" : plain_run.status().ToString());
  if (!plain_run.ok()) {
    EXPECT_TRUE(plain_run.status().IsResourceExhausted());
  } else {
    EXPECT_EQ(LayerF1s(*plain_run), LayerF1s(*clean_run));
  }

  // With degradation enabled, every cell of the matrix completes, and the
  // recovered runs match the clean baseline bit-for-bit.
  Fixture degraded = Fixture::Make(tight);
  RealExecutor degraded_exec(degraded.engine.get(), degraded.model.get());
  RealExecutorConfig config = FastConfig();
  config.auto_degrade = true;
  auto degraded_run = degraded_exec.Run(*plan, degraded.workload,
                                        degraded.t_str, degraded.t_img,
                                        config);
  ASSERT_TRUE(degraded_run.ok()) << degraded_run.status();
  EXPECT_EQ(LayerF1s(*degraded_run), LayerF1s(*clean_run));
  if (!c.expect_completes) {
    EXPECT_FALSE(degraded_run->degradations.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndSpillModes, CrashMatrixTest,
    ::testing::Values(
        // Spark-like: spills absorb the pressure, everything completes.
        MatrixCase{LogicalPlan::kLazy, true, true},
        MatrixCase{LogicalPlan::kEager, true, true},
        MatrixCase{LogicalPlan::kStaged, true, true},
        // Ignite-like memory-only: the all-layers Eager table crashes, the
        // one-layer-at-a-time plans fit.
        MatrixCase{LogicalPlan::kLazy, false, true},
        MatrixCase{LogicalPlan::kEager, false, false},
        MatrixCase{LogicalPlan::kStaged, false, true}));

}  // namespace
}  // namespace vista
