// Cross-cutting property suites: invariants of the estimator, optimizer,
// and simulator across parameter sweeps, plus failure injection into the
// engine's disk-spill path.

#include <cstdio>
#include <sys/stat.h>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataflow/engine.h"
#include "vista/experiments.h"

namespace vista {
namespace {

// ------------------------------------------------- Estimator properties.

class EstimatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<dl::KnownCnn, double>> {
 protected:
  void SetUp() override {
    auto roster = Roster::Default();
    ASSERT_TRUE(roster.ok());
    roster_ = std::make_unique<Roster>(std::move(roster).value());
  }
  std::unique_ptr<Roster> roster_;
};

TEST_P(EstimatorPropertyTest, Invariants) {
  const auto [cnn, scale] = GetParam();
  const RosterEntry* entry = roster_->Lookup(cnn).value();
  const int layers = PaperNumLayers(cnn);
  auto workload = TransferWorkload::TopLayers(*roster_, cnn, layers).value();
  DataStats stats = FoodsDataStats(scale);
  auto est = EstimateSizes(*entry, workload, stats);
  ASSERT_TRUE(est.ok());

  // Serialized never exceeds deserialized.
  for (size_t i = 0; i < est->t_i_bytes.size(); ++i) {
    EXPECT_LE(est->t_i_serialized_bytes[i], est->t_i_bytes[i]);
  }
  // s_single <= s_double <= eager table (+Tstr slack).
  EXPECT_LE(est->s_single, est->s_double);
  EXPECT_LE(est->s_double, est->eager_table_bytes + est->t_str_bytes);
  // Eager UDF buffers dominate staged UDF buffers.
  EXPECT_GE(est->eager_udf_record_bytes, est->udf_record_bytes);

  // Estimates scale linearly with record count.
  DataStats doubled = stats;
  doubled.num_records *= 2;
  auto est2 = EstimateSizes(*entry, workload, doubled);
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(est2->t_str_bytes, 2 * est->t_str_bytes);
  EXPECT_EQ(est2->s_single,
            2 * (est->s_single - 0) - 0);  // Exact: all terms linear in n.
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorPropertyTest,
    ::testing::Combine(::testing::Values(dl::KnownCnn::kAlexNet,
                                         dl::KnownCnn::kVgg16,
                                         dl::KnownCnn::kResNet50),
                       ::testing::Values(0.25, 1.0, 4.0, 10.0)));

// ------------------------------------------------- Optimizer properties.

class OptimizerPropertyTest
    : public ::testing::TestWithParam<std::tuple<dl::KnownCnn, int, double>> {
};

TEST_P(OptimizerPropertyTest, FeasibleOrExplicitlyInfeasible) {
  const auto [cnn, mem_gb, scale] = GetParam();
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(cnn).value();
  auto workload =
      TransferWorkload::TopLayers(roster, cnn, PaperNumLayers(cnn)).value();
  SystemEnv env;
  env.node_memory_bytes = GiB(mem_gb);
  DataStats stats = FoodsDataStats(scale);
  OptimizerParams params;
  auto d = OptimizeFeatureTransfer(env, *entry, workload, stats, params);
  if (!d.ok()) {
    // The only acceptable failure is explicit infeasibility.
    EXPECT_TRUE(d.status().IsResourceExhausted());
    return;
  }
  // Every returned decision satisfies Eqs. 9-14.
  EXPECT_GE(d->cpu, 1);
  EXPECT_LE(d->cpu, std::min(env.cores_per_node, params.cpu_max) - 1);
  EXPECT_GT(d->num_partitions, 0);
  EXPECT_EQ(d->num_partitions % (d->cpu * env.num_nodes), 0);
  EXPECT_GT(d->mem_storage, 0);
  EXPECT_LE(params.mem_os_rsv + d->mem_dl + d->mem_user + params.mem_core +
                d->mem_storage,
            env.node_memory_bytes);
}

TEST_P(OptimizerPropertyTest, MoreMemoryNeverHurtsFeasibility) {
  const auto [cnn, mem_gb, scale] = GetParam();
  auto roster = Roster::Default().value();
  const RosterEntry* entry = roster.Lookup(cnn).value();
  auto workload =
      TransferWorkload::TopLayers(roster, cnn, PaperNumLayers(cnn)).value();
  DataStats stats = FoodsDataStats(scale);
  SystemEnv small;
  small.node_memory_bytes = GiB(mem_gb);
  SystemEnv big = small;
  big.node_memory_bytes = GiB(mem_gb * 2);
  auto d_small = OptimizeFeatureTransfer(small, *entry, workload, stats);
  auto d_big = OptimizeFeatureTransfer(big, *entry, workload, stats);
  if (d_small.ok()) {
    ASSERT_TRUE(d_big.ok());
    // More memory never reduces the chosen parallelism.
    EXPECT_GE(d_big->cpu, d_small->cpu);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerPropertyTest,
    ::testing::Combine(::testing::Values(dl::KnownCnn::kAlexNet,
                                         dl::KnownCnn::kVgg16,
                                         dl::KnownCnn::kResNet50),
                       ::testing::Values(8, 16, 32, 64),
                       ::testing::Values(1.0, 8.0)));

// ------------------------------------------------- Simulator properties.

class SimPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SimPropertyTest, RuntimeMonotonicInDataScale) {
  const double scale = GetParam();
  DrillDownConfig config;
  auto seconds = [&](double s) {
    ExperimentSetup setup;
    setup.cnn = dl::KnownCnn::kResNet50;
    setup.num_layers = 5;
    setup.data = FoodsDataStats(s);
    auto r = RunDrillDown(setup, config);
    EXPECT_TRUE(r.ok());
    EXPECT_FALSE(r->crashed());
    return r->total_seconds;
  };
  EXPECT_LT(seconds(scale), seconds(scale * 2));
}

INSTANTIATE_TEST_SUITE_P(Scales, SimPropertyTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST(SimPropertyTest, CrashMonotonicInThreads) {
  // If Lazy crashes at k threads via DL blowup, it crashes at k+1 too.
  ExperimentSetup setup;
  setup.pd = PdSystem::kSparkLike;
  setup.cnn = dl::KnownCnn::kVgg16;
  setup.num_layers = 3;
  setup.data = FoodsDataStats();
  bool crashed_before = false;
  for (const char* approach : {"Lazy-1", "Lazy-5", "Lazy-7"}) {
    auto r = RunApproach(setup, approach);
    ASSERT_TRUE(r.ok());
    if (crashed_before) {
      EXPECT_TRUE(r->result.crashed()) << approach;
    }
    crashed_before = r->result.crashed();
  }
}

// ------------------------------------------------ Failure injection.

TEST(FailureInjectionTest, UnwritableSpillDirSurfacesIoError) {
  // Block the spill directory with a regular file: directory creation and
  // every spill write must fail (works even when running as root, unlike
  // permission bits).
  const char* blocker = "/tmp/vista_spill_blocker";
  {
    std::FILE* f = std::fopen(blocker, "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  df::EngineConfig config;
  config.budgets.storage = 4096;  // Force eviction almost immediately.
  config.spill_dir = std::string(blocker) + "/sub";
  df::Engine engine(config);
  Rng rng(1);
  std::vector<df::Record> records;
  for (int i = 0; i < 200; ++i) {
    df::Record r;
    r.id = i;
    r.features.Append(Tensor::RandomGaussian(Shape{64}, &rng));
    records.push_back(std::move(r));
  }
  auto table = engine.MakeTable(std::move(records), 8);
  ASSERT_TRUE(table.ok());
  auto st = engine.Persist(&*table, df::PersistenceFormat::kDeserialized);
  // The engine reports the failed spill instead of crashing or silently
  // losing data.
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  std::remove(blocker);
}

TEST(FailureInjectionTest, CorruptRestoreBlobFailsCleanly) {
  df::Partition p(std::vector<df::Record>{});
  p.Evict();
  std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  // Restoring garbage into a partition that claims 0 records: trailing
  // bytes are the partition reader's problem; the engine-level reader
  // rejects them (covered in io_test). Here: a partition with records.
  df::Record r;
  r.id = 1;
  df::Partition q(std::vector<df::Record>{r});
  auto blob = q.ToBlob().value();
  q.Evict();
  std::vector<uint8_t> truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(
      q.Restore(truncated, df::PersistenceFormat::kDeserialized).ok());
}

TEST(FailureInjectionTest, UdfFailureDoesNotPoisonEngine) {
  df::Engine engine{df::EngineConfig{}};
  std::vector<df::Record> records;
  for (int i = 0; i < 20; ++i) {
    df::Record r;
    r.id = i;
    r.struct_features = {1.0f};
    records.push_back(std::move(r));
  }
  auto table = engine.MakeTable(records, 4);
  ASSERT_TRUE(table.ok());
  // First map fails.
  auto bad = engine.MapPartitions(
      *table, [](std::vector<df::Record>) -> Result<std::vector<df::Record>> {
        return Status::Internal("injected failure");
      });
  EXPECT_FALSE(bad.ok());
  // Engine remains fully usable afterwards.
  auto good = engine.MapPartitions(
      *table, [](std::vector<df::Record> r) -> Result<std::vector<df::Record>> {
        return r;
      });
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_records(), 20);
}

}  // namespace
}  // namespace vista
