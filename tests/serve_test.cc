#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dl/model_zoo.h"
#include "features/synthetic.h"
#include "serve/service.h"
#include "serve/view_cache.h"
#include "vista/real_executor.h"

namespace vista::serve {
namespace {

struct Fixture {
  std::unique_ptr<df::Engine> engine;
  std::unique_ptr<dl::CnnModel> model;
  df::Table t_str;
  df::Table t_img;
  TransferWorkload workload;

  static Fixture Make(int num_records = 120, df::EngineConfig ec = {},
                      uint64_t seed = 3) {
    Fixture f;
    if (ec.num_workers == 1 && ec.cpus_per_worker == 2) {
      ec.cpus_per_worker = 4;
    }
    f.engine = std::make_unique<df::Engine>(ec);
    auto arch = dl::BuildMicroArch(dl::KnownCnn::kAlexNet);
    EXPECT_TRUE(arch.ok());
    auto model =
        dl::CnnModel::Instantiate(*arch, 21, dl::WeightInit::kGaborFirstConv);
    EXPECT_TRUE(model.ok());
    f.model = std::make_unique<dl::CnnModel>(std::move(model).value());

    feat::MultimodalDatasetSpec spec;
    spec.num_records = num_records;
    spec.num_struct_features = 12;
    spec.image_size = 32;
    spec.seed = seed;
    auto data = feat::GenerateMultimodal(spec);
    EXPECT_TRUE(data.ok());
    f.t_str = f.engine->MakeTable(std::move(data->t_str), 6).value();
    f.t_img = f.engine->MakeTable(std::move(data->t_img), 6).value();

    f.workload.cnn = dl::KnownCnn::kAlexNet;
    f.workload.layers = arch->TopLayers(3).value();
    f.workload.model = DownstreamModel::kLogisticRegression;
    f.workload.training_iterations = 5;
    return f;
  }
};

ServiceConfig FastServiceConfig(int num_workers = 2) {
  ServiceConfig config;
  config.num_workers = num_workers;
  config.executor.num_partitions = 6;
  config.executor.lr.iterations = 5;
  return config;
}

ServeRequest RequestFor(const Fixture& f, const std::string& tenant = "t0") {
  ServeRequest req;
  req.tenant = tenant;
  req.model = "alexnet";
  req.dataset = "foods";
  req.workload = f.workload;
  return req;
}

std::unique_ptr<FeatureTransferService> MakeService(Fixture* f,
                                                    ServiceConfig config) {
  auto service = FeatureTransferService::Create(f->engine.get(), config);
  EXPECT_TRUE(service.ok()) << service.status().message();
  EXPECT_TRUE((*service)->RegisterModel("alexnet", f->model.get()).ok());
  EXPECT_TRUE((*service)->RegisterDataset("foods", f->t_str, f->t_img).ok());
  return std::move(service).value();
}

int64_t TotalDlFlops(const df::Engine& engine) {
  int64_t total = 0;
  for (const obs::Counter* c : engine.metrics().counters()) {
    if (c->name().rfind("dl.flops.", 0) == 0) total += c->value();
  }
  return total;
}

// -------------------------------------------------------- config validation

TEST(ServeConfigTest, RejectsNonsensicalServiceConfigs) {
  Fixture f = Fixture::Make(40);

  ServiceConfig bad = FastServiceConfig();
  bad.num_workers = 0;
  EXPECT_TRUE(FeatureTransferService::Create(f.engine.get(), bad)
                  .status()
                  .IsInvalidArgument());

  bad = FastServiceConfig();
  bad.max_queue_depth = 0;
  EXPECT_TRUE(FeatureTransferService::Create(f.engine.get(), bad)
                  .status()
                  .IsInvalidArgument());

  bad = FastServiceConfig();
  bad.executor.num_partitions = 0;
  EXPECT_TRUE(FeatureTransferService::Create(f.engine.get(), bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(ServeConfigTest, ViewCacheMustFitUnderStorageBudget) {
  df::EngineConfig ec;
  ec.budgets.storage = 1 << 20;
  Fixture f = Fixture::Make(40, ec);
  ServiceConfig config = FastServiceConfig();
  config.view_cache_bytes = (1 << 20) + 1;
  EXPECT_TRUE(FeatureTransferService::Create(f.engine.get(), config)
                  .status()
                  .IsInvalidArgument());
  config.view_cache_bytes = 1 << 19;
  EXPECT_TRUE(FeatureTransferService::Create(f.engine.get(), config).ok());
}

TEST(RealExecutorConfigTest, ValidateRejectsNonsense) {
  RealExecutorConfig config;
  EXPECT_TRUE(config.Validate().ok());

  config = {};
  config.num_partitions = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = {};
  config.pooling_grid = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = {};
  config.test_fraction = 1.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = {};
  config.driver_memory_bytes = -2;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());

  config = {};
  config.lr.learning_rate = 0.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  // The same config is fine when no training happens.
  config.train_models = false;
  EXPECT_TRUE(config.Validate().ok());

  config = {};
  config.lr.elastic_net_alpha = 1.5;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(RealExecutorConfigTest, RunRejectsInvalidConfig) {
  Fixture f = Fixture::Make(40);
  RealExecutor executor(f.engine.get(), f.model.get());
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  ASSERT_TRUE(plan.ok());
  RealExecutorConfig config;
  config.num_partitions = -3;
  EXPECT_TRUE(executor.Run(*plan, f.workload, f.t_str, f.t_img, config)
                  .status()
                  .IsInvalidArgument());
}

// ----------------------------------------------------------- basic serving

TEST(ServiceTest, ServedQueryMatchesDirectExecutor) {
  Fixture f = Fixture::Make();
  auto service = MakeService(&f, FastServiceConfig());

  auto served = service->Execute(RequestFor(f));
  ASSERT_TRUE(served.ok()) << served.status().message();
  EXPECT_FALSE(served->cache_hit);
  EXPECT_EQ(served->resumed_from_layer, -1);
  ASSERT_EQ(served->run.per_layer.size(), 3u);

  RealExecutor executor(f.engine.get(), f.model.get());
  RealExecutorConfig config = FastServiceConfig().executor;
  auto plan = CompilePlan(LogicalPlan::kStaged, f.workload);
  ASSERT_TRUE(plan.ok());
  auto direct = executor.Run(*plan, f.workload, f.t_str, f.t_img, config);
  ASSERT_TRUE(direct.ok());

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(served->run.per_layer[i].test_metrics.true_positives,
              direct->per_layer[i].test_metrics.true_positives);
    EXPECT_EQ(served->run.per_layer[i].test_metrics.false_positives,
              direct->per_layer[i].test_metrics.false_positives);
    EXPECT_DOUBLE_EQ(served->run.per_layer[i].test_f1,
                     direct->per_layer[i].test_f1);
  }
  // Same total CNN work as the direct staged run: base materialization plus
  // the plan's incremental steps.
  EXPECT_EQ(served->inference_flops, direct->inference_flops);
}

TEST(ServiceTest, RejectsUnknownModelDatasetAndBadWorkloads) {
  Fixture f = Fixture::Make(40);
  auto service = MakeService(&f, FastServiceConfig());

  ServeRequest req = RequestFor(f);
  req.model = "resnet";
  EXPECT_TRUE(service->Execute(req).status().IsNotFound());

  req = RequestFor(f);
  req.dataset = "amazon";
  EXPECT_TRUE(service->Execute(req).status().IsNotFound());

  req = RequestFor(f);
  req.workload.layers.clear();
  EXPECT_TRUE(service->Execute(req).status().IsInvalidArgument());

  req = RequestFor(f);
  req.workload.layers = {2, 1};
  EXPECT_TRUE(service->Execute(req).status().IsInvalidArgument());

  req = RequestFor(f);
  req.workload.layers = {999};
  EXPECT_TRUE(service->Execute(req).status().IsInvalidArgument());

  // Client errors are not shed load.
  EXPECT_EQ(service->stats().admission_rejects, 0);
}

// ------------------------------------------------------- cross-query reuse

TEST(ServiceTest, SecondIdenticalQuerySkipsBaseRecompute) {
  Fixture f = Fixture::Make();
  f.model->EnableProfiling(&f.engine->metrics());
  auto service = MakeService(&f, FastServiceConfig());
  const int base_layer = f.workload.layers.front();
  const int64_t base_flops =
      f.model->arch().layer(base_layer).cumulative_flops *
      f.t_img.num_records();

  const int64_t flops0 = TotalDlFlops(*f.engine);
  auto cold = service->Execute(RequestFor(f, "tenant_a"));
  ASSERT_TRUE(cold.ok());
  const int64_t cold_flops = TotalDlFlops(*f.engine) - flops0;

  auto warm = service->Execute(RequestFor(f, "tenant_b"));
  ASSERT_TRUE(warm.ok());
  const int64_t warm_flops = TotalDlFlops(*f.engine) - flops0 - cold_flops;

  EXPECT_FALSE(cold->cache_hit);
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->resumed_from_layer, base_layer);
  // The saving is exact: the warm query skips the full from-raw base
  // materialization, both in its own accounting and in the kernel-level
  // dl.flops counters.
  EXPECT_EQ(cold->inference_flops - warm->inference_flops, base_flops);
  EXPECT_EQ(cold_flops - warm_flops, base_flops);
  EXPECT_GT(base_flops, 0);

  // Identical downstream models either way.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(warm->run.per_layer[i].test_metrics.true_positives,
              cold->run.per_layer[i].test_metrics.true_positives);
    EXPECT_DOUBLE_EQ(warm->run.per_layer[i].test_f1,
                     cold->run.per_layer[i].test_f1);
  }
  EXPECT_EQ(service->stats().cache_hits, 1);
}

TEST(ServiceTest, DeeperQueryResumesFromShallowerView) {
  Fixture f = Fixture::Make();
  auto service = MakeService(&f, FastServiceConfig());
  const auto& arch = f.model->arch();
  const int shallow = f.workload.layers[0];
  const int deep = f.workload.layers[1];

  auto first = service->Execute(RequestFor(f));
  ASSERT_TRUE(first.ok());

  ServeRequest deeper = RequestFor(f);
  deeper.workload.layers = {deep, f.workload.layers[2]};
  auto second = service->Execute(deeper);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->resumed_from_layer, shallow);

  // Cold reference for the deeper workload on a fresh fixture (same seed =>
  // same data): bit-identical models, more FLOPs.
  Fixture g = Fixture::Make();
  auto service2 = MakeService(&g, FastServiceConfig());
  ServeRequest deeper2 = deeper;
  auto cold = service2->Execute(deeper2);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  ASSERT_EQ(second->run.per_layer.size(), cold->run.per_layer.size());
  for (size_t i = 0; i < cold->run.per_layer.size(); ++i) {
    EXPECT_EQ(second->run.per_layer[i].test_metrics.true_positives,
              cold->run.per_layer[i].test_metrics.true_positives);
    EXPECT_DOUBLE_EQ(second->run.per_layer[i].test_f1,
                     cold->run.per_layer[i].test_f1);
  }
  const int64_t resume_saving =
      arch.layer(shallow).cumulative_flops * f.t_img.num_records();
  EXPECT_EQ(cold->inference_flops - second->inference_flops, resume_saving);
}

TEST(ServiceTest, ZeroCacheBytesDisablesReuse) {
  Fixture f = Fixture::Make(60);
  ServiceConfig config = FastServiceConfig();
  config.view_cache_bytes = 0;
  auto service = MakeService(&f, config);
  ASSERT_TRUE(service->Execute(RequestFor(f)).ok());
  auto second = service->Execute(RequestFor(f));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(service->view_cache().num_views(), 0);
}

// --------------------------------------------------------- concurrency

TEST(ServiceTest, ConcurrentMixedTenantQueriesMatchSerial) {
  Fixture f = Fixture::Make();
  df::EngineConfig ec;
  auto service = MakeService(&f, FastServiceConfig(/*num_workers=*/3));

  // Serial reference, which also warms the view cache so the concurrent
  // phase is deterministic.
  auto reference = service->Execute(RequestFor(f, "warm"));
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2;
  std::vector<std::future<Result<ServeResult>>> futures;
  for (int t = 0; t < kThreads; ++t) {
    futures.push_back(std::async(std::launch::async, [&, t] {
      Result<ServeResult> last =
          Status::Internal("no query ran");
      for (int i = 0; i < kPerThread; ++i) {
        last = service->Execute(
            RequestFor(f, "tenant_" + std::to_string(t)));
        if (!last.ok()) break;
      }
      return last;
    }));
  }
  int hits = 0;
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().message();
    if (result->cache_hit) ++hits;
    ASSERT_EQ(result->run.per_layer.size(),
              reference->run.per_layer.size());
    for (size_t i = 0; i < reference->run.per_layer.size(); ++i) {
      EXPECT_EQ(result->run.per_layer[i].test_metrics.true_positives,
                reference->run.per_layer[i].test_metrics.true_positives);
      EXPECT_EQ(result->run.per_layer[i].test_metrics.false_positives,
                reference->run.per_layer[i].test_metrics.false_positives);
      EXPECT_EQ(result->run.per_layer[i].test_metrics.false_negatives,
                reference->run.per_layer[i].test_metrics.false_negatives);
      EXPECT_DOUBLE_EQ(result->run.per_layer[i].test_f1,
                       reference->run.per_layer[i].test_f1);
    }
    // With the cache warmed, every concurrent query resumes from the
    // cached base and does strictly less CNN work than the cold run.
    EXPECT_TRUE(result->cache_hit);
    EXPECT_LT(result->inference_flops, reference->inference_flops);
  }
  EXPECT_EQ(hits, kThreads);

  service->Drain();
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.queries_completed, 1 + kThreads * kPerThread);
  EXPECT_EQ(stats.queries_failed, 0);
  EXPECT_GE(stats.cache_hits, kThreads);
}

TEST(ServiceTest, BackpressureShedsLoadDeterministically) {
  Fixture f = Fixture::Make(40);
  ServiceConfig config = FastServiceConfig(/*num_workers=*/1);
  config.max_queue_depth = 2;
  config.max_queued_per_tenant = 1;
  config.executor.train_models = false;
  auto service = MakeService(&f, config);

  // Park the single worker inside a blocking completion callback so the
  // queue state is fully deterministic while we probe admission.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ServeRequest blocker = RequestFor(f, "blocker");
  blocker.train_models = false;
  ASSERT_TRUE(service
                  ->Submit(blocker,
                           [&entered, release_future](const ServeResult& r) {
                             EXPECT_TRUE(r.status.ok());
                             entered.set_value();
                             release_future.wait();
                           })
                  .ok());
  entered.get_future().wait();

  // Worker busy, queue empty: one query per tenant fits...
  auto a1 = service->Submit(RequestFor(f, "tenant_a"));
  ASSERT_TRUE(a1.ok());
  // ...a second from the same tenant trips its share...
  EXPECT_TRUE(service->Submit(RequestFor(f, "tenant_a"))
                  .status()
                  .IsUnavailable());
  auto b1 = service->Submit(RequestFor(f, "tenant_b"));
  ASSERT_TRUE(b1.ok());
  // ...and with the global depth (2) reached, every tenant is shed.
  EXPECT_TRUE(service->Submit(RequestFor(f, "tenant_c"))
                  .status()
                  .IsUnavailable());

  release.set_value();
  service->Drain();
  EXPECT_TRUE((*a1)->Wait().status.ok());
  EXPECT_TRUE((*b1)->Wait().status.ok());
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.admission_rejects, 2);
  EXPECT_EQ(stats.queries_completed, 3);
}

TEST(ServiceTest, QueueDeadlineRejectsStaleQueriesAtDequeue) {
  Fixture f = Fixture::Make(40);
  ServiceConfig config = FastServiceConfig(/*num_workers=*/1);
  config.executor.train_models = false;
  auto service = MakeService(&f, config);

  // Negative deadlines are malformed, rejected at submission.
  ServeRequest bad = RequestFor(f);
  bad.deadline_seconds = -1.0;
  EXPECT_TRUE(service->Submit(bad).status().IsInvalidArgument());

  // Park the single worker (same harness as the backpressure test) so the
  // queue wait is deterministic and strictly positive.
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future(release.get_future());
  ServeRequest blocker = RequestFor(f, "blocker");
  blocker.train_models = false;
  ASSERT_TRUE(service
                  ->Submit(blocker,
                           [&entered, release_future](const ServeResult& r) {
                             EXPECT_TRUE(r.status.ok());
                             entered.set_value();
                             release_future.wait();
                           })
                  .ok());
  entered.get_future().wait();

  // Queued behind the parked worker with an unmeetable deadline: the
  // service must fail it at dequeue instead of executing pointlessly.
  ServeRequest doomed = RequestFor(f, "doomed");
  doomed.deadline_seconds = 1e-9;
  auto doomed_ticket = service->Submit(doomed);
  ASSERT_TRUE(doomed_ticket.ok());
  // A generous deadline queued at the same moment still executes.
  ServeRequest patient = RequestFor(f, "patient");
  patient.deadline_seconds = 3600.0;
  auto patient_ticket = service->Submit(patient);
  ASSERT_TRUE(patient_ticket.ok());

  release.set_value();
  const ServeResult& doomed_result = (*doomed_ticket)->Wait();
  EXPECT_TRUE(doomed_result.status.IsDeadlineExceeded())
      << doomed_result.status;
  EXPECT_TRUE(doomed_result.run.per_layer.empty());  // Never executed.
  EXPECT_GT(doomed_result.queue_seconds, 0.0);
  EXPECT_TRUE((*patient_ticket)->Wait().status.ok());
  service->Drain();
  const ServiceStats stats = service->stats();
  EXPECT_EQ(stats.deadline_rejects, 1);
  EXPECT_EQ(stats.queries_failed, 1);
  EXPECT_EQ(stats.queries_completed, 2);
  // A deadline shed is not an admission reject — it was accepted, queued,
  // and failed at dequeue.
  EXPECT_EQ(stats.admission_rejects, 0);
}

TEST(ServiceTest, MemoryAdmissionControlShedsOversizedQueries) {
  df::EngineConfig ec;
  ec.budgets.user = 4 << 10;  // Far below any real inference footprint.
  Fixture f = Fixture::Make(60, ec);
  auto service = MakeService(&f, FastServiceConfig());

  auto result = service->Execute(RequestFor(f));
  EXPECT_TRUE(result.status().IsResourceExhausted());
  EXPECT_EQ(service->stats().admission_rejects, 1);
  EXPECT_EQ(service->stats().queries_completed, 0);

  // The shed is an admission decision, not a crash: a service over an
  // unconstrained engine accepts the identical query.
  Fixture g = Fixture::Make(60);
  auto roomy = MakeService(&g, FastServiceConfig());
  EXPECT_TRUE(roomy->Execute(RequestFor(g)).ok());
}

TEST(ServiceTest, DrainStopsAdmissionAndResumeReopens) {
  Fixture f = Fixture::Make(40);
  auto service = MakeService(&f, FastServiceConfig());
  ASSERT_TRUE(service->Execute(RequestFor(f)).ok());
  service->Drain();
  EXPECT_EQ(service->Submit(RequestFor(f)).status().code(),
            StatusCode::kFailedPrecondition);
  service->Resume();
  EXPECT_TRUE(service->Execute(RequestFor(f)).ok());
}

// ------------------------------------------------------------- view cache

df::Table SmallTable(df::Engine* engine, int num_records, uint64_t seed) {
  feat::MultimodalDatasetSpec spec;
  spec.num_records = num_records;
  spec.num_struct_features = 4;
  spec.num_informative_struct = 2;
  spec.image_size = 8;
  spec.seed = seed;
  auto data = feat::GenerateMultimodal(spec);
  EXPECT_TRUE(data.ok());
  return engine->MakeTable(std::move(data->t_img), 2).value();
}

TEST(ViewCacheTest, FingerprintIgnoresPartitioningButNotContent) {
  df::Engine engine({});
  feat::MultimodalDatasetSpec spec;
  spec.num_records = 24;
  spec.num_struct_features = 4;
  spec.num_informative_struct = 2;
  spec.image_size = 8;
  spec.seed = 11;
  auto data1 = feat::GenerateMultimodal(spec);
  auto data2 = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(data1.ok() && data2.ok());
  auto coarse = engine.MakeTable(std::move(data1->t_img), 2).value();
  auto fine = engine.MakeTable(std::move(data2->t_img), 7).value();
  auto fp_coarse = DatasetFingerprint(coarse);
  auto fp_fine = DatasetFingerprint(fine);
  ASSERT_TRUE(fp_coarse.ok() && fp_fine.ok());
  EXPECT_EQ(*fp_coarse, *fp_fine);

  spec.seed = 12;
  auto other = feat::GenerateMultimodal(spec);
  ASSERT_TRUE(other.ok());
  auto different =
      DatasetFingerprint(engine.MakeTable(std::move(other->t_img), 2).value());
  ASSERT_TRUE(different.ok());
  EXPECT_NE(*fp_coarse, *different);
}

TEST(ViewCacheTest, EvictsLowestFlopsPerByteUnderPressure) {
  df::Engine engine({});
  df::Table big = SmallTable(&engine, 40, 1);
  df::Table small = SmallTable(&engine, 8, 2);
  const int64_t capacity = big.memory_bytes() + small.memory_bytes() / 2;

  FeatureViewCache cache(&engine.memory(), capacity);
  // A huge shallow view saving few FLOPs per byte...
  ASSERT_TRUE(cache.Insert("m", 1, MaterializedView{big, 0},
                           /*recompute_flops=*/100));
  // ...loses to a small deep view saving many.
  ASSERT_TRUE(cache.Insert("m", 1, MaterializedView{small, 2},
                           /*recompute_flops=*/1000000));
  EXPECT_EQ(cache.num_views(), 1);
  EXPECT_FALSE(cache.Lookup("m", 1, 0).has_value());
  auto survivor = cache.Lookup("m", 1, 5);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(survivor->layer, 2);
  EXPECT_LE(cache.resident_bytes(), capacity);

  cache.Clear();
  EXPECT_EQ(cache.num_views(), 0);
  EXPECT_EQ(engine.memory().Used(df::MemoryRegion::kStorage), 0);
}

TEST(ViewCacheTest, LookupReturnsDeepestUsableLayer) {
  df::Engine engine({});
  df::Table t = SmallTable(&engine, 8, 3);
  FeatureViewCache cache(&engine.memory());
  ASSERT_TRUE(cache.Insert("m", 7, MaterializedView{t, 1}, 10));
  ASSERT_TRUE(cache.Insert("m", 7, MaterializedView{t, 3}, 30));
  ASSERT_TRUE(cache.Insert("m", 7, MaterializedView{t, 5}, 50));

  EXPECT_FALSE(cache.Lookup("m", 7, 0).has_value());
  EXPECT_EQ(cache.Lookup("m", 7, 1)->layer, 1);
  EXPECT_EQ(cache.Lookup("m", 7, 4)->layer, 3);
  EXPECT_EQ(cache.Lookup("m", 7, 9)->layer, 5);
  // Other models / datasets never match.
  EXPECT_FALSE(cache.Lookup("other", 7, 9).has_value());
  EXPECT_FALSE(cache.Lookup("m", 8, 9).has_value());
}

TEST(ViewCacheTest, PrecisionsNeverShareViews) {
  // Int8 and fp32 feature views are numerically different tensors, so a
  // lookup must only ever see views of its own precision.
  df::Engine engine({});
  df::Table t = SmallTable(&engine, 8, 3);
  FeatureViewCache cache(&engine.memory());
  ASSERT_TRUE(cache.Insert("m", 7, MaterializedView{t, 3}, 30,
                           dl::Precision::kFp32));
  ASSERT_TRUE(cache.Insert("m", 7, MaterializedView{t, 1}, 10,
                           dl::Precision::kInt8));

  EXPECT_EQ(cache.Lookup("m", 7, 9)->layer, 3);  // fp32 default.
  EXPECT_EQ(cache.Lookup("m", 7, 9, dl::Precision::kInt8)->layer, 1);
  // The fp32 layer-3 view must not satisfy an int8 lookup, and vice versa.
  EXPECT_FALSE(cache.Lookup("m", 7, 2).has_value());
  EXPECT_FALSE(
      cache.Lookup("m", 7, 2, dl::Precision::kInt8).has_value() &&
      cache.Lookup("m", 7, 2, dl::Precision::kInt8)->layer != 1);
  EXPECT_EQ(cache.Lookup("m", 7, 2, dl::Precision::kInt8)->layer, 1);
}

TEST(ViewCacheTest, RejectsViewThatCannotEverFit) {
  df::MemoryBudgets budgets;
  budgets.storage = 64;
  df::MemoryManager mem(budgets);
  df::Engine engine({});
  df::Table t = SmallTable(&engine, 20, 4);
  FeatureViewCache cache(&mem);
  EXPECT_FALSE(cache.Insert("m", 1, MaterializedView{t, 0}, 100));
  EXPECT_EQ(cache.num_views(), 0);
  EXPECT_EQ(mem.Used(df::MemoryRegion::kStorage), 0);
}

}  // namespace
}  // namespace vista::serve
