#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/scaler.h"

namespace vista::ml {
namespace {

Status Extract(const df::Record& r, std::vector<float>* x, float* label) {
  *label = r.struct_features[0];
  x->assign(r.struct_features.begin() + 1, r.struct_features.end());
  return Status::OK();
}

df::Table SkewedTable(df::Engine* engine, int n) {
  Rng rng(3);
  std::vector<df::Record> records;
  for (int i = 0; i < n; ++i) {
    df::Record r;
    r.id = i;
    // Features on wildly different scales + one constant column.
    r.struct_features = {
        static_cast<float>(i % 2),
        static_cast<float>(1000.0 + 50.0 * rng.NextGaussian()),
        static_cast<float>(0.001 * rng.NextGaussian()),
        3.14f,
    };
    records.push_back(std::move(r));
  }
  return engine->MakeTable(std::move(records), 4).value();
}

TEST(ScalerTest, FitComputesMeansAndStds) {
  df::Engine engine{df::EngineConfig{}};
  df::Table table = SkewedTable(&engine, 2000);
  auto scaler = StandardScaler::Fit(&engine, table, Extract);
  ASSERT_TRUE(scaler.ok());
  ASSERT_EQ(scaler->dim(), 3);
  EXPECT_NEAR(scaler->mean()[0], 1000.0, 5.0);
  EXPECT_NEAR(scaler->stddev()[0], 50.0, 5.0);
  EXPECT_NEAR(scaler->mean()[2], 3.14, 1e-5);
  // Constant feature: unit stddev, not ~0.
  EXPECT_DOUBLE_EQ(scaler->stddev()[2], 1.0);
}

TEST(ScalerTest, TransformedFeaturesAreStandardized) {
  df::Engine engine{df::EngineConfig{}};
  df::Table table = SkewedTable(&engine, 2000);
  auto scaler = StandardScaler::Fit(&engine, table, Extract);
  ASSERT_TRUE(scaler.ok());
  const auto wrapped = scaler->Wrap(Extract);

  auto rows = engine.Collect(table).value();
  std::vector<double> sum(3, 0.0), sum_sq(3, 0.0);
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    ASSERT_TRUE(wrapped(r, &x, &label).ok());
    for (int i = 0; i < 3; ++i) {
      sum[i] += x[i];
      sum_sq[i] += static_cast<double>(x[i]) * x[i];
    }
  }
  const double n = static_cast<double>(rows.size());
  for (int i = 0; i < 2; ++i) {  // Non-constant features.
    EXPECT_NEAR(sum[i] / n, 0.0, 0.05) << i;
    EXPECT_NEAR(sum_sq[i] / n, 1.0, 0.1) << i;
  }
}

TEST(ScalerTest, TransformValidatesDimension) {
  df::Engine engine{df::EngineConfig{}};
  df::Table table = SkewedTable(&engine, 100);
  auto scaler = StandardScaler::Fit(&engine, table, Extract);
  ASSERT_TRUE(scaler.ok());
  std::vector<float> wrong(7, 0.0f);
  EXPECT_FALSE(scaler->Transform(&wrong).ok());
}

TEST(ScalerTest, EmptyTableRejected) {
  df::Engine engine{df::EngineConfig{}};
  auto table = engine.MakeTable({}, 2).value();
  EXPECT_FALSE(StandardScaler::Fit(&engine, table, Extract).ok());
}

TEST(ScalerTest, StabilizesLogisticRegressionOnSkewedScales) {
  // Without standardization, a feature on a 1000x scale derails plain
  // gradient descent; with the scaler the model recovers the signal.
  df::Engine engine{df::EngineConfig{}};
  Rng rng(9);
  std::vector<df::Record> records;
  for (int i = 0; i < 2000; ++i) {
    df::Record r;
    r.id = i;
    const double signal = rng.NextGaussian();
    const float label = signal > 0 ? 1.0f : 0.0f;
    // The informative feature is buried in a huge offset and scale.
    r.struct_features = {label,
                         static_cast<float>(5000.0 + 2000.0 * signal),
                         static_cast<float>(rng.NextGaussian())};
    records.push_back(std::move(r));
  }
  df::Table table = engine.MakeTable(std::move(records), 4).value();
  LogisticRegressionConfig config;
  config.iterations = 40;

  auto scaler = StandardScaler::Fit(&engine, table, Extract);
  ASSERT_TRUE(scaler.ok());
  auto scaled_model = TrainLogisticRegression(&engine, table,
                                              scaler->Wrap(Extract), config);
  ASSERT_TRUE(scaled_model.ok());

  auto rows = engine.Collect(table).value();
  const auto wrapped = scaler->Wrap(Extract);
  int correct = 0;
  std::vector<float> x;
  float label = 0;
  for (const df::Record& r : rows) {
    ASSERT_TRUE(wrapped(r, &x, &label).ok());
    if (scaled_model->Predict(x.data()) == (label > 0.5f ? 1 : 0)) {
      ++correct;
    }
  }
  EXPECT_GT(correct / 2000.0, 0.95);
}

}  // namespace
}  // namespace vista::ml
