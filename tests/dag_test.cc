#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dl/dag.h"

namespace vista::dl {
namespace {

OpSpec ConvOp(int64_t filters, int kernel = 3, int stride = 1, int pad = 1) {
  OpSpec op;
  op.kind = OpKind::kConv;
  op.out_channels = filters;
  op.kernel = kernel;
  op.stride = stride;
  op.pad = pad;
  op.relu = true;
  return op;
}

// -------------------------------------------------------- Architecture.

TEST(DagArchitectureTest, DenseNetShapesAndConsumers) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok()) << arch.status().ToString();
  EXPECT_EQ(arch->num_nodes(), 6);
  // Stem halves resolution; dense nodes keep it.
  EXPECT_EQ(arch->node(0).output_shape, (Shape{8, 16, 16}));
  EXPECT_EQ(arch->node(1).output_shape, (Shape{8, 16, 16}));
  // dense3 sees 24 concatenated channels.
  EXPECT_EQ(arch->node(3).output_shape, (Shape{8, 16, 16}));
  // Stem feeds dense1, dense2, dense3, transition.
  EXPECT_EQ(arch->consumers(0), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(arch->node(5).output_shape, (Shape{16}));
}

TEST(DagArchitectureTest, AncestorsAreTransitive) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->Ancestors(0), (std::vector<int>{}));
  EXPECT_EQ(arch->Ancestors(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(arch->Ancestors(5), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DagArchitectureTest, RejectsForwardReferences) {
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {1}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"b", {}, MergeOp::kNone, {ConvOp(4)}});
  auto arch = DagArchitecture::Create("bad", Shape{3, 8, 8}, nodes);
  ASSERT_FALSE(arch.ok());
  EXPECT_NE(arch.status().message().find("topological"), std::string::npos);
}

TEST(DagArchitectureTest, RejectsMergelessFanIn) {
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"b", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"c", {0, 1}, MergeOp::kNone, {}});
  EXPECT_FALSE(DagArchitecture::Create("bad", Shape{3, 8, 8}, nodes).ok());
}

TEST(DagArchitectureTest, RejectsAddShapeMismatch) {
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"b", {}, MergeOp::kNone, {ConvOp(8)}});
  nodes.push_back({"c", {0, 1}, MergeOp::kAdd, {}});
  EXPECT_FALSE(DagArchitecture::Create("bad", Shape{3, 8, 8}, nodes).ok());
}

TEST(DagArchitectureTest, ConcatRequiresMatchingSpatialDims) {
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"b", {}, MergeOp::kNone, {ConvOp(4, 3, 2, 1)}});
  nodes.push_back({"c", {0, 1}, MergeOp::kConcat, {}});
  EXPECT_FALSE(DagArchitecture::Create("bad", Shape{3, 8, 8}, nodes).ok());
}

TEST(DagArchitectureTest, RejectsDuplicateNames) {
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"a", {0}, MergeOp::kNone, {ConvOp(4)}});
  EXPECT_FALSE(DagArchitecture::Create("bad", Shape{3, 8, 8}, nodes).ok());
}

// --------------------------------------------------------------- Model.

TEST(DagModelTest, FullInferenceRuns) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto model = DagModel::Instantiate(*arch, 5);
  ASSERT_TRUE(model.ok());
  Rng rng(1);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  auto out = model->ComputeFromInput(img, 5);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{16}));
}

TEST(DagModelTest, PartialInferenceFromFrontierMatchesFull) {
  // The DAG analogue of the sequential partial-inference equivalence: for
  // every split point, computing the frontier first and resuming from it
  // must reproduce the full result exactly.
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto model = DagModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);

  auto full = model->ComputeFromInput(img, 5);
  ASSERT_TRUE(full.ok());

  // Frontier = {stem, dense1, dense2, dense3}: enough for transition+head
  // without the raw input.
  std::map<int, Tensor> available;
  available.emplace(DagModel::kRawInput, img);
  auto frontier = model->Compute(available, {0, 1, 2, 3});
  ASSERT_TRUE(frontier.ok());
  // Resume WITHOUT the raw input.
  auto resumed = model->Compute(*frontier, {5});
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(full->AllClose(resumed->at(5), 1e-4f));
}

TEST(DagModelTest, MissingDependencyIsFailedPrecondition) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto model = DagModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  // No raw input and no frontier: nothing can be computed.
  auto result = model->Compute({}, {5});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DagModelTest, AddMergeIsOrderInsensitiveInValue) {
  auto arch = MicroSkipEncoderDag();
  ASSERT_TRUE(arch.ok());
  auto model = DagModel::Instantiate(*arch, 3);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  Tensor embedding = Tensor::RandomGaussian(Shape{48}, &rng);
  auto agg = model->ComputeFromInput(embedding, 4);  // enc1 + enc2.
  ASSERT_TRUE(agg.ok());
  std::map<int, Tensor> available;
  available.emplace(DagModel::kRawInput, embedding);
  auto parts = model->Compute(available, {1, 2});
  ASSERT_TRUE(parts.ok());
  Tensor expected = parts->at(1).Clone();
  for (int64_t i = 0; i < expected.num_elements(); ++i) {
    expected.set(i, expected.at(i) + parts->at(2).at(i));
  }
  EXPECT_TRUE(agg->AllClose(expected, 1e-5f));
}

// ------------------------------------------------------ Staged planning.

TEST(DagStagedPlanTest, NoNodeComputedTwice) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto plan = PlanStagedDag(*arch, {1, 3, 5});
  ASSERT_TRUE(plan.ok());
  std::set<int> seen;
  for (const auto& hop : plan->hops) {
    for (int n : hop.compute_nodes) {
      EXPECT_TRUE(seen.insert(n).second) << "node " << n << " recomputed";
    }
  }
  // Everything needed was computed exactly once.
  EXPECT_EQ(seen.size(), 6u);  // All nodes are ancestors of node 5.
}

TEST(DagStagedPlanTest, TotalFlopsEqualsSumOfNeededNodes) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto plan = PlanStagedDag(*arch, {3, 5});
  ASSERT_TRUE(plan.ok());
  int64_t expected = 0;
  for (int i = 0; i < arch->num_nodes(); ++i) {
    expected += arch->node(i).flops;
  }
  EXPECT_EQ(plan->total_flops, expected);
}

TEST(DagStagedPlanTest, FrontierDropsFullyConsumedNodes) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto plan = PlanStagedDag(*arch, {4, 5});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->hops.size(), 2u);
  // After materializing the transition (which consumed the dense block),
  // only the transition output needs to stay for the head.
  EXPECT_EQ(plan->hops[0].keep_after, (std::vector<int>{4}));
  // After the last hop, nothing remains.
  EXPECT_TRUE(plan->hops[1].keep_after.empty());
  EXPECT_EQ(plan->hops[1].keep_bytes, 0);
}

TEST(DagStagedPlanTest, DenseTargetsKeepTheDenseFrontier) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  // Targets dense1..dense3: after materializing dense1, the stem and
  // dense1 outputs must stay (dense2 and dense3 read both).
  auto plan = PlanStagedDag(*arch, {1, 2, 3});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->hops[0].keep_after, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan->hops[1].keep_after, (std::vector<int>{0, 1, 2}));
  // peak = stem + dense1 + dense2 outputs (all 8x16x16).
  EXPECT_EQ(plan->peak_keep_bytes, 3 * 8 * 16 * 16 * 4);
}

TEST(DagStagedPlanTest, RawInputKeptWhileStillNeeded) {
  // Two independent branches off the raw input: after the first branch is
  // materialized, the raw input must still be charged to the frontier.
  std::vector<DagNodeSpec> nodes;
  nodes.push_back({"a", {}, MergeOp::kNone, {ConvOp(4)}});
  nodes.push_back({"b", {}, MergeOp::kNone, {ConvOp(4)}});
  auto arch = DagArchitecture::Create("branches", Shape{3, 8, 8}, nodes);
  ASSERT_TRUE(arch.ok());
  auto plan = PlanStagedDag(*arch, {0, 1});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->hops[0].keep_bytes, 3 * 8 * 8 * 4);  // raw input only.
  EXPECT_EQ(plan->hops[1].keep_bytes, 0);
}

TEST(DagStagedPlanTest, StagedExecutionMatchesFullRecompute) {
  // Execute the plan hop by hop, carrying only keep_after (+ raw input
  // while charged), and check each target equals direct computation.
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  auto model = DagModel::Instantiate(*arch, 11);
  ASSERT_TRUE(model.ok());
  Rng rng(6);
  Tensor img = Tensor::RandomGaussian(Shape{3, 32, 32}, &rng);
  auto plan = PlanStagedDag(*arch, {2, 4, 5});
  ASSERT_TRUE(plan.ok());

  std::map<int, Tensor> frontier;
  frontier.emplace(DagModel::kRawInput, img);
  for (const auto& hop : plan->hops) {
    std::vector<int> want = hop.keep_after;
    want.push_back(hop.target);
    auto values = model->Compute(frontier, want);
    ASSERT_TRUE(values.ok()) << values.status().ToString();
    // Check the hop's target against direct full computation.
    auto direct = model->ComputeFromInput(img, hop.target);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(direct->AllClose(values->at(hop.target), 1e-4f))
        << "target " << hop.target;
    // Next frontier: only keep_after (plus raw input if still charged).
    std::map<int, Tensor> next;
    if (hop.keep_bytes > 0 &&
        std::find(hop.keep_after.begin(), hop.keep_after.end(), -1) ==
            hop.keep_after.end()) {
      // Raw input retained only when some un-computed node still reads it;
      // conservatively keep it if the plan charged for it.
      bool raw_charged = true;
      int64_t kept = 0;
      for (int n : hop.keep_after) {
        kept += arch->node(n).output_shape.num_bytes();
      }
      raw_charged = hop.keep_bytes > kept;
      if (raw_charged) next.emplace(DagModel::kRawInput, img);
    }
    for (int n : hop.keep_after) next.emplace(n, values->at(n));
    frontier = std::move(next);
  }
}

TEST(DagStagedPlanTest, RejectsBadTargets) {
  auto arch = MicroDenseNetDag();
  ASSERT_TRUE(arch.ok());
  EXPECT_FALSE(PlanStagedDag(*arch, {}).ok());
  EXPECT_FALSE(PlanStagedDag(*arch, {99}).ok());
}

TEST(DagStagedPlanTest, SkipEncoderAggregatesNeedMultipleLayers) {
  // The BERT-style case: agg123 (node 5) depends on enc1..enc3. After
  // materializing agg12 (node 4), enc1 and enc2 stay alive for agg123
  // (enc3 is only computed in the second hop, from the kept enc2).
  auto arch = MicroSkipEncoderDag();
  ASSERT_TRUE(arch.ok());
  auto plan = PlanStagedDag(*arch, {4, 5});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->hops[0].keep_after, (std::vector<int>{1, 2}));
  // The second hop computes enc3 and agg123 without touching the raw
  // input or recomputing enc1/enc2.
  EXPECT_EQ(plan->hops[1].compute_nodes, (std::vector<int>{3, 5}));
}

}  // namespace
}  // namespace vista::dl
