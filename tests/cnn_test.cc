#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "dl/cnn.h"
#include "dl/op_spec.h"
#include "tensor/ops.h"

namespace vista::dl {
namespace {

Result<CnnArchitecture> TinyArch() {
  CnnBuilder b("Tiny", Shape{3, 16, 16});
  b.BeginLayer("conv1").Conv(4, 3, 1, 1).MaxPool(2, 2);
  b.BeginLayer("conv2").Conv(8, 3, 1, 1).MaxPool(2, 2);
  b.BeginLayer("fc1").Fc(10);
  b.BeginLayer("fc2").Fc(4, /*relu=*/false);
  return b.Build();
}

TEST(OpSpecTest, ConvShapeAndParams) {
  OpSpec op;
  op.kind = OpKind::kConv;
  op.out_channels = 96;
  op.kernel = 11;
  op.stride = 4;
  op.pad = 0;
  auto stat = AnalyzeOp(op, Shape{3, 227, 227});
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->output_shape, (Shape{96, 55, 55}));
  EXPECT_EQ(stat->param_count, 96 * 3 * 11 * 11 + 96);
  EXPECT_EQ(stat->flops, Conv2DFlops(3, 96, 55, 55, 11));
}

TEST(OpSpecTest, PoolShape) {
  OpSpec op;
  op.kind = OpKind::kMaxPool;
  op.window = 3;
  op.stride = 2;
  auto stat = AnalyzeOp(op, Shape{96, 55, 55});
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->output_shape, (Shape{96, 27, 27}));
  EXPECT_EQ(stat->param_count, 0);
}

TEST(OpSpecTest, FcFromTensorInput) {
  OpSpec op;
  op.kind = OpKind::kFc;
  op.out_channels = 10;
  auto stat = AnalyzeOp(op, Shape{24});
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->output_shape, (Shape{10}));
  EXPECT_EQ(stat->param_count, 24 * 10 + 10);
}

TEST(OpSpecTest, BottleneckShapeAndProjection) {
  OpSpec op;
  op.kind = OpKind::kBottleneck;
  op.mid_channels = 64;
  op.out_channels = 256;
  op.stride = 1;
  op.project = true;
  auto stat = AnalyzeOp(op, Shape{64, 56, 56});
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->output_shape, (Shape{256, 56, 56}));
  // conv1 64->64 + bn, conv2 64->64 3x3 + bn, conv3 64->256 + bn,
  // projection 64->256 + bn.
  const int64_t expected = (64 * 64 + 64 + 128) +
                           (64 * 64 * 9 + 64 + 128) +
                           (64 * 256 + 256 + 512) + (64 * 256 + 256 + 512);
  EXPECT_EQ(stat->param_count, expected);
}

TEST(OpSpecTest, BottleneckStrideDownsamples) {
  OpSpec op;
  op.kind = OpKind::kBottleneck;
  op.mid_channels = 128;
  op.out_channels = 512;
  op.stride = 2;
  op.project = true;
  auto stat = AnalyzeOp(op, Shape{256, 56, 56});
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->output_shape, (Shape{512, 28, 28}));
}

TEST(OpSpecTest, RejectsBadInputRank) {
  OpSpec op;
  op.kind = OpKind::kConv;
  op.out_channels = 4;
  op.kernel = 3;
  EXPECT_FALSE(AnalyzeOp(op, Shape{10}).ok());
}

TEST(CnnBuilderTest, BuildsStatsWithCumulativeFlops) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->num_layers(), 4);
  EXPECT_EQ(arch->layer(0).name, "conv1");
  EXPECT_EQ(arch->layer(0).output_shape, (Shape{4, 8, 8}));
  EXPECT_EQ(arch->layer(1).output_shape, (Shape{8, 4, 4}));
  EXPECT_EQ(arch->layer(2).output_shape, (Shape{10}));
  EXPECT_TRUE(arch->layer(0).convolutional);
  EXPECT_FALSE(arch->layer(2).convolutional);
  // Cumulative FLOPs strictly increase.
  for (int i = 1; i < arch->num_layers(); ++i) {
    EXPECT_GT(arch->layer(i).cumulative_flops,
              arch->layer(i - 1).cumulative_flops);
  }
}

TEST(CnnBuilderTest, EmptyBuilderFails) {
  CnnBuilder b("Empty", Shape{3, 8, 8});
  EXPECT_FALSE(b.Build().ok());
}

TEST(CnnArchitectureTest, FindLayerAndTopLayers) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto idx = arch->FindLayer("fc1");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2);
  EXPECT_FALSE(arch->FindLayer("nope").ok());

  auto top = arch->TopLayers(2);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, (std::vector<int>{2, 3}));
  EXPECT_FALSE(arch->TopLayers(0).ok());
  EXPECT_FALSE(arch->TopLayers(9).ok());
}

TEST(CnnArchitectureTest, TransferFeatureCount) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  // conv2 output 8x4x4 pooled to 8x2x2 = 32 features.
  EXPECT_EQ(arch->transfer_feature_count(1), 32);
  // fc1 is already a vector.
  EXPECT_EQ(arch->transfer_feature_count(2), 10);
}

TEST(CnnModelTest, RunProducesFinalShape) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  Rng rng(1);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  auto out = model->Run(img);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{4}));
}

TEST(CnnModelTest, PartialInferenceComposes) {
  // The heart of Definition 3.7: f̂_{0..3} == f̂_{2..3} ∘ f̂_{0..1}.
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);

  auto full = model->RunTo(img, 3);
  ASSERT_TRUE(full.ok());
  auto half = model->RunTo(img, 1);
  ASSERT_TRUE(half.ok());
  auto rest = model->RunRange(*half, 2, 3);
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(full->AllClose(*rest, 1e-4f));
}

TEST(CnnModelTest, EveryPrefixComposes) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 9);
  ASSERT_TRUE(model.ok());
  Rng rng(3);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  for (int split = 0; split < 3; ++split) {
    auto first = model->RunTo(img, split);
    ASSERT_TRUE(first.ok());
    auto second = model->RunRange(*first, split + 1, 3);
    ASSERT_TRUE(second.ok());
    auto direct = model->RunTo(img, 3);
    ASSERT_TRUE(direct.ok());
    EXPECT_TRUE(direct->AllClose(*second, 1e-4f)) << "split=" << split;
  }
}

TEST(CnnModelTest, AcceptsFlattenedIntermediate) {
  // The dataflow engine stores features as vectors; RunRange must accept
  // the flattened form of a layer output.
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  Rng rng(4);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  auto mid = model->RunTo(img, 0);
  ASSERT_TRUE(mid.ok());
  auto from_flat = model->RunRange(mid->Flatten(), 1, 3);
  auto from_tensor = model->RunRange(*mid, 1, 3);
  ASSERT_TRUE(from_flat.ok());
  ASSERT_TRUE(from_tensor.ok());
  EXPECT_TRUE(from_flat->AllClose(*from_tensor));
}

TEST(CnnModelTest, RejectsBadRange) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  Tensor img(Shape{3, 16, 16});
  EXPECT_FALSE(model->RunRange(img, 2, 1).ok());
  EXPECT_FALSE(model->RunRange(img, 0, 99).ok());
  EXPECT_FALSE(model->RunRange(img, -1, 2).ok());
}

TEST(CnnModelTest, RejectsIncompatibleInput) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 7);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->RunTo(Tensor(Shape{3, 8, 8}), 3).ok());
}

TEST(CnnModelTest, DeterministicInstantiation) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto m1 = CnnModel::Instantiate(*arch, 42);
  auto m2 = CnnModel::Instantiate(*arch, 42);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  Rng rng(5);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  auto o1 = m1->Run(img);
  auto o2 = m2->Run(img);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_TRUE(o1->AllClose(*o2));
}

TEST(CnnModelTest, GaborInitChangesFirstLayerFeatures) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto he = CnnModel::Instantiate(*arch, 42, WeightInit::kHe);
  auto gabor = CnnModel::Instantiate(*arch, 42, WeightInit::kGaborFirstConv);
  ASSERT_TRUE(he.ok());
  ASSERT_TRUE(gabor.ok());
  Rng rng(6);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  auto o1 = he->RunTo(img, 0);
  auto o2 = gabor->RunTo(img, 0);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_FALSE(o1->AllClose(*o2));
}

TEST(TransferFeaturizeTest, ConvOutputsArePooledAndFlattened) {
  Tensor conv_out(Shape{2, 4, 4});
  auto g = TransferFeaturize(conv_out, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->shape(), (Shape{8}));
}

TEST(TransferFeaturizeTest, VectorOutputsPassThrough) {
  Tensor fc_out(Shape{10});
  auto g = TransferFeaturize(fc_out, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->shape(), (Shape{10}));
}

// Both parallelism modes run the same arithmetic per image as a serial
// RunRange (inter-image tasks run serial kernels; intra-image row-tile
// splits pack identically per block), so batched results are bit-identical
// to the one-image-at-a-time path.
TEST(CnnModelTest, RunRangeBatchMatchesSerialBothModes) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 21);
  ASSERT_TRUE(model.ok());
  Rng rng(9);
  std::vector<Tensor> images;
  for (int i = 0; i < 5; ++i) {
    images.push_back(Tensor::RandomGaussian(Shape{3, 16, 16}, &rng));
  }
  std::vector<Tensor> expected;
  for (const Tensor& img : images) {
    auto out = model->RunRange(img, 0, arch->num_layers() - 1);
    ASSERT_TRUE(out.ok());
    expected.push_back(std::move(out).value());
  }

  ThreadPool pool(4);
  for (CnnParallelism mode :
       {CnnParallelism::kInterImage, CnnParallelism::kIntraImage}) {
    CnnOptions opts;
    opts.pool = &pool;
    opts.parallelism = mode;
    auto batch =
        model->RunRangeBatch(images, 0, arch->num_layers() - 1, opts);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), images.size());
    for (size_t i = 0; i < images.size(); ++i) {
      ASSERT_EQ(expected[i].shape(), (*batch)[i].shape());
      for (int64_t j = 0; j < expected[i].num_elements(); ++j) {
        ASSERT_EQ(expected[i].at(j), (*batch)[i].at(j))
            << "mode=" << static_cast<int>(mode) << " image " << i
            << " elem " << j;
      }
    }
  }
}

TEST(CnnModelTest, RunRangeBatchWithoutPoolIsSerial) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 22);
  ASSERT_TRUE(model.ok());
  Rng rng(10);
  std::vector<Tensor> images = {
      Tensor::RandomGaussian(Shape{3, 16, 16}, &rng),
      Tensor::RandomGaussian(Shape{3, 16, 16}, &rng)};
  auto batch = model->RunRangeBatch(images, 0, 1);
  ASSERT_TRUE(batch.ok());
  auto single = model->RunRange(images[1], 0, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE((*batch)[1].AllClose(*single));
}

TEST(CnnModelTest, RunRangeBatchSurfacesPerImageFailure) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 23);
  ASSERT_TRUE(model.ok());
  Rng rng(11);
  ThreadPool pool(2);
  CnnOptions opts;
  opts.pool = &pool;
  std::vector<Tensor> images = {
      Tensor::RandomGaussian(Shape{3, 16, 16}, &rng),
      Tensor::RandomGaussian(Shape{3, 4, 4}, &rng)};  // Wrong shape.
  auto batch = model->RunRangeBatch(images, 0, 1, opts);
  EXPECT_FALSE(batch.ok());
}

TEST(CnnModelTest, ProfilingRecordsPerLayerFlops) {
  auto arch = TinyArch();
  ASSERT_TRUE(arch.ok());
  auto model = CnnModel::Instantiate(*arch, 24);
  ASSERT_TRUE(model.ok());
  obs::Registry registry;
  model->EnableProfiling(&registry);
  Rng rng(12);
  Tensor img = Tensor::RandomGaussian(Shape{3, 16, 16}, &rng);
  ASSERT_TRUE(model->Run(img).ok());
  ASSERT_TRUE(model->Run(img).ok());
  obs::Counter* conv1 = registry.counter("dl.flops.Tiny.conv1");
  EXPECT_EQ(conv1->value(), 2 * arch->layer(0).flops);
  model->EnableProfiling(nullptr);
}

TEST(CnnModelTest, ResidualBlockRuns) {
  CnnBuilder b("Res", Shape{3, 8, 8});
  b.BeginLayer("stem").Conv(4, 3, 1, 1);
  b.BeginLayer("block1").Bottleneck(2, 8, 1, /*project=*/true);
  b.BeginLayer("block2").Bottleneck(2, 8, 2, /*project=*/true);
  b.BeginLayer("head").GlobalAvgPool().Fc(3, false);
  auto arch = b.Build();
  ASSERT_TRUE(arch.ok());
  EXPECT_EQ(arch->layer(1).output_shape, (Shape{8, 8, 8}));
  EXPECT_EQ(arch->layer(2).output_shape, (Shape{8, 4, 4}));
  auto model = CnnModel::Instantiate(*arch, 11);
  ASSERT_TRUE(model.ok());
  Rng rng(8);
  Tensor img = Tensor::RandomGaussian(Shape{3, 8, 8}, &rng);
  auto out = model->Run(img);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{3}));
}

}  // namespace
}  // namespace vista::dl
