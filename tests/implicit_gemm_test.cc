#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "dataflow/engine.h"
#include "dl/model_zoo.h"
#include "tensor/gemm.h"
#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/scratch.h"
#include "vista/estimator.h"

namespace vista {
namespace {

/// Bit-identity across whole tensors: the implicit packer gathers the
/// exact values the explicit path materializes, in the same panel order,
/// so the outputs must match to the last bit — not just within tolerance.
void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.num_elements()) *
                               sizeof(float)));
}

// Odd shapes chosen to exercise every gather branch: stride 2 and 3,
// non-square inputs whose bottom/right effective padding differs from the
// top/left (h or w not congruent with the window), grouped convolution,
// even kernels, and the 1x1/stride-1/pad-0 fast path that skips the
// gather entirely.
struct ImplicitConvCase {
  int channels, h, w, filters, kernel, stride, pad, groups;
};

class ImplicitConvDifferentialTest
    : public ::testing::TestWithParam<ImplicitConvCase> {};

TEST_P(ImplicitConvDifferentialTest, BitIdenticalToExplicitIm2Col) {
  const ImplicitConvCase c = GetParam();
  Rng rng(c.channels * 131 + c.h * 31 + c.kernel * 17 + c.stride);
  Tensor input = Tensor::RandomGaussian(Shape{c.channels, c.h, c.w}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{c.filters}, &rng);
  ThreadPool pool(3);
  for (const bool relu : {false, true}) {
    auto ex = Conv2DGemmEx(input, w, b, c.stride, c.pad, c.groups, relu,
                           nullptr);
    auto im = Conv2DGemmImplicit(input, w, b, c.stride, c.pad, c.groups,
                                 relu, nullptr);
    ASSERT_TRUE(ex.ok()) << ex.status().ToString();
    ASSERT_TRUE(im.ok()) << im.status().ToString();
    ExpectBitIdentical(*ex, *im);
    // The parallel path packs the same B panels; only the M-tile schedule
    // differs, which touches disjoint output rows.
    auto im_pool = Conv2DGemmImplicit(input, w, b, c.stride, c.pad,
                                      c.groups, relu, &pool);
    ASSERT_TRUE(im_pool.ok());
    ExpectBitIdentical(*ex, *im_pool);
  }
}

TEST_P(ImplicitConvDifferentialTest, MatchesDirectReference) {
  const ImplicitConvCase c = GetParam();
  Rng rng(c.channels * 7919 + c.w * 13 + c.kernel);
  Tensor input = Tensor::RandomGaussian(Shape{c.channels, c.h, c.w}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{c.filters}, &rng);
  auto direct = Conv2D(input, w, b, c.stride, c.pad, c.groups);
  auto im = Conv2DGemmImplicit(input, w, b, c.stride, c.pad, c.groups,
                               /*relu=*/false, nullptr);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(im.ok());
  EXPECT_EQ(direct->shape(), im->shape());
  EXPECT_TRUE(direct->AllClose(*im, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, ImplicitConvDifferentialTest,
    ::testing::Values(
        ImplicitConvCase{8, 9, 9, 12, 3, 1, 1, 1},    // plain 3x3
        ImplicitConvCase{8, 11, 7, 12, 3, 2, 1, 1},   // stride 2, non-square
        ImplicitConvCase{6, 13, 10, 9, 3, 3, 2, 1},   // stride 3
        ImplicitConvCase{12, 10, 10, 8, 5, 2, 2, 4},  // grouped 5x5
        ImplicitConvCase{16, 8, 8, 24, 1, 1, 0, 1},   // 1x1 fast path
        ImplicitConvCase{9, 7, 5, 6, 3, 2, 0, 3},     // grouped, no pad
        ImplicitConvCase{4, 6, 6, 6, 2, 2, 1, 2},       // even kernel
        ImplicitConvCase{3, 35, 29, 7, 3, 2, 1, 1}));   // big non-square grid

// The fast path must actually be exercised and still agree: a 1x1
// stride-1 pad-0 conv feeds the input tensor to the packed GEMM in place.
TEST(ImplicitConvFastPathTest, OneByOneMatchesExplicitAndDirect) {
  Rng rng(42);
  Tensor input = Tensor::RandomGaussian(Shape{32, 14, 14}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{48, 32, 1, 1}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{48}, &rng);
  auto ex = Conv2DGemmEx(input, w, b, 1, 0, 1, /*relu=*/true, nullptr);
  auto im = Conv2DGemmImplicit(input, w, b, 1, 0, 1, /*relu=*/true, nullptr);
  ASSERT_TRUE(ex.ok());
  ASSERT_TRUE(im.ok());
  ExpectBitIdentical(*ex, *im);
}

// Int8: the implicit packer quantizes during the gather. Its raw int32
// accumulators (empty epilogue mode) must be bit-identical to quantizing
// a materialized im2col expansion and running the memory-sourced int8
// kernel on it — the legacy fp32-im2col-then-quantize detour.
class ImplicitConvInt8Test
    : public ::testing::TestWithParam<ImplicitConvCase> {};

TEST_P(ImplicitConvInt8Test, AccumulatorsMatchQuantizedExpansion) {
  const ImplicitConvCase c = GetParam();
  Rng rng(c.channels * 977 + c.h * 5 + c.kernel);
  Tensor input = Tensor::RandomGaussian(Shape{c.channels, c.h, c.w}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  const float act_scale =
      SymmetricScale(MaxAbs(input.data(), input.num_elements()));

  auto cols = Im2Col(input, c.kernel, c.stride, c.pad, c.groups);
  ASSERT_TRUE(cols.ok());
  const int64_t rows = cols->shape().dim(1);
  const int64_t spatial = cols->shape().dim(2);
  const int64_t m = c.filters / c.groups;
  const int64_t h_out = (c.h + 2 * c.pad - c.kernel) / c.stride + 1;
  const int64_t w_out = (c.w + 2 * c.pad - c.kernel) / c.stride + 1;
  ASSERT_EQ(spatial, h_out * w_out);

  std::vector<int8_t> cols_q(static_cast<size_t>(rows * spatial));
  std::vector<float> ref_c(static_cast<size_t>(m * spatial));
  std::vector<float> imp_c(ref_c.size());
  KernelScratch scratch;
  for (int64_t gi = 0; gi < c.groups; ++gi) {
    const float* group_cols = cols->data() + gi * rows * spatial;
    QuantizeSymmetric(group_cols, rows * spatial, act_scale, cols_q.data());
    const int8_t* a_g = qw->data.data() + gi * m * rows;
    // Empty epilogue: both kernels leave raw int32 sums bit-cast in C.
    GemmInt8Epilogue raw;
    GemmPackedInt8(m, spatial, rows, a_g, rows, cols_q.data(), spatial,
                   ref_c.data(), spatial, raw, &scratch);
    ConvPatchView view;
    view.input = input.data() + gi * (c.channels / c.groups) * c.h * c.w;
    view.h = c.h;
    view.w = c.w;
    view.kernel = c.kernel;
    view.stride = c.stride;
    view.pad = c.pad;
    view.w_out = w_out;
    GemmPackedConvInt8(m, spatial, rows, a_g, rows, view, act_scale,
                       imp_c.data(), spatial, raw, &scratch);
    ASSERT_EQ(0, std::memcmp(ref_c.data(), imp_c.data(),
                             ref_c.size() * sizeof(float)))
        << "group " << gi;
  }
}

// End to end with per-channel scales: Conv2DGemmInt8 (implicit) against
// the legacy detour — materialize, quantize, memory-sourced GEMM with the
// same fused dequant epilogue. Same accumulators + same epilogue
// arithmetic => bit-identical fp32 output.
TEST_P(ImplicitConvInt8Test, FullConvMatchesLegacyDetour) {
  const ImplicitConvCase c = GetParam();
  Rng rng(c.channels * 271 + c.w * 7 + c.stride);
  Tensor input = Tensor::RandomGaussian(Shape{c.channels, c.h, c.w}, &rng);
  Tensor w = Tensor::RandomGaussian(
      Shape{c.filters, c.channels / c.groups, c.kernel, c.kernel}, &rng);
  Tensor b = Tensor::RandomGaussian(Shape{c.filters}, &rng);
  auto qw = QuantizeWeightsPerChannel(w);
  ASSERT_TRUE(qw.ok());
  const float act_scale =
      SymmetricScale(MaxAbs(input.data(), input.num_elements()));

  auto got = Conv2DGemmInt8(input, *qw, b, c.stride, c.pad, c.groups,
                            /*relu=*/true, act_scale, nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  auto cols = Im2Col(input, c.kernel, c.stride, c.pad, c.groups);
  ASSERT_TRUE(cols.ok());
  const int64_t rows = cols->shape().dim(1);
  const int64_t spatial = cols->shape().dim(2);
  const int64_t m = c.filters / c.groups;
  std::vector<float> scales(static_cast<size_t>(c.filters));
  for (int i = 0; i < c.filters; ++i) {
    scales[static_cast<size_t>(i)] =
        qw->scales[static_cast<size_t>(i)] * act_scale;
  }
  Tensor want(got->shape());
  std::vector<int8_t> cols_q(static_cast<size_t>(rows * spatial));
  KernelScratch scratch;
  for (int64_t gi = 0; gi < c.groups; ++gi) {
    QuantizeSymmetric(cols->data() + gi * rows * spatial, rows * spatial,
                      act_scale, cols_q.data());
    GemmInt8Epilogue epilogue;
    epilogue.scale = scales.data() + gi * m;
    epilogue.bias = b.data() + gi * m;
    epilogue.relu = true;
    GemmPackedInt8(m, spatial, rows, qw->data.data() + gi * m * rows, rows,
                   cols_q.data(), spatial,
                   want.mutable_data() + gi * m * spatial, spatial, epilogue,
                   &scratch);
  }
  ExpectBitIdentical(want, *got);
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, ImplicitConvInt8Test,
    ::testing::Values(
        ImplicitConvCase{8, 9, 9, 12, 3, 1, 1, 1},
        ImplicitConvCase{8, 11, 7, 12, 3, 2, 1, 1},
        ImplicitConvCase{6, 13, 10, 9, 3, 3, 2, 1},
        ImplicitConvCase{12, 10, 10, 8, 5, 2, 2, 4},
        ImplicitConvCase{16, 8, 8, 24, 1, 1, 0, 1},
        ImplicitConvCase{9, 7, 5, 6, 3, 2, 0, 3}));

// The headline footprint claim: on a VGG-style 3x3 conv the explicit
// path's arena (im2col expansion + packed panels) is at least 4x the
// implicit path's (panels only). Measured on fresh arenas, not estimated.
TEST(ImplicitConvScratchTest, FootprintDropsAtLeast4x) {
  const int64_t channels = 64, hw = 56, filters = 64;
  const int kernel = 3, stride = 1, pad = 1;
  Rng rng(9);
  Tensor input = Tensor::RandomGaussian(Shape{channels, hw, hw}, &rng);
  Tensor w =
      Tensor::RandomGaussian(Shape{filters, channels, kernel, kernel}, &rng);
  const int64_t rows = channels * kernel * kernel;
  const int64_t spatial = hw * hw;  // stride 1, pad 1 preserves the grid.
  std::vector<float> c(static_cast<size_t>(filters * spatial));

  KernelScratch implicit_arena;
  ConvPatchView view;
  view.input = input.data();
  view.h = hw;
  view.w = hw;
  view.kernel = kernel;
  view.stride = stride;
  view.pad = pad;
  view.w_out = hw;
  GemmPackedConv(filters, spatial, rows, w.data(), rows, view, c.data(),
                 spatial, GemmEpilogue{}, &implicit_arena);

  // Emulate the explicit path's arena traffic: the materialized expansion
  // lives in Slot::kIm2Col of the same arena the packed GEMM then uses.
  auto cols = Im2Col(input, kernel, stride, pad, 1);
  ASSERT_TRUE(cols.ok());
  KernelScratch explicit_arena;
  float* buf = explicit_arena.Acquire(KernelScratch::Slot::kIm2Col,
                                      static_cast<size_t>(rows * spatial));
  std::memcpy(buf, cols->data(),
              static_cast<size_t>(rows * spatial) * sizeof(float));
  GemmPacked(filters, spatial, rows, w.data(), rows, buf, spatial, c.data(),
             spatial, GemmEpilogue{}, &explicit_arena);

  EXPECT_GT(implicit_arena.peak_bytes(), 0);
  EXPECT_GE(explicit_arena.peak_bytes(), 4 * implicit_arena.peak_bytes())
      << "explicit " << explicit_arena.peak_bytes() << " implicit "
      << implicit_arena.peak_bytes();
}

// The estimator's Eq. 16 Temp figure must track what the kernel actually
// acquires: ConvTempBytes mirrors the drivers' literal Acquire sizes, so
// on a fresh arena the measured high-water equals the prediction exactly.
TEST(ImplicitConvScratchTest, ConvTempBytesMatchesMeasuredPeak) {
  auto arch = dl::MicroAlexNetArch();
  ASSERT_TRUE(arch.ok());
  const Shape in_shape = arch->input_shape();
  const dl::OpSpec* conv = nullptr;
  for (const dl::OpSpec& op : arch->layer_spec(0).ops) {
    if (op.kind == dl::OpKind::kConv) {
      conv = &op;
      break;
    }
  }
  ASSERT_NE(conv, nullptr);
  const int groups = conv->groups > 0 ? conv->groups : 1;
  const int64_t c_in = in_shape.dim(0), h = in_shape.dim(1),
                w = in_shape.dim(2);
  const int64_t rows = (c_in / groups) * conv->kernel * conv->kernel;
  const int64_t h_out =
      (h + 2 * conv->pad - conv->kernel) / conv->stride + 1;
  const int64_t w_out =
      (w + 2 * conv->pad - conv->kernel) / conv->stride + 1;
  Rng rng(11);
  Tensor input = Tensor::RandomGaussian(in_shape, &rng);
  Tensor weights = Tensor::RandomGaussian(
      Shape{conv->out_channels, c_in / groups, conv->kernel, conv->kernel},
      &rng);
  std::vector<float> out(
      static_cast<size_t>(conv->out_channels * h_out * w_out));
  KernelScratch arena;
  for (int gi = 0; gi < groups; ++gi) {
    ConvPatchView view;
    view.input = input.data() + gi * (c_in / groups) * h * w;
    view.h = h;
    view.w = w;
    view.kernel = conv->kernel;
    view.stride = conv->stride;
    view.pad = conv->pad;
    view.w_out = w_out;
    const int64_t m = conv->out_channels / groups;
    GemmPackedConv(m, h_out * w_out, rows, weights.data() + gi * m * rows,
                   rows, view, out.data() + gi * m * h_out * w_out,
                   h_out * w_out, GemmEpilogue{}, &arena);
  }
  EXPECT_EQ(arena.peak_bytes(), ConvTempBytes(*arch, 0));
  // And the legacy figure dominates it by the materialized expansion.
  EXPECT_GT(ConvIm2ColTempBytes(*arch, 0), ConvTempBytes(*arch, 0));
}

// Satellite: the scratch high-water is observable end to end — the
// "scratch.peak_bytes" gauge mirrored into EngineStats matches the
// process-wide arena aggregate.
TEST(ImplicitConvScratchTest, EngineStatsMirrorGlobalPeak) {
  Rng rng(3);
  Tensor input = Tensor::RandomGaussian(Shape{8, 12, 12}, &rng);
  Tensor w = Tensor::RandomGaussian(Shape{8, 8, 3, 3}, &rng);
  Tensor b(Shape{8});
  ASSERT_TRUE(Conv2DGemm(input, w, b, 1, 1).ok());
  EXPECT_GT(KernelScratch::GlobalPeakBytes(), 0);
  df::EngineConfig config;
  config.cpus_per_worker = 1;
  df::Engine engine(config);
  df::EngineStats s = engine.stats();
  EXPECT_EQ(s.scratch_peak_bytes, KernelScratch::GlobalPeakBytes());
}

}  // namespace
}  // namespace vista
