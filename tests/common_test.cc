#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace vista {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::OutOfMemory("oom");
  Status t = s;
  EXPECT_TRUE(t.IsOutOfMemory());
  EXPECT_EQ(t.message(), "oom");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::Internal("x").IsOutOfMemory());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Result<int> Doubled(Result<int> in) {
  VISTA_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  VISTA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_FALSE(Chained(-1).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BoundedUniform) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextUint64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(BytesTest, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MiB");
  EXPECT_EQ(FormatBytes(GiB(1.5)), "1.50 GiB");
}

TEST(BytesTest, Helpers) {
  EXPECT_EQ(KiB(2), 2048);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(GiB(1), 1073741824);
}

TEST(BytesTest, DurationFormatting) {
  EXPECT_EQ(FormatDuration(0.0421), "42.1 ms");
  EXPECT_EQ(FormatDuration(2.5), "2.50 s");
  EXPECT_EQ(FormatDuration(120), "2.00 min");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(50, [&](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int64_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // Must not hang.
}

// Nested ParallelFor: every worker blocks inside an outer iteration that
// itself calls ParallelFor. Caller-inclusive claiming must drain the inner
// loops even though no pool thread is ever free to help — the deadlock
// scenario of a parallel kernel inside an engine map task.
TEST(ThreadPoolTest, NestedParallelForMakesProgress) {
  ThreadPool pool(3);
  constexpr int kOuter = 8;
  constexpr int kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](int64_t o) {
    pool.ParallelFor(kInner, [&](int64_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ParallelFor from a Submit()ed task (the engine's map path) while the
// caller thread also runs its own loop.
TEST(ThreadPoolTest, ParallelForInsideSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    pool.ParallelFor(32, [&](int64_t) { count.fetch_add(1); });
  });
  pool.ParallelFor(32, [&](int64_t) { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ParallelForSingleIterationRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.ParallelFor(1, [&](int64_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  const double t0 = w.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace vista
